#!/usr/bin/env bash
# Source lints enforcing the runtime's interposition contracts.
#
# Default mode runs `upcxx-analyze` (crates/analyze): a hermetic, lexer-backed
# static analyzer that ports the original grep rules (comment/string aware,
# `#[cfg(test)]` aware, justified per-line suppressions) and adds semantic
# rules the greps could not express (restricted-context, pod-transfer,
# deprecated-api, frame-fn-anchor). See DESIGN.md "Static invariants".
#
# `--legacy` runs the original grep rules verbatim — toolchain-free, and kept
# as a CI cross-check that the analyzer's confinement rules and the greps
# agree on a clean tree.
set -euo pipefail
cd "$(dirname "$0")/.."

if [ "${1:-}" != "--legacy" ]; then
  exec cargo run -q --release -p upcxx-analyze -- --format=text
fi

fail=0

echo "==> lint(legacy): raw segment access confined to rma.rs / global_ptr.rs"
if grep -rn --include='*.rs' -E '\bseg_(base|read|write|with_mut|fill)\b' \
    crates/core/src \
    | grep -v 'crates/core/src/rma.rs' \
    | grep -v 'crates/core/src/global_ptr.rs'; then
  echo "ERROR: raw segment access outside rma.rs/global_ptr.rs bypasses the sanitizer" >&2
  fail=1
fi

echo "==> lint(legacy): smp conduit byte access confined to rma.rs / global_ptr.rs / ctx.rs"
if grep -rn --include='*.rs' -E '\.(put_bytes|get_bytes|fill_bytes)\(' \
    crates/core/src \
    | grep -v 'crates/core/src/rma.rs' \
    | grep -v 'crates/core/src/global_ptr.rs' \
    | grep -v 'crates/core/src/ctx.rs'; then
  echo "ERROR: conduit byte access outside rma.rs/global_ptr.rs/ctx.rs bypasses the sanitizer" >&2
  fail=1
fi

echo "==> lint(legacy): direct allocator dealloc confined to alloc.rs"
if grep -rn --include='*.rs' -F '.dealloc(' \
    crates/core/src \
    | grep -v 'crates/core/src/alloc.rs'; then
  echo "ERROR: direct .dealloc( outside alloc.rs bypasses quarantine/bad-free checks" >&2
  fail=1
fi

echo "==> lint(legacy): span-id allocation confined to trace.rs"
if grep -rn --include='*.rs' -E 'next_op\.(get|set)\(' \
    crates/core/src \
    | grep -v 'crates/core/src/trace.rs'; then
  echo "ERROR: next_op accessed outside trace.rs — allocate span ids via trace::new_span_id" >&2
  fail=1
fi

echo "==> lint(legacy): thread spawning in core confined to persona.rs"
if grep -rn --include='*.rs' -E '\bthread::spawn\b|\bstd::thread::Builder\b' \
    crates/core/src \
    | grep -v 'crates/core/src/persona.rs'; then
  echo "ERROR: thread creation outside persona.rs breaks the persona discipline" >&2
  fail=1
fi

echo "==> lint(legacy): process/socket/mmap syscall surface confined to proc.rs"
if grep -rn --include='*.rs' -E '\bUnixListener\b|\bUnixStream\b|\bCommand::new\b|\basm!' \
    crates/core/src crates/gasnet/src \
    | grep -v 'crates/gasnet/src/proc.rs'; then
  echo "ERROR: process/socket/mmap primitives outside proc.rs escape the launcher's supervision" >&2
  fail=1
fi

echo "==> lint(legacy): raw metrics-cell access confined to metrics.rs"
if grep -rn --include='*.rs' -F '.metrics.' \
    crates/core/src \
    | grep -v 'crates/core/src/metrics.rs'; then
  echo "ERROR: raw .metrics. cell access outside metrics.rs — use the crate::metrics hooks" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint(legacy) OK"
