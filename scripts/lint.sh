#!/usr/bin/env bash
# Hermetic source lints enforcing the sanitizer's interposition contract.
#
# The PGAS sanitizer (crates/core/src/san.rs) can only vouch for accesses
# that flow through the hooked entry points. Two grep rules keep the
# hookable surface closed:
#
#  1. Raw segment access (seg_base / seg_read / seg_write / seg_with_mut /
#     seg_fill) is confined to rma.rs and global_ptr.rs inside the core
#     crate. Any other call site would read or write segment memory behind
#     the shadow state's back.
#  2. Direct calls to the segment allocator's `.dealloc(` are confined to
#     alloc.rs. Everything else must free through `upcxx::deallocate` /
#     `alloc::segment_free`, where quarantine, poisoning and bad-free
#     diagnostics live.
#  3. Span-id allocation (`next_op` reads/writes) is confined to trace.rs:
#     one sequence serves RPC reply matching, sanitizer access records and
#     causal-span identity, so `(origin, id)` stays globally unique only if
#     every id flows through trace::new_span_id.
#
# Pure grep — no toolchain, no network; callable on its own or from ci.sh.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "==> lint: raw segment access confined to rma.rs / global_ptr.rs"
if grep -rn --include='*.rs' -E '\bseg_(base|read|write|with_mut|fill)\b' \
    crates/core/src \
    | grep -v 'crates/core/src/rma.rs' \
    | grep -v 'crates/core/src/global_ptr.rs'; then
  echo "ERROR: raw segment access outside rma.rs/global_ptr.rs bypasses the sanitizer" >&2
  fail=1
fi

echo "==> lint: smp conduit byte access confined to rma.rs / global_ptr.rs / ctx.rs"
# The eager fast path added a second injection-time surface over the smp
# handle's raw byte windows (put_bytes / get_bytes / seg_base). Every such
# call site must sit where the sanitizer's check_rma/mark_complete hooks
# bracket it: the RMA entry points (rma.rs), local segment access behind
# is_local (global_ptr.rs), and the deferred-queue drain (ctx.rs).
if grep -rn --include='*.rs' -E '\.(put_bytes|get_bytes|fill_bytes)\(' \
    crates/core/src \
    | grep -v 'crates/core/src/rma.rs' \
    | grep -v 'crates/core/src/global_ptr.rs' \
    | grep -v 'crates/core/src/ctx.rs'; then
  echo "ERROR: conduit byte access outside rma.rs/global_ptr.rs/ctx.rs bypasses the sanitizer" >&2
  fail=1
fi

echo "==> lint: direct allocator dealloc confined to alloc.rs"
if grep -rn --include='*.rs' -F '.dealloc(' \
    crates/core/src \
    | grep -v 'crates/core/src/alloc.rs'; then
  echo "ERROR: direct .dealloc( outside alloc.rs bypasses quarantine/bad-free checks" >&2
  fail=1
fi

echo "==> lint: span-id allocation confined to trace.rs"
if grep -rn --include='*.rs' -E 'next_op\.(get|set)\(' \
    crates/core/src \
    | grep -v 'crates/core/src/trace.rs'; then
  echo "ERROR: next_op accessed outside trace.rs — allocate span ids via trace::new_span_id" >&2
  fail=1
fi

echo "==> lint: thread spawning in core confined to persona.rs"
# The progress persona is the only hidden thread the runtime may create:
# its lifecycle (engine lock, stop flag, join-before-disable, handoff
# drain) lives in persona.rs. A thread::spawn anywhere else in the core
# crate would bypass that discipline and break the persona ownership rules.
if grep -rn --include='*.rs' -E '\bthread::spawn\b|\bstd::thread::Builder\b' \
    crates/core/src \
    | grep -v 'crates/core/src/persona.rs'; then
  echo "ERROR: thread creation outside persona.rs breaks the persona discipline" >&2
  fail=1
fi

echo "==> lint: process/socket/mmap syscall surface confined to proc.rs"
# The proc conduit is the only place the runtime may fork processes, open
# Unix-domain sockets, or issue raw mmap/munmap syscalls: its launcher owns
# child supervision (exit propagation, teardown, bootstrap dir lifecycle)
# and its Mapping type owns segment mapping. Anywhere else, these would
# create ranks or shared memory the conduit cannot account for.
if grep -rn --include='*.rs' -E '\bUnixListener\b|\bUnixStream\b|\bCommand::new\b|\basm!' \
    crates/core/src crates/gasnet/src \
    | grep -v 'crates/gasnet/src/proc.rs'; then
  echo "ERROR: process/socket/mmap primitives outside proc.rs escape the launcher's supervision" >&2
  fail=1
fi

if [ "$fail" -ne 0 ]; then
  exit 1
fi
echo "lint OK"
