#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# The workspace has zero external dependencies, so everything here must pass
# with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package), then the full workspace"
cargo test -q
cargo test --workspace -q

echo "CI OK"
