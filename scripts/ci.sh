#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# The workspace has zero external dependencies, so everything here must pass
# with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package), then the full workspace"
cargo test -q
cargo test --workspace -q

echo "==> sanitizer pass: full workspace under UPCXX_SAN=1 (panic on findings)"
# Every test must run clean with the PGAS sanitizer enabled in its loudest
# mode — a data race, restricted-context violation, UAF/OOB or bad free in
# any existing test is a real bug (in the test or in the sanitizer).
UPCXX_SAN=1 cargo test --workspace -q

echo "==> source lints (sanitizer interposition contract)"
scripts/lint.sh

echo "==> trace smoke: fig4 --trace-only --trace-out produces a loadable trace"
trace_json="$(mktemp /tmp/ci-trace-XXXXXX.json)"
cargo run --release -p bench --bin fig4 -- haswell --quick --trace-only --trace-out "$trace_json" >/dev/null
python3 - "$trace_json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace export contains no events"
phases = {e["args"]["phase"] for e in events if e.get("ph") == "i"}
missing = {"Inject", "Conduit", "Deliver", "Complete"} - phases
assert not missing, f"trace is missing phases: {missing}"
print(f"    trace OK: {len(events)} events, all four phases present")
EOF
rm -f "$trace_json"

echo "==> guard: no new uses of the deprecated free stats functions"
# The deprecated stats_*() shims are defined in core/src/ctx.rs, re-exported
# from lib.rs, and exercised once by the shim-equivalence test; nothing else
# in the tree may call them (use upcxx::runtime_stats()).
if grep -rn --include='*.rs' -E '\bstats_(rma_ops|rpcs|agg_msgs|agg_batches)\(' \
    crates examples tests \
    | grep -v 'crates/core/src/ctx.rs' \
    | grep -v 'crates/core/src/lib.rs' \
    | grep -v 'crates/core/tests/trace.rs'; then
  echo "ERROR: new call sites of deprecated stats_*() found (use upcxx::runtime_stats())" >&2
  exit 1
fi

echo "CI OK"
