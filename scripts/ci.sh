#!/usr/bin/env bash
# Offline CI gate: formatting, lints, and the tier-1 verify from ROADMAP.md.
# The workspace has zero external dependencies, so everything here must pass
# with no network access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> static analysis: upcxx-analyze must report zero findings"
# The analyzer (crates/analyze) statically enforces the runtime's safety
# contracts: confinement of hookable primitives, restricted-context calls,
# POD/Ser layout, deprecated APIs, fn-anchor discipline. JSON output is
# asserted structurally so a formatting change cannot mask findings.
analyze_json="$(mktemp /tmp/ci-analyze-XXXXXX.json)"
cargo run -q --release -p upcxx-analyze -- --format=json > "$analyze_json" || true
python3 - "$analyze_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["files_scanned"] > 50, f"only {doc['files_scanned']} files scanned — walk broken?"
if doc["findings"]:
    for f in doc["findings"]:
        print(f"  {f['file']}:{f['line']}: [{f['rule']}] {f['message']}", file=sys.stderr)
    raise SystemExit(f"upcxx-analyze reported {doc['total']} finding(s)")
print(f"    analyze OK: 0 findings in {doc['files_scanned']} files")
EOF
rm -f "$analyze_json"

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q (root package), then the full workspace"
cargo test -q
cargo test --workspace -q

echo "==> eager-off pass: full workspace under UPCXX_EAGER=0"
# The deferred three-queue path must stay a complete, correct implementation
# — it is the fallback the UPCXX_EAGER knob exists for, and the sim conduit
# runs it unconditionally.
UPCXX_EAGER=0 cargo test --workspace -q

echo "==> sanitizer pass: full workspace under UPCXX_SAN=1 (panic on findings)"
# Every test must run clean with the PGAS sanitizer enabled in its loudest
# mode — a data race, restricted-context violation, UAF/OOB or bad free in
# any existing test is a real bug (in the test or in the sanitizer).
UPCXX_SAN=1 cargo test --workspace -q

echo "==> progress-thread pass: full workspace under UPCXX_PROGRESS=1"
# Every test must pass with the opt-in progress persona servicing conduit
# traffic from a dedicated thread — same results, same trace shapes, and
# (combined with UPCXX_SAN=1) race-free vector-clock updates from both
# personas.
UPCXX_PROGRESS=1 cargo test --workspace -q
UPCXX_PROGRESS=1 UPCXX_SAN=1 cargo test --workspace -q

echo "==> source lints: legacy grep cross-check of the analyzer's confinement rules"
# The analyzer is the gate; the original greps stay as an independent
# cross-check that both report a clean tree (they share no code).
scripts/lint.sh --legacy

echo "==> trace smoke: fig4 --trace-only --trace-out produces a loadable trace"
trace_json="$(mktemp /tmp/ci-trace-XXXXXX.json)"
cargo run --release -p bench --bin fig4 -- haswell --quick --trace-only --trace-out "$trace_json" >/dev/null
python3 - "$trace_json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
assert events, "trace export contains no events"
phases = {e["args"]["phase"] for e in events if e.get("ph") == "i"}
missing = {"Inject", "Conduit", "Deliver", "Complete"} - phases
assert not missing, f"trace is missing phases: {missing}"
print(f"    trace OK: {len(events)} events, all four phases present")
EOF
rm -f "$trace_json"

echo "==> prof smoke: fig4 --prof produces a parseable, consistent profile"
prof_json="$(mktemp /tmp/ci-prof-XXXXXX.json)"
cargo run --release -p bench --bin fig4 -- haswell --quick --prof-only --prof "$prof_json" >/dev/null
python3 - "$prof_json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
sym, rpc = doc["symmetric"], doc["rpc"]
# The rput-ring phase is symmetric by construction; the collected matrix
# must reflect that exactly.
ops = sym["comm_ops"]
for a in range(len(ops)):
    for b in range(len(ops)):
        assert ops[a][b] == ops[b][a], f"comm matrix asymmetric at ({a},{b})"
assert sum(map(sum, ops)) > 0, "symmetric phase recorded no traffic"
# The chained-RPC phase must yield a causal critical path crossing ranks.
path = rpc["critical_path"]
assert path, "rpc phase critical path is empty"
ranks = {hop["rank"] for hop in path}
assert len(ranks) >= 2, f"critical path names only ranks {ranks}"
assert all(m["dropped"] == 0 for m in rpc["meta"]), "profiled run dropped events"
print(f"    prof OK: symmetric matrix verified, critical path {len(path)} hops over {len(ranks)} ranks")
EOF
rm -f "$prof_json"

echo "==> bench smoke: eager RMA fast path holds its floor"
# One quick 1 KiB eager rput run (trace/san off — the product path). The
# guard is deliberately loose (the container sees +/-15% noise on a 2x
# margin): eager must stay clearly below the recorded 174-200 ns/iter
# deferred baseline, or the fast path has silently stopped engaging.
# See results/BENCH_rma_fastpath.json for the measured medians (~96 ns).
bench_out="$(cargo bench -p bench --bench micro -- smp_rput_1KiB_eager 2>/dev/null)"
echo "$bench_out" | sed 's/^/    /'
python3 - <<EOF
out = """$bench_out"""
for line in out.splitlines():
    if line.strip().startswith("smp_rput_1KiB_eager"):
        per = float(line.split()[1])
        assert per < 160.0, f"eager 1 KiB rput regressed to {per} ns/iter (floor 160)"
        print(f"    fast-path smoke OK: {per} ns/iter < 160")
        break
else:
    raise SystemExit("bench produced no smp_rput_1KiB_eager line")
EOF

echo "==> bench smoke: progress persona rescues an inattentive DHT target"
# Rank 1 computes ~200 us slices and only reaches progress() every ~5 ms;
# rank 0 streams keyed inserts at it. The acceptance target is >=5x with
# the progress thread on (results/BENCH_progress.json records ~8x); the
# smoke guard uses 4x so container noise cannot flake the gate while a
# real regression (the thread not engaging collapses the ratio to ~1x)
# still trips it.
prog_out="$(cargo bench -p bench --bench micro -- dht_inattentive 2>/dev/null)"
echo "$prog_out" | sed 's/^/    /'
python3 - <<EOF
out = """$prog_out"""
per = {}
for line in out.splitlines():
    parts = line.split()
    if parts and parts[0] in ("dht_inattentive_off", "dht_inattentive_on"):
        per[parts[0]] = float(parts[1])
assert len(per) == 2, f"bench produced {sorted(per)} (expected both knob states)"
ratio = per["dht_inattentive_off"] / per["dht_inattentive_on"]
assert ratio >= 4.0, f"progress-thread speedup collapsed to {ratio:.2f}x (gate 4x)"
print(f"    progress smoke OK: {ratio:.2f}x (gate 4x, acceptance 5x)")
EOF

echo "==> proc smoke: quickstart + dht as real OS processes (2 and 4 ranks)"
# The proc conduit's acceptance surface: the two flagship examples must run
# correctly with every rank a separate process (shm segments + Unix-domain
# sockets), at both a minimal and the canonical world size.
for n in 2 4; do
  UPCXX_CONDUIT=proc UPCXX_RANKS=$n UPCXX_PROC_TIMEOUT=120 \
    cargo run --release --example quickstart | sed 's/^/    /'
  UPCXX_CONDUIT=proc UPCXX_RANKS=$n UPCXX_PROC_TIMEOUT=120 \
    cargo run --release --example dht_kmer_count | sed 's/^/    /'
done

echo "==> metrics smoke: interval dump parses and counters are monotone"
# The always-on metrics layer's export surface: a quickstart run with a 1 ms
# dump interval must leave per-rank JSON + Prometheus + series files, the
# JSON must parse with nonzero traffic counters, and the series (one line
# per dump) must be monotone in every counter it records.
metrics_dir="$(mktemp -d /tmp/ci-metrics-XXXXXX)"
UPCXX_METRICS_DUMP=1 UPCXX_METRICS_DIR="$metrics_dir" \
  cargo run --release --example quickstart >/dev/null
python3 - "$metrics_dir" <<'EOF'
import glob, json, os, sys
d = sys.argv[1]
dumps = sorted(glob.glob(os.path.join(d, "metrics.*.json")))
assert dumps, "no metrics.<rank>.json dumps were written"
for path in dumps:
    doc = json.load(open(path))
    c = doc["counters"]
    assert c["rma_ops"] + c["rpcs"] > 0, f"{path}: no traffic recorded"
    assert c["progress_calls"] > 0, f"{path}: progress never counted"
    assert c["flight_recorded"] > 0, f"{path}: flight ring recorded nothing"
    assert doc["gauges"]["staging_used"] <= doc["gauges"]["staging_cap"] or \
        doc["gauges"]["staging_cap"] == 0, f"{path}: staging gauge inconsistent"
    prom = open(path.replace(".json", ".prom")).read()
    r = doc["rank"]
    assert f'upcxx_rma_ops_total{{rank="{r}"}}' in prom, f"{path}: prom missing counter"
    series = [json.loads(l) for l in open(path.replace(".json", ".series.jsonl"))]
    assert series, f"{path}: series file empty"
    for a, b in zip(series, series[1:]):
        for k in a:
            assert a[k] <= b[k], f"{path}: series counter {k} went backwards"
print(f"    metrics OK: {len(dumps)} rank dump(s), counters monotone across "
      f"{sum(len(open(p.replace('.json', '.series.jsonl')).readlines()) for p in dumps)} series points")
EOF
rm -rf "$metrics_dir"

echo "==> proc smoke: a crashed rank fails the launcher AND leaves a postmortem"
# Rank failure must be process failure: proc_crash's rank 1 panics and the
# launcher has to kill the survivors and exit non-zero. A zero exit here
# means a wedged world was silently reaped as success. The launcher must
# also harvest the dead rank's flight-recorder dump and print the merged
# postmortem timeline naming rank 1 before cleaning the world up.
crash_out="$(mktemp /tmp/ci-crash-XXXXXX.log)"
if UPCXX_CONDUIT=proc UPCXX_RANKS=4 UPCXX_PROC_TIMEOUT=120 \
    cargo run --release --example proc_crash >"$crash_out" 2>&1; then
  echo "ERROR: proc_crash exited 0 — rank failure was not propagated" >&2
  exit 1
fi
grep -q "upcxx postmortem" "$crash_out" || {
  echo "ERROR: proc_crash printed no postmortem timeline" >&2
  tail -20 "$crash_out" >&2
  exit 1
}
grep -q "first failed rank: rank 1" "$crash_out" || {
  echo "ERROR: postmortem did not name the failed rank" >&2
  grep -A5 "postmortem" "$crash_out" >&2
  exit 1
}
grep -q "rank 1's final recorded event" "$crash_out" || {
  echo "ERROR: postmortem has no final-event line for the dead rank" >&2
  exit 1
}
echo "    crash propagation OK (non-zero exit + postmortem names rank 1)"
rm -f "$crash_out"

echo "==> guard: the removed stats_*() shims stay removed"
# The deprecated free functions (stats_rpcs & friends) were deleted in favor
# of upcxx::runtime_stats(); no call or definition may reappear anywhere.
# crates/analyze is excluded: its deprecated-api rule table and fixtures
# *encode* this ban (and the analyzer gate above enforces it tree-wide).
if grep -rn --include='*.rs' -E '\bstats_(rma_ops|rpcs|agg_msgs|agg_batches)\b' \
    crates examples tests 2>/dev/null \
    | grep -v '^crates/analyze/'; then
  echo "ERROR: stats_*() shims resurfaced (use upcxx::runtime_stats())" >&2
  exit 1
fi

echo "CI OK"
