//! # gasnet — a GASNet-EX-like communication substrate
//!
//! The UPC++ runtime in the paper sits on GASNet-EX, which provides exactly
//! two data-movement primitives (§III): one-sided **RMA** (put/get into
//! remotely allocated shared segments) and **Active Messages** (run a handler
//! with a payload on a remote process). This crate reproduces that contract
//! with two interchangeable conduits:
//!
//! * [`smp`] — every rank is an OS thread inside one process; shared segments
//!   are real memory, puts are real one-sided `memcpy`s performed by the
//!   initiating thread, AMs travel through lock-protected inboxes and run on
//!   the target thread when it polls. This conduit is *real*: it exercises
//!   every runtime code path under true concurrency and real time, and backs
//!   the Criterion microbenchmarks, the examples and most tests.
//!
//! * [`sim`] — every rank is an actor on a [`pgas_des::Sim`] discrete-event
//!   loop under virtual time; communication costs come from a
//!   [`netsim::Machine`] (Aries-like model). This conduit reproduces the
//!   paper's *scale*: 34816-rank DHT weak scaling and 2048-rank extend-add
//!   runs execute on a laptop with faithful contention structure.
//!
//! Both conduits share the same vocabulary:
//!
//! * a **segment** per rank — a flat byte array remotely addressable by
//!   `(rank, offset)` pairs (the `upcxx` crate builds `GlobalPtr<T>` and its
//!   shared-heap allocator on top);
//! * an **item** ([`Item`]) — a boxed one-shot closure delivered to a rank and
//!   executed when that rank makes progress. The `upcxx` runtime encodes
//!   incoming RPCs, RPC replies, and operation-completion notifications as
//!   items, so *attentiveness* (the paper's term for a rank's obligation to
//!   call progress) behaves identically over both conduits.
//!
//! The substrate never interprets item contents and never spawns hidden
//! threads — progress happens only when a rank explicitly polls (smp) or when
//! the simulation delivers an arrival event (sim), mirroring the paper's
//! "no hidden threads" design principle. (The `upcxx` layer above may opt
//! into polling a rank's inbox from a dedicated progress thread; even then
//! the substrate itself spawns nothing and only sees serialized `poll`
//! calls — see the inbox's serialized-consumer contract in [`smp`].)

pub mod proc;
pub mod sim;
pub mod smp;

/// A PGAS process identifier, dense in `0..rank_n`.
pub type Rank = usize;

/// A unit of deliverable work: runs on the destination rank during progress.
///
/// Items must be `Send` because the smp conduit moves them across real
/// threads. Closures should capture only `Send` data (byte buffers, plain
/// values, rank/operation identifiers) and resolve any rank-local state
/// (promise tables, local maps) through the target rank's thread-local
/// context at execution time.
pub type Item = Box<dyn FnOnce() + Send>;

/// How a conduit accepts Active Messages ([`Conduit::am_mode`]).
///
/// In-process conduits move closures directly ([`AmMode::Items`]); the
/// process-per-rank conduit cannot ship a closure across an address-space
/// boundary, so the layer above serializes each AM into a self-describing
/// byte frame ([`AmMode::Frames`]) that the destination decodes and runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmMode {
    /// AMs are boxed closures executed verbatim on the target rank.
    Items,
    /// AMs are serialized byte frames; the target decodes them via the
    /// `sink` passed to [`Conduit::poll`].
    Frames,
}

/// One Active Message, in whichever representation the conduit accepts.
pub enum Am {
    /// A closure (conduits with [`AmMode::Items`]).
    Item(Item),
    /// A serialized frame (conduits with [`AmMode::Frames`]).
    Frame(Vec<u8>),
}

/// A batch of Active Messages delivered as one conduit-level entry.
pub enum Batch {
    /// Closures, delivered in order as a single inbox entry.
    Items(Vec<Item>),
    /// One pre-concatenated container frame holding every member.
    Frame(Vec<u8>),
}

/// A uniform snapshot of a conduit's internal queue occupancy, probed on
/// demand by the observability layer above ([`Conduit::depths`]). Every
/// conduit reports its inbox depth; fields a conduit has no equivalent of
/// stay 0 (an smp inbox has no socket backlog; sim executes deliveries at
/// their arrival event, so nothing ever waits in an inbox).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConduitDepths {
    /// Entries waiting in this rank's inbox (items/frames not yet polled).
    pub inbox: u64,
    /// Outbound bytes accepted but not yet flushed to the wire (proc: the
    /// sum of per-peer socket `pending` buffers).
    pub backlog_bytes: u64,
    /// Rendezvous-staging bytes currently in use (proc only).
    pub staging_used: u64,
    /// Rendezvous-staging capacity in bytes (proc only; 0 = no staging).
    pub staging_cap: u64,
    /// Sends that wanted the rendezvous path but fell back to eager wire
    /// framing because staging was exhausted (proc only).
    pub eager_fallbacks: u64,
}

/// The unified transport contract every gasnet conduit implements.
///
/// This is the GASNet-EX substrate surface the `upcxx` core dispatches
/// through: segment byte access + remote atomics (one-sided RMA), AM and
/// batched-AM injection, explicit polling, a world barrier, and rank
/// topology. The `smp` (thread-per-rank) and `proc` (process-per-rank)
/// conduits implement it directly; the `sim` conduit keeps its bespoke
/// virtual-time API because its callers cannot block. A fourth conduit
/// plugs in by implementing this trait — the core has no conduit-specific
/// branches beyond `Cond` vs `Sim`.
///
/// # Safety & contracts
///
/// * `seg_base(r)` must stay valid for the life of the handle, point at
///   `seg_size()` addressable bytes, and reference memory physically shared
///   with rank `r` (same mapping or same process).
/// * `put/get/fill` must be genuine one-sided byte copies — no remote CPU
///   involvement — and must panic on out-of-segment ranges.
/// * `send_am`/`send_am_batch` must preserve per-(sender, target) FIFO
///   order and must never execute AMs inline on the sending rank.
/// * `poll` executes/delivers at most `budget` entries (a batch counts as
///   one) and returns the number consumed. For [`AmMode::Frames`] conduits
///   each received frame is handed to `sink`; `Items` conduits run the
///   closures directly and ignore `sink`.
/// * `barrier` is a full-world rendezvous over all ranks of this conduit.
pub trait Conduit: Send + Sync {
    /// This rank's id, dense in `0..rank_n()`.
    fn rank_me(&self) -> Rank;
    /// World size.
    fn rank_n(&self) -> usize;
    /// Bytes in every rank's shared segment.
    fn seg_size(&self) -> usize;
    /// Whether this conduit moves AMs as closures or serialized frames.
    fn am_mode(&self) -> AmMode;
    /// Base address of `rank`'s segment as mapped in this address space.
    fn seg_base(&self, rank: Rank) -> *mut u8;
    /// One-sided write of `src` into `dst_rank`'s segment at `dst_off`.
    fn put_bytes(&self, dst_rank: Rank, dst_off: usize, src: &[u8]);
    /// One-sided read from `src_rank`'s segment at `src_off` into `dst`.
    fn get_bytes(&self, src_rank: Rank, src_off: usize, dst: &mut [u8]);
    /// One-sided memset of `len` bytes at `(rank, off)` to `byte`.
    fn fill_bytes(&self, rank: Rank, off: usize, len: usize, byte: u8);
    /// Sequentially-consistent remote fetch-add on an aligned u64.
    fn atomic_fetch_add_u64(&self, rank: Rank, off: usize, val: u64) -> u64;
    /// Sequentially-consistent remote load of an aligned u64.
    fn atomic_load_u64(&self, rank: Rank, off: usize) -> u64;
    /// Sequentially-consistent remote store of an aligned u64.
    fn atomic_store_u64(&self, rank: Rank, off: usize, val: u64);
    /// Sequentially-consistent remote compare-and-swap; returns the
    /// previous value.
    fn atomic_cas_u64(&self, rank: Rank, off: usize, expected: u64, new: u64) -> u64;
    /// Inject one AM toward `target` (FIFO per sender/target pair).
    fn send_am(&self, target: Rank, am: Am);
    /// Inject a pre-aggregated batch toward `target` as one entry.
    fn send_am_batch(&self, target: Rank, batch: Batch);
    /// Drain up to `budget` inbox entries; `sink` receives serialized
    /// frames on [`AmMode::Frames`] conduits. Returns entries consumed.
    fn poll(&self, budget: usize, sink: &mut dyn FnMut(Vec<u8>)) -> usize;
    /// Cheap hint: are entries waiting in this rank's inbox?
    fn inbox_nonempty(&self) -> bool;
    /// Number of entries currently queued for this rank.
    fn inbox_depth(&self) -> u64;
    /// Queue-occupancy probe for observability. The default covers any
    /// conduit whose only queue is its inbox; conduits with more internal
    /// buffering (proc: socket backlog, rendezvous staging) override it.
    fn depths(&self) -> ConduitDepths {
        ConduitDepths {
            inbox: self.inbox_depth(),
            ..ConduitDepths::default()
        }
    }
    /// Monotonic-ish wall clock in picoseconds since conduit start,
    /// comparable across ranks of one world.
    fn wall_ps(&self) -> u64;
    /// Full-world rendezvous: returns after every rank has entered.
    fn barrier(&self);
}

#[cfg(test)]
mod lib_tests {
    /// `Item` must stay an alias for a Send closure; this is a compile-time
    /// guarantee test.
    #[test]
    fn item_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<super::Item>();
    }
}
