//! # gasnet — a GASNet-EX-like communication substrate
//!
//! The UPC++ runtime in the paper sits on GASNet-EX, which provides exactly
//! two data-movement primitives (§III): one-sided **RMA** (put/get into
//! remotely allocated shared segments) and **Active Messages** (run a handler
//! with a payload on a remote process). This crate reproduces that contract
//! with two interchangeable conduits:
//!
//! * [`smp`] — every rank is an OS thread inside one process; shared segments
//!   are real memory, puts are real one-sided `memcpy`s performed by the
//!   initiating thread, AMs travel through lock-protected inboxes and run on
//!   the target thread when it polls. This conduit is *real*: it exercises
//!   every runtime code path under true concurrency and real time, and backs
//!   the Criterion microbenchmarks, the examples and most tests.
//!
//! * [`sim`] — every rank is an actor on a [`pgas_des::Sim`] discrete-event
//!   loop under virtual time; communication costs come from a
//!   [`netsim::Machine`] (Aries-like model). This conduit reproduces the
//!   paper's *scale*: 34816-rank DHT weak scaling and 2048-rank extend-add
//!   runs execute on a laptop with faithful contention structure.
//!
//! Both conduits share the same vocabulary:
//!
//! * a **segment** per rank — a flat byte array remotely addressable by
//!   `(rank, offset)` pairs (the `upcxx` crate builds `GlobalPtr<T>` and its
//!   shared-heap allocator on top);
//! * an **item** ([`Item`]) — a boxed one-shot closure delivered to a rank and
//!   executed when that rank makes progress. The `upcxx` runtime encodes
//!   incoming RPCs, RPC replies, and operation-completion notifications as
//!   items, so *attentiveness* (the paper's term for a rank's obligation to
//!   call progress) behaves identically over both conduits.
//!
//! The substrate never interprets item contents and never spawns hidden
//! threads — progress happens only when a rank explicitly polls (smp) or when
//! the simulation delivers an arrival event (sim), mirroring the paper's
//! "no hidden threads" design principle. (The `upcxx` layer above may opt
//! into polling a rank's inbox from a dedicated progress thread; even then
//! the substrate itself spawns nothing and only sees serialized `poll`
//! calls — see the inbox's serialized-consumer contract in [`smp`].)

pub mod sim;
pub mod smp;

/// A PGAS process identifier, dense in `0..rank_n`.
pub type Rank = usize;

/// A unit of deliverable work: runs on the destination rank during progress.
///
/// Items must be `Send` because the smp conduit moves them across real
/// threads. Closures should capture only `Send` data (byte buffers, plain
/// values, rank/operation identifiers) and resolve any rank-local state
/// (promise tables, local maps) through the target rank's thread-local
/// context at execution time.
pub type Item = Box<dyn FnOnce() + Send>;

#[cfg(test)]
mod lib_tests {
    /// `Item` must stay an alias for a Send closure; this is a compile-time
    /// guarantee test.
    #[test]
    fn item_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<super::Item>();
    }
}
