//! The **sim conduit**: every rank is an actor on a discrete-event simulator.
//!
//! The paper's headline scaling results use up to 34816 processes — far more
//! than one OS thread each on a laptop. This conduit multiplexes all ranks on
//! one thread under virtual time ([`pgas_des::SharedSim`]) and charges
//! communication costs through the Aries-like [`netsim::Machine`]:
//!
//! * software (CPU) costs — injection overheads, AM dispatch, handler
//!   execution, application compute — serialize on each rank's
//!   [`pgas_des::CpuClock`], so an inattentive rank (one busy computing)
//!   delays incoming RPC execution exactly as §III of the paper describes;
//! * wire costs — NIC gaps, per-byte time, latency, per-node injection
//!   contention — come from the network model.
//!
//! Rank programs are written in the continuation style (the `upcxx` crate's
//! futures/`then` chains); blocking `wait()` is a spin on progress and only
//! exists on the smp conduit. Segments are real memory here too: an `rput`
//! truly lands bytes in the target rank's segment at the modeled delivery
//! time, so large-scale simulations still check data correctness, not just
//! timing.
//!
//! ## Execution-time approximation
//!
//! A delivered item runs *at its delivery event* in simulator order, with its
//! CPU charges folded into the rank clock (`rank_now` reflects them). Two
//! items for the same rank can therefore execute in arrival order even when
//! the charged windows would interleave with other arrivals. This is the
//! standard activity-scan approximation; it preserves per-rank serialization
//! and all cross-rank causality (outgoing messages are stamped with the
//! post-charge clock).

use crate::Rank;
use netsim::{Machine, MachineConfig};
use pgas_des::{CpuClock, SharedSim, Time};
use std::cell::RefCell;
use std::rc::Rc;

/// A unit of work delivered to a simulated rank. Unlike the cross-thread
/// [`Item`], sim items never change threads, so they need not be `Send` —
/// drivers may capture the [`SimWorld`] handle directly. `Send` closures
/// coerce into this type, so runtime code shared with the smp conduit works
/// unchanged.
pub type LocalItem = Box<dyn FnOnce()>;

/// Wrapper installed by the `upcxx` runtime to establish the acting rank's
/// thread-local context around item execution.
pub type ExecWrapper = Rc<dyn Fn(Rank, LocalItem)>;

/// The atomic operations the simulated NIC can execute (the subset of the
/// Aries AMO set that the `upcxx` atomics domain exposes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AmoOp {
    /// Fetch the old value, add the operand.
    FetchAdd,
    /// Unconditionally store the operand (returns the old value).
    Store,
    /// Pure read.
    Load,
    /// Store the operand iff the current value equals `compare`.
    CompareExchange,
}

thread_local! {
    static CURRENT: RefCell<Option<(SimWorld, Rank)>> = const { RefCell::new(None) };
}

/// The world and rank whose item is currently executing on this thread, if
/// any. Items are `Send` closures and thus cannot capture the (`Rc`-based)
/// world handle; they reach back to the simulation through this accessor —
/// the same pattern the `upcxx` runtime uses to find its rank context.
pub fn current() -> Option<(SimWorld, Rank)> {
    CURRENT.with(|c| c.borrow().clone())
}

struct RankState {
    cpu: CpuClock,
    items_run: u64,
    /// Virtual time deliveries to this rank spent parked behind a busy CPU
    /// (the conduit-level cost of inattentiveness; the per-hop waits
    /// telescope to the true arrival-to-execution delay).
    deferred: Time,
}

struct Inner {
    machine: Machine,
    ranks: Vec<RankState>,
    exec: Option<ExecWrapper>,
}

struct WorldInner {
    sim: SharedSim,
    cfg: MachineConfig,
    seg_size: usize,
    segs: Vec<RefCell<Box<[u8]>>>,
    st: RefCell<Inner>,
}

/// A simulated PGAS world. Cloning the handle is cheap; all clones share the
/// same simulation. Single-threaded by construction (`!Send`).
#[derive(Clone)]
pub struct SimWorld(Rc<WorldInner>);

impl SimWorld {
    /// Create a world of `n_ranks` ranks on the given machine, each with a
    /// `seg_size`-byte shared segment.
    pub fn new(cfg: MachineConfig, n_ranks: usize, seg_size: usize) -> SimWorld {
        let machine = Machine::new(cfg.clone(), n_ranks);
        let cpu_factor = cfg.cpu_factor;
        SimWorld(Rc::new(WorldInner {
            sim: SharedSim::new(),
            cfg,
            seg_size,
            segs: (0..n_ranks)
                .map(|_| RefCell::new(vec![0u8; seg_size].into_boxed_slice()))
                .collect(),
            st: RefCell::new(Inner {
                machine,
                ranks: (0..n_ranks)
                    .map(|_| RankState {
                        cpu: CpuClock::new(cpu_factor),
                        items_run: 0,
                        deferred: Time::ZERO,
                    })
                    .collect(),
                exec: None,
            }),
        }))
    }

    /// World size.
    pub fn rank_n(&self) -> usize {
        self.0.segs.len()
    }
    /// Segment size per rank.
    pub fn seg_size(&self) -> usize {
        self.0.seg_size
    }
    /// The machine configuration (for software-cost constants).
    pub fn config(&self) -> &MachineConfig {
        &self.0.cfg
    }
    /// Current global virtual time.
    pub fn now(&self) -> Time {
        self.0.sim.now()
    }
    /// Total simulation events executed.
    pub fn events_executed(&self) -> u64 {
        self.0.sim.events_executed()
    }
    /// Messages routed by the network model so far.
    pub fn msg_count(&self) -> u64 {
        self.0.st.borrow().machine.msg_count()
    }
    /// Items executed by `rank` so far.
    pub fn items_run(&self, rank: Rank) -> u64 {
        self.0.st.borrow().ranks[rank].items_run
    }

    /// Install the execution wrapper (the `upcxx` runtime's context switch).
    pub fn set_exec_wrapper(&self, w: ExecWrapper) {
        self.0.st.borrow_mut().exec = Some(w);
    }

    /// `rank`'s local view of time: the later of global time and the moment
    /// its CPU becomes free. Outgoing operations are stamped with this.
    pub fn rank_now(&self, rank: Rank) -> Time {
        self.0.st.borrow().ranks[rank]
            .cpu
            .free_at()
            .max(self.0.sim.now())
    }

    /// Busy time accumulated by `rank`'s CPU.
    pub fn rank_busy(&self, rank: Rank) -> Time {
        self.0.st.borrow().ranks[rank].cpu.busy_total()
    }

    /// Total virtual time deliveries to `rank` spent waiting for its busy
    /// CPU before executing — the conduit's view of how much incoming work
    /// an inattentive rank delayed (§III).
    pub fn rank_deferred(&self, rank: Rank) -> Time {
        self.0.st.borrow().ranks[rank].deferred
    }

    /// Queue-occupancy probe matching [`crate::Conduit::depths`] so the
    /// observability layer reports all conduits uniformly. The sim conduit
    /// executes deliveries at their arrival events (inattentiveness is
    /// modeled as deferred *time*, [`Self::rank_deferred`], not queued
    /// entries), so every depth is legitimately zero.
    pub fn depths(&self, _rank: Rank) -> crate::ConduitDepths {
        crate::ConduitDepths::default()
    }

    /// Charge `cost` of CPU work to `rank` (scaled by the machine's CPU
    /// factor), starting no earlier than now. Returns the completion time.
    pub fn charge(&self, rank: Rank, cost: Time) -> Time {
        let now = self.0.sim.now();
        self.0.st.borrow_mut().ranks[rank].cpu.charge(now, cost)
    }

    /// Model application compute on `rank` (alias of [`charge`](Self::charge),
    /// named for driver readability).
    pub fn compute(&self, rank: Rank, cost: Time) -> Time {
        self.charge(rank, cost)
    }

    /// Schedule `item` to execute on `rank` at absolute time `at` (or when the
    /// rank's CPU frees up, whichever is later). Used to start rank drivers.
    pub fn spawn_at(&self, rank: Rank, at: Time, item: LocalItem) {
        let w = self.clone();
        self.0
            .sim
            .schedule_at(at, Box::new(move || w.deliver(rank, item, Time::ZERO)));
    }

    /// Read `len` bytes from `rank`'s segment at `off` (instantaneous; local
    /// accesses and handler-side accumulation use this).
    pub fn seg_read(&self, rank: Rank, off: usize, dst: &mut [u8]) {
        let seg = self.0.segs[rank].borrow();
        let end = off.checked_add(dst.len()).expect("offset overflow");
        assert!(end <= seg.len(), "seg_read out of bounds");
        dst.copy_from_slice(&seg[off..end]);
    }

    /// Write bytes into `rank`'s segment at `off` (instantaneous).
    pub fn seg_write(&self, rank: Rank, off: usize, src: &[u8]) {
        let mut seg = self.0.segs[rank].borrow_mut();
        let end = off.checked_add(src.len()).expect("offset overflow");
        assert!(end <= seg.len(), "seg_write out of bounds");
        seg[off..end].copy_from_slice(src);
    }

    /// Fill `len` bytes of `rank`'s segment at `off` with `byte`
    /// (instantaneous; the sanitizer's quarantine poisoning).
    pub fn seg_fill(&self, rank: Rank, off: usize, len: usize, byte: u8) {
        let mut seg = self.0.segs[rank].borrow_mut();
        let end = off.checked_add(len).expect("offset overflow");
        assert!(end <= seg.len(), "seg_fill out of bounds");
        seg[off..end].fill(byte);
    }

    /// Run a closure with mutable access to a window of `rank`'s segment
    /// (zero-copy accumulate for the extend-add motif).
    pub fn seg_with_mut<R>(
        &self,
        rank: Rank,
        off: usize,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> R {
        let mut seg = self.0.segs[rank].borrow_mut();
        let end = off.checked_add(len).expect("offset overflow");
        assert!(end <= seg.len(), "seg_with_mut out of bounds");
        f(&mut seg[off..end])
    }

    /// One-sided put from `src_rank`: lands `data` in `dst_rank`'s segment at
    /// the modeled delivery time; `on_done` runs on `src_rank` when the
    /// remote-completion acknowledgment returns (this is what a blocking
    /// `rput().wait()` observes). `o_inject` is the initiator software cost.
    pub fn put(
        &self,
        src_rank: Rank,
        dst_rank: Rank,
        dst_off: usize,
        data: Vec<u8>,
        o_inject: Time,
        on_done: LocalItem,
    ) {
        let (arrive, _txd) = {
            let mut st = self.0.st.borrow_mut();
            let now = self.0.sim.now();
            let ready = st.ranks[src_rank].cpu.charge(now, o_inject);
            let d = st.machine.transfer(src_rank, dst_rank, data.len(), ready);
            (d.arrive, d.tx_done)
        };
        let w = self.clone();
        self.0.sim.schedule_at(
            arrive,
            Box::new(move || {
                w.seg_write(dst_rank, dst_off, &data);
                // Remote completion ack back to the initiator (NIC-level).
                let ack_at = w.0.st.borrow_mut().machine.ack(dst_rank, src_rank, arrive);
                let w2 = w.clone();
                w.0.sim.schedule_at(
                    ack_at,
                    Box::new(move || w2.deliver(src_rank, on_done, Time::ZERO)),
                );
            }),
        );
    }

    /// One-sided get: `src_rank` requests `len` bytes at `src_off` from
    /// `target`; `on_done` runs on `src_rank` with the data when it arrives.
    /// Pure RDMA — no target CPU involvement.
    pub fn get(
        &self,
        src_rank: Rank,
        target: Rank,
        src_off: usize,
        len: usize,
        o_inject: Time,
        on_done: Box<dyn FnOnce(Vec<u8>)>,
    ) {
        let req_arrive = {
            let mut st = self.0.st.borrow_mut();
            let now = self.0.sim.now();
            let ready = st.ranks[src_rank].cpu.charge(now, o_inject);
            // 16-byte descriptor to the target NIC.
            st.machine.transfer(src_rank, target, 16, ready).arrive
        };
        let w = self.clone();
        self.0.sim.schedule_at(
            req_arrive,
            Box::new(move || {
                let mut data = vec![0u8; len];
                w.seg_read(target, src_off, &mut data);
                let back = {
                    let mut st = w.0.st.borrow_mut();
                    st.machine
                        .transfer(target, src_rank, len, req_arrive)
                        .arrive
                };
                let w2 = w.clone();
                w.0.sim.schedule_at(
                    back,
                    Box::new(move || {
                        w2.deliver(src_rank, Box::new(move || on_done(data)), Time::ZERO)
                    }),
                );
            }),
        );
    }

    /// Remote atomic on a `u64` in `target`'s segment (8-byte aligned `off`),
    /// modeling Aries NIC offload: the operation applies at the target NIC at
    /// delivery time with **no target CPU involvement** (the paper highlights
    /// this offload as the scalability win for remote atomics), and the prior
    /// value returns to the initiator, where `on_done` receives it.
    #[allow(clippy::too_many_arguments)] // mirrors the conduit AMO signature
    pub fn amo(
        &self,
        src_rank: Rank,
        target: Rank,
        off: usize,
        op: AmoOp,
        operand: u64,
        compare: u64,
        o_inject: Time,
        on_done: Box<dyn FnOnce(u64)>,
    ) {
        assert_eq!(off % 8, 0, "atomic offset must be 8-byte aligned");
        let arrive = {
            let mut st = self.0.st.borrow_mut();
            let now = self.0.sim.now();
            let ready = st.ranks[src_rank].cpu.charge(now, o_inject);
            // AMO rides a small command packet.
            st.machine.transfer(src_rank, target, 16, ready).arrive
        };
        let w = self.clone();
        self.0.sim.schedule_at(
            arrive,
            Box::new(move || {
                let mut word = [0u8; 8];
                w.seg_read(target, off, &mut word);
                let old = u64::from_le_bytes(word);
                let new = match op {
                    AmoOp::FetchAdd => old.wrapping_add(operand),
                    AmoOp::Store => operand,
                    AmoOp::Load => old,
                    AmoOp::CompareExchange => {
                        if old == compare {
                            operand
                        } else {
                            old
                        }
                    }
                };
                w.seg_write(target, off, &new.to_le_bytes());
                // Result returns as a NIC-level reply.
                let back = w.0.st.borrow_mut().machine.ack(target, src_rank, arrive);
                let w2 = w.clone();
                w.0.sim.schedule_at(
                    back,
                    Box::new(move || {
                        w2.deliver(src_rank, Box::new(move || on_done(old)), Time::ZERO)
                    }),
                );
            }),
        );
    }

    /// Active message: run `item` on `target` after a modeled transfer of
    /// `payload_bytes`. `o_inject` is the initiator software cost;
    /// the dispatch cost at the target comes from the machine config.
    pub fn am(
        &self,
        src_rank: Rank,
        target: Rank,
        payload_bytes: usize,
        o_inject: Time,
        item: LocalItem,
    ) {
        let arrive = {
            let mut st = self.0.st.borrow_mut();
            let now = self.0.sim.now();
            let ready = st.ranks[src_rank].cpu.charge(now, o_inject);
            st.machine
                .transfer(src_rank, target, payload_bytes, ready)
                .arrive
        };
        let dispatch = self.0.cfg.sw.gex_am_dispatch;
        let w = self.clone();
        self.0
            .sim
            .schedule_at(arrive, Box::new(move || w.deliver(target, item, dispatch)));
    }

    /// Aggregated active-message batch: run `items` back-to-back, in order,
    /// on `target` after **one** modeled transfer of `payload_bytes` (the
    /// whole batch pays a single NIC injection gap and per-byte cost) and a
    /// single dispatch charge at the target. `o_inject` is charged once on
    /// the source CPU. This is the sim transport of the `upcxx` aggregation
    /// layer; the per-message gap and dispatch amortization is exactly what
    /// it models. The batch counts as one delivered item in `items_run`.
    pub fn am_batch(
        &self,
        src_rank: Rank,
        target: Rank,
        payload_bytes: usize,
        o_inject: Time,
        items: Vec<LocalItem>,
    ) {
        let arrive = {
            let mut st = self.0.st.borrow_mut();
            let now = self.0.sim.now();
            let ready = st.ranks[src_rank].cpu.charge(now, o_inject);
            st.machine
                .transfer(src_rank, target, payload_bytes, ready)
                .arrive
        };
        let dispatch = self.0.cfg.sw.gex_am_dispatch;
        let w = self.clone();
        let combined: LocalItem = Box::new(move || {
            for item in items {
                item();
            }
        });
        self.0.sim.schedule_at(
            arrive,
            Box::new(move || w.deliver(target, combined, dispatch)),
        );
    }

    /// Schedule `item` to run on `rank` after a virtual delay (a pure
    /// timer: models pipelined internal latencies such as an MPI progress
    /// hop; charges no CPU by itself).
    pub fn after(&self, rank: Rank, delay: Time, item: LocalItem) {
        let w = self.clone();
        self.0
            .sim
            .schedule_after(delay, Box::new(move || w.deliver(rank, item, Time::ZERO)));
    }

    /// Run all scheduled activity to quiescence; returns final virtual time.
    pub fn run(&self) -> Time {
        self.0.sim.run()
    }

    /// Run until `deadline` (events beyond it stay queued).
    pub fn run_until(&self, deadline: Time) -> Time {
        self.0.sim.run_until(deadline)
    }

    /// Execute `item` on `rank`: if the rank's CPU is busy (computing, or
    /// still working through earlier deliveries), defer to the moment it
    /// frees — this is the paper's *attentiveness*: an inattentive rank
    /// executes incoming work late, and every timestamp observed inside the
    /// item reflects that. When the CPU is free, charge the dispatch cost
    /// and run under the exec wrapper (so the `upcxx` context is installed)
    /// with [`current`] pointing at this world and rank.
    fn deliver(&self, rank: Rank, item: LocalItem, dispatch_cost: Time) {
        let free_at = self.0.st.borrow().ranks[rank].cpu.free_at();
        let now = self.0.sim.now();
        if free_at > now {
            // Account the wait: successive hops telescope to the full
            // arrival-to-execution delay this delivery experienced.
            {
                let mut st = self.0.st.borrow_mut();
                let d = st.ranks[rank].deferred;
                st.ranks[rank].deferred = d + free_at.saturating_sub(now);
            }
            let w = self.clone();
            self.0.sim.schedule_at(
                free_at,
                Box::new(move || w.deliver(rank, item, dispatch_cost)),
            );
            return;
        }
        let exec = {
            let mut st = self.0.st.borrow_mut();
            st.ranks[rank].cpu.charge(now, dispatch_cost);
            st.ranks[rank].items_run += 1;
            st.exec.clone()
        };
        let prev = CURRENT.with(|c| c.borrow_mut().replace((self.clone(), rank)));
        match exec {
            Some(w) => w(rank, item),
            None => item(),
        }
        CURRENT.with(|c| *c.borrow_mut() = prev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    fn world(n: usize) -> SimWorld {
        SimWorld::new(MachineConfig::test_2x4(), n, 1 << 16)
    }

    /// Virtual "now" observed from inside an item (items are Send and reach
    /// the world through the thread-local accessor).
    fn now_ps() -> u64 {
        let (w, _) = current().expect("not inside an item");
        w.now().as_ps()
    }

    #[test]
    fn put_lands_data_and_completes() {
        let w = world(8);
        let done_at = Arc::new(AtomicU64::new(0));
        let d = done_at.clone();
        let w2 = w.clone();
        w.spawn_at(
            0,
            Time::ZERO,
            Box::new(move || {
                let d2 = d.clone();
                w2.put(
                    0,
                    4, // other node in test_2x4
                    64,
                    vec![7u8; 32],
                    Time::from_ns(100),
                    Box::new(move || d2.store(now_ps(), Ordering::SeqCst)),
                );
            }),
        );
        w.run();
        let mut out = vec![0u8; 32];
        w.seg_read(4, 64, &mut out);
        assert_eq!(out, vec![7u8; 32]);
        // Completion requires inject + transfer + ack; must exceed 2x latency.
        let done = Time::from_ps(done_at.load(Ordering::SeqCst));
        assert!(done > Time::from_ns(2000), "done at {done}");
    }

    #[test]
    fn intra_node_put_is_faster_than_inter_node() {
        let timed_put = |dst: Rank| {
            let w = world(8);
            let t = Arc::new(AtomicU64::new(0));
            let t2 = t.clone();
            let w2 = w.clone();
            w.spawn_at(
                0,
                Time::ZERO,
                Box::new(move || {
                    let t3 = t2.clone();
                    w2.put(
                        0,
                        dst,
                        0,
                        vec![1u8; 8],
                        Time::from_ns(100),
                        Box::new(move || t3.store(now_ps(), Ordering::SeqCst)),
                    );
                }),
            );
            w.run();
            t.load(Ordering::SeqCst)
        };
        assert!(timed_put(1) < timed_put(4));
    }

    #[test]
    fn get_returns_remote_bytes() {
        let w = world(8);
        w.seg_write(5, 100, &[9, 8, 7, 6]);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = got.clone();
        let w2 = w.clone();
        w.spawn_at(
            0,
            Time::ZERO,
            Box::new(move || {
                let g2 = g.clone();
                w2.get(
                    0,
                    5,
                    100,
                    4,
                    Time::from_ns(100),
                    Box::new(move |data| *g2.lock().unwrap() = data),
                );
            }),
        );
        w.run();
        assert_eq!(*got.lock().unwrap(), vec![9, 8, 7, 6]);
    }

    #[test]
    fn am_runs_on_target_with_dispatch_cost() {
        let w = world(8);
        let ran = Arc::new(AtomicBool::new(false));
        let r = ran.clone();
        let w2 = w.clone();
        w.spawn_at(
            0,
            Time::ZERO,
            Box::new(move || {
                let r2 = r.clone();
                w2.am(
                    0,
                    4,
                    64,
                    Time::from_ns(200),
                    Box::new(move || {
                        let (_, rank) = current().unwrap();
                        assert_eq!(rank, 4);
                        r2.store(true, Ordering::SeqCst);
                    }),
                );
            }),
        );
        w.run();
        assert!(ran.load(Ordering::SeqCst));
        assert_eq!(w.items_run(4), 1);
        assert!(w.rank_busy(4) >= w.config().sw.gex_am_dispatch);
    }

    #[test]
    fn busy_rank_delays_item_execution() {
        // Attentiveness: rank 4 computes for 1ms; an AM arriving meanwhile
        // must not run until the compute window ends.
        let w = world(8);
        let exec_time = Arc::new(AtomicU64::new(0));
        {
            let w2 = w.clone();
            w.spawn_at(
                4,
                Time::ZERO,
                Box::new(move || {
                    w2.compute(4, Time::from_ms(1));
                }),
            );
        }
        {
            let w2 = w.clone();
            let et = exec_time.clone();
            w.spawn_at(
                0,
                Time::ZERO,
                Box::new(move || {
                    let et2 = et.clone();
                    w2.am(
                        0,
                        4,
                        8,
                        Time::from_ns(100),
                        Box::new(move || {
                            let (world, rank) = current().unwrap();
                            et2.store(world.rank_now(rank).as_ps(), Ordering::SeqCst);
                        }),
                    );
                }),
            );
        }
        w.run();
        let t = Time::from_ps(exec_time.load(Ordering::SeqCst));
        assert!(
            t >= Time::from_ms(1),
            "AM ran at {t} during the compute window"
        );
    }

    #[test]
    fn injections_serialize_on_source_cpu() {
        // Two puts issued back-to-back: completion of the second reflects the
        // serialized injection overheads.
        let w = world(8);
        let t1 = Arc::new(AtomicU64::new(0));
        let t2 = Arc::new(AtomicU64::new(0));
        let (a, b) = (t1.clone(), t2.clone());
        let w2 = w.clone();
        w.spawn_at(
            0,
            Time::ZERO,
            Box::new(move || {
                let a2 = a.clone();
                w2.put(
                    0,
                    4,
                    0,
                    vec![0; 8],
                    Time::from_us(1),
                    Box::new(move || a2.store(now_ps(), Ordering::SeqCst)),
                );
                let b2 = b.clone();
                w2.put(
                    0,
                    4,
                    8,
                    vec![0; 8],
                    Time::from_us(1),
                    Box::new(move || b2.store(now_ps(), Ordering::SeqCst)),
                );
            }),
        );
        w.run();
        let (ta, tb) = (
            Time::from_ps(t1.load(Ordering::SeqCst)),
            Time::from_ps(t2.load(Ordering::SeqCst)),
        );
        assert!(
            tb >= ta + Time::from_us(1) - Time::from_ns(1),
            "ta={ta} tb={tb}"
        );
    }

    #[test]
    fn exec_wrapper_sees_every_item() {
        let w = world(4);
        let wrapped = Arc::new(AtomicU64::new(0));
        let wr = wrapped.clone();
        w.set_exec_wrapper(Rc::new(move |_rank, item| {
            wr.fetch_add(1, Ordering::SeqCst);
            item();
        }));
        let w2 = w.clone();
        w.spawn_at(
            0,
            Time::ZERO,
            Box::new(move || {
                w2.am(0, 1, 8, Time::ZERO, Box::new(|| {}));
            }),
        );
        w.run();
        // Both the spawned driver and the delivered AM go through the wrapper.
        assert_eq!(wrapped.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn knl_charges_scale_with_cpu_factor() {
        let w = SimWorld::new(MachineConfig::cori_knl(), 4, 1 << 12);
        w.charge(0, Time::from_ns(100));
        assert_eq!(w.rank_busy(0), Time::from_ns(280));
    }

    #[test]
    fn deterministic_final_time() {
        let run_once = || {
            let w = world(8);
            for r in 0..8 {
                let w2 = w.clone();
                w.spawn_at(
                    r,
                    Time::ZERO,
                    Box::new(move || {
                        for i in 0..20usize {
                            let dst = (r + i) % 8;
                            w2.put(
                                r,
                                dst,
                                i * 8,
                                vec![r as u8; 8],
                                Time::from_ns(150),
                                Box::new(|| {}),
                            );
                        }
                    }),
                );
            }
            w.run()
        };
        assert_eq!(run_once(), run_once());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn seg_write_bounds_checked() {
        let w = world(2);
        w.seg_write(0, (1 << 16) - 4, &[0u8; 8]);
    }

    #[test]
    fn current_is_scoped_to_item_execution() {
        assert!(current().is_none());
        let w = world(2);
        let w2 = w.clone();
        w.spawn_at(
            1,
            Time::ZERO,
            Box::new(move || {
                let (world, rank) = current().expect("inside an item");
                assert_eq!(rank, 1);
                assert_eq!(world.rank_n(), 2);
                let _ = w2.rank_n();
            }),
        );
        w.run();
        assert!(current().is_none());
    }
}
