//! # proc conduit — one OS **process** per rank (shm + Unix sockets)
//!
//! This is the conduit that escapes the single-address-space box: every rank
//! is a real process, so a crash is isolated, the scheduler sees real
//! processes, and nothing shares a heap. It makes the same substitution the
//! paper's GASNet-EX makes — RMA and Active Messages over real transports:
//!
//! * **Segments are mmap'd files.** The launcher pre-sizes one file per rank
//!   in a bootstrap directory; every rank maps *all* of them `MAP_SHARED`.
//!   An intra-node `rput`/`rget` is therefore still a genuine one-sided
//!   `memcpy` into the target's segment — no remote CPU, no message — and
//!   remote atomics are real CPU atomics on shared pages.
//! * **AMs travel over Unix-domain sockets** as serialized frames
//!   ([`crate::AmMode::Frames`]) built by the layer above. Small frames go
//!   **eager** — inline on the stream. Frames larger than
//!   [`ProcConfig::eager_max`] go **rendezvous**: the sender stages the
//!   frame in its own shm *staging region* (the `rv_size` tail of its
//!   segment file) and sends only a tiny descriptor; the receiver pulls the
//!   payload one-sidedly through shm and acks so the slot can be reused.
//!   If the staging region is momentarily full the sender falls back to the
//!   eager path (sockets have no size limit), so the conduit never blocks
//!   on its own flow control.
//!
//! ## Bootstrap handshake
//!
//! The parent (launcher) never becomes a rank. It creates
//! `$TMPDIR/upcxx-proc-<pid>-<world>/` containing `seg.<r>` (segment +
//! staging, pre-sized) and `ctrl` (barrier generation/count + world
//! counters), then fork/execs the current binary N times with
//! `UPCXX_PROC_{DIR,RANK,N,SEG,RV,EAGER_MAX,EPOCH_NS,WORLD}` in the
//! environment. Each child maps the files, binds a listener at `sock.<r>`,
//! and enters a ctrl-region barrier; once all N arrive, every listener
//! exists and ranks may connect lazily on first send. Teardown reverses it:
//! flush outstanding socket bytes, ctrl barrier, `exit(0)`. The parent
//! reaps children and **propagates the first non-zero exit** (killing the
//! stragglers) by panicking — rank failure is process failure, visible.
//!
//! ## Wire format (per stream message)
//!
//! `[len: u32][op: u8][payload: len-1 bytes]`, little-endian, with ops:
//! `0` = eager AM frame (payload is the frame), `1` = rendezvous descriptor
//! `[sender: u32][off: u64][len: u64]`, `2` = rendezvous ack
//! `[off: u64][len: u64]`. One stream per (sender, receiver) pair keeps
//! per-pair FIFO; rendezvous pulls happen synchronously at parse time so
//! ordering survives the indirection.
//!
//! The only unsafe syscall surface (raw `mmap`/`munmap` via `asm!` — the
//! workspace is dependency-free, and `std` exposes no mapping API) lives in
//! this file, which `scripts/lint.sh` enforces.

use crate::{Am, AmMode, Batch, Conduit, Rank};
use std::collections::VecDeque;
use std::fs;
use std::io::{ErrorKind, Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Signature of the crash-forensics hook in [`ProcConfig::postmortem`]:
/// `(bootstrap_dir, rank_n, failed_rank)` → a report to print, or `None`
/// when there is nothing to say (no dump files found).
pub type PostmortemFn = fn(&Path, usize, usize) -> Option<String>;

/// Knobs for a proc-conduit world (the `upcxx` layer fills these from its
/// typed `Config`).
#[derive(Clone, Debug)]
pub struct ProcConfig {
    /// Remotely addressable bytes per rank (same meaning as smp).
    pub seg_size: usize,
    /// Bytes of rendezvous staging appended to each rank's segment file.
    pub rv_size: usize,
    /// Largest frame sent inline on the socket; larger frames rendezvous.
    pub eager_max: usize,
    /// Crash-forensics hook: when a rank fails, the launcher calls this with
    /// `(bootstrap_dir, n, failed_rank)` *before* removing the directory
    /// (`failed_rank == usize::MAX` = the world timed out) and prints the
    /// returned report to stderr. The `upcxx` layer installs its
    /// flight-recorder harvest here; the conduit itself never interprets the
    /// dump files — it only owns their lifetime.
    pub postmortem: Option<PostmortemFn>,
}

impl Default for ProcConfig {
    fn default() -> Self {
        ProcConfig {
            seg_size: 8 << 20,
            rv_size: 4 << 20,
            eager_max: 4096,
            postmortem: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Raw mmap (the workspace has no libc; std has no mapping API).
// ---------------------------------------------------------------------------

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_mmap_shared(len: usize, fd: i32) -> *mut u8 {
    const SYS_MMAP: isize = 9;
    const PROT_READ_WRITE: usize = 0x3;
    const MAP_SHARED: usize = 0x1;
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MMAP => ret,
        in("rdi") 0usize,
        in("rsi") len,
        in("rdx") PROT_READ_WRITE,
        in("r10") MAP_SHARED,
        in("r8") fd,
        in("r9") 0usize,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    assert!(
        !(-4095..=-1).contains(&ret),
        "mmap(len={len}, fd={fd}) failed: errno {}",
        -ret
    );
    ret as *mut u8
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
unsafe fn sys_munmap(addr: *mut u8, len: usize) {
    const SYS_MUNMAP: isize = 11;
    let ret: isize;
    std::arch::asm!(
        "syscall",
        inlateout("rax") SYS_MUNMAP => ret,
        in("rdi") addr,
        in("rsi") len,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    debug_assert_eq!(ret, 0, "munmap failed: errno {}", -ret);
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
unsafe fn sys_mmap_shared(_len: usize, _fd: i32) -> *mut u8 {
    panic!("the proc conduit requires x86_64 linux (raw mmap syscall)")
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
unsafe fn sys_munmap(_addr: *mut u8, _len: usize) {}

/// A `MAP_SHARED` file mapping, unmapped on drop.
struct Mapping {
    base: *mut u8,
    len: usize,
}

// SAFETY: the mapping is plain shared memory with a stable address for the
// life of the value; cross-thread access discipline is the segment contract
// (same as smp's `Segment`), cross-process access goes through atomics or
// explicitly synchronized byte ranges.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    fn of_file(path: &Path, len: usize) -> Mapping {
        let file = fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .unwrap_or_else(|e| panic!("proc bootstrap: open {}: {e}", path.display()));
        let base = unsafe { sys_mmap_shared(len, file.as_raw_fd()) };
        Mapping { base, len }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        unsafe { sys_munmap(self.base, self.len) };
    }
}

// ctrl-file layout (offsets of AtomicU64 cells).
const CTRL_BAR_COUNT: usize = 0;
const CTRL_BAR_GEN: usize = 8;
const CTRL_AM_SENT: usize = 16;
const CTRL_ITEMS_RUN: usize = 24;
const CTRL_BATCHES: usize = 32;
const CTRL_LEN: usize = 4096;

// Stream message ops.
const OP_EAGER: u8 = 0;
const OP_RV_PUT: u8 = 1;
const OP_RV_ACK: u8 = 2;
const MSG_HDR: usize = 4; // u32 length prefix (length counts op + payload)

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn get_u32(b: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(b[at..at + 4].try_into().unwrap())
}
fn get_u64(b: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(b[at..at + 8].try_into().unwrap())
}

/// One lazily-established outgoing stream plus its unflushed tail. Writes
/// are never blocking: what the kernel refuses lands in `pending` and is
/// retried on every poll, so AM injection cannot deadlock two mutually
/// sending ranks.
struct OutConn {
    stream: UnixStream,
    pending: VecDeque<u8>,
}

/// An accepted incoming stream and its partial-message read buffer.
struct InConn {
    stream: UnixStream,
    buf: Vec<u8>,
    closed: bool,
}

/// First-fit extent allocator over this rank's rendezvous staging region.
struct RvAlloc {
    free: Vec<(usize, usize)>, // (off, len), sorted by off, coalesced
}

impl RvAlloc {
    fn new(size: usize) -> RvAlloc {
        RvAlloc {
            free: if size > 0 {
                vec![(0, size)]
            } else {
                Vec::new()
            },
        }
    }
    fn alloc(&mut self, len: usize) -> Option<usize> {
        let i = self.free.iter().position(|&(_, flen)| flen >= len)?;
        let (off, flen) = self.free[i];
        if flen == len {
            self.free.remove(i);
        } else {
            self.free[i] = (off + len, flen - len);
        }
        Some(off)
    }
    fn free(&mut self, off: usize, len: usize) {
        let i = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(i, (off, len));
        // Coalesce with right then left neighbor.
        if i + 1 < self.free.len() && self.free[i].0 + self.free[i].1 == self.free[i + 1].0 {
            self.free[i].1 += self.free[i + 1].1;
            self.free.remove(i + 1);
        }
        if i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == self.free[i].0 {
            self.free[i - 1].1 += self.free[i].1;
            self.free.remove(i);
        }
    }
}

/// Mutable networking state, serialized under one lock. The lock is never
/// held while executing delivered frames (poll drains into a local vec
/// first), so AM handlers can re-enter the conduit freely.
struct Net {
    dir: PathBuf,
    listener: UnixListener,
    out: Vec<Option<OutConn>>,
    inbound: Vec<InConn>,
    rxq: VecDeque<Vec<u8>>,
    rv: RvAlloc,
}

/// This process's handle on a proc-conduit world (implements [`Conduit`]).
pub struct ProcHandle {
    me: Rank,
    n: usize,
    seg_size: usize,
    rv_size: usize,
    eager_max: usize,
    /// `segs[r]` maps rank r's `seg.<r>` file: `seg_size` addressable bytes
    /// followed by `rv_size` bytes of r's rendezvous staging.
    segs: Vec<Mapping>,
    ctrl: Mapping,
    epoch_ns: u64,
    net: Mutex<Net>,
    /// Sends that wanted the rendezvous path but found staging exhausted and
    /// fell back to eager wire framing (surfaced through [`Conduit::depths`]).
    eager_fallbacks: AtomicU64,
}

impl ProcHandle {
    fn ctrl_atomic(&self, off: usize) -> &AtomicU64 {
        debug_assert!(off + 8 <= CTRL_LEN);
        // SAFETY: in-bounds, 8-aligned fixed offsets into a shared mapping;
        // all processes access these words through AtomicU64 only.
        unsafe { &*(self.ctrl.base.add(off) as *const AtomicU64) }
    }

    fn seg_atomic(&self, rank: Rank, off: usize) -> &AtomicU64 {
        assert!(off + 8 <= self.seg_size, "atomic out of segment bounds");
        assert_eq!(off % 8, 0, "atomic offset must be 8-byte aligned");
        // SAFETY: in-bounds, aligned; cross-process accesses to this word
        // all go through AtomicU64 on MAP_SHARED pages.
        unsafe { &*(self.segs[rank].base.add(off) as *const AtomicU64) }
    }

    fn check_range(&self, rank: Rank, off: usize, len: usize) {
        let end = off.checked_add(len).expect("segment range overflow");
        assert!(
            rank < self.n && end <= self.seg_size,
            "segment access out of bounds: rank {rank} off {off} len {len} (seg {})",
            self.seg_size
        );
    }

    /// Append one `[len][op][payload...]` message toward `target`,
    /// connecting lazily, then opportunistically flush.
    fn enqueue_msg(net: &mut Net, target: Rank, op: u8, parts: &[&[u8]]) {
        if net.out[target].is_none() {
            let path = net.dir.join(format!("sock.{target}"));
            let stream = UnixStream::connect(&path)
                .unwrap_or_else(|e| panic!("proc: connect to rank {target}: {e}"));
            stream.set_nonblocking(true).expect("set_nonblocking");
            net.out[target] = Some(OutConn {
                stream,
                pending: VecDeque::new(),
            });
        }
        let conn = net.out[target].as_mut().unwrap();
        let total: usize = 1 + parts.iter().map(|p| p.len()).sum::<usize>();
        let mut hdr = Vec::with_capacity(MSG_HDR + 1);
        put_u32(&mut hdr, total as u32);
        hdr.push(op);
        conn.pending.extend(hdr);
        for p in parts {
            conn.pending.extend(p.iter().copied());
        }
        Self::flush_conn(conn);
    }

    fn flush_conn(conn: &mut OutConn) {
        while !conn.pending.is_empty() {
            let (head, _) = conn.pending.as_slices();
            match conn.stream.write(head) {
                Ok(0) => break,
                Ok(k) => {
                    conn.pending.drain(..k);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => panic!("proc: socket write: {e}"),
            }
        }
    }

    /// Service the sockets under the net lock: flush pending writes, accept
    /// new peers, read and parse inbound messages (rendezvous descriptors
    /// are resolved — shm pull + ack — inline, preserving stream order).
    fn pump(&self, net: &mut Net) {
        for conn in net.out.iter_mut().flatten() {
            Self::flush_conn(conn);
        }
        loop {
            match net.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(true).expect("set_nonblocking");
                    net.inbound.push(InConn {
                        stream,
                        buf: Vec::new(),
                        closed: false,
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("proc: accept: {e}"),
            }
        }
        let mut chunk = [0u8; 16 << 10];
        // Index-based loop: parsing an OP_RV_PUT enqueues an ack via
        // `net.out`, so the inbound list cannot be mutably iterated.
        for i in 0..net.inbound.len() {
            loop {
                match net.inbound[i].stream.read(&mut chunk) {
                    Ok(0) => {
                        net.inbound[i].closed = true;
                        break;
                    }
                    Ok(k) => net.inbound[i].buf.extend_from_slice(&chunk[..k]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(e) if e.kind() == ErrorKind::ConnectionReset => {
                        net.inbound[i].closed = true;
                        break;
                    }
                    Err(e) => panic!("proc: socket read: {e}"),
                }
            }
            let mut at = 0usize;
            while net.inbound[i].buf.len() >= at + MSG_HDR {
                let mlen = get_u32(&net.inbound[i].buf, at) as usize;
                if net.inbound[i].buf.len() < at + MSG_HDR + mlen {
                    break;
                }
                let op = net.inbound[i].buf[at + MSG_HDR];
                let body_at = at + MSG_HDR + 1;
                let body_len = mlen - 1;
                match op {
                    OP_EAGER => {
                        let frame = net.inbound[i].buf[body_at..body_at + body_len].to_vec();
                        net.rxq.push_back(frame);
                    }
                    OP_RV_PUT => {
                        let sender = get_u32(&net.inbound[i].buf, body_at) as usize;
                        let off = get_u64(&net.inbound[i].buf, body_at + 4) as usize;
                        let len = get_u64(&net.inbound[i].buf, body_at + 12) as usize;
                        assert!(
                            sender < self.n && off + len <= self.rv_size,
                            "proc: bad rendezvous descriptor"
                        );
                        let mut frame = vec![0u8; len];
                        // SAFETY: the sender staged `len` bytes at `off` in
                        // its own staging region (tail of its mapped file)
                        // and will not reuse the slot until our ack.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                self.segs[sender].base.add(self.seg_size + off),
                                frame.as_mut_ptr(),
                                len,
                            );
                        }
                        net.rxq.push_back(frame);
                        let mut ack = Vec::with_capacity(16);
                        put_u64(&mut ack, off as u64);
                        put_u64(&mut ack, len as u64);
                        Self::enqueue_msg(net, sender, OP_RV_ACK, &[&ack]);
                    }
                    OP_RV_ACK => {
                        let off = get_u64(&net.inbound[i].buf, body_at) as usize;
                        let len = get_u64(&net.inbound[i].buf, body_at + 8) as usize;
                        net.rv.free(off, len);
                    }
                    other => panic!("proc: unknown wire op {other}"),
                }
                at += MSG_HDR + mlen;
            }
            if at > 0 {
                net.inbound[i].buf.drain(..at);
            }
        }
        net.inbound.retain(|c| !c.closed || !c.buf.is_empty());
    }

    /// Ship one serialized frame to `target`: loopback directly, eager
    /// inline when small, rendezvous through shm staging when large (with
    /// eager fallback if staging is full — never blocks).
    fn send_frame(&self, target: Rank, frame: Vec<u8>) {
        assert!(target < self.n, "send to rank {target} of {}", self.n);
        self.ctrl_atomic(CTRL_AM_SENT)
            .fetch_add(1, Ordering::Relaxed);
        let mut net = self.net.lock().unwrap();
        if target == self.me {
            net.rxq.push_back(frame);
            return;
        }
        if frame.len() <= self.eager_max {
            Self::enqueue_msg(&mut net, target, OP_EAGER, &[&frame]);
            return;
        }
        match net.rv.alloc(frame.len()) {
            Some(off) => {
                // SAFETY: `off..off+len` was just reserved in our own
                // staging region; peers only read it after the descriptor.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        frame.as_ptr(),
                        self.segs[self.me].base.add(self.seg_size + off),
                        frame.len(),
                    );
                }
                let mut desc = Vec::with_capacity(20);
                put_u32(&mut desc, self.me as u32);
                put_u64(&mut desc, off as u64);
                put_u64(&mut desc, frame.len() as u64);
                Self::enqueue_msg(&mut net, target, OP_RV_PUT, &[&desc]);
            }
            None => {
                self.eager_fallbacks.fetch_add(1, Ordering::Relaxed);
                Self::enqueue_msg(&mut net, target, OP_EAGER, &[&frame]);
            }
        }
    }

    /// True once every outgoing byte has been handed to the kernel.
    fn out_drained(&self) -> bool {
        let mut net = self.net.lock().unwrap();
        self.pump(&mut net);
        net.out.iter().flatten().all(|c| c.pending.is_empty())
    }

    fn ctrl_barrier(&self) {
        let count = self.ctrl_atomic(CTRL_BAR_COUNT);
        let gen = self.ctrl_atomic(CTRL_BAR_GEN);
        let g = gen.load(Ordering::Acquire);
        if count.fetch_add(1, Ordering::AcqRel) + 1 == self.n as u64 {
            count.store(0, Ordering::Release);
            gen.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while gen.load(Ordering::Acquire) == g {
                spins = spins.saturating_add(1);
                if spins > 1000 {
                    std::thread::sleep(Duration::from_micros(50));
                } else if spins > 64 {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Teardown rendezvous: like [`Self::ctrl_barrier`] but keeps servicing
    /// the sockets while waiting, so a slower peer whose send buffer toward
    /// us filled up can always finish flushing (we drain our receive side).
    fn teardown_barrier(&self) {
        let count = self.ctrl_atomic(CTRL_BAR_COUNT);
        let gen = self.ctrl_atomic(CTRL_BAR_GEN);
        let g = gen.load(Ordering::Acquire);
        if count.fetch_add(1, Ordering::AcqRel) + 1 == self.n as u64 {
            count.store(0, Ordering::Release);
            gen.fetch_add(1, Ordering::Release);
        } else {
            while gen.load(Ordering::Acquire) == g {
                {
                    let mut net = self.net.lock().unwrap();
                    self.pump(&mut net);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
}

impl Conduit for ProcHandle {
    fn rank_me(&self) -> Rank {
        self.me
    }
    fn rank_n(&self) -> usize {
        self.n
    }
    fn seg_size(&self) -> usize {
        self.seg_size
    }
    fn am_mode(&self) -> AmMode {
        AmMode::Frames
    }
    fn seg_base(&self, rank: Rank) -> *mut u8 {
        assert!(rank < self.n);
        self.segs[rank].base
    }
    fn put_bytes(&self, dst_rank: Rank, dst_off: usize, src: &[u8]) {
        self.check_range(dst_rank, dst_off, src.len());
        // SAFETY: range checked; MAP_SHARED pages are valid for the world's
        // lifetime and the caller owns synchronization (PGAS contract).
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.segs[dst_rank].base.add(dst_off),
                src.len(),
            );
        }
    }
    fn get_bytes(&self, src_rank: Rank, src_off: usize, dst: &mut [u8]) {
        self.check_range(src_rank, src_off, dst.len());
        // SAFETY: as in put_bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.segs[src_rank].base.add(src_off),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
    }
    fn fill_bytes(&self, rank: Rank, off: usize, len: usize, byte: u8) {
        self.check_range(rank, off, len);
        // SAFETY: as in put_bytes.
        unsafe {
            std::ptr::write_bytes(self.segs[rank].base.add(off), byte, len);
        }
    }
    fn atomic_fetch_add_u64(&self, rank: Rank, off: usize, val: u64) -> u64 {
        self.seg_atomic(rank, off).fetch_add(val, Ordering::AcqRel)
    }
    fn atomic_load_u64(&self, rank: Rank, off: usize) -> u64 {
        self.seg_atomic(rank, off).load(Ordering::Acquire)
    }
    fn atomic_store_u64(&self, rank: Rank, off: usize, val: u64) {
        self.seg_atomic(rank, off).store(val, Ordering::Release)
    }
    fn atomic_cas_u64(&self, rank: Rank, off: usize, expected: u64, new: u64) -> u64 {
        match self.seg_atomic(rank, off).compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(v) => v,
            Err(v) => v,
        }
    }
    fn send_am(&self, target: Rank, am: Am) {
        match am {
            Am::Frame(frame) => self.send_frame(target, frame),
            Am::Item(_) => unreachable!("proc is a cross-process conduit; AMs travel as frames"),
        }
    }
    fn send_am_batch(&self, target: Rank, batch: Batch) {
        self.ctrl_atomic(CTRL_BATCHES)
            .fetch_add(1, Ordering::Relaxed);
        match batch {
            Batch::Frame(frame) => self.send_frame(target, frame),
            Batch::Items(_) => {
                unreachable!("proc is a cross-process conduit; AMs travel as frames")
            }
        }
    }
    fn poll(&self, budget: usize, sink: &mut dyn FnMut(Vec<u8>)) -> usize {
        let frames: Vec<Vec<u8>> = {
            let mut net = self.net.lock().unwrap();
            self.pump(&mut net);
            let k = budget.min(net.rxq.len());
            net.rxq.drain(..k).collect()
        };
        let ran = frames.len();
        // Lock released: frames may re-enter the conduit (replies, acks).
        for f in frames {
            sink(f);
        }
        if ran > 0 {
            self.ctrl_atomic(CTRL_ITEMS_RUN)
                .fetch_add(ran as u64, Ordering::Relaxed);
        }
        ran
    }
    fn inbox_nonempty(&self) -> bool {
        !self.net.lock().unwrap().rxq.is_empty()
    }
    fn inbox_depth(&self) -> u64 {
        self.net.lock().unwrap().rxq.len() as u64
    }
    fn depths(&self) -> crate::ConduitDepths {
        let net = self.net.lock().unwrap();
        let free: usize = net.rv.free.iter().map(|&(_, len)| len).sum();
        crate::ConduitDepths {
            inbox: net.rxq.len() as u64,
            backlog_bytes: net
                .out
                .iter()
                .flatten()
                .map(|c| c.pending.len() as u64)
                .sum(),
            staging_used: (self.rv_size - free) as u64,
            staging_cap: self.rv_size as u64,
            eager_fallbacks: self.eager_fallbacks.load(Ordering::Relaxed),
        }
    }
    fn wall_ps(&self) -> u64 {
        let now = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        now.saturating_sub(self.epoch_ns).saturating_mul(1000)
    }
    fn barrier(&self) {
        self.ctrl_barrier()
    }
}

// ---------------------------------------------------------------------------
// Launcher
// ---------------------------------------------------------------------------

fn env_usize(key: &str) -> usize {
    std::env::var(key)
        .unwrap_or_else(|_| panic!("proc child: missing {key}"))
        .parse()
        .unwrap_or_else(|_| panic!("proc child: bad {key}"))
}

/// Worlds launched (parent) or encountered (child) by this process, so a
/// re-exec'd child can skip `launch` calls that belong to earlier worlds
/// and join exactly the one it was spawned for.
static WORLD_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Choose the argv a re-exec'd rank needs to reach the same `launch` call.
/// Example/bin mains run on the main thread: replay our own argv. Under
/// the libtest harness the test body runs on a thread named after the
/// test: re-run exactly that one test, serially.
fn child_args() -> Vec<String> {
    match std::thread::current().name() {
        None | Some("main") => std::env::args().skip(1).collect(),
        Some(test_name) => vec![
            test_name.to_string(),
            "--exact".to_string(),
            "--test-threads=1".to_string(),
            "-q".to_string(),
        ],
    }
}

/// Run an SPMD world of `n` ranks, **one OS process each**.
///
/// In the launching process this fork/execs the current binary `n` times
/// and blocks until every rank exits; `f` is **not** called (the launcher
/// is not a rank), and the first non-zero child exit is propagated as a
/// panic after killing the remaining ranks. In a spawned rank process this
/// joins the world, runs `f` with the rank's handle, tears the conduit
/// down collectively, and **exits the process** — code after `launch` in a
/// rank never runs. Consequence: assertions about world results belong
/// *inside* `f` (each rank), not after `launch`.
pub fn launch<F>(n: usize, cfg: ProcConfig, f: F)
where
    F: FnOnce(Arc<ProcHandle>),
{
    assert!(n > 0, "world needs at least one rank");
    let world = WORLD_COUNTER.fetch_add(1, Ordering::SeqCst);
    match std::env::var("UPCXX_PROC_RANK") {
        Ok(rank) => {
            let target_world: u64 = env_usize("UPCXX_PROC_WORLD") as u64;
            if world < target_world {
                // An earlier world in this binary's control flow: it ran in
                // a previous set of processes. Skip it; our world is ahead.
                return;
            }
            assert_eq!(
                world, target_world,
                "proc child overran its target world (launch calls diverged from parent)"
            );
            child_main(rank.parse().expect("bad UPCXX_PROC_RANK"), f);
        }
        Err(_) => parent_main(n, cfg, world),
    }
}

fn child_main<F>(me: Rank, f: F) -> !
where
    F: FnOnce(Arc<ProcHandle>),
{
    let dir = PathBuf::from(std::env::var("UPCXX_PROC_DIR").expect("missing UPCXX_PROC_DIR"));
    let n = env_usize("UPCXX_PROC_N");
    let seg_size = env_usize("UPCXX_PROC_SEG");
    let rv_size = env_usize("UPCXX_PROC_RV");
    let eager_max = env_usize("UPCXX_PROC_EAGER_MAX");
    let epoch_ns = env_usize("UPCXX_PROC_EPOCH_NS") as u64;
    assert!(me < n, "rank {me} out of range (n={n})");

    let segs: Vec<Mapping> = (0..n)
        .map(|r| Mapping::of_file(&dir.join(format!("seg.{r}")), seg_size + rv_size))
        .collect();
    let ctrl = Mapping::of_file(&dir.join("ctrl"), CTRL_LEN);

    let sock_path = dir.join(format!("sock.{me}"));
    let listener = UnixListener::bind(&sock_path)
        .unwrap_or_else(|e| panic!("proc rank {me}: bind {}: {e}", sock_path.display()));
    listener.set_nonblocking(true).expect("set_nonblocking");

    let h = Arc::new(ProcHandle {
        me,
        n,
        seg_size,
        rv_size,
        eager_max,
        segs,
        ctrl,
        epoch_ns,
        net: Mutex::new(Net {
            dir,
            listener,
            out: (0..n).map(|_| None).collect(),
            inbound: Vec::new(),
            rxq: VecDeque::new(),
            rv: RvAlloc::new(rv_size),
        }),
        eager_fallbacks: AtomicU64::new(0),
    });

    // Startup rendezvous: after this, every rank's listener exists and
    // lazy connects cannot race a missing socket file.
    h.ctrl_barrier();

    f(h.clone());

    // Collective teardown. The layer above has already run its own
    // world barrier inside `f`, so remaining traffic is conduit-internal
    // (rendezvous acks, late flushes). Hand every outgoing byte to the
    // kernel — pumping reads throughout, so no peer can wedge on a full
    // buffer — then rendezvous once more before dying.
    while !h.out_drained() {
        std::thread::sleep(Duration::from_micros(100));
    }
    h.teardown_barrier();
    let _ = std::io::stdout().flush();
    let _ = std::io::stderr().flush();
    std::process::exit(0);
}

fn parent_main(n: usize, cfg: ProcConfig, world: u64) {
    let dir = std::env::temp_dir().join(format!("upcxx-proc-{}-{world}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap_or_else(|e| panic!("proc: mkdir {}: {e}", dir.display()));
    for r in 0..n {
        let file = fs::File::create(dir.join(format!("seg.{r}")))
            .unwrap_or_else(|e| panic!("proc: create seg.{r}: {e}"));
        file.set_len((cfg.seg_size + cfg.rv_size) as u64)
            .expect("proc: size segment file");
    }
    fs::File::create(dir.join("ctrl"))
        .expect("proc: create ctrl")
        .set_len(CTRL_LEN as u64)
        .expect("proc: size ctrl");

    let exe = std::env::current_exe().expect("proc: current_exe");
    let args = child_args();
    let epoch_ns = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_nanos() as u64;
    let mut children: Vec<Child> = (0..n)
        .map(|r| {
            Command::new(&exe)
                .args(&args)
                .env("UPCXX_PROC_DIR", &dir)
                .env("UPCXX_PROC_RANK", r.to_string())
                .env("UPCXX_PROC_N", n.to_string())
                .env("UPCXX_PROC_SEG", cfg.seg_size.to_string())
                .env("UPCXX_PROC_RV", cfg.rv_size.to_string())
                .env("UPCXX_PROC_EAGER_MAX", cfg.eager_max.to_string())
                .env("UPCXX_PROC_EPOCH_NS", epoch_ns.to_string())
                .env("UPCXX_PROC_WORLD", world.to_string())
                .env("UPCXX_CONDUIT", "proc")
                .spawn()
                .unwrap_or_else(|e| panic!("proc: spawn rank {r}: {e}"))
        })
        .collect();

    let timeout_s: u64 = std::env::var("UPCXX_PROC_TIMEOUT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(300);
    let deadline = Instant::now() + Duration::from_secs(timeout_s);
    let mut done = vec![false; n];
    let mut failure: Option<(usize, i32)> = None;
    'wait: while !done.iter().all(|&d| d) {
        for (r, child) in children.iter_mut().enumerate() {
            if done[r] {
                continue;
            }
            match child.try_wait() {
                Ok(Some(status)) => {
                    done[r] = true;
                    let code = status.code().unwrap_or(-1);
                    if code != 0 {
                        failure = Some((r, code));
                        break 'wait;
                    }
                }
                Ok(None) => {}
                Err(e) => panic!("proc: wait on rank {r}: {e}"),
            }
        }
        if timeout_s > 0 && Instant::now() > deadline {
            failure = Some((usize::MAX, -1));
            break 'wait;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    if let Some((r, code)) = failure {
        for (k, child) in children.iter_mut().enumerate() {
            if !done[k] {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        // Harvest crash dumps (flight recorders, metrics) from the bootstrap
        // dir while it still exists; the hook renders, we only print.
        if let Some(report) = cfg.postmortem.and_then(|pm| pm(&dir, n, r)) {
            eprintln!("{report}");
        }
        let _ = fs::remove_dir_all(&dir);
        if r == usize::MAX {
            panic!("proc world {world}: timed out after {timeout_s}s waiting for ranks");
        }
        panic!("proc world {world}: rank {r} exited with code {code}");
    }
    let _ = fs::remove_dir_all(&dir);
}
