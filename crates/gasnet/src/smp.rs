//! The **smp conduit**: one OS thread per rank inside a single process.
//!
//! This is the "real" conduit. Shared segments are genuine memory; an
//! [`RankHandle::put_bytes`] is a true one-sided copy performed by the
//! initiating thread with no target involvement (exactly the RDMA semantics
//! GASNet-EX exposes on Aries); active messages travel through lock-free
//! MPSC inboxes and execute on the target thread only when it polls — so the
//! paper's *attentiveness* requirement (§III) is physically real here: a rank
//! that stops polling stops executing incoming RPCs.
//!
//! # Memory model and safety
//!
//! PGAS semantics place shared-segment bytes outside Rust's aliasing
//! guarantees: any rank may read or write any segment at any time, and
//! synchronization is the *application's* job (the paper says the same of
//! UPC++ global pointers — "references made via global pointers may be
//! subject to race conditions"). We therefore treat segment memory the way an
//! RDMA NIC does: raw bytes accessed through `unsafe` copies that are
//! bounds-checked (so runtime state can never be corrupted) but not
//! race-checked. The public `upcxx` crate documents the synchronization
//! contract; all tests and examples synchronize through futures/RPC replies
//! like real UPC++ programs do.

use crate::{Am, AmMode, Batch, Item, Rank};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One inbox entry: a single deliverable item, or a pre-batched run of
/// items shipped by the aggregation layer as one conduit message (the batch
/// vector rides the queue directly — no wrapping closure, no double box).
enum Entry {
    One(Item),
    Batch(Vec<Item>),
}

/// A node of the lock-free push list.
struct Node {
    entry: Entry,
    next: *mut Node,
}

/// An MPSC inbox of deliverable items: many ranks push, the owner pops from
/// its own inbox during progress. Lock-free with std atomics only (the
/// workspace is hermetic): producers push onto a Treiber-style LIFO list
/// with one CAS; the single consumer takes the whole list with one `swap`
/// and reverses it into a private FIFO stash. The stash refills **only when
/// empty** — entries still on the shared list are always newer than
/// everything stashed, so arrival order per producer is preserved. The
/// atomic length keeps emptiness probes O(1) and lets the drain return
/// without touching the contended head in the common empty case; like the
/// previous mutex design it is a racy hint, never a synchronization point.
struct Inbox {
    head: AtomicPtr<Node>,
    len: AtomicU64,
    /// Consumer-private reversal stash — the *serialized-consumer* contract
    /// of [`Inbox::pop_n`]: at most one thread may be draining this inbox at
    /// a time, and consecutive drains from different threads must be ordered
    /// by a happens-before edge. `RankHandle::poll` only drains `self.me`'s
    /// inbox; when a layer above polls the same rank from a second thread
    /// (the `upcxx` runtime's opt-in progress thread does), that layer must
    /// hold its per-rank serialization lock around `poll`, which provides
    /// both the mutual exclusion and the ordering the stash needs.
    stash: UnsafeCell<Vec<Entry>>,
}

// SAFETY: `head` and `len` are atomics; `stash` is accessed only under the
// serialized-consumer contract above (one draining thread at a time, drains
// ordered by the caller's lock when threads alternate). List nodes are
// heap allocations handed off through the atomic head with Release/Acquire
// pairing, so the consumer sees fully-written nodes.
unsafe impl Send for Inbox {}
unsafe impl Sync for Inbox {}

impl Inbox {
    fn new() -> Inbox {
        Inbox {
            head: AtomicPtr::new(std::ptr::null_mut()),
            len: AtomicU64::new(0),
            stash: UnsafeCell::new(Vec::new()),
        }
    }

    /// Producer side: push one entry (any thread, no lock).
    fn push(&self, entry: Entry) {
        let node = Box::into_raw(Box::new(Node {
            entry,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => head = cur,
            }
        }
        self.len.fetch_add(1, Ordering::Release);
    }

    /// Consumer side: ensure the stash holds entries, swapping the shared
    /// list out and reversing it if the stash ran dry. Returns whether any
    /// entries are available.
    ///
    /// # Safety
    /// Single-consumer only, and no reference into the stash may be live.
    unsafe fn refill(&self) -> bool {
        let stash = unsafe { &mut *self.stash.get() };
        if !stash.is_empty() {
            return true;
        }
        let mut node = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        // The taken list is newest-first; pushing in list order leaves the
        // oldest entry at the stash's tail, so `Vec::pop` yields FIFO.
        while !node.is_null() {
            // SAFETY: nodes reached from the swapped-out head are
            // exclusively ours; each was boxed exactly once in `push`.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            stash.push(boxed.entry);
        }
        !stash.is_empty()
    }

    /// Pop up to `max` entries in arrival order into `out`; returns how many
    /// were taken. One refill (a single atomic swap) amortizes the whole
    /// batch — this is [`RankHandle::poll`]'s drain, replacing a lock
    /// round-trip per item. Single consumer: the owning rank's thread only.
    fn pop_n(&self, out: &mut Vec<Entry>, max: usize) -> usize {
        if max == 0 || self.len.load(Ordering::Acquire) == 0 {
            return 0;
        }
        // SAFETY: called only from the owner's thread (see `poll`); the
        // stash borrow inside `refill` ends before it returns.
        if !unsafe { self.refill() } {
            return 0;
        }
        // SAFETY: same single-consumer contract; `refill`'s borrow is dead.
        let stash = unsafe { &mut *self.stash.get() };
        let take = max.min(stash.len());
        for _ in 0..take {
            out.push(stash.pop().expect("stash underflow"));
        }
        self.len.fetch_sub(take as u64, Ordering::Release);
        take
    }

    fn is_empty(&self) -> bool {
        self.len.load(Ordering::Acquire) == 0
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        // Free whatever never got polled (a world can tear down with
        // traffic still queued once every rank main has returned).
        let mut node = *self.head.get_mut();
        while !node.is_null() {
            // SAFETY: exclusive access in Drop; each node boxed once.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
        }
    }
}

/// Configuration for an smp world.
#[derive(Clone, Debug)]
pub struct SmpConfig {
    /// Size in bytes of each rank's shared segment.
    pub seg_size: usize,
}

impl Default for SmpConfig {
    fn default() -> Self {
        SmpConfig {
            seg_size: 8 << 20, // 8 MiB per rank
        }
    }
}

/// One rank's shared segment: a fixed, heap-allocated byte region addressable
/// by every thread in the world.
struct Segment {
    base: *mut u8,
    len: usize,
}

// SAFETY: the segment is a plain byte region with a stable address for the
// world's lifetime. Cross-thread access is performed only through the
// bounds-checked raw copies below; torn reads/writes under application-level
// races affect only application bytes, never the runtime's own structures.
unsafe impl Send for Segment {}
unsafe impl Sync for Segment {}

impl Segment {
    fn new(len: usize) -> Segment {
        let mut v = vec![0u8; len].into_boxed_slice();
        let base = v.as_mut_ptr();
        std::mem::forget(v);
        Segment { base, len }
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        // SAFETY: reconstructing exactly what `new` forgot.
        unsafe {
            drop(Box::from_raw(std::ptr::slice_from_raw_parts_mut(
                self.base, self.len,
            )));
        }
    }
}

struct Shared {
    n: usize,
    seg_size: usize,
    segments: Vec<Segment>,
    inboxes: Vec<Inbox>,
    am_sent: AtomicU64,
    items_run: AtomicU64,
    batches_sent: AtomicU64,
    /// Generation-counting central barrier (see [`RankHandle::barrier`]):
    /// `bar_count` counts arrivals in the current episode, `bar_gen` is
    /// bumped by the last arrival to release the waiters. No per-rank sense
    /// flag is needed — waiters spin on the generation they read on entry.
    bar_count: AtomicU64,
    bar_gen: AtomicU64,
    /// The world's common clock epoch, captured in [`launch`] **before** any
    /// rank thread spawns. Every rank's trace clock ([`RankHandle::wall_ps`])
    /// measures against this one instant, so per-rank timelines from one
    /// world are mutually comparable (and worlds launched sequentially in one
    /// process each restart at zero instead of inheriting a process-global
    /// epoch).
    epoch: Instant,
}

/// A per-rank handle to the smp world: the conduit endpoint the `upcxx`
/// runtime talks to. Cloneable; all clones refer to the same world.
#[derive(Clone)]
pub struct RankHandle {
    sh: Arc<Shared>,
    me: Rank,
}

impl RankHandle {
    /// This rank's id.
    #[inline]
    pub fn rank_me(&self) -> Rank {
        self.me
    }
    /// World size.
    #[inline]
    pub fn rank_n(&self) -> usize {
        self.sh.n
    }
    /// Size of every rank's shared segment.
    #[inline]
    pub fn seg_size(&self) -> usize {
        self.sh.seg_size
    }
    /// Total active messages sent across the world so far.
    pub fn am_sent_total(&self) -> u64 {
        self.sh.am_sent.load(Ordering::Relaxed)
    }
    /// Total items executed across the world so far.
    pub fn items_run_total(&self) -> u64 {
        self.sh.items_run.load(Ordering::Relaxed)
    }
    /// Total aggregated batches sent across the world so far.
    pub fn batches_sent_total(&self) -> u64 {
        self.sh.batches_sent.load(Ordering::Relaxed)
    }

    /// Base pointer of `rank`'s segment. The smp conduit has a flat address
    /// space, so "downcasting" a global address to a local pointer — which the
    /// paper allows only on the owning process — is also how the initiating
    /// thread implements one-sided transfers.
    #[inline]
    pub fn seg_base(&self, rank: Rank) -> *mut u8 {
        self.sh.segments[rank].base
    }

    /// One-sided put: copy `src` into `dst_rank`'s segment at `dst_off`.
    /// Bounds-checked; completes synchronously (shared memory).
    ///
    /// Application-level data races on the destination bytes are the caller's
    /// responsibility (PGAS contract, see module docs).
    pub fn put_bytes(&self, dst_rank: Rank, dst_off: usize, src: &[u8]) {
        let seg = &self.sh.segments[dst_rank];
        assert!(
            dst_off
                .checked_add(src.len())
                .is_some_and(|end| end <= seg.len),
            "put out of segment bounds: off={dst_off} len={} seg={}",
            src.len(),
            seg.len
        );
        // SAFETY: range checked above; segment memory is valid for the world's
        // lifetime; src is a live borrow and cannot overlap the destination
        // unless the caller aliased the segment, which the bounds make local.
        unsafe {
            std::ptr::copy_nonoverlapping(src.as_ptr(), seg.base.add(dst_off), src.len());
        }
    }

    /// One-sided get: copy from `src_rank`'s segment at `src_off` into `dst`.
    pub fn get_bytes(&self, src_rank: Rank, src_off: usize, dst: &mut [u8]) {
        let seg = &self.sh.segments[src_rank];
        assert!(
            src_off
                .checked_add(dst.len())
                .is_some_and(|end| end <= seg.len),
            "get out of segment bounds: off={src_off} len={} seg={}",
            dst.len(),
            seg.len
        );
        // SAFETY: as in put_bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(seg.base.add(src_off), dst.as_mut_ptr(), dst.len());
        }
    }

    /// Fill `len` bytes of `rank`'s segment at `off` with `byte` (the
    /// sanitizer's quarantine poisoning). Bounds-checked.
    pub fn fill_bytes(&self, rank: Rank, off: usize, len: usize, byte: u8) {
        let seg = &self.sh.segments[rank];
        assert!(
            off.checked_add(len).is_some_and(|end| end <= seg.len),
            "fill out of segment bounds: off={off} len={len} seg={}",
            seg.len
        );
        // SAFETY: range checked above; segment memory is valid for the
        // world's lifetime.
        unsafe {
            std::ptr::write_bytes(seg.base.add(off), byte, len);
        }
    }

    /// Atomically fetch-add a `u64` stored at `off` in `rank`'s segment.
    /// Backs the `upcxx` remote-atomics domain on this conduit: Aries would
    /// offload this to the NIC; shared memory lets us use a real CPU atomic.
    /// `off` must be 8-byte aligned.
    pub fn atomic_fetch_add_u64(&self, rank: Rank, off: usize, val: u64) -> u64 {
        let a = self.atomic_at(rank, off);
        a.fetch_add(val, Ordering::AcqRel)
    }

    /// Atomic load of a `u64` in a remote segment (8-byte aligned offset).
    pub fn atomic_load_u64(&self, rank: Rank, off: usize) -> u64 {
        self.atomic_at(rank, off).load(Ordering::Acquire)
    }

    /// Atomic store of a `u64` in a remote segment (8-byte aligned offset).
    pub fn atomic_store_u64(&self, rank: Rank, off: usize, val: u64) {
        self.atomic_at(rank, off).store(val, Ordering::Release)
    }

    /// Atomic compare-exchange of a `u64` in a remote segment. Returns the
    /// previous value (success iff it equals `expected`).
    pub fn atomic_cas_u64(&self, rank: Rank, off: usize, expected: u64, new: u64) -> u64 {
        match self.atomic_at(rank, off).compare_exchange(
            expected,
            new,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(v) => v,
            Err(v) => v,
        }
    }

    fn atomic_at(&self, rank: Rank, off: usize) -> &AtomicU64 {
        let seg = &self.sh.segments[rank];
        assert!(off + 8 <= seg.len, "atomic out of segment bounds");
        assert_eq!(off % 8, 0, "atomic offset must be 8-byte aligned");
        // SAFETY: in-bounds, aligned, and AtomicU64 accesses never tear; all
        // cross-rank accesses to this word go through the same atomic type.
        unsafe { &*(seg.base.add(off) as *const AtomicU64) }
    }

    /// Deliver an item to `target`'s inbox. It runs when the target polls.
    pub fn send_item(&self, target: Rank, item: Item) {
        self.sh.am_sent.fetch_add(1, Ordering::Relaxed);
        self.sh.inboxes[target].push(Entry::One(item));
    }

    /// Deliver a batch of items to `target` as **one** inbox entry: a single
    /// queue push no matter how many payloads ride along; the items run
    /// back-to-back, in order, when the target polls. This is the
    /// aggregation layer's transport — the smp analogue of a single wire
    /// message. The batch vector travels as-is (a dedicated entry variant),
    /// not re-boxed inside a trampoline closure.
    pub fn send_batch(&self, target: Rank, items: Vec<Item>) {
        self.sh.am_sent.fetch_add(1, Ordering::Relaxed);
        self.sh.batches_sent.fetch_add(1, Ordering::Relaxed);
        self.sh.inboxes[target].push(Entry::Batch(items));
    }

    /// Execute up to `budget` pending inbox entries from *this rank's*
    /// inbox (a batch counts as one entry, as it is one conduit message).
    /// Returns the number executed. This is the conduit half of progress;
    /// the `upcxx` runtime calls it from `progress()` — and, when the
    /// opt-in progress thread is enabled, from that thread too, holding the
    /// runtime's per-rank engine lock so the inbox's serialized-consumer
    /// contract holds across both threads.
    ///
    /// Entries are drained in one batched `pop_n` and then executed in
    /// arrival order. Runtime-made items never re-enter `poll` (they park
    /// their effects in the progress engine's completion queue), so the
    /// drained prefix cannot be overtaken by a nested drain.
    pub fn poll(&self, budget: usize) -> usize {
        let q = &self.sh.inboxes[self.me];
        if q.is_empty() {
            return 0;
        }
        let mut drained: Vec<Entry> = Vec::new();
        let ran = q.pop_n(&mut drained, budget);
        if ran == 0 {
            return 0;
        }
        for entry in drained {
            match entry {
                Entry::One(item) => item(),
                Entry::Batch(items) => {
                    for item in items {
                        item();
                    }
                }
            }
        }
        self.sh.items_run.fetch_add(ran as u64, Ordering::Relaxed);
        ran
    }

    /// Whether this rank's inbox currently has pending items (racy hint).
    pub fn inbox_nonempty(&self) -> bool {
        !self.sh.inboxes[self.me].is_empty()
    }

    /// Number of items currently waiting in this rank's inbox (racy gauge;
    /// the conduit-backlog figure surfaced by `upcxx::runtime_stats`).
    pub fn inbox_depth(&self) -> u64 {
        self.sh.inboxes[self.me].len.load(Ordering::Acquire)
    }

    /// Wall-clock picoseconds since this **world's** launch epoch — the smp
    /// conduit's trace clock. All ranks of one world share the epoch
    /// (captured before any rank thread starts), so timestamps recorded on
    /// different ranks merge into one monotone, causally ordered timeline:
    /// a send's stamp precedes the matching delivery's stamp because both
    /// derive from the same monotonic `Instant`.
    pub fn wall_ps(&self) -> u64 {
        (self.sh.epoch.elapsed().as_nanos() as u64).saturating_mul(1000)
    }

    /// Conduit-level world barrier: generation-counting central barrier over
    /// the shared handle. This is the transport primitive behind
    /// [`crate::Conduit::barrier`]; the `upcxx` layer's user-facing barrier
    /// is a dissemination collective over AMs and does not use it.
    pub fn barrier(&self) {
        let gen = self.sh.bar_gen.load(Ordering::Acquire);
        if self.sh.bar_count.fetch_add(1, Ordering::AcqRel) + 1 == self.sh.n as u64 {
            self.sh.bar_count.store(0, Ordering::Release);
            self.sh.bar_gen.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sh.bar_gen.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins > 64 {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The unified-transport view of an smp rank: closures move verbatim
/// ([`AmMode::Items`]), so `poll` executes entries itself and the frame
/// `sink` is never fed.
impl crate::Conduit for RankHandle {
    fn rank_me(&self) -> Rank {
        self.me
    }
    fn rank_n(&self) -> usize {
        self.sh.n
    }
    fn seg_size(&self) -> usize {
        RankHandle::seg_size(self)
    }
    fn am_mode(&self) -> AmMode {
        AmMode::Items
    }
    fn seg_base(&self, rank: Rank) -> *mut u8 {
        RankHandle::seg_base(self, rank)
    }
    fn put_bytes(&self, dst_rank: Rank, dst_off: usize, src: &[u8]) {
        RankHandle::put_bytes(self, dst_rank, dst_off, src)
    }
    fn get_bytes(&self, src_rank: Rank, src_off: usize, dst: &mut [u8]) {
        RankHandle::get_bytes(self, src_rank, src_off, dst)
    }
    fn fill_bytes(&self, rank: Rank, off: usize, len: usize, byte: u8) {
        RankHandle::fill_bytes(self, rank, off, len, byte)
    }
    fn atomic_fetch_add_u64(&self, rank: Rank, off: usize, val: u64) -> u64 {
        RankHandle::atomic_fetch_add_u64(self, rank, off, val)
    }
    fn atomic_load_u64(&self, rank: Rank, off: usize) -> u64 {
        RankHandle::atomic_load_u64(self, rank, off)
    }
    fn atomic_store_u64(&self, rank: Rank, off: usize, val: u64) {
        RankHandle::atomic_store_u64(self, rank, off, val)
    }
    fn atomic_cas_u64(&self, rank: Rank, off: usize, expected: u64, new: u64) -> u64 {
        RankHandle::atomic_cas_u64(self, rank, off, expected, new)
    }
    fn send_am(&self, target: Rank, am: Am) {
        match am {
            Am::Item(item) => self.send_item(target, item),
            Am::Frame(_) => unreachable!("smp is an in-process conduit; AMs travel as items"),
        }
    }
    fn send_am_batch(&self, target: Rank, batch: Batch) {
        match batch {
            Batch::Items(items) => self.send_batch(target, items),
            Batch::Frame(_) => unreachable!("smp is an in-process conduit; AMs travel as items"),
        }
    }
    fn poll(&self, budget: usize, _sink: &mut dyn FnMut(Vec<u8>)) -> usize {
        RankHandle::poll(self, budget)
    }
    fn inbox_nonempty(&self) -> bool {
        RankHandle::inbox_nonempty(self)
    }
    fn inbox_depth(&self) -> u64 {
        RankHandle::inbox_depth(self)
    }
    fn wall_ps(&self) -> u64 {
        RankHandle::wall_ps(self)
    }
    fn barrier(&self) {
        RankHandle::barrier(self)
    }
}

/// Run an SPMD world of `n` ranks, one OS thread each. `f` is the rank main;
/// it receives that rank's conduit handle. Returns when every rank main has
/// returned. A panic on any rank propagates to the caller.
pub fn launch<F>(n: usize, cfg: SmpConfig, f: F)
where
    F: Fn(RankHandle) + Send + Sync,
{
    assert!(n > 0, "world needs at least one rank");
    let shared = Arc::new(Shared {
        n,
        seg_size: cfg.seg_size,
        segments: (0..n).map(|_| Segment::new(cfg.seg_size)).collect(),
        inboxes: (0..n).map(|_| Inbox::new()).collect(),
        am_sent: AtomicU64::new(0),
        items_run: AtomicU64::new(0),
        batches_sent: AtomicU64::new(0),
        bar_count: AtomicU64::new(0),
        bar_gen: AtomicU64::new(0),
        epoch: Instant::now(),
    });
    std::thread::scope(|scope| {
        for me in 0..n {
            let sh = shared.clone();
            let f = &f;
            scope.spawn(move || {
                f(RankHandle { sh, me });
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    #[test]
    fn launch_runs_every_rank_once() {
        let hits = AtomicUsize::new(0);
        launch(6, SmpConfig::default(), |h| {
            assert_eq!(h.rank_n(), 6);
            assert!(h.rank_me() < 6);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn put_get_roundtrip_cross_rank() {
        let barrier = Barrier::new(2);
        launch(2, SmpConfig { seg_size: 4096 }, |h| {
            if h.rank_me() == 0 {
                let data: Vec<u8> = (0..=255).collect();
                h.put_bytes(1, 128, &data);
                barrier.wait();
            } else {
                barrier.wait();
                let mut out = vec![0u8; 256];
                h.get_bytes(1, 128, &mut out);
                assert_eq!(out, (0..=255).collect::<Vec<u8>>());
            }
        });
    }

    #[test]
    fn items_run_on_target_when_polled() {
        let seen = AtomicUsize::new(usize::MAX);
        let barrier = Barrier::new(2);
        launch(2, SmpConfig::default(), |h| {
            if h.rank_me() == 0 {
                let tid = std::thread::current().id();
                h.send_item(
                    1,
                    Box::new(move || {
                        // Runs on rank 1's thread, not the sender's.
                        assert_ne!(std::thread::current().id(), tid);
                    }),
                );
                h.send_item(1, Box::new(|| {}));
                barrier.wait();
            } else {
                barrier.wait();
                let mut total = 0;
                while total < 2 {
                    total += h.poll(16);
                    std::thread::yield_now();
                }
                seen.store(total, Ordering::SeqCst);
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn poll_respects_budget() {
        launch(1, SmpConfig::default(), |h| {
            for _ in 0..10 {
                h.send_item(0, Box::new(|| {}));
            }
            assert_eq!(h.poll(3), 3);
            assert_eq!(h.poll(100), 7);
            assert_eq!(h.poll(100), 0);
        });
    }

    #[test]
    #[should_panic]
    fn put_bounds_checked() {
        // The panic originates on a rank thread; thread::scope re-raises it
        // in the caller but the payload string is not guaranteed to survive,
        // so no `expected` substring here.
        launch(1, SmpConfig { seg_size: 16 }, |h| {
            h.put_bytes(0, 10, &[0u8; 8]);
        });
    }

    #[test]
    fn atomics_sum_under_contention() {
        let n = 8;
        launch(n, SmpConfig::default(), |h| {
            // Every rank adds its rank id 100 times into rank 0's counter at
            // offset 0; then rank 0 validates once all adds are visible by
            // spinning on the expected total.
            for _ in 0..100 {
                h.atomic_fetch_add_u64(0, 0, h.rank_me() as u64);
            }
            let expected: u64 = 100 * (0..n as u64).sum::<u64>();
            while h.atomic_load_u64(0, 0) != expected {
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn atomic_cas_behaviour() {
        launch(1, SmpConfig::default(), |h| {
            h.atomic_store_u64(0, 8, 5);
            assert_eq!(h.atomic_cas_u64(0, 8, 5, 9), 5); // success
            assert_eq!(h.atomic_load_u64(0, 8), 9);
            assert_eq!(h.atomic_cas_u64(0, 8, 5, 1), 9); // failure: returns current
            assert_eq!(h.atomic_load_u64(0, 8), 9);
        });
    }

    #[test]
    fn all_to_all_items_stress() {
        let n = 4;
        let per_pair = 200;
        launch(n, SmpConfig::default(), |h| {
            let me = h.rank_me();
            // Each delivered item bumps the *executor's* tally (counting
            // receptions keeps ranks self-sufficient: once my tally is full
            // I have drained everything addressed to me and may exit).
            for dst in 0..n {
                for _ in 0..per_pair {
                    let h2 = h.clone();
                    h.send_item(
                        dst,
                        Box::new(move || {
                            h2.atomic_fetch_add_u64(dst, 0, 1);
                        }),
                    );
                }
            }
            let expected = (n * per_pair) as u64;
            while h.atomic_load_u64(me, 0) != expected {
                h.poll(64);
                std::thread::yield_now();
            }
        });
    }

    #[test]
    fn inbox_stress_per_producer_fifo() {
        // N producers blast rank 0 with sequence-tagged items, mixing
        // singles and aggregated batches; every item asserts its producer's
        // slot in rank 0's segment steps by exactly one — the lock-free
        // inbox's per-producer FIFO contract under real contention.
        let n = 5;
        let per: u64 = 600;
        launch(n, SmpConfig::default(), |h| {
            let me = h.rank_me();
            if me == 0 {
                let expect = (n as u64 - 1) * per;
                while h.atomic_load_u64(0, 0) < expect {
                    h.poll(32);
                    std::thread::yield_now();
                }
                for r in 1..n {
                    assert_eq!(h.atomic_load_u64(0, r * 8), per);
                }
            } else {
                let mk = |s: u64| -> Item {
                    let h2 = h.clone();
                    Box::new(move || {
                        // Runs on rank 0's thread. CAS from s-1 to s: fails
                        // loudly if any earlier item from this producer has
                        // not executed yet (reordering) or ran twice.
                        let prev = h2.atomic_cas_u64(0, h2.rank_me() * 8, s - 1, s);
                        assert_eq!(prev, s - 1, "producer {} out of order", h2.rank_me());
                        h2.atomic_fetch_add_u64(0, 0, 1);
                    })
                };
                let mut seq = 0u64;
                while seq < per {
                    if seq % 7 == 3 && seq + 3 <= per {
                        let items: Vec<Item> = (0..3).map(|j| mk(seq + j + 1)).collect();
                        h.send_batch(0, items);
                        seq += 3;
                    } else {
                        seq += 1;
                        h.send_item(0, mk(seq));
                    }
                }
            }
        });
    }

    #[test]
    fn batch_counts_as_one_poll_entry() {
        launch(1, SmpConfig::default(), |h| {
            h.send_batch(0, (0..4).map(|_| Box::new(|| {}) as Item).collect());
            h.send_item(0, Box::new(|| {}));
            // The batch is one conduit message: one unit of poll budget.
            assert_eq!(h.poll(1), 1);
            assert_eq!(h.poll(8), 1);
            assert_eq!(h.poll(8), 0);
        });
    }

    #[test]
    #[should_panic]
    fn rank_panic_propagates() {
        launch(3, SmpConfig::default(), |h| {
            if h.rank_me() == 1 {
                panic!("rank main failed");
            }
        });
    }

    #[test]
    fn counters_track_traffic() {
        launch(2, SmpConfig::default(), |h| {
            if h.rank_me() == 0 {
                h.send_item(1, Box::new(|| {}));
            } else {
                while h.poll(8) == 0 {
                    std::thread::yield_now();
                }
            }
        });
    }
}
