//! # upcxx-v01 — the predecessor API (events + `async`), for Fig. 9
//!
//! The paper's §IV-D4 compares symPACK built on the *old* UPC++ v0.1
//! (Zheng et al., IPDPS 2014) against the same solver ported to v1.0:
//! "The previous implementation used v0.1 asyncs and events to schedule the
//! asynchronous communication. These translated naturally to RPCs and
//! futures, respectively, in v1.0." This crate reproduces that old surface —
//! with the old limitations §V-A lists:
//!
//! * [`Event`] carries **readiness information only** (no values — unlike a
//!   future, which "encapsulates both data values as well as readiness");
//! * [`async_launch`] (v0.1's `async(place)(fn, args…)`) **cannot return a
//!   value** to the initiator — it only signals an event;
//! * event-object **lifetime is the programmer's burden** (events here are
//!   reference-counted handles the application must keep alive and reuse
//!   correctly — the footgun the paper calls out);
//! * [`copy`] is the v0.1 bulk transfer: source or destination must be
//!   local, completion signals an event.
//!
//! It is implemented as a thin veneer over the v1.0 runtime, exactly like
//! the paper's measurement premise (same transport underneath, different
//! programming surface) — so Fig. 9's "nearly identical performance" has a
//! structural reason to reproduce.

#![warn(missing_docs)]

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use upcxx::{GlobalPtr, Pod, Ser};

struct EventInner {
    pending: Cell<usize>,
    /// Continuations to run when the count returns to zero.
    cbs: RefCell<Vec<Box<dyn FnOnce()>>>,
}

/// A v0.1-style completion event: a bare counter of outstanding operations
/// with no associated value (see module docs).
#[derive(Clone)]
pub struct Event(Rc<EventInner>);

impl Default for Event {
    fn default() -> Self {
        Self::new()
    }
}

impl Event {
    /// Fresh event with no outstanding operations (immediately "done").
    pub fn new() -> Event {
        Event(Rc::new(EventInner {
            pending: Cell::new(0),
            cbs: RefCell::new(Vec::new()),
        }))
    }

    /// Register `n` more outstanding operations (v0.1 `incref`).
    pub fn incref(&self, n: usize) {
        self.0.pending.set(self.0.pending.get() + n);
    }

    /// Signal completion of one operation (v0.1 `decref`); runs deferred
    /// continuations when the count reaches zero.
    pub fn decref(&self) {
        let p = self.0.pending.get();
        assert!(p > 0, "event signaled more times than registered");
        self.0.pending.set(p - 1);
        if p == 1 {
            let cbs = std::mem::take(&mut *self.0.cbs.borrow_mut());
            for cb in cbs {
                cb();
            }
        }
    }

    /// Whether no operations remain outstanding (v0.1 `isdone`).
    pub fn isdone(&self) -> bool {
        self.0.pending.get() == 0
    }

    /// Outstanding-operation count (diagnostics).
    pub fn pending(&self) -> usize {
        self.0.pending.get()
    }

    /// Block until done (smp conduit; v0.1 `wait`).
    pub fn wait(&self) {
        let e = self.clone();
        upcxx::wait_until(move || e.isdone());
    }

    /// Run `f` when the event completes (the trigger half of v0.1
    /// `async_after`). Runs immediately if already done.
    pub fn on_done(&self, f: impl FnOnce() + 'static) {
        if self.isdone() {
            f();
        } else {
            self.0.cbs.borrow_mut().push(Box::new(f));
        }
    }
}

/// v0.1 `async_(place)(f, args)`: execute `f(args)` on `target`. No return
/// value reaches the initiator (the limitation §V-A highlights); `event`
/// (if provided) is signaled at the initiator once the remote execution has
/// been **acknowledged** — v0.1 asyncs tracked completion through events
/// (request + ack over GASNet AMs).
pub fn async_launch<A>(target: usize, f: fn(A), args: A, event: Option<&Event>)
where
    A: Ser,
{
    match event {
        None => upcxx::rpc_ff(target, f, args),
        Some(ev) => {
            ev.incref(1);
            let ev = ev.clone();
            // `fn(A)` is the same type as `fn(A) -> ()`; ship it as an RPC
            // whose empty reply signals the event.
            upcxx::rpc(target, f, args).then(move |()| ev.decref());
        }
    }
}

/// v0.1 `async_after(place, after, f, args)`: launch `f(args)` on `target`
/// once `after` completes; signals `done` (if given) at acknowledgment.
pub fn async_after<A>(target: usize, after: &Event, f: fn(A), args: A, done: Option<&Event>)
where
    A: Ser + 'static,
{
    let done = done.cloned();
    after.on_done(move || {
        async_launch(target, f, args, done.as_ref());
    });
}

/// v0.1 `copy(src, dst, count, event)`: bulk transfer between global
/// pointers where at least one side is local; signals `event` on completion.
/// (v0.1 RMA "did not support events" per operation and offered no
/// completion chaining — this narrow surface is all it had.)
pub fn copy<T: Pod>(src: GlobalPtr<T>, dst: GlobalPtr<T>, count: usize, event: &Event) {
    event.incref(1);
    let ev = event.clone();
    if src.is_local() {
        let mut buf: Vec<T> = vec![unsafe { std::mem::zeroed() }; count];
        src.local_read(&mut buf);
        upcxx::rput(&buf, dst).then(move |_| ev.decref());
    } else if dst.is_local() {
        upcxx::rget(src, count).then(move |data| {
            dst.local_write(&data);
            ev.decref();
        });
    } else {
        panic!("v0.1 copy requires a local source or destination");
    }
}

/// v0.1's blocking remote allocation (the paper notes the old DHT needed
/// "a blocking remote allocation", hurting latency and overlap): allocate
/// `count` elements of `T` in `target`'s shared segment and wait for the
/// pointer. smp conduit only (it blocks).
pub fn allocate_remote_blocking<T: Pod>(target: usize, count: usize) -> GlobalPtr<T> {
    fn do_alloc<T: Pod>(count: usize) -> GlobalPtr<T> {
        upcxx::allocate::<T>(count)
    }
    upcxx::rpc(target, do_alloc::<T>, count).wait()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_counting_and_callbacks() {
        let e = Event::new();
        assert!(e.isdone());
        e.incref(2);
        assert!(!e.isdone());
        let hit = Rc::new(Cell::new(0u32));
        let h = hit.clone();
        e.on_done(move || h.set(h.get() + 1));
        e.decref();
        assert_eq!(hit.get(), 0);
        e.decref();
        assert_eq!(hit.get(), 1);
        assert!(e.isdone());
    }

    #[test]
    fn on_done_after_completion_runs_immediately() {
        let e = Event::new();
        let hit = Rc::new(Cell::new(false));
        let h = hit.clone();
        e.on_done(move || h.set(true));
        assert!(hit.get());
    }

    #[test]
    #[should_panic(expected = "more times than registered")]
    fn over_signal_panics() {
        Event::new().decref();
    }
}
