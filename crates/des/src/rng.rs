//! Small deterministic pseudo-random number generators.
//!
//! The workspace builds with zero external dependencies, so randomized tests
//! and benchmark drivers use these local generators instead of the `rand`
//! crate. Both are standard, well-mixed constructions:
//!
//! * [`splitmix64`] — the SplitMix64 finalizer (Steele et al.), used as a
//!   stateless hash/key-scrambler (the DHT's `get_target` uses the same
//!   finalizer) and to seed the stateful generator;
//! * [`Rng`] — xoshiro-style xorshift64\* stream with convenience helpers for
//!   ranges, floats and booleans.
//!
//! Determinism is a feature: every consumer passes an explicit seed, so test
//! failures replay exactly.

/// The SplitMix64 finalizer: a cheap, statistically strong 64-bit mixer.
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A small deterministic generator (xorshift64\*). Not cryptographic; good
/// enough for test-input generation and load spreading.
#[derive(Clone, Debug)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seed the stream. Any seed is fine (zero is remapped internally).
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: splitmix64(seed) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, n)`. Panics if `n == 0`.
    pub fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_between(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fair coin.
    pub fn gen_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.gen_range(10) < 10);
            let x = r.gen_between(5, 9);
            assert!((5..9).contains(&x));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn splitmix_spreads_small_inputs() {
        // Consecutive integers map to well-spread outputs: no duplicate
        // low-32 bits over a small window.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i) as u32));
        }
    }

    #[test]
    fn bools_are_roughly_fair() {
        let mut r = Rng::new(1);
        let heads = (0..10_000).filter(|_| r.gen_bool()).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }
}
