//! Measurement helpers shared by the benchmark harnesses.
//!
//! [`OnlineStats`] implements Welford's single-pass algorithm for mean and
//! variance; [`Histogram`] is a power-of-two-bucket latency histogram;
//! [`Series`] is a labeled (x, y) sequence used by the figure regenerators to
//! print paper-style rows.

use std::fmt;

/// Single-pass mean / variance / min / max accumulator (Welford).
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Unbiased sample variance (0.0 for < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }
    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Smallest sample (NaN-free input assumed); 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Largest sample; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.n,
            self.mean(),
            self.stddev(),
            self.min(),
            self.max()
        )
    }
}

/// Power-of-two bucket histogram for positive integer samples (e.g. latency in
/// nanoseconds). Bucket `i` counts samples whose floor(log2) is `i`.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram covering the full u64 range (64 buckets + zero bucket).
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 65],
            count: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v as u128;
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile: returns the *upper bound* of the bucket holding
    /// the q-th sample (q in [0,1]).
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q));
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == 0 {
                    0
                } else {
                    (1u128 << i).min(u64::MAX as u128) as u64 - 1
                };
            }
        }
        u64::MAX
    }

    /// Iterate non-empty buckets as `(lower_bound, count)`.
    pub fn nonempty(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
    }
}

/// A labeled sequence of (x, y) points, printed in the aligned column format
/// the figure harnesses use.
#[derive(Clone, Debug)]
pub struct Series {
    /// Series label (e.g. "UPC++ RPC", "MPI Alltoallv").
    pub label: String,
    /// The data points in insertion order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Look up y at an exact x (first match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y)
    }

    /// Render a table of several series sharing an x column.
    /// `xfmt` formats the x value (e.g. byte sizes vs process counts).
    pub fn table(xhdr: &str, series: &[Series], xfmt: impl Fn(f64) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|(x, _)| *x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs.dedup();
        let _ = write!(out, "{xhdr:>12}");
        for s in series {
            let _ = write!(out, " {:>16}", s.label);
        }
        let _ = writeln!(out);
        for x in xs {
            let _ = write!(out, "{:>12}", xfmt(x));
            for s in series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(out, " {y:>16.3}");
                    }
                    None => {
                        let _ = write!(out, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; unbiased sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_is_zeroed() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn online_stats_single_sample() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        assert_eq!(s.mean(), 3.5);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert!((h.mean() - (1010.0 / 6.0)).abs() < 1e-9);
        let buckets: Vec<_> = h.nonempty().collect();
        // 0 -> bucket 0; 1 -> [1,2); 2,3 -> [2,4); 4 -> [4,8); 1000 -> [512,1024)
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (4, 1), (512, 1)]);
    }

    #[test]
    fn histogram_quantiles_monotone() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!((255..=1023).contains(&q50)); // log-bucket resolution
    }

    #[test]
    fn series_table_renders_all_points() {
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(2.0, 200.0);
        let t = Series::table("x", &[a, b], |x| format!("{x}"));
        assert!(t.contains("A"));
        assert!(t.contains("B"));
        assert!(t.contains("20.000"));
        assert!(t.contains("200.000"));
        assert!(t.contains('-')); // B has no point at x=1
    }

    #[test]
    fn series_y_at_finds_points() {
        let mut s = Series::new("s");
        s.push(4.0, 44.0);
        assert_eq!(s.y_at(4.0), Some(44.0));
        assert_eq!(s.y_at(5.0), None);
    }
}
