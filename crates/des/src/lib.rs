//! # pgas-des — deterministic discrete-event simulation engine
//!
//! This crate is the bottom layer of the UPC++ reproduction stack. The paper's
//! large-scale experiments (distributed hash table weak scaling to 34816 ranks,
//! extend-add strong scaling to 2048 ranks) cannot be reproduced with one OS
//! thread per rank, so the `gasnet` crate provides a *sim* conduit in which
//! every rank is an actor multiplexed on this engine under virtual time.
//!
//! Design goals:
//! * **Determinism** — identical inputs produce identical event orders. Ties in
//!   timestamps are broken by a monotonically increasing sequence number, so
//!   the execution is a pure function of the schedule calls.
//! * **Zero hidden state** — events are `FnOnce(&mut Sim)` closures; all model
//!   state lives in the caller's `Rc<RefCell<…>>` world, mirroring how the
//!   UPC++ runtime itself keeps rank state external to the progress engine.
//! * **Cheap events** — a simulation of a 34816-rank DHT run executes tens of
//!   millions of events; the hot path is one `BinaryHeap` pop and one boxed
//!   call.
//!
//! The companion modules provide [`time`] (fixed-point nanosecond virtual
//! time), [`cpu`] (per-actor CPU occupancy clocks used to charge software
//! overheads, the `o` in LogGP terms), and [`stats`] (online moments,
//! log-scale histograms and labeled series used by the figure harnesses).

pub mod cpu;
pub mod rng;
pub mod shared;
pub mod stats;
pub mod time;

pub use cpu::CpuClock;
pub use rng::Rng;
pub use shared::{SharedEvent, SharedSim};
pub use stats::{Histogram, OnlineStats, Series};
pub use time::Time;

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled simulation event: a one-shot closure run at its timestamp with
/// mutable access to the engine (so it can schedule follow-up events).
pub type Event = Box<dyn FnOnce(&mut Sim)>;

struct Entry {
    at: Time,
    seq: u64,
    ev: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq) entry
    // is popped first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The discrete-event simulation engine.
///
/// ```
/// use pgas_des::{Sim, Time};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// let mut sim = Sim::new();
/// let hits = Rc::new(Cell::new(0u32));
/// let h = hits.clone();
/// sim.schedule_at(Time::from_ns(10), Box::new(move |sim| {
///     h.set(h.get() + 1);
///     let h2 = h.clone();
///     sim.schedule_after(Time::from_ns(5), Box::new(move |_| h2.set(h2.get() + 1)));
/// }));
/// sim.run();
/// assert_eq!(hits.get(), 2);
/// assert_eq!(sim.now(), Time::from_ns(15));
/// ```
pub struct Sim {
    now: Time,
    seq: u64,
    heap: BinaryHeap<Entry>,
    executed: u64,
    /// Optional hard limit on executed events (guards against runaway models).
    pub max_events: Option<u64>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Create an empty simulation at time zero.
    pub fn new() -> Self {
        Sim {
            now: Time::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            executed: 0,
            max_events: None,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `ev` at absolute time `at`.
    ///
    /// Scheduling in the past is a model bug; it panics rather than silently
    /// reordering history.
    pub fn schedule_at(&mut self, at: Time, ev: Event) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, ev });
    }

    /// Schedule `ev` after a relative delay from the current time.
    pub fn schedule_after(&mut self, delay: Time, ev: Event) {
        self.schedule_at(self.now + delay, ev);
    }

    /// Execute the single earliest pending event. Returns `false` when the
    /// event queue is empty.
    pub fn step(&mut self) -> bool {
        match self.heap.pop() {
            None => false,
            Some(Entry { at, ev, .. }) => {
                debug_assert!(at >= self.now);
                self.now = at;
                self.executed += 1;
                if let Some(max) = self.max_events {
                    assert!(
                        self.executed <= max,
                        "simulation exceeded max_events={max} (runaway model?)"
                    );
                }
                ev(self);
                true
            }
        }
    }

    /// Run until no events remain. Returns the final virtual time.
    pub fn run(&mut self) -> Time {
        while self.step() {}
        self.now
    }

    /// Run until the queue empties or virtual time would exceed `deadline`.
    /// Events with timestamps beyond the deadline remain queued; `now` is
    /// advanced to `deadline` if the run stopped for that reason.
    pub fn run_until(&mut self, deadline: Time) -> Time {
        loop {
            match self.heap.peek() {
                None => break,
                Some(e) if e.at > deadline => {
                    self.now = deadline;
                    break;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
        self.now
    }

    /// Run while `cond` stays true and events remain.
    pub fn run_while(&mut self, mut cond: impl FnMut() -> bool) -> Time {
        while cond() && self.step() {}
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn empty_sim_runs_to_zero() {
        let mut sim = Sim::new();
        assert_eq!(sim.run(), Time::ZERO);
        assert_eq!(sim.events_executed(), 0);
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for &t in &[30u64, 10, 20] {
            let o = order.clone();
            sim.schedule_at(Time::from_ns(t), Box::new(move |_| o.borrow_mut().push(t)));
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_in_fifo_order() {
        let mut sim = Sim::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..100 {
            let o = order.clone();
            sim.schedule_at(Time::from_ns(5), Box::new(move |_| o.borrow_mut().push(i)));
        }
        sim.run();
        assert_eq!(*order.borrow(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn nested_scheduling_advances_clock() {
        let mut sim = Sim::new();
        let done = Rc::new(RefCell::new(Time::ZERO));
        let d = done.clone();
        sim.schedule_at(
            Time::from_ns(1),
            Box::new(move |sim| {
                let d2 = d.clone();
                sim.schedule_after(
                    Time::from_us(2),
                    Box::new(move |sim| *d2.borrow_mut() = sim.now()),
                );
            }),
        );
        sim.run();
        assert_eq!(*done.borrow(), Time::from_ns(2001));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim = Sim::new();
        sim.schedule_at(
            Time::from_ns(100),
            Box::new(|sim| {
                sim.schedule_at(Time::from_ns(50), Box::new(|_| {}));
            }),
        );
        sim.run();
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new();
        let fired = Rc::new(RefCell::new(0));
        for t in [10u64, 20, 30, 40] {
            let f = fired.clone();
            sim.schedule_at(Time::from_ns(t), Box::new(move |_| *f.borrow_mut() += 1));
        }
        sim.run_until(Time::from_ns(25));
        assert_eq!(*fired.borrow(), 2);
        assert_eq!(sim.now(), Time::from_ns(25));
        assert_eq!(sim.pending(), 2);
        sim.run();
        assert_eq!(*fired.borrow(), 4);
    }

    #[test]
    fn run_while_predicate_stops_run() {
        let mut sim = Sim::new();
        let count = Rc::new(RefCell::new(0u32));
        for t in 0..10u64 {
            let c = count.clone();
            sim.schedule_at(Time::from_ns(t), Box::new(move |_| *c.borrow_mut() += 1));
        }
        let c = count.clone();
        sim.run_while(move || *c.borrow() < 4);
        assert_eq!(*count.borrow(), 4);
    }

    #[test]
    #[should_panic(expected = "max_events")]
    fn max_events_guard_trips() {
        let mut sim = Sim::new();
        sim.max_events = Some(10);
        fn respawn(sim: &mut Sim) {
            sim.schedule_after(Time::from_ns(1), Box::new(respawn));
        }
        sim.schedule_at(Time::ZERO, Box::new(respawn));
        sim.run();
    }

    #[test]
    fn executed_counter_tracks_events() {
        let mut sim = Sim::new();
        for t in 0..7u64 {
            sim.schedule_at(Time::from_ns(t), Box::new(|_| {}));
        }
        sim.run();
        assert_eq!(sim.events_executed(), 7);
    }
}
