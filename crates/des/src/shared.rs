//! A shared-handle event loop for re-entrant models.
//!
//! [`crate::Sim`] hands each event `&mut Sim`, which is ideal for closed
//! models but impossible to thread through a user-facing API like the UPC++
//! runtime: an application callback deep inside `rput` must be able to
//! schedule follow-up events without ever seeing the simulator. [`SharedSim`]
//! solves this with interior mutability: scheduling borrows the queue only
//! for the duration of a push, and the run loop releases all borrows before
//! invoking an event, so events may freely call back into the scheduler.
//!
//! Determinism matches `Sim`: time order, FIFO within a timestamp.

use crate::time::Time;
use std::cell::{Cell, RefCell};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event for the shared loop: a plain one-shot closure. Anything it needs
/// (including the `SharedSim` handle itself, via `Rc`) is captured.
pub type SharedEvent = Box<dyn FnOnce()>;

struct Entry {
    at: Time,
    seq: u64,
    ev: SharedEvent,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Re-entrant discrete-event loop. Typically owned inside an `Rc` so that
/// scheduled events can capture a handle and schedule more events.
pub struct SharedSim {
    heap: RefCell<BinaryHeap<Entry>>,
    seq: Cell<u64>,
    now: Cell<Time>,
    executed: Cell<u64>,
}

impl Default for SharedSim {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedSim {
    /// Empty loop at time zero.
    pub fn new() -> Self {
        SharedSim {
            heap: RefCell::new(BinaryHeap::new()),
            seq: Cell::new(0),
            now: Cell::new(Time::ZERO),
            executed: Cell::new(0),
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now.get()
    }

    /// Events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed.get()
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.heap.borrow().len()
    }

    /// Schedule at an absolute time. Panics if `at` is in the past. Safe to
    /// call from inside a running event.
    pub fn schedule_at(&self, at: Time, ev: SharedEvent) {
        assert!(
            at >= self.now.get(),
            "event scheduled in the past: at={at} now={}",
            self.now.get()
        );
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.heap.borrow_mut().push(Entry { at, seq, ev });
    }

    /// Schedule after a delay relative to now.
    pub fn schedule_after(&self, delay: Time, ev: SharedEvent) {
        self.schedule_at(self.now.get() + delay, ev);
    }

    /// Pop and run the earliest event; `false` when the queue is empty.
    /// No queue borrow is held while the event runs.
    pub fn step(&self) -> bool {
        let entry = self.heap.borrow_mut().pop();
        match entry {
            None => false,
            Some(Entry { at, ev, .. }) => {
                debug_assert!(at >= self.now.get());
                self.now.set(at);
                self.executed.set(self.executed.get() + 1);
                ev();
                true
            }
        }
    }

    /// Run to quiescence; returns the final virtual time.
    pub fn run(&self) -> Time {
        while self.step() {}
        self.now.get()
    }

    /// Run until quiescent or the next event lies beyond `deadline`.
    pub fn run_until(&self, deadline: Time) -> Time {
        loop {
            let next_at = self.heap.borrow().peek().map(|e| e.at);
            match next_at {
                None => break,
                Some(at) if at > deadline => {
                    self.now.set(deadline);
                    break;
                }
                Some(_) => {
                    self.step();
                }
            }
        }
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn runs_in_order_with_reentrant_scheduling() {
        let sim = Rc::new(SharedSim::new());
        let log = Rc::new(RefCell::new(Vec::new()));
        {
            let (s2, l2) = (sim.clone(), log.clone());
            sim.schedule_at(
                Time::from_ns(10),
                Box::new(move || {
                    l2.borrow_mut().push("a");
                    let l3 = l2.clone();
                    // Re-entrant scheduling from inside an event.
                    s2.schedule_after(
                        Time::from_ns(1),
                        Box::new(move || l3.borrow_mut().push("c")),
                    );
                }),
            );
        }
        {
            let l2 = log.clone();
            sim.schedule_at(
                Time::from_ns(10),
                Box::new(move || l2.borrow_mut().push("b")),
            );
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!["a", "b", "c"]);
        assert_eq!(sim.now(), Time::from_ns(11));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn deep_chains_do_not_overflow() {
        // A long self-scheduling chain exercises the borrow discipline.
        let sim = Rc::new(SharedSim::new());
        let count = Rc::new(Cell::new(0u32));
        fn chain(sim: Rc<SharedSim>, count: Rc<Cell<u32>>) {
            if count.get() < 10_000 {
                count.set(count.get() + 1);
                let s = sim.clone();
                let c = count.clone();
                sim.schedule_after(Time::from_ns(1), Box::new(move || chain(s.clone(), c)));
            }
        }
        chain(sim.clone(), count.clone());
        sim.run();
        assert_eq!(count.get(), 10_000);
        assert_eq!(sim.now(), Time::from_ns(10_000));
    }

    #[test]
    fn run_until_respects_deadline() {
        let sim = SharedSim::new();
        let hit = Rc::new(Cell::new(0));
        for t in [5u64, 15] {
            let h = hit.clone();
            sim.schedule_at(Time::from_ns(t), Box::new(move || h.set(h.get() + 1)));
        }
        sim.run_until(Time::from_ns(10));
        assert_eq!(hit.get(), 1);
        assert_eq!(sim.now(), Time::from_ns(10));
        assert_eq!(sim.pending(), 1);
    }

    use std::cell::Cell;

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn past_scheduling_panics() {
        let sim = Rc::new(SharedSim::new());
        let s = sim.clone();
        sim.schedule_at(
            Time::from_ns(10),
            Box::new(move || {
                s.schedule_at(Time::from_ns(5), Box::new(|| {}));
            }),
        );
        sim.run();
    }
}
