//! Per-actor CPU occupancy clocks.
//!
//! The UPC++ runtime makes progress only on CPU cycles the application donates
//! (there are no hidden progress threads — §III of the paper). To model that
//! faithfully, every simulated rank owns a [`CpuClock`] tracking when its one
//! core becomes free. Charging a software overhead (an injection `o`, an AM
//! handler, a deserialization) serializes on this clock, so a rank that is
//! busy computing delays incoming RPC execution — this is exactly the
//! *attentiveness* effect the paper describes.

use crate::time::Time;

/// Tracks the time at which a simulated core becomes free, and accumulates
/// total busy time for utilization reporting.
#[derive(Clone, Debug, Default)]
pub struct CpuClock {
    free_at: Time,
    busy_total: Time,
    /// Dimensionless multiplier applied to every charged cost. 1.0 for the
    /// Haswell baseline; ~2.8 for KNL's slower in-order cores.
    speed_factor: f64,
}

impl CpuClock {
    /// A clock for a core with the given cost multiplier (1.0 = baseline).
    pub fn new(speed_factor: f64) -> Self {
        assert!(speed_factor > 0.0 && speed_factor.is_finite());
        CpuClock {
            free_at: Time::ZERO,
            busy_total: Time::ZERO,
            speed_factor,
        }
    }

    /// When the core next becomes free.
    #[inline]
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Total busy time accumulated so far.
    #[inline]
    pub fn busy_total(&self) -> Time {
        self.busy_total
    }

    /// The configured speed factor.
    #[inline]
    pub fn speed_factor(&self) -> f64 {
        self.speed_factor
    }

    /// Charge `cost` (scaled by the speed factor) of CPU work that *becomes
    /// runnable* at `ready`. The work starts at `max(ready, free_at)` and the
    /// clock advances past it. Returns the **completion time** of the work.
    pub fn charge(&mut self, ready: Time, cost: Time) -> Time {
        let scaled = cost.scale(self.speed_factor);
        let start = self.free_at.max(ready);
        self.free_at = start + scaled;
        self.busy_total += scaled;
        self.free_at
    }

    /// Like [`charge`](Self::charge) but returns `(start, end)` — useful when
    /// the caller needs the moment the work began (e.g. to model a message
    /// leaving the send queue).
    pub fn charge_span(&mut self, ready: Time, cost: Time) -> (Time, Time) {
        let scaled = cost.scale(self.speed_factor);
        let start = self.free_at.max(ready);
        self.free_at = start + scaled;
        self.busy_total += scaled;
        (start, self.free_at)
    }

    /// Push the free time forward without accounting busy time (e.g. a rank
    /// blocked in a barrier is idle, not busy).
    pub fn idle_until(&mut self, t: Time) {
        self.free_at = self.free_at.max(t);
    }

    /// Fraction of `[0, horizon]` this core spent busy.
    pub fn utilization(&self, horizon: Time) -> f64 {
        if horizon == Time::ZERO {
            0.0
        } else {
            self.busy_total.as_ns_f64() / horizon.as_ns_f64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_serializes_work() {
        let mut c = CpuClock::new(1.0);
        // Two units of work both ready at t=0 execute back to back.
        assert_eq!(c.charge(Time::ZERO, Time::from_ns(100)), Time::from_ns(100));
        assert_eq!(c.charge(Time::ZERO, Time::from_ns(50)), Time::from_ns(150));
        assert_eq!(c.busy_total(), Time::from_ns(150));
    }

    #[test]
    fn charge_waits_for_ready_time() {
        let mut c = CpuClock::new(1.0);
        let end = c.charge(Time::from_ns(500), Time::from_ns(10));
        assert_eq!(end, Time::from_ns(510));
        // Idle gap is not busy time.
        assert_eq!(c.busy_total(), Time::from_ns(10));
    }

    #[test]
    fn speed_factor_scales_costs() {
        let mut c = CpuClock::new(2.8);
        let end = c.charge(Time::ZERO, Time::from_ns(100));
        assert_eq!(end, Time::from_ns(280));
    }

    #[test]
    fn charge_span_reports_start_and_end() {
        let mut c = CpuClock::new(1.0);
        c.charge(Time::ZERO, Time::from_ns(40));
        let (s, e) = c.charge_span(Time::from_ns(10), Time::from_ns(5));
        assert_eq!(s, Time::from_ns(40)); // had to wait for the core
        assert_eq!(e, Time::from_ns(45));
    }

    #[test]
    fn idle_until_moves_clock_without_busy() {
        let mut c = CpuClock::new(1.0);
        c.idle_until(Time::from_us(1));
        assert_eq!(c.free_at(), Time::from_us(1));
        assert_eq!(c.busy_total(), Time::ZERO);
        // idle_until never moves the clock backwards
        c.idle_until(Time::from_ns(10));
        assert_eq!(c.free_at(), Time::from_us(1));
    }

    #[test]
    fn utilization_fraction() {
        let mut c = CpuClock::new(1.0);
        c.charge(Time::ZERO, Time::from_ns(250));
        let u = c.utilization(Time::from_us(1));
        assert!((u - 0.25).abs() < 1e-9);
        assert_eq!(c.utilization(Time::ZERO), 0.0);
    }
}
