//! Fixed-point virtual time.
//!
//! Virtual time is a `u64` count of **picoseconds**. Nanoseconds would be the
//! obvious unit, but byte-granularity network costs are sub-nanosecond (an
//! Aries NIC moves a byte in ~0.085 ns), and accumulating millions of per-byte
//! charges in floating point drifts nondeterministically across optimization
//! levels. Picoseconds keep everything exact in integers while still allowing
//! ~213 days of virtual time — far beyond any experiment here.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, stored as integer picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Time zero — the start of every simulation.
    pub const ZERO: Time = Time(0);
    /// The maximum representable time; useful as an "infinite" deadline.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from integer picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }
    /// Construct from integer nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Time {
        Time(ns * 1_000)
    }
    /// Construct from integer microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Time {
        Time(us * 1_000_000)
    }
    /// Construct from integer milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Time {
        Time(ms * 1_000_000_000)
    }
    /// Construct from integer seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Time {
        Time(s * 1_000_000_000_000)
    }
    /// Construct from fractional nanoseconds (rounds to nearest picosecond).
    /// Used for calibration constants like "0.085 ns per byte".
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Time {
        assert!(ns >= 0.0 && ns.is_finite(), "invalid time: {ns} ns");
        Time((ns * 1_000.0).round() as u64)
    }
    /// Construct from fractional microseconds.
    #[inline]
    pub fn from_us_f64(us: f64) -> Time {
        Time::from_ns_f64(us * 1_000.0)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// As fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    /// As fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    #[inline]
    pub fn saturating_sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }

    /// Larger of two times.
    #[inline]
    pub fn max(self, rhs: Time) -> Time {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }
    /// Smaller of two times.
    #[inline]
    pub fn min(self, rhs: Time) -> Time {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Scale a span by a dimensionless f64 factor (rounds to picoseconds).
    /// Used for CPU-speed multipliers such as the KNL slowdown factor.
    #[inline]
    pub fn scale(self, factor: f64) -> Time {
        assert!(factor >= 0.0 && factor.is_finite());
        Time((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}
impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}
impl Sub for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("virtual time underflow (negative span)"),
        )
    }
}
impl SubAssign for Time {
    #[inline]
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Time {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: u64) -> Time {
        Time(self.0.checked_mul(rhs).expect("virtual time overflow"))
    }
}
impl Div<u64> for Time {
    type Output = Time;
    #[inline]
    fn div(self, rhs: u64) -> Time {
        Time(self.0 / rhs)
    }
}
impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, Add::add)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({self})")
    }
}

impl fmt::Display for Time {
    /// Human-scaled display: picks ns/µs/ms/s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_agree() {
        assert_eq!(Time::from_ns(1), Time::from_ps(1_000));
        assert_eq!(Time::from_us(1), Time::from_ns(1_000));
        assert_eq!(Time::from_ms(1), Time::from_us(1_000));
        assert_eq!(Time::from_secs(1), Time::from_ms(1_000));
    }

    #[test]
    fn fractional_ns_rounds_to_ps() {
        assert_eq!(Time::from_ns_f64(0.085), Time::from_ps(85));
        assert_eq!(Time::from_ns_f64(1.2345), Time::from_ps(1235)); // rounds
        assert_eq!(Time::from_us_f64(1.3), Time::from_ns(1300));
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(10);
        let b = Time::from_ns(3);
        assert_eq!(a + b, Time::from_ns(13));
        assert_eq!(a - b, Time::from_ns(7));
        assert_eq!(a * 4, Time::from_ns(40));
        assert_eq!(a / 2, Time::from_ns(5));
        assert_eq!(b.saturating_sub(a), Time::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn negative_span_panics() {
        let _ = Time::from_ns(1) - Time::from_ns(2);
    }

    #[test]
    fn scale_applies_factor() {
        assert_eq!(Time::from_ns(100).scale(2.8), Time::from_ns(280));
        assert_eq!(Time::from_ns(100).scale(0.0), Time::ZERO);
    }

    #[test]
    fn sum_of_spans() {
        let total: Time = (1..=4u64).map(Time::from_ns).sum();
        assert_eq!(total, Time::from_ns(10));
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", Time::from_ps(5)), "5ps");
        assert_eq!(format!("{}", Time::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", Time::from_us(5)), "5.000us");
        assert_eq!(format!("{}", Time::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", Time::from_secs(5)), "5.000s");
    }

    #[test]
    fn conversions_roundtrip() {
        let t = Time::from_ns(123_456_789);
        assert!((t.as_secs_f64() - 0.123456789).abs() < 1e-12);
        assert!((t.as_us_f64() - 123_456.789).abs() < 1e-6);
    }
}
