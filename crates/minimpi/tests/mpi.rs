//! minimpi integration tests over both conduits: matching semantics,
//! protocols, collectives, RMA windows.

use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use upcxx::Team;

#[test]
fn smp_send_recv_roundtrip() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            minimpi::send(1, 7, &[1u64, 2, 3]);
            let (data, st) = minimpi::recv::<u64>(1, 8);
            assert_eq!(data, vec![9, 9]);
            assert_eq!(st.source, 1);
        } else {
            let (data, st) = minimpi::recv::<u64>(0, 7);
            assert_eq!(data, vec![1, 2, 3]);
            assert_eq!((st.source, st.tag), (0, 7));
            minimpi::send(0, 8, &[9u64, 9]);
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_tag_matching_orders_messages() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            // Two messages with distinct tags; receiver takes them in
            // reverse tag order.
            minimpi::send(1, 1, &[11u64]);
            minimpi::send(1, 2, &[22u64]);
        } else {
            let (b, _) = minimpi::recv::<u64>(0, 2);
            assert_eq!(b, vec![22]);
            let (a, _) = minimpi::recv::<u64>(0, 1);
            assert_eq!(a, vec![11]);
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_any_source_receives() {
    upcxx::run_spmd_default(3, || {
        let me = upcxx::rank_me();
        if me == 0 {
            let (a, s1) = minimpi::irecv_from_any::<u64>(5).wait();
            let (b, s2) = minimpi::irecv_from_any::<u64>(5).wait();
            let mut seen = vec![(s1.source, a[0]), (s2.source, b[0])];
            seen.sort_unstable();
            assert_eq!(seen, vec![(1, 100), (2, 200)]);
        } else {
            minimpi::send(0, 5, &[me as u64 * 100]);
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_large_message_uses_rendezvous_path() {
    // On smp the threshold is effectively infinite (no sim costs), so force
    // the rendezvous code path via the sim conduit below; here just verify
    // a large payload arrives intact.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let big: Vec<u64> = (0..100_000).collect();
            minimpi::send(1, 3, &big);
        } else {
            let (data, _) = minimpi::recv::<u64>(0, 3);
            assert_eq!(data.len(), 100_000);
            assert_eq!(data[99_999], 99_999);
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_alltoallv_exchanges_rows() {
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        // Rank r sends [r*10 + d] to rank d (and nothing to itself + 2).
        let send: Vec<Vec<f64>> = (0..n)
            .map(|d| {
                if d == (me + 2) % n {
                    Vec::new()
                } else {
                    vec![(me * 10 + d) as f64]
                }
            })
            .collect();
        let recv = minimpi::alltoallv(&Team::world(), send).wait();
        for (src, v) in recv.iter().enumerate() {
            if me == (src + 2) % n {
                assert!(v.is_empty());
            } else {
                assert_eq!(v, &vec![(src * 10 + me) as f64]);
            }
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_rma_window_put_flush_get() {
    upcxx::run_spmd_default(2, || {
        let win = minimpi::Win::create(4096);
        if upcxx::rank_me() == 0 {
            win.put(1, 64, &[5u8; 32]);
            win.flush(1).wait();
            let back = win.get(1, 64, 32).wait();
            assert_eq!(back, vec![5u8; 32]);
        }
        minimpi::barrier();
    });
}

#[test]
fn smp_flush_waits_for_many_puts() {
    upcxx::run_spmd_default(2, || {
        let win = minimpi::Win::create(1 << 16);
        if upcxx::rank_me() == 0 {
            for i in 0..64usize {
                win.put(1, i * 8, &(i as u64).to_le_bytes());
            }
            win.flush(1).wait();
            let all = win.get(1, 0, 64 * 8).wait();
            let vals: Vec<u64> = upcxx::ser::pod_from_bytes(&all);
            assert_eq!(vals, (0..64u64).collect::<Vec<_>>());
        }
        minimpi::barrier();
    });
}

// ------------------------------------------------------------ sim conduit

#[test]
fn sim_eager_vs_rendezvous_latency_structure() {
    // A rendezvous message (above the threshold) pays the RTS/CTS round
    // trip; per byte it still approaches wire speed, so compare completion
    // time of one small vs one just-over-threshold message.
    let run = |bytes: usize| {
        let rt = upcxx::SimRuntime::new(MachineConfig::cori_haswell(), 64, 1 << 12);
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = done.clone();
        rt.spawn(0, move || {
            minimpi::isend_bytes(32, 1, vec![0u8; bytes]);
        });
        rt.spawn(32, move || {
            let d2 = d.clone();
            minimpi::irecv_bytes(0, 1).then(move |_| {
                d2.set(upcxx::sim_now().unwrap());
            });
        });
        rt.run();
        done.get()
    };
    let eager = run(1024);
    let rndv = run(8192);
    // Rendezvous adds ≥ one extra round trip over the eager path.
    assert!(
        rndv > eager + Time::from_ns(800),
        "eager {eager} vs rendezvous {rndv}"
    );
}

#[test]
fn sim_mpi_put_latency_exceeds_upcxx_rput() {
    // The Fig. 3a premise, at one data point: blocking put+flush through
    // the MPI window costs more than the UPC++ rput round trip.
    let p = 64;
    static UPCXX_NS: AtomicU64 = AtomicU64::new(0);
    static MPI_NS: AtomicU64 = AtomicU64::new(0);

    // UPC++ blocking rput.
    {
        let rt = upcxx::SimRuntime::new(MachineConfig::cori_haswell(), p, 1 << 12);
        fn slot(_: ()) -> upcxx::GlobalPtr<u8> {
            upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u8>>>>(|| Cell::new(None))
                .get()
                .unwrap()
        }
        rt.spawn(32, || {
            let gp = upcxx::allocate::<u8>(256);
            upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u8>>>>(|| Cell::new(None))
                .set(Some(gp));
        });
        rt.spawn_at(0, Time::from_us(5), move || {
            upcxx::rpc(32, slot, ()).then_fut(|gp| {
                let t0 = upcxx::sim_rank_now().unwrap();
                upcxx::rput(&[7u8; 64], gp).then(move |_| {
                    let dt = upcxx::sim_now().unwrap() - t0;
                    UPCXX_NS.store(dt.as_ns_f64() as u64, Ordering::SeqCst);
                })
            });
        });
        rt.run();
    }
    // MPI put + flush.
    {
        let rt = upcxx::SimRuntime::new(MachineConfig::cori_haswell(), p, 1 << 12);
        for r in 0..p {
            rt.spawn(r, move || {
                minimpi::Win::create_async(4096).then(move |win| {
                    if r == 0 {
                        let t0 = upcxx::sim_rank_now().unwrap();
                        win.put(32, 0, &[7u8; 64]);
                        win.flush(32).then(move |_| {
                            let dt = upcxx::sim_now().unwrap() - t0;
                            MPI_NS.store(dt.as_ns_f64() as u64, Ordering::SeqCst);
                        });
                    }
                });
            });
        }
        rt.run();
    }
    let (u, m) = (
        UPCXX_NS.load(Ordering::SeqCst),
        MPI_NS.load(Ordering::SeqCst),
    );
    assert!(u > 0 && m > 0, "measurements missing: upcxx={u} mpi={m}");
    assert!(
        m > u,
        "MPI put+flush ({m} ns) should exceed UPC++ rput ({u} ns)"
    );
}

#[test]
fn sim_matching_cost_grows_with_posted_queue() {
    // Posting many unmatched receives first makes the eventual match walk a
    // long queue — the structural penalty of the naive P2P extend-add.
    let run = |decoys: usize| {
        let rt = upcxx::SimRuntime::new(MachineConfig::cori_haswell(), 64, 1 << 12);
        let done = Rc::new(Cell::new(Time::ZERO));
        let d = done.clone();
        rt.spawn(32, move || {
            for t in 0..decoys {
                // Receives that never match (wrong tag).
                let _ = minimpi::irecv_bytes(0, 1000 + t as i32);
            }
            let d2 = d.clone();
            minimpi::irecv_bytes(0, 7).then(move |_| {
                d2.set(upcxx::sim_now().unwrap());
            });
        });
        rt.spawn_at(0, Time::from_us(2), || {
            minimpi::isend_bytes(32, 7, vec![1u8; 16]);
        });
        rt.run_until_quiet().unwrap_or_else(|| done.get());
        done.get()
    };
    let short = run(0);
    let long = run(512);
    assert!(long > short, "queue scan cost missing: {short} vs {long}");
}

/// Helper so the test reads naturally; the sim has no explicit quiesce API
/// beyond run(), which `run` above already invoked.
trait RunQuiet {
    fn run_until_quiet(&self) -> Option<Time>;
}
impl RunQuiet for upcxx::SimRuntime {
    fn run_until_quiet(&self) -> Option<Time> {
        Some(self.run())
    }
}
