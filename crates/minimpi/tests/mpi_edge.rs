//! minimpi edge cases: self-messaging, wildcard ordering, waitall,
//! allreduce, window misuse, rendezvous stress.

use upcxx::Team;

#[test]
fn send_to_self_matches() {
    upcxx::run_spmd_default(2, || {
        let me = upcxx::rank_me();
        minimpi::isend(me, 3, &[me as u64 * 5]);
        let (v, st) = minimpi::recv::<u64>(me, 3);
        assert_eq!(v, vec![me as u64 * 5]);
        assert_eq!(st.source, me);
        minimpi::barrier();
    });
}

#[test]
fn fifo_order_per_source_and_tag() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            for i in 0..20u64 {
                minimpi::isend(1, 4, &[i]);
            }
        } else {
            // MPI non-overtaking: same (src, tag) messages arrive in order.
            for i in 0..20u64 {
                let (v, _) = minimpi::recv::<u64>(0, 4);
                assert_eq!(v, vec![i]);
            }
        }
        minimpi::barrier();
    });
}

#[test]
fn waitall_conjoins_requests() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let reqs: Vec<_> = (0..8).map(|i| minimpi::isend(1, i, &[i as u64])).collect();
            minimpi::waitall(reqs).wait();
        } else {
            let futs: Vec<_> = (0..8).map(|i| minimpi::irecv::<u64>(0, i)).collect();
            for (i, f) in futs.into_iter().enumerate() {
                assert_eq!(f.wait().0, vec![i as u64]);
            }
        }
        minimpi::barrier();
    });
}

#[test]
fn allreduce_sums_f64() {
    upcxx::run_spmd_default(5, || {
        let me = upcxx::rank_me() as f64;
        let s = minimpi::coll::allreduce_sum(&Team::world(), me + 0.5).wait();
        assert!((s - (0.0 + 1.0 + 2.0 + 3.0 + 4.0 + 2.5)).abs() < 1e-12);
        minimpi::barrier();
    });
}

#[test]
#[should_panic]
fn window_put_beyond_bounds_panics() {
    upcxx::run_spmd_default(1, || {
        let win = minimpi::Win::create(64);
        win.put(0, 60, &[0u8; 16]);
    });
}

#[test]
fn many_rendezvous_in_flight() {
    // More large sends than any plausible pipeline bound; all must land.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            for i in 0..8u64 {
                minimpi::isend(1, 9, &vec![i; 4096]);
            }
            minimpi::barrier();
        } else {
            for i in 0..8u64 {
                let (v, _) = minimpi::recv::<u64>(0, 9);
                assert_eq!(v.len(), 4096);
                assert!(v.iter().all(|&x| x == i));
            }
            minimpi::barrier();
        }
    });
}

#[test]
fn alltoallv_with_all_empty_buffers() {
    upcxx::run_spmd_default(3, || {
        let send: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let recv = minimpi::alltoallv(&Team::world(), send).wait();
        assert!(recv.iter().all(Vec::is_empty));
        minimpi::barrier();
    });
}

#[test]
fn alltoallv_over_subteam() {
    upcxx::run_spmd_default(4, || {
        let team = Team::world().split_by(|r| (r % 2) as u64);
        let tn = team.rank_n();
        let me_t = team.rank_me();
        let send: Vec<Vec<f64>> = (0..tn).map(|d| vec![(me_t * 10 + d) as f64]).collect();
        let recv = minimpi::alltoallv(&team, send).wait();
        for (src, v) in recv.iter().enumerate() {
            assert_eq!(v, &vec![(src * 10 + me_t) as f64]);
        }
        upcxx::barrier();
    });
}

#[test]
fn window_get_reads_initialized_contents() {
    upcxx::run_spmd_default(2, || {
        let win = minimpi::Win::create(256);
        // Each rank initializes its own window region locally.
        let base = win.local_base();
        let me = upcxx::rank_me() as u8;
        base.local_write(&vec![me; 256]);
        minimpi::barrier();
        let other = 1 - upcxx::rank_me();
        let got = win.get(other, 0, 256).wait();
        assert_eq!(got, vec![other as u8; 256]);
        minimpi::barrier();
    });
}
