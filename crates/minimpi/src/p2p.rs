//! Two-sided point-to-point messaging: `isend`/`irecv` with MPI tag
//! matching, eager and rendezvous protocols.
//!
//! Matching follows the MPI rules: a receive matches the oldest incoming
//! message with the same `(source, tag)`, where the posted source may be
//! [`ANY_SOURCE`]. Matching cost is charged **per queue entry scanned** —
//! the real-world penalty of long posted/unexpected queues that the naive
//! point-to-point extend-add variant suffers at scale (Fig. 8).
//!
//! Protocols:
//! * **eager** (`len <= mpi_eager_threshold`): the payload is staged through
//!   an internal copy (per-byte CPU charge) and shipped immediately; the
//!   send completes locally at injection.
//! * **rendezvous**: an RTS travels first; the receiver matches it and
//!   returns a CTS; only then does the payload move. The send completes at
//!   CTS time (buffer handed to the transport).

use crate::charge;
use pgas_des::Time;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use upcxx::{Future, Pod, Promise};

/// Wildcard source for [`irecv`] (MPI_ANY_SOURCE).
pub const ANY_SOURCE: i64 = -1;

/// Delivery metadata returned with every received message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Status {
    /// World rank of the sender.
    pub source: usize,
    /// Message tag.
    pub tag: i32,
}

struct PostedRecv {
    src: i64,
    tag: i32,
    prom: Promise<(Vec<u8>, Status)>,
}

enum Unexpected {
    Eager {
        src: usize,
        tag: i32,
        bytes: Vec<u8>,
    },
    Rts {
        src: usize,
        tag: i32,
        token: u64,
    },
}

/// A rendezvous send parked until its CTS arrives: (dest, payload,
/// completion promise).
type RndvSend = (usize, Vec<u8>, Promise<()>);

/// A matched receive awaiting rendezvous data: (delivery promise, status).
type RndvRecv = (Promise<(Vec<u8>, Status)>, Status);

/// Per-rank MPI library state (posted/unexpected queues, rendezvous
/// tokens). Reached through `upcxx::rank_state`, so it is rank-correct on
/// both conduits.
#[derive(Default)]
pub struct MpiState {
    posted: RefCell<Vec<PostedRecv>>,
    unexpected: RefCell<Vec<Unexpected>>,
    /// Sender side: payloads parked until their CTS arrives.
    rndv_out: RefCell<HashMap<u64, RndvSend>>,
    /// Receiver side: matched receives waiting for rendezvous data, keyed
    /// by (sender, sender-local token) — tokens alone collide across
    /// senders.
    rndv_in: RefCell<HashMap<(usize, u64), RndvRecv>>,
    next_token: Cell<u64>,
    /// Collective sequence number (alltoallv tag space).
    pub(crate) coll_seq: Cell<u64>,
    /// Messages received (diagnostics).
    pub msgs_in: Cell<u64>,
}

pub(crate) fn state() -> Rc<MpiState> {
    upcxx::rank_state::<MpiState>(MpiState::default)
}

fn match_cost(scanned: usize) -> Time {
    match crate::sw() {
        Some(sw) => sw.mpi_recv_match + Time::from_ns(12) * scanned as u64,
        None => Time::ZERO,
    }
}

/// Non-blocking send of `data` to `dst` with `tag`. The returned future
/// readies when the send buffer is reusable (locally complete): immediately
/// after injection for eager messages, at CTS for rendezvous.
pub fn isend<T: Pod>(dst: usize, tag: i32, data: &[T]) -> Future<()> {
    let bytes = upcxx::ser::pod_to_bytes(data);
    isend_bytes(dst, tag, bytes)
}

/// Byte-level non-blocking send (see [`isend`]).
pub fn isend_bytes(dst: usize, tag: i32, bytes: Vec<u8>) -> Future<()> {
    let me = upcxx::rank_me();
    let (eager_thresh, send_o, copy_per_byte) = match crate::sw() {
        Some(sw) => (
            sw.mpi_eager_threshold,
            sw.mpi_send_inject,
            sw.mpi_eager_copy_per_byte,
        ),
        None => (usize::MAX, Time::ZERO, Time::ZERO),
    };
    charge(send_o);
    if bytes.len() <= eager_thresh {
        charge(copy_per_byte * bytes.len() as u64);
        upcxx::rpc_ff(dst, eager_arrival, (me, tag, bytes));
        upcxx::make_future(())
    } else {
        let st = state();
        let token = st.next_token.get();
        st.next_token.set(token + 1);
        let p = Promise::<()>::new();
        let len = bytes.len();
        st.rndv_out
            .borrow_mut()
            .insert(token, (dst, bytes, p.clone()));
        upcxx::rpc_ff(dst, rts_arrival, (me, tag, len, token));
        p.get_future()
    }
}

/// Non-blocking receive matching `(src, tag)`; the future carries the
/// payload bytes and a [`Status`]. `src` may be [`ANY_SOURCE`].
pub fn irecv_bytes(src: i64, tag: i32) -> Future<(Vec<u8>, Status)> {
    let st = state();
    // Scan the unexpected queue for the oldest match.
    let hit = {
        let q = st.unexpected.borrow();
        let found = q.iter().position(|u| {
            let (usrc, utag) = match u {
                Unexpected::Eager { src, tag, .. } => (*src, *tag),
                Unexpected::Rts { src, tag, .. } => (*src, *tag),
            };
            (src == ANY_SOURCE || usrc == src as usize) && utag == tag
        });
        charge(match_cost(found.map(|i| i + 1).unwrap_or(q.len())));
        found
    };
    match hit {
        Some(i) => match st.unexpected.borrow_mut().remove(i) {
            Unexpected::Eager { src, tag, bytes } => {
                st.msgs_in.set(st.msgs_in.get() + 1);
                upcxx::make_future((bytes, Status { source: src, tag }))
            }
            Unexpected::Rts { src, tag, token } => {
                // Matched a rendezvous announcement: grant the transfer.
                let p = Promise::<(Vec<u8>, Status)>::new();
                st.rndv_in
                    .borrow_mut()
                    .insert((src, token), (p.clone(), Status { source: src, tag }));
                upcxx::rpc_ff(src, cts_arrival, (upcxx::rank_me(), token));
                p.get_future()
            }
        },
        None => {
            let p = Promise::<(Vec<u8>, Status)>::new();
            st.posted.borrow_mut().push(PostedRecv {
                src,
                tag,
                prom: p.clone(),
            });
            p.get_future()
        }
    }
}

/// Typed non-blocking receive (payload reinterpreted as `[T]`).
pub fn irecv<T: Pod + Clone>(src: usize, tag: i32) -> Future<(Vec<T>, Status)> {
    irecv_bytes(src as i64, tag).then(|(b, s)| (upcxx::ser::pod_from_bytes(&b), s))
}

/// Typed wildcard-source receive.
pub fn irecv_from_any<T: Pod + Clone>(tag: i32) -> Future<(Vec<T>, Status)> {
    irecv_bytes(ANY_SOURCE, tag).then(|(b, s)| (upcxx::ser::pod_from_bytes(&b), s))
}

/// Blocking send (smp conduit).
pub fn send<T: Pod>(dst: usize, tag: i32, data: &[T]) {
    isend(dst, tag, data).wait();
}

/// Blocking receive (smp conduit).
pub fn recv<T: Pod + Clone>(src: usize, tag: i32) -> (Vec<T>, Status) {
    irecv::<T>(src, tag).wait()
}

// ------------------------------------------------------------- handlers

/// Match an incoming message against the posted queue; returns the matched
/// promise, charging per-entry scan cost.
fn match_posted(src: usize, tag: i32) -> Option<Promise<(Vec<u8>, Status)>> {
    let st = state();
    let pos = {
        let q = st.posted.borrow();
        let found = q
            .iter()
            .position(|p| (p.src == ANY_SOURCE || p.src == src as i64) && p.tag == tag);
        charge(match_cost(found.map(|i| i + 1).unwrap_or(q.len())));
        found
    };
    pos.map(|i| st.posted.borrow_mut().remove(i).prom)
}

fn eager_arrival(args: (usize, i32, Vec<u8>)) {
    let (src, tag, bytes) = args;
    let st = state();
    match match_posted(src, tag) {
        Some(prom) => {
            st.msgs_in.set(st.msgs_in.get() + 1);
            prom.fulfill((bytes, Status { source: src, tag }));
        }
        None => st
            .unexpected
            .borrow_mut()
            .push(Unexpected::Eager { src, tag, bytes }),
    }
}

fn rts_arrival(args: (usize, i32, usize, u64)) {
    let (src, tag, _len, token) = args;
    let st = state();
    match match_posted(src, tag) {
        Some(prom) => {
            st.rndv_in
                .borrow_mut()
                .insert((src, token), (prom, Status { source: src, tag }));
            upcxx::rpc_ff(src, cts_arrival, (upcxx::rank_me(), token));
        }
        None => st
            .unexpected
            .borrow_mut()
            .push(Unexpected::Rts { src, tag, token }),
    }
}

fn cts_arrival(args: (usize, u64)) {
    let (receiver, token) = args;
    let st = state();
    let (dst, bytes, send_prom) = st
        .rndv_out
        .borrow_mut()
        .remove(&token)
        .expect("CTS for unknown rendezvous token");
    debug_assert_eq!(dst, receiver);
    if let Some(sw) = crate::sw() {
        charge(sw.mpi_rndv_setup);
    }
    // Payload moves now; the send buffer is handed off.
    upcxx::rpc_ff(
        receiver,
        rndv_data_arrival,
        (upcxx::rank_me(), token, bytes),
    );
    send_prom.fulfill(());
}

fn rndv_data_arrival(args: (usize, u64, Vec<u8>)) {
    let (src, token, bytes) = args;
    let st = state();
    let (prom, status) = st
        .rndv_in
        .borrow_mut()
        .remove(&(src, token))
        .expect("rendezvous data without a matched receive");
    st.msgs_in.set(st.msgs_in.get() + 1);
    prom.fulfill((bytes, status));
}
