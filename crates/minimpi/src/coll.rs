//! MPI collectives used by the paper's baselines: barrier, `alltoallv`, and
//! an allreduce.
//!
//! `alltoallv` is the communication step of the STRUMPACK-style extend-add
//! (Fig. 8, "MPI Alltoallv" series). It is implemented as the classic
//! pairwise-exchange schedule over the two-sided layer, and it pays the two
//! structural costs the paper's analysis implies:
//!
//! * an **O(P) argument scan** per call (`sendcounts`/`displs` processing),
//!   charged even for ranks with nothing to say;
//! * an exchange with **every** partner, including empty ones — MPI
//!   semantics require the pairwise pattern regardless of payload.

use crate::charge;
use crate::p2p::{irecv_bytes, isend_bytes, state};
use upcxx::{Future, Promise, Team};

/// Non-blocking barrier over `team` (pays the MPI entry overhead, then the
/// same dissemination rounds the UPC++ barrier uses — both libraries sit on
/// the identical transport, as on Cori).
pub fn barrier_async_team(team: &Team) -> Future<()> {
    if let Some(sw) = crate::sw() {
        charge(sw.mpi_send_inject);
    }
    upcxx::barrier_async_team(team)
}

/// Non-blocking world barrier.
pub fn barrier_async() -> Future<()> {
    barrier_async_team(&Team::world())
}

/// Blocking world barrier (smp conduit).
pub fn barrier() {
    barrier_async().wait();
}

/// Non-blocking `MPI_Alltoallv` over `team`: `send[i]` goes to team rank
/// `i`; the future carries the vector received from each team rank (indexed
/// by team rank). Byte-level; see [`alltoallv`] for the typed wrapper.
pub fn alltoallv_bytes(team: &Team, send: Vec<Vec<u8>>) -> Future<Vec<Vec<u8>>> {
    // Tag space: one sequence number per collective call on this rank.
    // Callers whose members issue different collective sequences (e.g. one
    // alltoallv per frontal matrix, with membership varying by front) must
    // use the explicitly tagged variant instead.
    let st = state();
    let seq = st.coll_seq.get();
    st.coll_seq.set(seq + 1);
    let tag = 0x40_0000 | (seq as i32 & 0x3f_ffff);
    alltoallv_bytes_with_tag(team, send, tag)
}

/// `alltoallv` with an explicit matching tag (see [`alltoallv_bytes`]).
pub fn alltoallv_bytes_with_tag(team: &Team, send: Vec<Vec<u8>>, tag: i32) -> Future<Vec<Vec<u8>>> {
    let p = team.rank_n();
    let me = team.rank_me();
    assert_eq!(send.len(), p, "alltoallv needs one buffer per team rank");

    // O(P) argument scan — the cost the RPC approach avoids.
    if let Some(sw) = crate::sw() {
        charge(sw.mpi_a2a_setup_per_rank * p as u64);
    }

    let mut send = send;
    let mut result_futs: Vec<Future<(usize, Vec<u8>)>> = Vec::with_capacity(p);
    // Own contribution: local copy.
    let mine = std::mem::take(&mut send[me]);
    result_futs.push(upcxx::make_future((me, mine)));

    // Pairwise exchange: round r pairs me with (me±r) mod p.
    for r in 1..p {
        let dst_t = (me + r) % p;
        let src_t = (me + p - r) % p;
        let dst_w = team.world_rank(dst_t);
        let src_w = team.world_rank(src_t);
        // Post the receive first (real MPI implementations do), then send.
        let fut = irecv_bytes(src_w as i64, tag).then(move |(bytes, _st)| (src_t, bytes));
        result_futs.push(fut);
        isend_bytes(dst_w, tag, std::mem::take(&mut send[dst_t]));
    }

    upcxx::when_all_vec(result_futs).then(move |pairs| {
        let mut out = vec![Vec::new(); p];
        for (src, bytes) in pairs {
            out[src] = bytes;
        }
        out
    })
}

/// Typed `alltoallv` over `f64` payloads (the extend-add element type).
pub fn alltoallv(team: &Team, send: Vec<Vec<f64>>) -> Future<Vec<Vec<f64>>> {
    let bytes = send
        .into_iter()
        .map(|v| upcxx::ser::pod_to_bytes(&v))
        .collect();
    alltoallv_bytes(team, bytes).then(|recv| {
        recv.into_iter()
            .map(|b| upcxx::ser::pod_from_bytes(&b))
            .collect()
    })
}

/// Non-blocking allreduce (sum of `f64`) over `team` — used by solver
/// residual checks; pays MPI entry cost then rides the tree reduction.
pub fn allreduce_sum(team: &Team, value: f64) -> Future<f64> {
    if let Some(sw) = crate::sw() {
        charge(sw.mpi_send_inject);
    }
    upcxx::reduce_all_team(team, value, add_f64)
}

fn add_f64(a: f64, b: f64) -> f64 {
    a + b
}

/// `MPI_Waitall` convenience: conjoin a set of request futures.
pub fn waitall(reqs: Vec<Future<()>>) -> Future<()> {
    let p = Promise::<()>::new();
    for r in reqs {
        p.require_anonymous(1);
        let p2 = p.clone();
        r.then(move |_| p2.fulfill_anonymous(1));
    }
    p.finalize()
}
