//! # minimpi — the MPI baseline the paper compares against
//!
//! The paper benchmarks UPC++ against Cray MPI three ways: MPI-3 one-sided
//! RMA (Fig. 3), `MPI_Alltoallv` and `MPI_Isend/Irecv` (Fig. 8), plus a
//! general two-sided substrate. We cannot link Cray MPI, so this crate
//! implements the relevant subset **over the same conduits** the `upcxx`
//! runtime uses — the comparison is then two software stacks over identical
//! transport, which is exactly the paper's setting (UPC++/GASNet-EX vs
//! cray-mpich over the same Aries).
//!
//! The structural costs that drive the paper's Fig. 3 gaps are implemented,
//! not assumed:
//!
//! * two-sided messages pay **tag matching** against posted/unexpected
//!   queues (cost grows with queue length — the classic MPI matching
//!   penalty that hurts the naive point-to-point extend-add at scale);
//! * payloads at or below the **eager threshold** are staged through an
//!   internal copy; above it a **rendezvous** handshake (RTS → CTS → DATA)
//!   runs first;
//! * `Win::put` additionally models Cray MPI RMA's software path: per-op
//!   bookkeeping, the eager-copy stage for small puts, and a
//!   **bounded-pipeline rendezvous** for large puts (at most
//!   `mpi_rndv_pipeline` in flight per target) — the mechanism behind the
//!   mid-size bandwidth dip the paper reports at 8 KiB;
//! * `alltoallv` pays an O(P) argument scan per call and exchanges with
//!   every rank including empty partners — the costs that make the
//!   RPC-based extend-add win in Fig. 8.
//!
//! On the smp conduit all extra charges are no-ops (real costs are real);
//! the sim conduit charges them against the rank's virtual CPU.

#![warn(missing_docs)]

pub mod coll;
pub mod p2p;
pub mod rma;

pub use coll::{
    alltoallv, alltoallv_bytes, alltoallv_bytes_with_tag, barrier, barrier_async,
    barrier_async_team, waitall,
};
pub use p2p::{
    irecv, irecv_bytes, irecv_from_any, isend, isend_bytes, recv, send, MpiState, Status,
    ANY_SOURCE,
};
pub use rma::Win;

use pgas_des::Time;

/// Charge `cost` of MPI-library CPU time on the current rank (no-op on smp).
pub(crate) fn charge(cost: Time) {
    upcxx::compute(cost);
}

/// The sim conduit's cost table, if simulated.
pub(crate) fn sw() -> Option<netsim::config::SwCosts> {
    upcxx::sim_sw_costs()
}
