//! MPI-3 one-sided RMA: windows, `put`/`get`, passive-target `flush`.
//!
//! This is the comparison target of the paper's Fig. 3 (IMB `Unidir_put`
//! with passive-target access epochs synchronized by `MPI_Win_flush`). The
//! Cray-MPI-like software structure is implemented explicitly:
//!
//! * every `put` pays per-operation window bookkeeping (`mpi_put_inject`);
//! * puts at or below the eager threshold are staged through an internal
//!   pre-registered buffer (per-byte CPU copy) and then injected;
//! * larger puts take a **rendezvous registration path**: a handshake RPC
//!   to the target precedes the RDMA, and at most `mpi_rndv_pipeline`
//!   such transfers are in flight per target — queuing beyond that. This
//!   bounded pipelining is what dents mid-size flood bandwidth (the paper's
//!   8 KiB dip);
//! * `flush(target)` completes when every prior `put`/`get` to that target
//!   is remotely complete, plus `mpi_flush_overhead` of software time.

use crate::charge;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use upcxx::{Future, GlobalPtr, Pod, Promise};

/// Per-target pipeline state for large (rendezvous) puts.
#[derive(Default)]
struct TargetState {
    /// Number of operations injected but not yet remotely complete.
    outstanding: usize,
    /// Large puts waiting for a pipeline slot: (dst_off, bytes).
    queued: VecDeque<(usize, Vec<u8>)>,
    /// Rendezvous transfers currently in flight.
    rndv_inflight: usize,
    /// Flush promises parked until `outstanding == 0` and the queue drains.
    flush_waiters: Vec<Promise<()>>,
}

struct WinInner {
    bases: Vec<GlobalPtr<u8>>,
    size: usize,
    targets: RefCell<HashMap<usize, TargetState>>,
}

/// An MPI-3 window: one `size`-byte region per team member, opened for
/// passive-target one-sided access (`MPI_Win_create` + `MPI_Win_lock_all`).
#[derive(Clone)]
pub struct Win {
    inner: Rc<WinInner>,
}

impl Win {
    /// Collectively create a window of `size` bytes per rank (smp conduit:
    /// blocks on the pointer exchange; under sim use [`Win::create_async`]).
    pub fn create(size: usize) -> Win {
        let base = upcxx::allocate::<u8>(size);
        let bases = upcxx::allgather(base);
        Win::from_bases(bases, size)
    }

    /// Non-blocking collective window creation.
    pub fn create_async(size: usize) -> Future<Win> {
        let base = upcxx::allocate::<u8>(size);
        let me = upcxx::rank_me();
        fn merge(
            mut a: Vec<(usize, u64, u64)>,
            mut b: Vec<(usize, u64, u64)>,
        ) -> Vec<(usize, u64, u64)> {
            a.append(&mut b);
            a
        }
        use upcxx::Ser as _;
        let mut enc = Vec::new();
        base.ser(&mut enc);
        let rank_word = u64::from_le_bytes(enc[0..8].try_into().unwrap());
        let off_word = u64::from_le_bytes(enc[8..16].try_into().unwrap());
        let n = upcxx::rank_n();
        upcxx::reduce_all(vec![(me, rank_word, off_word)], merge).then(move |all| {
            let mut bases = vec![GlobalPtr::<u8>::null(); n];
            for (r, rank_word, off_word) in all {
                let mut bytes = Vec::with_capacity(16);
                bytes.extend_from_slice(&rank_word.to_le_bytes());
                bytes.extend_from_slice(&off_word.to_le_bytes());
                bases[r] = upcxx::ser::from_bytes(bytes);
            }
            Win::from_bases(bases, size)
        })
    }

    fn from_bases(bases: Vec<GlobalPtr<u8>>, size: usize) -> Win {
        Win {
            inner: Rc::new(WinInner {
                bases,
                size,
                targets: RefCell::new(HashMap::new()),
            }),
        }
    }

    /// Window size per rank.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// This rank's base pointer (for initializing local window contents).
    pub fn local_base(&self) -> GlobalPtr<u8> {
        self.inner.bases[upcxx::rank_me()]
    }

    /// `MPI_Put`: one-sided put of `data` into `target`'s window at byte
    /// offset `dst_off`. Non-blocking; completion is observed via
    /// [`Win::flush`]. Three Cray-MPI-like protocol tiers:
    ///
    /// * **inline** (≤ `mpi_inline_threshold`): data rides in the command —
    ///   only the per-op bookkeeping charge;
    /// * **eager** (≤ `mpi_eager_threshold`): staged through an internal
    ///   registered buffer (per-byte CPU) and an internal software queue hop
    ///   that is pipelined for throughput but delays the completion a flush
    ///   observes (`mpi_eager_sync_delay`);
    /// * **rendezvous** (larger): registration setup cost and a bounded
    ///   pipeline of at most `mpi_rndv_pipeline` in-flight transfers per
    ///   target — transfers queue beyond that, which is what dents mid-size
    ///   flood bandwidth (the paper's 8 KiB dip).
    pub fn put(&self, target: usize, dst_off: usize, data: &[u8]) {
        assert!(dst_off + data.len() <= self.inner.size, "put beyond window");
        let (o_put, inline_thresh, eager_thresh, copy_per_byte) = match crate::sw() {
            Some(sw) => (
                sw.mpi_put_inject,
                sw.mpi_inline_threshold,
                sw.mpi_eager_threshold,
                sw.mpi_eager_copy_per_byte,
            ),
            None => (
                pgas_des::Time::ZERO,
                usize::MAX,
                usize::MAX,
                pgas_des::Time::ZERO,
            ),
        };
        charge(o_put);
        self.inner
            .targets
            .borrow_mut()
            .entry(target)
            .or_default()
            .outstanding += 1;
        if data.len() <= inline_thresh {
            self.inject(target, dst_off, data.to_vec(), pgas_des::Time::ZERO);
        } else if data.len() <= eager_thresh {
            // Eager: internal copy + pipelined queue-hop latency.
            charge(copy_per_byte * data.len() as u64);
            let delay = crate::sw()
                .map(|sw| sw.mpi_eager_sync_delay)
                .unwrap_or(pgas_des::Time::ZERO);
            self.inject(target, dst_off, data.to_vec(), delay);
        } else {
            // Rendezvous path: bounded pipeline per target.
            let can_start = {
                let mut t = self.inner.targets.borrow_mut();
                let ts = t.get_mut(&target).unwrap();
                let limit = crate::sw()
                    .map(|sw| sw.mpi_rndv_pipeline)
                    .unwrap_or(usize::MAX);
                if ts.rndv_inflight < limit {
                    ts.rndv_inflight += 1;
                    true
                } else {
                    ts.queued.push_back((dst_off, data.to_vec()));
                    false
                }
            };
            if can_start {
                self.start_rndv(target, dst_off, data.to_vec());
            }
        }
    }

    /// Typed put of `Pod` elements at an element offset.
    pub fn put_elems<T: Pod>(&self, target: usize, elem_off: usize, data: &[T]) {
        self.put(
            target,
            elem_off * std::mem::size_of::<T>(),
            &upcxx::ser::pod_to_bytes(data),
        );
    }

    /// `MPI_Get`: one-sided read of `len` bytes from `target`'s window.
    pub fn get(&self, target: usize, src_off: usize, len: usize) -> Future<Vec<u8>> {
        assert!(src_off + len <= self.inner.size, "get beyond window");
        if let Some(sw) = crate::sw() {
            charge(sw.mpi_put_inject);
        }
        self.inner
            .targets
            .borrow_mut()
            .entry(target)
            .or_default()
            .outstanding += 1;
        let win = self.clone();
        upcxx::rget(self.inner.bases[target].add(src_off), len).then(move |bytes| {
            win.op_done(target);
            bytes
        })
    }

    /// `MPI_Win_flush(target)`: the future readies when every preceding
    /// one-sided operation to `target` is complete at the target, plus the
    /// flush's own software completion-detection time (the polling loop that
    /// notices the final ack — a latency on the critical path, which is why
    /// it is modeled as a post-completion delay rather than a pre-charged
    /// CPU cost that would overlap the in-flight transfer).
    pub fn flush(&self, target: usize) -> Future<()> {
        let overhead = crate::sw()
            .map(|sw| sw.mpi_flush_overhead)
            .unwrap_or(pgas_des::Time::ZERO);
        let done = {
            let mut t = self.inner.targets.borrow_mut();
            let ts = t.entry(target).or_default();
            if ts.outstanding == 0 {
                upcxx::make_future(())
            } else {
                let p = Promise::<()>::new();
                ts.flush_waiters.push(p.clone());
                p.get_future()
            }
        };
        done.then_fut(move |_| upcxx::after(overhead))
    }

    /// `MPI_Win_flush_all`: flush every target with outstanding traffic.
    pub fn flush_all(&self) -> Future<()> {
        let targets: Vec<usize> = self.inner.targets.borrow().keys().copied().collect();
        let futs = targets.into_iter().map(|t| self.flush(t)).collect();
        upcxx::when_all_vec(futs).then(|_| ())
    }

    /// RDMA injection common to inline/eager paths; tracks remote
    /// completion, optionally delayed by the pipelined software hop.
    fn inject(&self, target: usize, dst_off: usize, bytes: Vec<u8>, extra_delay: pgas_des::Time) {
        let win = self.clone();
        upcxx::rput(&bytes, self.inner.bases[target].add(dst_off)).then(move |_| {
            if extra_delay == pgas_des::Time::ZERO {
                win.op_done(target);
            } else {
                let win2 = win.clone();
                upcxx::after(extra_delay).then(move |_| win2.op_done(target));
            }
        });
    }

    fn start_rndv(&self, target: usize, dst_off: usize, bytes: Vec<u8>) {
        if let Some(sw) = crate::sw() {
            charge(sw.mpi_rndv_setup);
        }
        // Registration + direct RDMA; the pipeline slot is held until remote
        // completion, bounding overlap.
        let win = self.clone();
        upcxx::rput(&bytes, self.inner.bases[target].add(dst_off)).then(move |_| {
            win.rndv_done(target);
        });
    }

    /// A rendezvous transfer finished: free its pipeline slot, maybe start a
    /// queued one, and account completion.
    fn rndv_done(&self, target: usize) {
        let next = {
            let mut t = self.inner.targets.borrow_mut();
            let ts = t.get_mut(&target).unwrap();
            ts.rndv_inflight -= 1;
            ts.queued.pop_front().map(|(off, bytes)| {
                ts.rndv_inflight += 1;
                (off, bytes)
            })
        };
        if let Some((off, bytes)) = next {
            self.start_rndv(target, off, bytes);
        }
        self.op_done(target);
    }

    /// One outstanding op to `target` completed; wake flushes at zero.
    fn op_done(&self, target: usize) {
        let waiters = {
            let mut t = self.inner.targets.borrow_mut();
            let ts = t.get_mut(&target).expect("completion for unknown target");
            ts.outstanding -= 1;
            if ts.outstanding == 0 {
                std::mem::take(&mut ts.flush_waiters)
            } else {
                Vec::new()
            }
        };
        for p in waiters {
            p.fulfill(());
        }
    }
}
