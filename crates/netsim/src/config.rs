//! Machine configurations and calibration constants.
//!
//! Two configs reproduce the paper's testbed partitions (§IV-A):
//! [`MachineConfig::cori_haswell`] and [`MachineConfig::cori_knl`]. The wire
//! constants approximate a Cray Aries NIC; the software-cost constants
//! ([`SwCosts`]) encode the *structural* differences between the GASNet-EX
//! path and a Cray-MPI-like path that the paper credits for its Fig. 3
//! results:
//!
//! * GASNet-EX puts are hardware-offloaded at every size (doorbell write, no
//!   protocol handshake, remote completion acknowledged by the NIC).
//! * The MPI-3 RMA put path pays extra per-operation software bookkeeping,
//!   copies through an internal registered buffer below the eager threshold,
//!   and above it performs a rendezvous registration handshake with a bounded
//!   pipeline depth — producing the characteristic mid-size bandwidth dip
//!   (most pronounced around 8 KiB in the paper).
//!
//! Absolute values are order-of-magnitude calibrations from public Aries /
//! Cray-MPI literature; EXPERIMENTS.md validates only *shapes* against the
//! paper (orderings, ratios, crossover locations), never absolute numbers.

use pgas_des::Time;

/// Raw wire-level parameters (LogGP-style) for one machine.
#[derive(Clone, Debug)]
pub struct NetParams {
    /// One-way latency between two nodes (Aries ≈ 0.5–0.7 µs).
    pub lat_inter: Time,
    /// One-way latency between two ranks on the same node (shared memory).
    pub lat_intra: Time,
    /// Per-byte cost on the NIC, inverse injection bandwidth (`G`).
    pub byte_inter: Time,
    /// Per-byte cost of a shared-memory copy.
    pub byte_intra: Time,
    /// Per-message NIC transmit gap (`g`).
    pub inj_gap: Time,
    /// Per-message NIC receive gap.
    pub rx_gap: Time,
    /// Wire header bytes added to every message.
    pub wire_header: usize,
}

/// Per-operation software (CPU) costs, charged against rank CPU clocks by the
/// `gasnet` and `minimpi` layers. All values are Haswell-baseline; the
/// machine's `cpu_factor` scales them (KNL ≈ 2.8× slower per core).
#[derive(Clone, Debug)]
pub struct SwCosts {
    // --- GASNet-EX-like conduit ---
    /// Injecting a one-sided put/get: descriptor write + NIC doorbell.
    pub gex_rma_inject: Time,
    /// Injecting an active message (marshalling + doorbell).
    pub gex_am_inject: Time,
    /// Dispatching one incoming AM to its handler (excluding handler body).
    pub gex_am_dispatch: Time,
    /// A progress poll that finds nothing to do.
    pub gex_poll: Time,
    /// UPC++-level bookkeeping per operation (promise/queue transitions
    /// through defQ/actQ/compQ).
    pub upcxx_op_overhead: Time,
    /// Serialization/deserialization cost per byte (each side).
    pub ser_per_byte: Time,

    // --- Cray-MPI-like baseline ---
    /// MPI-3 RMA put software path per operation, *beyond* the common
    /// transport injection (epoch checks, win lookup).
    pub mpi_put_inject: Time,
    /// `MPI_Win_flush` software overhead (the remote-completion ack round
    /// itself is charged by the network model).
    pub mpi_flush_overhead: Time,
    /// Per-byte cost of the eager-path internal copy (below the threshold the
    /// payload is staged through a pre-registered buffer).
    pub mpi_eager_copy_per_byte: Time,
    /// Puts at or below this size ride inline in the command (no software
    /// queue hop, no sync delay).
    pub mpi_inline_threshold: usize,
    /// Completion *latency* added to non-inline eager puts: the software
    /// queue hop is pipelined (throughput-neutral) but delays the remote
    /// completion a blocking flush observes.
    pub mpi_eager_sync_delay: Time,
    /// Eager→rendezvous protocol switch threshold in bytes.
    pub mpi_eager_threshold: usize,
    /// Per-operation cost of the rendezvous path (memory registration etc.).
    pub mpi_rndv_setup: Time,
    /// Maximum concurrently outstanding rendezvous transfers per rank pair;
    /// bounds pipelining and creates the mid-size bandwidth dip.
    pub mpi_rndv_pipeline: usize,
    /// Two-sided send/recv software cost per operation (matching queues).
    pub mpi_send_inject: Time,
    /// Receive-side matching cost per message.
    pub mpi_recv_match: Time,
    /// Per-rank setup cost of an alltoallv invocation (argument scan).
    pub mpi_a2a_setup_per_rank: Time,
}

impl SwCosts {
    /// Baseline constants shared by both Cori partitions.
    pub fn aries_defaults() -> SwCosts {
        SwCosts {
            gex_rma_inject: Time::from_ns(250),
            gex_am_inject: Time::from_ns(400),
            gex_am_dispatch: Time::from_ns(150),
            gex_poll: Time::from_ns(60),
            upcxx_op_overhead: Time::from_ns(50),
            ser_per_byte: Time::from_ns_f64(0.05),

            mpi_put_inject: Time::from_ns(30),
            mpi_flush_overhead: Time::from_ns(100),
            mpi_eager_copy_per_byte: Time::from_ns_f64(0.03),
            mpi_inline_threshold: 128,
            mpi_eager_sync_delay: Time::from_ns(350),
            mpi_eager_threshold: 4096,
            mpi_rndv_setup: Time::from_ns(150),
            mpi_rndv_pipeline: 3,
            mpi_send_inject: Time::from_ns(350),
            mpi_recv_match: Time::from_ns(150),
            mpi_a2a_setup_per_rank: Time::from_ns(120),
        }
    }
}

/// Everything needed to instantiate a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Human-readable name used in reports ("cori-haswell", "cori-knl").
    pub name: &'static str,
    /// Ranks packed per node (paper: 32 on Haswell, 68 on KNL for the DHT,
    /// 64 on KNL for extend-add — override the field for that run).
    pub ranks_per_node: usize,
    /// Multiplier applied to all software costs (KNL cores are slower).
    pub cpu_factor: f64,
    /// Wire-level constants.
    pub net: NetParams,
    /// Software-cost constants.
    pub sw: SwCosts,
}

impl MachineConfig {
    /// Cori Haswell: dual 16-core Xeon E5-2698v3 nodes, Aries interconnect.
    pub fn cori_haswell() -> MachineConfig {
        MachineConfig {
            name: "cori-haswell",
            ranks_per_node: 32,
            cpu_factor: 1.0,
            net: NetParams {
                lat_inter: Time::from_ns(550),
                lat_intra: Time::from_ns(120),
                byte_inter: Time::from_ns_f64(0.085), // ≈ 11.7 GB/s per NIC
                byte_intra: Time::from_ns_f64(0.025), // ≈ 40 GB/s
                inj_gap: Time::from_ns(40),
                rx_gap: Time::from_ns(40),
                wire_header: 40,
            },
            sw: SwCosts::aries_defaults(),
        }
    }

    /// Cori KNL: single 68-core Xeon Phi 7250 nodes, same Aries fabric.
    /// The in-order 1.4 GHz cores run the (serial) runtime software paths
    /// ≈ 2.8× slower than the Haswell baseline.
    pub fn cori_knl() -> MachineConfig {
        MachineConfig {
            ranks_per_node: 68,
            cpu_factor: 2.8,
            name: "cori-knl",
            ..MachineConfig::cori_haswell()
        }
    }

    /// A tiny two-node test machine with round numbers, for unit tests.
    pub fn test_2x4() -> MachineConfig {
        MachineConfig {
            name: "test-2x4",
            ranks_per_node: 4,
            cpu_factor: 1.0,
            net: NetParams {
                lat_inter: Time::from_ns(1000),
                lat_intra: Time::from_ns(100),
                byte_inter: Time::from_ns_f64(0.1),
                byte_intra: Time::from_ns_f64(0.01),
                inj_gap: Time::from_ns(50),
                rx_gap: Time::from_ns(50),
                wire_header: 0,
            },
            sw: SwCosts::aries_defaults(),
        }
    }

    /// Scale a software cost by this machine's CPU factor.
    pub fn cpu_cost(&self, base: Time) -> Time {
        base.scale(self.cpu_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_constants_are_sane() {
        let c = MachineConfig::cori_haswell();
        assert_eq!(c.ranks_per_node, 32);
        assert!(c.net.lat_inter > c.net.lat_intra);
        assert!(c.net.byte_inter > c.net.byte_intra);
        // NIC bandwidth in the 5-20 GB/s range expected of Aries.
        let gbps = 1.0 / c.net.byte_inter.as_ns_f64();
        assert!((5.0..20.0).contains(&gbps), "NIC bw {gbps} GB/s");
    }

    #[test]
    fn knl_is_slower_cpu_same_network() {
        let h = MachineConfig::cori_haswell();
        let k = MachineConfig::cori_knl();
        assert_eq!(h.net.lat_inter, k.net.lat_inter);
        assert_eq!(h.net.byte_inter, k.net.byte_inter);
        assert!(k.cpu_factor > 2.0);
        assert_eq!(k.ranks_per_node, 68);
        assert!(k.cpu_cost(Time::from_ns(100)) > h.cpu_cost(Time::from_ns(100)));
    }

    #[test]
    fn mpi_path_adds_cost_over_gex_path() {
        // The structural premise of Fig. 3: the MPI software path is heavier.
        // mpi_* values are *deltas on top of* the common transport path, so
        // the premise is that they are positive, plus protocol sanity.
        let sw = SwCosts::aries_defaults();
        assert!(sw.mpi_put_inject > Time::ZERO);
        assert!(sw.mpi_flush_overhead > Time::ZERO);
        assert!(sw.mpi_eager_sync_delay > Time::ZERO);
        assert!(sw.mpi_rndv_pipeline >= 1);
        assert!(sw.mpi_inline_threshold < sw.mpi_eager_threshold);
    }

    #[test]
    fn cpu_cost_scales() {
        let k = MachineConfig::cori_knl();
        assert_eq!(k.cpu_cost(Time::from_ns(100)), Time::from_ns(280));
    }
}
