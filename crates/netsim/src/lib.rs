//! # netsim — an Aries-like network cost model
//!
//! The paper's testbed is the Cori Cray XC40 (Aries interconnect, Dragonfly
//! topology) in two flavors: Haswell (32 ranks/node in the paper's runs) and
//! KNL (68 ranks/node, slower cores). We cannot run on Cori, so the `gasnet`
//! sim conduit charges communication costs through this model instead. The
//! model is deliberately structural rather than curve-fitted:
//!
//! * every **node** has one NIC with separate transmit and receive engines;
//!   a message occupies the engine for `gap + bytes·per_byte` (LogGP's `g` and
//!   `G`), which is what creates injection-rate contention when many ranks on
//!   one node communicate at once (the weak-scaling stress in Fig. 4);
//! * **inter-node** messages pay a one-way wire latency `L`; **intra-node**
//!   messages bypass the NIC entirely and use shared-memory constants;
//! * per-message **wire headers** are accounted, so tiny transfers see
//!   realistic effective bandwidth;
//! * CPU-side software costs (the LogGP `o`) are *not* charged here — the
//!   `gasnet` and `minimpi` layers charge them against the owning rank's
//!   [`pgas_des::CpuClock`], because that is where the UPC++-vs-MPI structural
//!   differences live.
//!
//! Nothing in this crate depends on the event loop; [`Machine::transfer`] is a
//! pure cost function over mutable NIC clocks, returning the delivery time.

pub mod config;

pub use config::{MachineConfig, NetParams};

use pgas_des::Time;

/// Identifies a simulated process (PGAS rank) within a [`Machine`].
pub type Rank = usize;

/// A machine instance: a rank→node mapping plus per-node NIC clocks.
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    n_ranks: usize,
    n_nodes: usize,
    /// Per-node transmit engine: time at which it next becomes free.
    nic_tx_free: Vec<Time>,
    /// Per-node receive engine.
    nic_rx_free: Vec<Time>,
    /// Counters for reporting.
    msgs: u64,
    bytes: u64,
}

/// The outcome of routing one message through the model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// When the payload is fully available at the destination rank's memory
    /// (for RMA) or AM queue (for active messages).
    pub arrive: Time,
    /// When the source NIC finished injecting — the earliest moment the source
    /// may reuse the send buffer or inject the next message ("local
    /// completion" in GASNet-EX terms).
    pub tx_done: Time,
}

impl Machine {
    /// Build a machine hosting `n_ranks` ranks packed densely onto nodes
    /// (`ranks_per_node` from the config; the last node may be partial).
    pub fn new(cfg: MachineConfig, n_ranks: usize) -> Self {
        assert!(n_ranks > 0, "machine needs at least one rank");
        let n_nodes = n_ranks.div_ceil(cfg.ranks_per_node);
        Machine {
            cfg,
            n_ranks,
            n_nodes,
            nic_tx_free: vec![Time::ZERO; n_nodes],
            nic_rx_free: vec![Time::ZERO; n_nodes],
            msgs: 0,
            bytes: 0,
        }
    }

    /// The configuration this machine was built from.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }
    /// Total ranks hosted.
    pub fn n_ranks(&self) -> usize {
        self.n_ranks
    }
    /// Number of nodes (`ceil(n_ranks / ranks_per_node)`).
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }
    /// Messages routed so far.
    pub fn msg_count(&self) -> u64 {
        self.msgs
    }
    /// Payload bytes routed so far (headers excluded).
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Node hosting `rank`.
    #[inline]
    pub fn node_of(&self, rank: Rank) -> usize {
        debug_assert!(rank < self.n_ranks, "rank {rank} out of range");
        rank / self.cfg.ranks_per_node
    }

    /// Whether two ranks share a node (and thus the shared-memory transport).
    #[inline]
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Route one message of `payload` bytes from `src` to `dst`, handed to the
    /// transport at time `ready`. Advances the involved NIC clocks.
    ///
    /// Self-sends are permitted (loopback: intra-node constants, no NIC).
    pub fn transfer(&mut self, src: Rank, dst: Rank, payload: usize, ready: Time) -> Delivery {
        self.msgs += 1;
        self.bytes += payload as u64;
        let p = &self.cfg.net;
        let wire = payload + p.wire_header;
        if self.same_node(src, dst) {
            // Shared-memory transport: latency + copy cost, no NIC involvement.
            let copy = p.byte_intra * wire as u64;
            let arrive = ready + p.lat_intra + copy;
            Delivery {
                arrive,
                tx_done: ready + copy,
            }
        } else {
            let sn = self.node_of(src);
            let dn = self.node_of(dst);
            let occupy = p.inj_gap + p.byte_inter * wire as u64;
            // Transmit engine serializes injections from all ranks on the node.
            let tx_start = self.nic_tx_free[sn].max(ready);
            let tx_done = tx_start + occupy;
            self.nic_tx_free[sn] = tx_done;
            // Wire latency, then the receive engine serializes arrivals.
            let wire_arrive = tx_done + p.lat_inter;
            let rx_occupy = p.rx_gap + p.byte_inter * wire as u64;
            let rx_start = self.nic_rx_free[dn].max(wire_arrive);
            let arrive = rx_start + rx_occupy;
            self.nic_rx_free[dn] = arrive;
            Delivery { arrive, tx_done }
        }
    }

    /// Cost of a zero-payload hardware-level acknowledgment from `src` to
    /// `dst` handed off at `ready` (used for put remote-completion acks and
    /// rendezvous handshakes). Acks ride the NIC but skip receive-side
    /// serialization (they are consumed by the NIC, not delivered to memory).
    pub fn ack(&mut self, src: Rank, dst: Rank, ready: Time) -> Time {
        let p = &self.cfg.net;
        if self.same_node(src, dst) {
            return ready + p.lat_intra;
        }
        let sn = self.node_of(src);
        let tx_start = self.nic_tx_free[sn].max(ready);
        let tx_done = tx_start + p.inj_gap;
        self.nic_tx_free[sn] = tx_done;
        tx_done + p.lat_inter
    }

    /// Reset NIC clocks and counters (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.nic_tx_free.fill(Time::ZERO);
        self.nic_rx_free.fill(Time::ZERO);
        self.msgs = 0;
        self.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> MachineConfig {
        MachineConfig::cori_haswell()
    }

    #[test]
    fn node_mapping_is_dense() {
        let m = Machine::new(tiny(), 70);
        let rpn = m.config().ranks_per_node;
        assert_eq!(m.node_of(0), 0);
        assert_eq!(m.node_of(rpn - 1), 0);
        assert_eq!(m.node_of(rpn), 1);
        assert_eq!(m.n_nodes(), 70usize.div_ceil(rpn));
        assert!(m.same_node(0, 1));
        assert!(!m.same_node(0, rpn));
    }

    #[test]
    fn intra_node_skips_nic() {
        let mut m = Machine::new(tiny(), 4);
        let d1 = m.transfer(0, 1, 8, Time::ZERO);
        let d2 = m.transfer(2, 3, 8, Time::ZERO);
        // Same-node transfers do not serialize on each other.
        assert_eq!(d1.arrive, d2.arrive);
        let p = &m.config().net;
        let expect = p.lat_intra + p.byte_intra * (8 + p.wire_header) as u64;
        assert_eq!(d1.arrive, expect);
    }

    #[test]
    fn inter_node_pays_latency_and_serializes() {
        let cfg = tiny();
        let rpn = cfg.ranks_per_node;
        let mut m = Machine::new(cfg, 2 * rpn);
        let a = m.transfer(0, rpn, 8, Time::ZERO);
        let b = m.transfer(1, rpn, 8, Time::ZERO);
        // Second message waits for the shared transmit engine.
        assert!(b.tx_done > a.tx_done);
        assert!(a.arrive > a.tx_done);
        let p = &m.config().net;
        assert!(a.arrive >= p.lat_inter);
    }

    #[test]
    fn bandwidth_asymptote_matches_per_byte_cost() {
        let cfg = tiny();
        let rpn = cfg.ranks_per_node;
        let per_byte = cfg.net.byte_inter;
        let mut m = Machine::new(cfg, rpn + 1);
        // Flood 100 x 1MiB messages; steady-state rate ~ 1/byte_inter.
        let sz = 1 << 20;
        let mut last = Delivery {
            arrive: Time::ZERO,
            tx_done: Time::ZERO,
        };
        for _ in 0..100 {
            last = m.transfer(0, rpn, sz, Time::ZERO);
        }
        let total_bytes = 100 * sz as u64;
        let gbps_model = 1.0 / per_byte.as_ns_f64(); // bytes per ns = GB/s
        let measured = total_bytes as f64 / last.arrive.as_ns_f64();
        assert!(
            (measured - gbps_model).abs() / gbps_model < 0.05,
            "measured {measured} GB/s vs model {gbps_model} GB/s"
        );
    }

    #[test]
    fn acks_are_cheap_and_skip_rx() {
        let cfg = tiny();
        let rpn = cfg.ranks_per_node;
        let mut m = Machine::new(cfg, rpn + 1);
        let t = m.ack(0, rpn, Time::ZERO);
        let p = &m.config().net;
        assert_eq!(t, p.inj_gap + p.lat_inter);
    }

    #[test]
    fn reset_clears_state() {
        let cfg = tiny();
        let rpn = cfg.ranks_per_node;
        let mut m = Machine::new(cfg, rpn + 1);
        m.transfer(0, rpn, 64, Time::ZERO);
        assert_eq!(m.msg_count(), 1);
        m.reset();
        assert_eq!(m.msg_count(), 0);
        assert_eq!(m.byte_count(), 0);
        let d = m.transfer(0, rpn, 64, Time::ZERO);
        let d2 = {
            m.reset();
            m.transfer(0, rpn, 64, Time::ZERO)
        };
        assert_eq!(d, d2);
    }

    #[test]
    fn determinism_same_inputs_same_outputs() {
        let run = || {
            let cfg = tiny();
            let rpn = cfg.ranks_per_node;
            let mut m = Machine::new(cfg, 4 * rpn);
            let mut acc = Vec::new();
            for i in 0..200usize {
                let src = i % (2 * rpn);
                let dst = 2 * rpn + (i * 7) % (2 * rpn);
                acc.push(m.transfer(src, dst, 32 * (i % 9 + 1), Time::from_ns(i as u64)));
            }
            acc
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn knl_config_differs_from_haswell() {
        let h = MachineConfig::cori_haswell();
        let k = MachineConfig::cori_knl();
        assert!(k.cpu_factor > h.cpu_factor);
        assert!(k.ranks_per_node > h.ranks_per_node);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized invariants (replacing the former proptest
    //! suite — the workspace builds offline with no external crates).
    use super::*;
    use pgas_des::rng::Rng;

    /// Delivery never precedes hand-off plus the one-way latency floor.
    #[test]
    fn delivery_respects_latency_floor() {
        let mut r = Rng::new(0xf100);
        for _ in 0..256 {
            let payload = r.gen_range(1_000_000);
            let ready = Time::from_ns(r.gen_range(1_000_000) as u64);
            let (src, dst) = (r.gen_range(256), r.gen_range(256));
            let cfg = MachineConfig::cori_haswell();
            let mut m = Machine::new(cfg, 256);
            let d = m.transfer(src, dst, payload, ready);
            let p = &m.config().net;
            let floor = if m.same_node(src, dst) {
                p.lat_intra
            } else {
                p.lat_inter
            };
            assert!(d.arrive >= ready + floor);
            assert!(d.tx_done >= ready);
            assert!(d.arrive >= d.tx_done);
        }
    }

    /// Larger payloads on an otherwise idle machine never arrive earlier.
    #[test]
    fn monotone_in_payload() {
        let mut r = Rng::new(0x404);
        for _ in 0..256 {
            let (a, b) = (r.gen_range(500_000), r.gen_range(500_000));
            let cfg = MachineConfig::cori_haswell();
            let rpn = cfg.ranks_per_node;
            let (small, large) = if a <= b { (a, b) } else { (b, a) };
            let d_small = Machine::new(cfg.clone(), rpn + 1).transfer(0, rpn, small, Time::ZERO);
            let d_large = Machine::new(cfg, rpn + 1).transfer(0, rpn, large, Time::ZERO);
            assert!(d_large.arrive >= d_small.arrive);
        }
    }

    /// The node-0 transmit clock only moves forward under arbitrary traffic.
    #[test]
    fn nic_clocks_monotone() {
        let mut r = Rng::new(0xc10c);
        let cfg = MachineConfig::cori_haswell();
        let mut m = Machine::new(cfg, 128);
        let mut prev_tx = Time::ZERO;
        for _ in 0..512 {
            let (src, dst, len) = (r.gen_range(128), r.gen_range(128), r.gen_range(4096));
            let d = m.transfer(src, dst, len, Time::ZERO);
            if !m.same_node(src, dst) && m.node_of(src) == 0 {
                assert!(d.tx_done >= prev_tx);
                prev_tx = d.tx_done;
            }
        }
    }
}
