//! Hand-rolled Rust lexer: just enough tokenization for the rule engine.
//!
//! The grep lints this analyzer replaces could not tell a call site from a
//! comment, a string literal, or a `#[cfg(test)]` block. The lexer fixes
//! that at the root: comments and literals are consumed here (string/char
//! contents never reach the rules), line-comment text is parsed for
//! `// analyze: allow(rule): justification` suppressions, and a post-pass
//! marks every token inside a `#[cfg(test)]` item so rules can exempt
//! test-only code.
//!
//! This is deliberately *not* a parser: rules work on the token stream with
//! local pattern matching plus brace/paren matching helpers. That keeps the
//! analyzer hermetic (std only), fast (the whole workspace lexes in well
//! under a second), and robust to code it has never seen — unknown syntax
//! just produces tokens no rule matches.

/// Token class. Literal contents are dropped: a string token carries no
/// text, so rules can never accidentally match inside one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `seg_read`, `move`, ...).
    Ident,
    /// Single punctuation character (`.`, `(`, `<`, `|`, ...).
    Punct,
    /// Numeric literal (`0x1f`, `42usize`, ...); text kept for array lengths.
    Num,
    /// String / char / byte-string literal of any flavor (content dropped).
    Lit,
    /// Lifetime (`'a`, `'static`).
    Life,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Token class.
    pub kind: Kind,
    /// Identifier/number text, or the single punctuation char. Empty for
    /// literals.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// Inside a `#[cfg(test)]` item body (set by [`mark_cfg_test`]).
    pub in_test: bool,
}

impl Tok {
    /// Is this an identifier with exactly this text?
    pub fn is(&self, t: &str) -> bool {
        self.kind == Kind::Ident && self.text == t
    }
    /// Is this the punctuation character `c`?
    pub fn p(&self, c: char) -> bool {
        self.kind == Kind::Punct && self.text.as_bytes() == [c as u8]
    }
}

/// One `// analyze: allow(rule-a, rule-b): justification` directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// 1-based line of the comment.
    pub line: u32,
    /// True when the comment is alone on its line: it then covers the *next*
    /// line. A trailing comment covers its own line.
    pub own_line: bool,
    /// Rule names listed in `allow(...)`.
    pub rules: Vec<String>,
    /// Whether a non-empty justification followed the rule list. A
    /// suppression without one is itself reported (`bad-suppression`).
    pub justified: bool,
}

/// Lexer output for one file.
pub struct Lexed {
    /// The token stream (comments and literal contents removed).
    pub toks: Vec<Tok>,
    /// All suppression directives found in line comments.
    pub sups: Vec<Suppression>,
}

/// Tokenize `src`. Never fails: unterminated literals consume to EOF.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut sups = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut code_on_line = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = &src[start.min(b.len())..i];
                if let Some(s) = parse_suppression(text, line, !code_on_line) {
                    sups.push(s);
                }
                // `i` still points at the newline (or EOF); handled above.
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comments, counting newlines.
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        code_on_line = false;
                    }
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                i = skip_string(b, i, &mut line);
                toks.push(lit(line));
                code_on_line = true;
            }
            b'\'' => {
                // Lifetime vs char literal: a lifetime is `'` + ident NOT
                // closed by another `'` (which would be a char like 'a').
                let (tok, next) = lex_quote(src, b, i, &mut line);
                toks.push(tok);
                i = next;
                code_on_line = true;
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: src[start..i].to_string(),
                    line,
                    in_test: false,
                });
                code_on_line = true;
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                // Raw strings (r"", r#""#, br"", cr#""#) and raw identifiers
                // (r#ident) start with ident characters; disambiguate first.
                if let Some(next) = try_raw_or_prefixed_string(b, i, &mut line) {
                    toks.push(lit(line));
                    i = next;
                    code_on_line = true;
                    continue;
                }
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Raw identifier r#name: strip the sigil, keep the name.
                let mut text = &src[start..i];
                if text == "r" && i + 1 < b.len() && b[i] == b'#' && is_ident_start(b[i + 1]) {
                    i += 1;
                    let ns = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    text = &src[ns..i];
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    text: text.to_string(),
                    line,
                    in_test: false,
                });
                code_on_line = true;
            }
            _ => {
                toks.push(Tok {
                    kind: Kind::Punct,
                    text: (c as char).to_string(),
                    line,
                    in_test: false,
                });
                i += 1;
                code_on_line = true;
            }
        }
    }
    Lexed { toks, sups }
}

fn lit(line: u32) -> Tok {
    Tok {
        kind: Kind::Lit,
        text: String::new(),
        line,
        in_test: false,
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

/// Consume a `"..."` string starting at `i` (the opening quote); returns the
/// index after the closing quote.
fn skip_string(b: &[u8], i: usize, line: &mut u32) -> usize {
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\n' => {
                *line += 1;
                j += 1;
            }
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Lifetime or char literal at `i` (the `'`). Returns (token, next index).
fn lex_quote(src: &str, b: &[u8], i: usize, line: &mut u32) -> (Tok, usize) {
    let l = *line;
    if i + 1 < b.len() && is_ident_start(b[i + 1]) {
        // Could be 'a (lifetime) or 'a' (char). Scan the ident run.
        let mut j = i + 1;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        if j < b.len() && b[j] == b'\'' && j == i + 2 {
            // 'x' — single-char literal.
            return (lit(l), j + 1);
        }
        return (
            Tok {
                kind: Kind::Life,
                text: src[i + 1..j].to_string(),
                line: l,
                in_test: false,
            },
            j,
        );
    }
    // Escaped or symbolic char literal: '\n', '\'', '\u{1F}', '(' ...
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return (lit(l), j + 1),
            b'\n' => {
                // Not actually a char literal (e.g. stray quote); bail as
                // punctuation so the lexer cannot wedge.
                return (
                    Tok {
                        kind: Kind::Punct,
                        text: "'".to_string(),
                        line: l,
                        in_test: false,
                    },
                    i + 1,
                );
            }
            _ => j += 1,
        }
    }
    (lit(l), j)
}

/// If `i` starts a raw string (`r"`, `r#"`, `br"`, `cr#"`, ...) or a
/// byte/C string (`b"`, `c"`), consume it and return the index after it.
fn try_raw_or_prefixed_string(b: &[u8], i: usize, line: &mut u32) -> Option<usize> {
    let mut j = i;
    // Optional b/c prefix, then optional r, then #s, then a quote.
    if b[j] == b'b' || b[j] == b'c' {
        j += 1;
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < b.len() && b[j] == b'"' {
            // Raw string: scan for `"` followed by `hashes` #s.
            j += 1;
            while j < b.len() {
                if b[j] == b'\n' {
                    *line += 1;
                }
                if b[j] == b'"'
                    && b[j + 1..].len() >= hashes
                    && b[j + 1..j + 1 + hashes].iter().all(|&h| h == b'#')
                {
                    return Some(j + 1 + hashes);
                }
                j += 1;
            }
            return Some(j);
        }
        return None; // r#ident or plain ident starting with r
    }
    if j > i && j < b.len() && b[j] == b'"' {
        // b"..." / c"..." cooked string.
        return Some(skip_string(b, j, line));
    }
    None
}

/// Parse one line comment's text for a suppression directive. Returns
/// `Some` for anything that *attempts* to be one (so malformed directives
/// can be reported), `None` for ordinary comments.
fn parse_suppression(text: &str, line: u32, own_line: bool) -> Option<Suppression> {
    let at = text.find("analyze:")?;
    let rest = text[at + "analyze:".len()..].trim_start();
    let Some(args) = rest.strip_prefix("allow(") else {
        // `analyze:` without `allow(...)` — report as malformed.
        return Some(Suppression {
            line,
            own_line,
            rules: Vec::new(),
            justified: false,
        });
    };
    let Some(close) = args.find(')') else {
        return Some(Suppression {
            line,
            own_line,
            rules: Vec::new(),
            justified: false,
        });
    };
    let rules: Vec<String> = args[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    let tail = args[close + 1..].trim_start();
    let justified = match tail.strip_prefix(':') {
        Some(j) => !j.trim().is_empty(),
        None => false,
    };
    Some(Suppression {
        line,
        own_line,
        rules,
        justified,
    })
}

/// Post-pass: mark every token inside a `#[cfg(test)]` item body with
/// `in_test = true`, so rules can treat test-only code differently (e.g. a
/// helper thread spawned by a unit test is not a persona violation).
pub fn mark_cfg_test(toks: &mut [Tok]) {
    let mut i = 0;
    while i < toks.len() {
        if toks[i].p('#') && i + 1 < toks.len() && toks[i + 1].p('[') {
            let close = match_close(toks, i + 1, '[', ']');
            let is_test_cfg = toks[i + 1..close].iter().any(|t| t.is("cfg"))
                && toks[i + 1..close].iter().any(|t| t.is("test"));
            if is_test_cfg {
                // Skip any further attributes, then mark the item body.
                let mut j = close + 1;
                while j + 1 < toks.len() && toks[j].p('#') && toks[j + 1].p('[') {
                    j = match_close(toks, j + 1, '[', ']') + 1;
                }
                // Find the body's opening brace (or a `;` ending the item).
                while j < toks.len() && !toks[j].p('{') && !toks[j].p(';') {
                    j += 1;
                }
                if j < toks.len() && toks[j].p('{') {
                    let end = match_close(toks, j, '{', '}').min(toks.len() - 1);
                    for t in toks[j..=end].iter_mut() {
                        t.in_test = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the delimiter closing `toks[open]` (which must be `open_c`).
/// Clamps to the last token when unbalanced, so rules never walk off the
/// end on malformed input.
pub fn match_close(toks: &[Tok], open: usize, open_c: char, close_c: char) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.p(open_c) {
            depth += 1;
        } else if t.p(close_c) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len() - 1
}

/// Index of the `>` closing the `<` at `open`, tolerating `->` (whose `>`
/// must not count) and shift-like `>>` (single-char tokens make each `>`
/// count once). Gives up at `;` or an unbalanced `)`/`}` — generics never
/// span those.
pub fn match_angle(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0isize;
    let mut paren = 0isize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.p('(') || t.p('[') {
            paren += 1;
        } else if t.p(')') || t.p(']') {
            paren -= 1;
            if paren < 0 {
                return k;
            }
        } else if t.p('<') {
            depth += 1;
        } else if t.p('>') && !(k > 0 && toks[k - 1].p('-')) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        } else if t.p(';') || t.p('{') {
            return k;
        }
    }
    toks.len() - 1
}
