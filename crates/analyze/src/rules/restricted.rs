//! `restricted-context`: the static twin of the dynamic sanitizer's
//! restricted-context detector (`san.rs`).
//!
//! RPC handlers and future callbacks execute *inside* `progress()`: calling
//! `.wait()`, `barrier()` or `progress()` there either deadlocks (the wait
//! can only be satisfied by the progress call we are already inside of) or
//! re-enters the engine. The dynamic detector catches this at runtime when
//! the path happens to execute; this rule catches it at lex time.
//!
//! What counts as a restricted region:
//!
//! * closure bodies inside the parens of `rpc(...)` / `rpc_ff(...)` /
//!   `sys_am(...)` calls;
//! * closure bodies inside `.then(...)` / `.then_fut(...)` calls;
//! * the body of a same-file `fn` named as the handler argument (2nd
//!   position) of an `rpc` / `rpc_ff` / `sys_am` call — "use-resolution
//!   lite": no cross-file resolution, by design.
//!
//! `make_ready_future().wait()` is exempt: it completes without progress,
//! and the runtime itself blesses it in restricted contexts.

use crate::lexer::{match_close, Tok};
use crate::{FileCtx, Finding};

/// Entry points whose call parens introduce restricted closure regions and
/// whose 2nd argument names a handler fn.
const RPC_LIKE: &[&str] = &["rpc", "rpc_ff", "sys_am"];

/// Method calls whose closure argument runs as a progress-time callback.
const THEN_LIKE: &[&str] = &["then", "then_fut"];

pub fn run(f: &FileCtx, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    let mut regions: Vec<(usize, usize, &'static str)> = Vec::new();
    let mut handler_names: Vec<String> = Vec::new();

    for i in 0..toks.len() {
        // `rpc(` / `rpc_ff(` / `sys_am(` — with or without `::<...>` turbofish,
        // but not `.rpc(` method calls on unrelated types and not `fn rpc`.
        if let Some(&name) = RPC_LIKE.iter().find(|n| toks[i].is(n)) {
            if i > 0 && (toks[i - 1].is("fn") || toks[i - 1].p('.')) {
                continue;
            }
            let Some(open) = call_open(toks, i + 1) else {
                continue;
            };
            let close = match_close(toks, open, '(', ')');
            let site: &'static str = match name {
                "rpc" => "an `rpc` call",
                "rpc_ff" => "an `rpc_ff` call",
                _ => "a `sys_am` call",
            };
            for body in closure_bodies(toks, open + 1, close) {
                regions.push((body.0, body.1, site));
            }
            if let Some(h) = second_arg_ident(toks, open, close) {
                handler_names.push(h);
            }
        }
        // `.then(` / `.then_fut(`
        if i > 0
            && toks[i - 1].p('.')
            && THEN_LIKE.iter().any(|n| toks[i].is(n))
            && i + 1 < toks.len()
        {
            let Some(open) = call_open(toks, i + 1) else {
                continue;
            };
            let close = match_close(toks, open, '(', ')');
            for body in closure_bodies(toks, open + 1, close) {
                regions.push((body.0, body.1, "a future callback"));
            }
        }
    }

    // Use-resolution lite: a handler fn defined in this same file is itself
    // a restricted region.
    handler_names.sort();
    handler_names.dedup();
    for name in &handler_names {
        if let Some((start, end)) = fn_body(toks, name) {
            regions.push((start, end, "an RPC handler body"));
        }
    }

    for (start, end, site) in regions {
        scan_region(f, start, end, site, out);
    }
}

/// If `toks[i..]` begins a call argument list — `(` directly, or a
/// `::<...>(` turbofish — return the index of the `(`.
fn call_open(toks: &[Tok], i: usize) -> Option<usize> {
    if toks.get(i)?.p('(') {
        return Some(i);
    }
    if toks.get(i)?.p(':') && toks.get(i + 1)?.p(':') && toks.get(i + 2)?.p('<') {
        let close = crate::lexer::match_angle(toks, i + 2);
        if toks.get(close + 1)?.p('(') {
            return Some(close + 1);
        }
    }
    None
}

/// Find closure bodies (`|args| body` / `move |args| body`) between `start`
/// and `end` (exclusive of the call's closing paren). Returns inclusive
/// token ranges covering each body.
fn closure_bodies(toks: &[Tok], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if !toks[i].p('|') || !closure_start(toks, i, start) {
            i += 1;
            continue;
        }
        // Find the `|` closing the parameter list. `||` is an empty list.
        let params_close = if toks.get(i + 1).is_some_and(|t| t.p('|')) {
            i + 1
        } else {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j < end {
                if toks[j].p('(') || toks[j].p('[') {
                    depth += 1;
                } else if toks[j].p(')') || toks[j].p(']') {
                    depth -= 1;
                } else if toks[j].p('|') && depth == 0 {
                    break;
                }
                j += 1;
            }
            j
        };
        let body_start = params_close + 1;
        if body_start >= end {
            break;
        }
        let body_end = if toks[body_start].p('{') {
            match_close(toks, body_start, '{', '}')
        } else {
            // Expression body: runs to the `,` or `)` that ends this
            // argument at nesting depth zero.
            let mut j = body_start;
            let mut depth = 0i32;
            while j < end {
                let t = &toks[j];
                if t.p('(') || t.p('[') || t.p('{') {
                    depth += 1;
                } else if t.p(')') || t.p(']') || t.p('}') {
                    depth -= 1;
                } else if t.p(',') && depth == 0 {
                    break;
                }
                j += 1;
            }
            j.saturating_sub(1)
        };
        out.push((body_start, body_end.min(end)));
        i = body_start;
    }
    out
}

/// Is the `|` at `i` plausibly the start of a closure (vs a bitwise or)?
/// True after `(`, `,`, `move`, `=`, `{`, or at the region start.
fn closure_start(toks: &[Tok], i: usize, region_start: usize) -> bool {
    if i == region_start {
        return true;
    }
    let p = &toks[i - 1];
    p.p('(') || p.p(',') || p.p('{') || p.p('=') || p.is("move")
}

/// If the call's 2nd top-level argument is a bare identifier (or the final
/// segment of a path), return it — that is the handler fn name.
fn second_arg_ident(toks: &[Tok], open: usize, close: usize) -> Option<String> {
    let mut depth = 0i32;
    let mut arg = 0usize;
    let mut seg: Option<String> = None;
    let mut simple = true;
    for t in toks.iter().take(close).skip(open + 1) {
        if t.p('(') || t.p('[') || t.p('{') {
            depth += 1;
        } else if t.p(')') || t.p(']') || t.p('}') {
            depth -= 1;
        } else if t.p(',') && depth == 0 {
            if arg == 1 {
                break;
            }
            arg += 1;
            continue;
        }
        if arg != 1 || depth != 0 {
            continue;
        }
        if t.kind == crate::lexer::Kind::Ident && !t.is("move") {
            seg = Some(t.text.clone());
        } else if !t.p(':') {
            // Anything but a path (`a::b::handler`) is not a bare fn name.
            simple = false;
        }
    }
    if simple {
        seg
    } else {
        None
    }
}

/// Locate `fn <name> ... { body }` in this file; returns the body range.
fn fn_body(toks: &[Tok], name: &str) -> Option<(usize, usize)> {
    for i in 0..toks.len().saturating_sub(1) {
        if toks[i].is("fn") && toks[i + 1].is(name) {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].p('{') && !toks[j].p(';') {
                j += 1;
            }
            if j < toks.len() && toks[j].p('{') {
                return Some((j, match_close(toks, j, '{', '}')));
            }
            return None;
        }
    }
    None
}

/// Report `.wait()` / `barrier()` / `progress()` inside `toks[start..=end]`.
fn scan_region(f: &FileCtx, start: usize, end: usize, site: &str, out: &mut Vec<Finding>) {
    let toks = &f.toks;
    let end = end.min(toks.len().saturating_sub(1));
    for i in start..=end {
        // `.wait(` — except the blessed `make_ready_future().wait()`.
        if toks[i].p('.') && i + 2 <= end && toks[i + 1].is("wait") && toks[i + 2].p('(') {
            let blessed = i >= 3
                && toks[i - 1].p(')')
                && toks[i - 2].p('(')
                && toks[i - 3].is("make_ready_future");
            if !blessed {
                out.push(Finding {
                    file: f.path.clone(),
                    line: toks[i + 1].line,
                    rule: "restricted-context",
                    message: format!(
                        "`.wait()` inside {site} — blocking in a progress-time callback deadlocks"
                    ),
                    hint: "return/chain the future (then/then_fut) instead of waiting inside the callback",
                });
            }
        }
        // `barrier(` / `progress(` calls (definitions excluded by the
        // preceding-`fn` check; `barrier_async` never matches the exact
        // ident).
        if (toks[i].is("barrier") || toks[i].is("progress"))
            && i < end
            && toks[i + 1].p('(')
            && !(i > 0 && toks[i - 1].is("fn"))
        {
            out.push(Finding {
                file: f.path.clone(),
                line: toks[i].line,
                rule: "restricted-context",
                message: format!(
                    "`{}()` inside {site} — collective/progress re-entry from a callback",
                    toks[i].text
                ),
                hint: "hoist the collective out of the callback (e.g. chain on barrier_async)",
            });
        }
    }
}
