//! The rule registry.
//!
//! Two rule classes (ISSUE 8):
//!
//! **Confinement rules** port `scripts/lint.sh`'s greps into structured
//! checks: each names a hookable primitive and the only files allowed to
//! touch it. Unlike the greps they ignore comments/strings (the lexer never
//! emits them), honor `#[cfg(test)]` where that is sound, and accept
//! justified per-line suppressions.
//!
//! **Semantic rules** express what greps cannot: restricted-context (in
//! [`restricted`]), POD/Ser layout ([`pod`]), deprecated-API and fn-anchor
//! discipline (here).

pub mod confine;
pub mod pod;
pub mod restricted;

use crate::lexer::Kind;
use crate::{FileCtx, Finding};

/// Rule name for malformed/unjustified suppressions (not suppressible).
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Every rule name the analyzer knows; `allow(...)` directives naming
/// anything else are reported as [`BAD_SUPPRESSION`] (catches typos that
/// would otherwise silently suppress nothing).
pub const ALL_RULES: &[&str] = &[
    "seg-confinement",
    "conduit-bytes-confinement",
    "dealloc-confinement",
    "span-id-confinement",
    "thread-spawn-confinement",
    "proc-confinement",
    "metrics-cell-confinement",
    "restricted-context",
    "pod-transfer",
    "deprecated-api",
    "frame-fn-anchor",
    BAD_SUPPRESSION,
];

/// Run every per-file rule on one file.
pub fn run_file_rules(f: &FileCtx, out: &mut Vec<Finding>) {
    confine::run(f, out);
    restricted::run(f, out);
    deprecated_api(f, out);
}

/// Validate this file's suppression directives themselves: a directive must
/// name known rules and carry a justification, or it is a finding — silent,
/// unexplained suppressions are exactly the rot the analyzer exists to stop.
pub fn check_suppressions(f: &FileCtx, out: &mut Vec<Finding>) {
    for s in &f.sups {
        if s.rules.is_empty() || !s.justified {
            out.push(Finding {
                file: f.path.clone(),
                line: s.line,
                rule: BAD_SUPPRESSION,
                message: "malformed suppression: expected \
                          `analyze: allow(rule-name): justification` with a \
                          non-empty justification"
                    .to_string(),
                hint: "state which rule is allowed and why the code is sound anyway",
            });
            continue;
        }
        for r in &s.rules {
            if !ALL_RULES.contains(&r.as_str()) {
                out.push(Finding {
                    file: f.path.clone(),
                    line: s.line,
                    rule: BAD_SUPPRESSION,
                    message: format!("suppression names unknown rule `{r}`"),
                    hint: "use a rule name from `upcxx-analyze --list-rules`",
                });
            }
        }
    }
}

/// `deprecated-api`: no new call sites of removed/deprecated surface.
/// `broadcast_gather` survives only as a `#[deprecated]` shim over
/// `allgather`; the `stats_*()` free functions were deleted outright in
/// favor of `upcxx::runtime_stats()`.
fn deprecated_api(f: &FileCtx, out: &mut Vec<Finding>) {
    // (name, may still be *defined*, fix hint). `broadcast_gather`'s shim
    // definition is legal; the stats_*() functions were deleted outright, so
    // even a definition reappearing is a finding (parity with ci.sh's guard).
    const REMOVED: &[(&str, bool, &str)] = &[
        (
            "broadcast_gather",
            true,
            "call `upcxx::allgather` (same semantics, UPC++/MPI name)",
        ),
        (
            "stats_rma_ops",
            false,
            "read `upcxx::runtime_stats().rma_ops`",
        ),
        ("stats_rpcs", false, "read `upcxx::runtime_stats().rpcs`"),
        (
            "stats_agg_msgs",
            false,
            "read `upcxx::runtime_stats().agg_msgs`",
        ),
        (
            "stats_agg_batches",
            false,
            "read `upcxx::runtime_stats().agg_batches`",
        ),
    ];
    for (i, t) in f.toks.iter().enumerate() {
        if t.kind != Kind::Ident {
            continue;
        }
        let Some((_, def_ok, hint)) = REMOVED.iter().find(|(n, _, _)| t.is(n)) else {
            continue;
        };
        if *def_ok && i > 0 && f.toks[i - 1].is("fn") {
            continue;
        }
        out.push(Finding {
            file: f.path.clone(),
            line: t.line,
            rule: "deprecated-api",
            message: format!("use of deprecated API `{}`", t.text),
            hint,
        });
    }
}
