//! `pod-transfer`: structs crossing the wire must have a defined layout.
//!
//! Anything implementing `Ser` (hand serialization) or `Pod` (bitwise
//! copy via rput/rget and View) is reconstructed on another rank, possibly
//! from a different binary. Rust's default `repr(Rust)` layout is not
//! stable across compilations, so every locally-defined struct in a
//! `Ser`/`Pod` position must be `#[repr(C)]` (or `repr(transparent)`).
//! For `Pod` structs — which are memcpy'd — the rule additionally computes
//! the C layout when every field type is a known primitive and flags
//! interior/trailing padding: padding bytes are uninitialized memory that
//! would be shipped to (and compared on) remote ranks.
//!
//! This is a workspace-wide pass: `impl Ser for X` may live in a different
//! file than `struct X`. Resolution is deliberately "lite": same file, then
//! same crate; ambiguous or unknown names are skipped, never guessed.

use crate::lexer::{match_angle, match_close, Kind, Tok};
use crate::{FileCtx, Finding};

/// A struct definition found anywhere in the workspace.
struct StructDef {
    name: String,
    file: String,
    line: u32,
    /// Has `#[repr(C)]` or `#[repr(transparent)]`.
    repr_fixed: bool,
    /// Has `packed` in its repr (no padding by construction).
    packed: bool,
    /// `(field name, size, align)` when every field type is known, else None.
    layout: Option<Vec<(String, usize, usize)>>,
}

/// A `Ser`/`Pod` impl's target type name.
struct TraitImpl {
    target: String,
    file: String,
    line: u32,
    /// "Ser" or "Pod".
    which: &'static str,
}

/// Run the pass over all files.
pub fn run(files: &[FileCtx], out: &mut Vec<Finding>) {
    let mut defs: Vec<StructDef> = Vec::new();
    let mut impls: Vec<TraitImpl> = Vec::new();
    for f in files {
        collect_structs(f, &mut defs);
        collect_impls(f, &mut impls);
    }

    for im in &impls {
        let Some(def) = resolve(&defs, &im.target, &im.file) else {
            continue;
        };
        if !def.repr_fixed {
            out.push(Finding {
                file: def.file.clone(),
                line: def.line,
                rule: "pod-transfer",
                message: format!(
                    "struct `{}` implements `{}` (at {}:{}) but is not `#[repr(C)]` — \
                     repr(Rust) layout is not stable across ranks",
                    def.name, im.which, im.file, im.line
                ),
                hint: "add #[repr(C)] (or #[repr(transparent)] for single-field wrappers)",
            });
        }
        if im.which == "Pod" && !def.packed {
            if let Some(fields) = &def.layout {
                report_padding(def, fields, out);
            }
        }
    }
}

/// Same-file, then same-crate, then unique-anywhere resolution.
fn resolve<'a>(defs: &'a [StructDef], name: &str, from_file: &str) -> Option<&'a StructDef> {
    let named: Vec<&StructDef> = defs.iter().filter(|d| d.name == name).collect();
    if let Some(d) = named.iter().find(|d| d.file == from_file) {
        return Some(d);
    }
    let crate_of = |p: &str| p.splitn(3, '/').take(2).collect::<Vec<_>>().join("/");
    let local: Vec<&&StructDef> = named
        .iter()
        .filter(|d| crate_of(&d.file) == crate_of(from_file))
        .collect();
    if local.len() == 1 {
        return Some(local[0]);
    }
    if named.len() == 1 {
        return Some(named[0]);
    }
    None
}

fn report_padding(def: &StructDef, fields: &[(String, usize, usize)], out: &mut Vec<Finding>) {
    let mut off = 0usize;
    let mut max_align = 1usize;
    for (name, size, align) in fields {
        let aligned = off.div_ceil(*align) * *align;
        if aligned != off {
            out.push(Finding {
                file: def.file.clone(),
                line: def.line,
                rule: "pod-transfer",
                message: format!(
                    "Pod struct `{}` has {} byte(s) of padding before field `{}` — \
                     uninitialized bytes would cross the wire",
                    def.name,
                    aligned - off,
                    name
                ),
                hint: "reorder fields largest-first or add explicit padding fields",
            });
        }
        off = aligned + size;
        max_align = max_align.max(*align);
    }
    let total = off.div_ceil(max_align) * max_align;
    if total != off {
        out.push(Finding {
            file: def.file.clone(),
            line: def.line,
            rule: "pod-transfer",
            message: format!(
                "Pod struct `{}` has {} trailing padding byte(s) — \
                 uninitialized bytes would cross the wire",
                def.name,
                total - off
            ),
            hint: "reorder fields largest-first or add explicit padding fields",
        });
    }
}

/// Scan one file for `struct` definitions, capturing repr and field layout.
fn collect_structs(f: &FileCtx, out: &mut Vec<StructDef>) {
    let toks = &f.toks;
    // Map attr-close `]` index → attr-start `#` index, for backward walks.
    let mut attr_of_close: std::collections::HashMap<usize, usize> =
        std::collections::HashMap::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].p('#') && toks[i + 1].p('[') {
            let close = match_close(toks, i + 1, '[', ']');
            attr_of_close.insert(close, i);
            i = close + 1;
        } else {
            i += 1;
        }
    }

    for i in 0..toks.len() {
        if !toks[i].is("struct") || i + 1 >= toks.len() || toks[i + 1].kind != Kind::Ident {
            continue;
        }
        let name = toks[i + 1].text.clone();
        // Walk backwards over visibility (`pub`, `pub(crate)`) to the attrs.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is("pub") || p.is("crate") || p.is("super") || p.is("in") || p.p('(') || p.p(')') {
                j -= 1;
            } else {
                break;
            }
        }
        let (mut repr_fixed, mut packed) = (false, false);
        while j > 0 {
            let Some(&start) = attr_of_close.get(&(j - 1)) else {
                break;
            };
            let attr = &toks[start..j];
            if attr.iter().any(|t| t.is("repr")) {
                repr_fixed |= attr.iter().any(|t| t.is("C") || t.is("transparent"));
                packed |= attr.iter().any(|t| t.is("packed"));
            }
            j = start;
        }
        // Body: `{ fields }`, `( tuple );`, or `;`. Generic structs get
        // layout=None unless fields are still all-primitive.
        let mut k = i + 2;
        if k < toks.len() && toks[k].p('<') {
            k = match_angle(toks, k) + 1;
        }
        while k < toks.len() && !toks[k].p('{') && !toks[k].p('(') && !toks[k].p(';') {
            k += 1;
        }
        let layout = if k < toks.len() && toks[k].p('{') {
            parse_fields(toks, k, match_close(toks, k, '{', '}'), false)
        } else if k < toks.len() && toks[k].p('(') {
            parse_fields(toks, k, match_close(toks, k, '(', ')'), true)
        } else {
            Some(Vec::new()) // unit struct: zero-size, no padding
        };
        out.push(StructDef {
            name,
            file: f.path.clone(),
            line: toks[i + 1].line,
            repr_fixed,
            packed,
            layout,
        });
    }
}

/// Parse the fields between `open` and `close` into (name, size, align),
/// or None if any field type is not a known primitive.
fn parse_fields(
    toks: &[Tok],
    open: usize,
    close: usize,
    tuple: bool,
) -> Option<Vec<(String, usize, usize)>> {
    let mut fields = Vec::new();
    let mut j = open + 1;
    let mut idx = 0usize;
    while j < close {
        // Skip field attributes and visibility.
        while j < close && toks[j].p('#') && toks.get(j + 1).is_some_and(|t| t.p('[')) {
            j = match_close(toks, j + 1, '[', ']') + 1;
        }
        while j < close
            && (toks[j].is("pub")
                || toks[j].p('(')
                    && toks
                        .get(j + 1)
                        .is_some_and(|t| t.is("crate") || t.is("super")))
        {
            if toks[j].p('(') {
                j = match_close(toks, j, '(', ')') + 1;
            } else {
                j += 1;
            }
        }
        if j >= close {
            break;
        }
        // Field end: the `,` at depth 0, or `close`.
        let mut end = j;
        let mut depth = 0i32;
        while end < close {
            let t = &toks[end];
            if t.p('(') || t.p('[') || t.p('{') || t.p('<') {
                depth += 1;
            } else if t.p(')') || t.p(']') || t.p('}') || (t.p('>') && !toks[end - 1].p('-')) {
                depth -= 1;
            } else if t.p(',') && depth == 0 {
                break;
            }
            end += 1;
        }
        let (name, ty_start) = if tuple {
            (format!("{idx}"), j)
        } else {
            // `name : type`
            let colon = (j..end).find(|&x| toks[x].p(':'))?;
            (toks[j].text.clone(), colon + 1)
        };
        let (size, align) = prim_layout(&toks[ty_start..end])?;
        fields.push((name, size, align));
        idx += 1;
        j = end + 1;
    }
    Some(fields)
}

/// (size, align) of a primitive-enough type, or None if unknown.
fn prim_layout(ty: &[Tok]) -> Option<(usize, usize)> {
    if ty.is_empty() {
        return None;
    }
    // `[T; N]` arrays of primitives.
    if ty[0].p('[') {
        let semi = ty.iter().position(|t| t.p(';'))?;
        let (es, ea) = prim_layout(&ty[1..semi])?;
        let n: usize = ty
            .get(semi + 1)
            .filter(|t| t.kind == Kind::Num)?
            .text
            .parse()
            .ok()?;
        return Some((es * n, ea));
    }
    // `PhantomData<...>` is zero-sized, align 1 (possibly behind a path).
    if ty.iter().any(|t| t.is("PhantomData")) {
        return Some((0, 1));
    }
    if ty.len() != 1 {
        return None;
    }
    let s = ty[0].text.as_str();
    Some(match s {
        "u8" | "i8" | "bool" => (1, 1),
        "u16" | "i16" => (2, 2),
        "u32" | "i32" | "f32" | "char" => (4, 4),
        "u64" | "i64" | "f64" => (8, 8),
        // 64-bit targets only — all this workspace supports.
        "usize" | "isize" => (8, 8),
        _ => return None,
    })
}

/// Scan one file for `impl ... Ser for X` / `impl ... Pod for X`.
fn collect_impls(f: &FileCtx, out: &mut Vec<TraitImpl>) {
    let toks = &f.toks;
    for i in 0..toks.len() {
        if !toks[i].is("impl") {
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].p('<') {
            j = match_angle(toks, j) + 1;
        }
        // Trait path up to `for` (depth-0), else inherent impl — skip.
        let mut trait_name: Option<&str> = None;
        let mut depth = 0i32;
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.p('<') {
                depth += 1;
            } else if t.p('>') && !toks[k - 1].p('-') {
                depth -= 1;
            } else if t.p('{') || t.p(';') {
                trait_name = None;
                break;
            } else if depth == 0 && t.is("for") {
                break;
            } else if depth == 0 && t.kind == Kind::Ident {
                trait_name = Some(&t.text);
            }
            k += 1;
        }
        let which = match trait_name {
            Some("Ser") => "Ser",
            Some("Pod") => "Pod",
            _ => continue,
        };
        if k >= toks.len() || !toks[k].is("for") {
            continue;
        }
        // Target type: last depth-0 ident before `{` / `where`.
        let mut target: Option<(String, u32)> = None;
        let mut depth = 0i32;
        let mut m = k + 1;
        while m < toks.len() {
            let t = &toks[m];
            if t.p('<') {
                depth += 1;
            } else if t.p('>') && !toks[m - 1].p('-') {
                depth -= 1;
            } else if t.p('{') || t.is("where") {
                break;
            } else if depth == 0 && t.kind == Kind::Ident {
                target = Some((t.text.clone(), t.line));
            }
            m += 1;
        }
        if let Some((name, line)) = target {
            out.push(TraitImpl {
                target: name,
                file: f.path.clone(),
                line,
                which,
            });
        }
    }
}
