//! Confinement rules: each hookable primitive of the runtime may appear in
//! exactly the files where the sanitizer/tracer brackets it. These are the
//! structured ports of `scripts/lint.sh`'s greps (kept behind `--legacy`),
//! plus the `frame-fn-anchor` rule for fn-pointer shipping discipline.

use crate::lexer::{match_angle, Kind};
use crate::{FileCtx, Finding};

/// Run every confinement rule on one file.
pub fn run(f: &FileCtx, out: &mut Vec<Finding>) {
    seg_access(f, out);
    conduit_bytes(f, out);
    dealloc(f, out);
    span_id(f, out);
    thread_spawn(f, out);
    proc_surface(f, out);
    metrics_cells(f, out);
    frame_fn_anchor(f, out);
}

/// Is `path` under one of these workspace-relative directory prefixes?
fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

/// `seg-confinement`: raw segment access (`seg_base` / `seg_read` /
/// `seg_write` / `seg_with_mut` / `seg_fill`) stays in rma.rs and
/// global_ptr.rs — anywhere else reads or writes segment memory behind the
/// sanitizer's shadow state.
fn seg_access(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) {
        return;
    }
    let allowed = matches!(
        f.path.as_str(),
        "crates/core/src/rma.rs" | "crates/core/src/global_ptr.rs"
    );
    if allowed {
        return;
    }
    const NAMES: &[&str] = &[
        "seg_base",
        "seg_read",
        "seg_write",
        "seg_with_mut",
        "seg_fill",
    ];
    for t in &f.toks {
        if t.kind == Kind::Ident && NAMES.iter().any(|n| t.is(n)) {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "seg-confinement",
                message: format!(
                    "raw segment access `{}` outside rma.rs/global_ptr.rs bypasses the sanitizer",
                    t.text
                ),
                hint: "go through upcxx::rput/rget (rma.rs) or GlobalPtr local access (global_ptr.rs)",
            });
        }
    }
}

/// `conduit-bytes-confinement`: the conduit's raw byte windows
/// (`.put_bytes(` / `.get_bytes(` / `.fill_bytes(`) are only called where
/// check_rma/mark_complete hooks bracket them: rma.rs, global_ptr.rs (behind
/// is_local) and the deferred-queue drain in ctx.rs.
fn conduit_bytes(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) {
        return;
    }
    if matches!(
        f.path.as_str(),
        "crates/core/src/rma.rs" | "crates/core/src/global_ptr.rs" | "crates/core/src/ctx.rs"
    ) {
        return;
    }
    const NAMES: &[&str] = &["put_bytes", "get_bytes", "fill_bytes"];
    for w in windows3(f) {
        let (a, b, c) = w;
        if f.toks[a].p('.') && NAMES.iter().any(|n| f.toks[b].is(n)) && f.toks[c].p('(') {
            out.push(Finding {
                file: f.path.clone(),
                line: f.toks[b].line,
                rule: "conduit-bytes-confinement",
                message: format!(
                    "conduit byte access `.{}(` outside rma.rs/global_ptr.rs/ctx.rs bypasses the sanitizer",
                    f.toks[b].text
                ),
                hint: "route the transfer through the RMA entry points in rma.rs",
            });
        }
    }
}

/// `dealloc-confinement`: direct `.dealloc(` on the segment allocator stays
/// in alloc.rs, where quarantine, poisoning and bad-free diagnostics live.
fn dealloc(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) || f.path == "crates/core/src/alloc.rs" {
        return;
    }
    for (a, b, c) in windows3(f) {
        if f.toks[a].p('.') && f.toks[b].is("dealloc") && f.toks[c].p('(') {
            out.push(Finding {
                file: f.path.clone(),
                line: f.toks[b].line,
                rule: "dealloc-confinement",
                message: "direct `.dealloc(` outside alloc.rs bypasses quarantine/bad-free checks"
                    .to_string(),
                hint: "free through upcxx::deallocate / alloc::segment_free",
            });
        }
    }
}

/// `span-id-confinement`: `next_op.get(` / `next_op.set(` stays in trace.rs;
/// `(origin, id)` is globally unique only if every id comes from
/// `trace::new_span_id`.
fn span_id(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) || f.path == "crates/core/src/trace.rs" {
        return;
    }
    for i in 0..f.toks.len().saturating_sub(3) {
        if f.toks[i].is("next_op")
            && f.toks[i + 1].p('.')
            && (f.toks[i + 2].is("get") || f.toks[i + 2].is("set"))
            && f.toks[i + 3].p('(')
        {
            out.push(Finding {
                file: f.path.clone(),
                line: f.toks[i].line,
                rule: "span-id-confinement",
                message: "span-id counter accessed outside trace.rs".to_string(),
                hint: "allocate span ids via trace::new_span_id",
            });
        }
    }
}

/// `thread-spawn-confinement`: the progress persona is the only hidden
/// thread the core runtime may create; its lifecycle discipline lives in
/// persona.rs. Unit-test helper threads (`#[cfg(test)]`) are exempt — the
/// grep could not make that distinction.
fn thread_spawn(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) || f.path == "crates/core/src/persona.rs" {
        return;
    }
    for i in 0..f.toks.len().saturating_sub(3) {
        if !f.toks[i].is("thread") || !f.toks[i + 1].p(':') || !f.toks[i + 2].p(':') {
            continue;
        }
        let target = &f.toks[i + 3];
        if !(target.is("spawn") || target.is("Builder")) || target.in_test {
            continue;
        }
        out.push(Finding {
            file: f.path.clone(),
            line: target.line,
            rule: "thread-spawn-confinement",
            message: format!(
                "`thread::{}` outside persona.rs breaks the persona discipline",
                target.text
            ),
            hint:
                "let persona.rs own thread lifecycle (engine lock, stop flag, join-before-disable)",
        });
    }
}

/// `proc-confinement`: process/socket/asm primitives (`UnixListener`,
/// `UnixStream`, `Command::new`, `asm!`) stay in the proc conduit's
/// launcher (crates/gasnet/src/proc.rs), which owns child supervision and
/// segment mapping.
fn proc_surface(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/", "crates/gasnet/src/"])
        || f.path == "crates/gasnet/src/proc.rs"
    {
        return;
    }
    let hint = "keep process/socket/mmap primitives inside the proc conduit launcher (proc.rs)";
    for (i, t) in f.toks.iter().enumerate() {
        if t.is("UnixListener") || t.is("UnixStream") {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "proc-confinement",
                message: format!(
                    "`{}` outside proc.rs escapes the launcher's supervision",
                    t.text
                ),
                hint,
            });
        } else if t.is("Command")
            && i + 3 < f.toks.len()
            && f.toks[i + 1].p(':')
            && f.toks[i + 2].p(':')
            && f.toks[i + 3].is("new")
        {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "proc-confinement",
                message: "`Command::new` outside proc.rs escapes the launcher's supervision"
                    .to_string(),
                hint,
            });
        } else if t.is("asm") && i + 1 < f.toks.len() && f.toks[i + 1].p('!') {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "proc-confinement",
                message: "inline `asm!` outside proc.rs escapes the launcher's supervision"
                    .to_string(),
                hint,
            });
        }
    }
}

/// `metrics-cell-confinement`: the always-on metrics registry's raw cells
/// are reached as `<ctx>.metrics.<field>`; every such access stays in
/// metrics.rs, which owns the single-writer `Cell` discipline and the
/// flight ring's memory ordering. Instrumented modules go through the
/// `crate::metrics::on_*`/`count_*` hooks (a `::` path, which this rule
/// deliberately does not match) — a raw cell bump elsewhere could tear a
/// histogram update or skip the flight recorder.
fn metrics_cells(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) || f.path == "crates/core/src/metrics.rs" {
        return;
    }
    for (a, b, c) in windows3(f) {
        if f.toks[a].p('.') && f.toks[b].is("metrics") && f.toks[c].p('.') {
            out.push(Finding {
                file: f.path.clone(),
                line: f.toks[b].line,
                rule: "metrics-cell-confinement",
                message: "raw metrics-cell access `.metrics.` outside metrics.rs breaks the \
                          single-writer cell discipline"
                    .to_string(),
                hint: "record through the crate::metrics::on_*/count_* hooks; read via \
                       upcxx::metrics::snapshot()",
            });
        }
    }
}

/// `frame-fn-anchor`: fn pointers cross ranks only as anchor-relative
/// offsets (ASLR-stable). Three sub-checks inside crates/core/src:
///
/// 1. the anchor helpers (`encode_fn` / `decode_fn` / `code_anchor` /
///    `anchor_symbol`) stay in frame.rs and dist.rs;
/// 2. `transmute::<..>` whose type arguments mention `fn` or `Tramp` (i.e.
///    forging a fn pointer from bits) stays in frame.rs, rpc.rs, dist.rs —
///    the decode sites guarded by the `decode_fn` SAFETY contract;
/// 3. the raw-cast idiom `as usize as u64` is banned outright: that is how
///    an absolute fn address would sneak into a wire frame.
fn frame_fn_anchor(f: &FileCtx, out: &mut Vec<Finding>) {
    if !in_scope(&f.path, &["crates/core/src/"]) {
        return;
    }
    let anchor_home = matches!(
        f.path.as_str(),
        "crates/core/src/frame.rs" | "crates/core/src/dist.rs"
    );
    let transmute_home = matches!(
        f.path.as_str(),
        "crates/core/src/frame.rs" | "crates/core/src/rpc.rs" | "crates/core/src/dist.rs"
    );
    const HELPERS: &[&str] = &["encode_fn", "decode_fn", "code_anchor", "anchor_symbol"];
    for (i, t) in f.toks.iter().enumerate() {
        if !anchor_home && t.kind == Kind::Ident && HELPERS.iter().any(|n| t.is(n)) {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "frame-fn-anchor",
                message: format!("anchor helper `{}` used outside frame.rs/dist.rs", t.text),
                hint: "ship fn pointers through AmDesc/FnToken so frame.rs owns encode/decode",
            });
        }
        // `transmute :: < ...fn/Tramp... >`
        if !transmute_home
            && t.is("transmute")
            && i + 3 < f.toks.len()
            && f.toks[i + 1].p(':')
            && f.toks[i + 2].p(':')
            && f.toks[i + 3].p('<')
        {
            let close = match_angle(&f.toks, i + 3);
            if f.toks[i + 3..=close]
                .iter()
                .any(|a| a.is("fn") || a.is("Tramp"))
            {
                out.push(Finding {
                    file: f.path.clone(),
                    line: t.line,
                    rule: "frame-fn-anchor",
                    message: "fn-pointer transmute outside frame.rs/rpc.rs/dist.rs".to_string(),
                    hint: "decode fn pointers only via frame::decode_fn at the blessed sites",
                });
            }
        }
        if t.is("as")
            && i + 3 < f.toks.len()
            && f.toks[i + 1].is("usize")
            && f.toks[i + 2].is("as")
            && f.toks[i + 3].is("u64")
        {
            out.push(Finding {
                file: f.path.clone(),
                line: t.line,
                rule: "frame-fn-anchor",
                message: "raw `as usize as u64` cast — absolute addresses must not reach the wire"
                    .to_string(),
                hint: "use frame::encode_fn for fn pointers (anchor-relative, ASLR-stable)",
            });
        }
    }
}

/// Indices of every consecutive token triple.
fn windows3(f: &FileCtx) -> impl Iterator<Item = (usize, usize, usize)> {
    (0..f.toks.len().saturating_sub(2)).map(|i| (i, i + 1, i + 2))
}
