//! `upcxx-analyze` — a hermetic static analyzer for the UPC++ reproduction.
//!
//! The runtime's correctness tooling rests on *interposition contracts*:
//! raw segment access, conduit byte windows, allocator frees, span-id
//! allocation, thread creation and process/socket primitives must each stay
//! confined to one blessed module, or the PGAS sanitizer (`upcxx::san`) can
//! no longer vouch for what it observes. Those contracts used to be grep
//! rules in `scripts/lint.sh` — blind to comments, strings and `#[cfg(test)]`
//! blocks, and unable to express anything semantic. This crate replaces them
//! with a lexer-backed rule engine that also checks what greps cannot:
//!
//! * [`rules::restricted`] — `.wait()` / `barrier()` / `progress()` lexically
//!   inside RPC handlers and `.then` callbacks (the static twin of the
//!   dynamic sanitizer's restricted-context detector);
//! * [`rules::pod`] — every locally-defined struct crossing `Ser`/`Pod`
//!   must be `#[repr(C)]`, and `Pod` structs must have no padding the
//!   analyzer can compute;
//! * deprecated-API and fn-anchor rules (see [`rules`]).
//!
//! Suppressions are per-line comments with mandatory justification:
//! `// analyze: allow(rule-name): why this is sound`.
//!
//! Zero dependencies; the whole workspace analyzes in well under a second.

pub mod lexer;
pub mod rules;
mod walk;

use lexer::{Lexed, Suppression, Tok};
use std::path::Path;

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name (kebab-case; valid in `analyze: allow(...)`).
    pub rule: &'static str,
    /// What is wrong, with enough context to act on.
    pub message: String,
    /// How to fix it.
    pub hint: &'static str,
}

impl Finding {
    /// `file:line: [rule] message` — the text-format line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: [{}] {}\n    fix: {}",
            self.file, self.line, self.rule, self.message, self.hint
        )
    }
}

/// A lexed source file plus everything rules need to scope themselves.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes (`crates/core/src/rma.rs`).
    pub path: String,
    /// Token stream with `in_test` marked.
    pub toks: Vec<Tok>,
    /// Suppression directives found in this file.
    pub sups: Vec<Suppression>,
    /// Whole file is test code (lives under a `tests/` or `benches/` dir).
    pub test_file: bool,
}

impl FileCtx {
    /// Lex `src` as though it lived at `path` relative to the workspace root.
    pub fn new(path: &str, src: &str) -> FileCtx {
        let Lexed { mut toks, sups } = lexer::lex(src);
        lexer::mark_cfg_test(&mut toks);
        let test_file = path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches");
        if test_file {
            for t in &mut toks {
                t.in_test = true;
            }
        }
        FileCtx {
            path: path.to_string(),
            toks,
            sups,
            test_file,
        }
    }

    /// File name without directories (`rma.rs`).
    pub fn file_name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// Does a suppression for `rule` cover `line`? Trailing comments cover
    /// their own line; a comment alone on its line covers the next one.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.sups.iter().any(|s| {
            s.justified
                && s.rules.iter().any(|r| r == rule)
                && if s.own_line {
                    s.line + 1 == line
                } else {
                    s.line == line
                }
        })
    }
}

/// Analysis result.
#[derive(Default)]
pub struct Report {
    /// All unsuppressed findings, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Analyze in-memory sources: `(workspace-relative path, contents)` pairs.
/// This is the whole engine; [`analyze_root`] only adds the directory walk.
pub fn analyze_sources(sources: &[(String, String)]) -> Report {
    let files: Vec<FileCtx> = sources.iter().map(|(p, s)| FileCtx::new(p, s)).collect();

    let mut findings = Vec::new();
    for f in &files {
        rules::run_file_rules(f, &mut findings);
        rules::check_suppressions(f, &mut findings);
    }
    rules::pod::run(&files, &mut findings);

    // Apply suppressions (a finding is dropped only by a justified directive
    // naming its rule on/above its line; bad-suppression itself cannot be
    // suppressed).
    let by_path: std::collections::HashMap<&str, &FileCtx> =
        files.iter().map(|f| (f.path.as_str(), f)).collect();
    findings.retain(|fd| {
        fd.rule == rules::BAD_SUPPRESSION
            || !by_path
                .get(fd.file.as_str())
                .is_some_and(|f| f.suppressed(fd.rule, fd.line))
    });

    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    Report {
        findings,
        files_scanned: files.len(),
    }
}

/// Walk a workspace root and analyze every `.rs` file in it, skipping
/// `target/`, hidden dirs, and this crate's own test fixtures (which are
/// deliberate rule violations).
pub fn analyze_root(root: &Path) -> std::io::Result<Report> {
    let sources = walk::collect_sources(root)?;
    Ok(analyze_sources(&sources))
}
