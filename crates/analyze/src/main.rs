//! `upcxx-analyze` CLI.
//!
//! ```text
//! cargo run -p upcxx-analyze --release -- [--format=text|json] [--root DIR] [--list-rules]
//! ```
//!
//! Exit status: 0 when the scan is clean, 1 when there are findings, 2 on
//! usage/IO errors — so CI can gate on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if let Some(v) = a.strip_prefix("--format=") {
            format = v.to_string();
        } else if a == "--format" {
            format = args.next().unwrap_or_default();
        } else if let Some(v) = a.strip_prefix("--root=") {
            root = Some(PathBuf::from(v));
        } else if a == "--root" {
            root = args.next().map(PathBuf::from);
        } else if a == "--list-rules" {
            for r in upcxx_analyze::rules::ALL_RULES {
                println!("{r}");
            }
            return ExitCode::SUCCESS;
        } else if a == "--help" || a == "-h" {
            eprintln!("usage: upcxx-analyze [--format=text|json] [--root DIR] [--list-rules]");
            return ExitCode::SUCCESS;
        } else {
            eprintln!("upcxx-analyze: unknown argument `{a}` (try --help)");
            return ExitCode::from(2);
        }
    }
    if format != "text" && format != "json" {
        eprintln!("upcxx-analyze: --format must be `text` or `json`");
        return ExitCode::from(2);
    }

    // Default root: the workspace containing this crate (works both from a
    // checkout root and via `cargo run -p upcxx-analyze` from anywhere).
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match upcxx_analyze::analyze_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("upcxx-analyze: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format.as_str() {
        "json" => print_json(&report),
        _ => print_text(&report),
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn print_text(report: &upcxx_analyze::Report) {
    for f in &report.findings {
        println!("{}", f.render());
    }
    println!(
        "upcxx-analyze: {} finding(s) in {} file(s)",
        report.findings.len(),
        report.files_scanned
    );
}

fn print_json(report: &upcxx_analyze::Report) {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\", \"hint\": \"{}\"}}",
            esc(&f.file),
            f.line,
            f.rule,
            esc(&f.message),
            esc(f.hint)
        ));
    }
    if !report.findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files_scanned\": {},\n  \"total\": {}\n}}",
        report.files_scanned,
        report.findings.len()
    ));
    println!("{out}");
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
