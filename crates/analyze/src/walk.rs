//! Workspace file discovery: every `.rs` file under the root, minus build
//! output, VCS internals, and the analyzer's own fixture corpus (whose files
//! are deliberate violations and would otherwise fail every self-scan).

use std::fs;
use std::io;
use std::path::Path;

/// Directories never descended into, by name.
const SKIP_DIRS: &[&str] = &["target", ".git", "results"];

/// Path prefixes (workspace-relative, forward slashes) excluded from scans.
/// The analyzer's own crate is out: its sources and fixtures are saturated
/// with rule names, directive examples and deliberate violations.
const SKIP_PREFIXES: &[&str] = &["crates/analyze"];

/// Collect `(relative path, contents)` for every scannable `.rs` file.
pub fn collect_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut out = Vec::new();
    descend(root, root, &mut out)?;
    out.sort_by(|a, b| a.0.cmp(&b.0));
    Ok(out)
}

fn descend(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            let rel = rel_path(root, &path);
            if SKIP_PREFIXES
                .iter()
                .any(|p| rel == *p || rel.starts_with(&format!("{p}/")))
            {
                continue;
            }
            descend(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = rel_path(root, &path);
            let src = fs::read_to_string(&path)?;
            out.push((rel, src));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
