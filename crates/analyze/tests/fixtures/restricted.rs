//@ file: crates/core/src/user.rs
fn handler(_: ()) -> u64 {
    make_ready_future().wait(); // blessed: completes without progress
    upcxx::progress(); //~ restricted-context
    0
}
pub fn go() {
    upcxx::rpc(1, handler, ()).then(move |v| {
        upcxx::barrier(); //~ restricted-context
        let f = pending_future();
        f.wait() //~ restricted-context
    });
    upcxx::rpc(1, handler, ()).wait(); // wait outside the callback: legal
    upcxx::rpc_ff(1, |x: u64| {
        other_future(x).wait(); //~ restricted-context
    });
    fut().then_fut(|_| barrier_async()); // near miss: barrier_async is fine
    let cond = (1 == 1).then(|| 2); // bool::then closure with no violation
    let _ = cond;
}
fn barrier_wrapper() {
    upcxx::barrier(); // not a restricted region: plain fn, never named as a handler
}
//@ file: crates/core/src/other.rs
pub fn chained() {
    rget(src(), 4).then(|v| consume(v)); // callback without violations
    let total = rget_val(src()).wait(); // wait at top level: legal
    let _ = total;
}
