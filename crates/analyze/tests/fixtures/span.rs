//@ file: crates/core/src/rpc.rs
fn bad(c: &Ctx) -> u64 {
    let id = c.next_op.get(); //~ span-id-confinement
    c.next_op.set(id + 1); //~ span-id-confinement
    next_op_backup.get() // near miss: different identifier
}
//@ file: crates/core/src/trace.rs
fn ok(c: &Ctx) -> u64 {
    let id = c.next_op.get();
    c.next_op.set(id + 1);
    id
}
