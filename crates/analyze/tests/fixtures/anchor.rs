//@ file: crates/core/src/agg.rs
pub fn bad(f: fn()) -> u64 {
    let off = encode_fn(f); //~ frame-fn-anchor
    let raw = addr_of(f) as usize as u64; //~ frame-fn-anchor
    raw + off
}
pub unsafe fn bad2(addr: usize) {
    let g = std::mem::transmute::<usize, fn(u32)>(addr); //~ frame-fn-anchor
    let t = std::mem::transmute::<usize, Tramp>(addr); //~ frame-fn-anchor
    let h = std::mem::transmute::<u64, [u8; 8]>(0u64); // non-fn transmute: fine
    let _ = (g, t, h);
    // encode_fn in a comment is not a finding
    let s = "decode_fn in a string is not a finding";
    let _ = s;
}
//@ file: crates/core/src/frame.rs
pub fn ok(f: fn()) -> u64 {
    encode_fn(f as usize).wrapping_add(code_anchor() as u64)
}
//@ file: crates/core/src/rpc.rs
pub unsafe fn ok2(addr: usize) -> fn(u32) {
    std::mem::transmute::<usize, fn(u32)>(addr)
}
//@ file: crates/dht/src/lib.rs
pub fn out_of_scope(x: usize) -> u64 {
    x as usize as u64 // outside crates/core/src: not this rule's scope
}
