//@ file: crates/core/src/agg.rs
pub fn bad(off: usize) -> u64 {
    let v = seg_read(off); //~ seg-confinement
    // seg_write in a comment is not a finding
    let s = "seg_write(0, v) in a string is not a finding";
    let r = r#"seg_fill in a raw string is not a finding"#;
    let br = br##"seg_base in a hashed raw byte string is not a finding"##;
    let _ = (s, r, br);
    segment_read(off); // near miss: different identifier
    v
}
//@ file: crates/core/src/rma.rs
pub fn ok(off: usize) -> u64 {
    seg_write(off, 1);
    seg_read(off)
}
//@ file: crates/core/src/global_ptr.rs
pub fn also_ok(off: usize) -> u64 {
    seg_with_mut(off, |_| {});
    seg_read(off)
}
//@ file: crates/dht/src/lib.rs
pub fn out_of_scope(off: usize) -> u64 {
    seg_read(off)
}
