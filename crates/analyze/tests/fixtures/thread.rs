//@ file: crates/core/src/agg.rs
pub fn bad() {
    std::thread::spawn(|| {}); //~ thread-spawn-confinement
    let b = std::thread::Builder::new(); //~ thread-spawn-confinement
    let _ = b;
    // thread::spawn in a comment is not a finding
}
#[cfg(test)]
mod tests {
    fn helper() {
        std::thread::spawn(|| {}).join().unwrap(); // cfg(test) helper threads are exempt
    }
}
//@ file: crates/core/src/persona.rs
pub fn ok() {
    std::thread::spawn(|| {});
}
//@ file: crates/gasnet/src/smp.rs
pub fn out_of_scope() {
    std::thread::spawn(|| {});
}
