//@ file: crates/core/src/msg.rs
pub struct BadSer { //~ pod-transfer
    pub a: u32,
}
impl Ser for BadSer {
    fn ser(&self, out: &mut Vec<u8>) {
        self.a.ser(out);
    }
}

#[repr(C)]
pub struct Padded { //~ pod-transfer
    pub a: u8,
    pub b: u64,
}
unsafe impl Pod for Padded {}

#[repr(C)]
pub struct Trailing { //~ pod-transfer
    pub a: u64,
    pub b: u32,
}
unsafe impl Pod for Trailing {}

#[repr(C)]
pub struct GoodPod {
    pub a: u64,
    pub b: u32,
    pub c: [u8; 4],
}
unsafe impl Pod for GoodPod {}

#[repr(transparent)]
pub struct Wrapper(u64);
impl Ser for Wrapper {
    fn ser(&self, out: &mut Vec<u8>) {
        self.0.ser(out);
    }
}

#[repr(C, packed)]
pub struct PackedPod {
    pub a: u8,
    pub b: u64,
}
unsafe impl Pod for PackedPod {}

#[repr(C)]
pub struct Opaque {
    inner: SomethingUnknown, // layout not computable: repr check only
}
unsafe impl Pod for Opaque {}

pub struct NoImpls {
    pub x: u16, // never crosses Ser/Pod: not checked
}
//@ file: crates/core/src/msg_impls.rs
pub struct CrossFile { //~ pod-transfer
    pub a: u32,
    pub b: u32,
}
//@ file: crates/core/src/msg_impls2.rs
unsafe impl Pod for CrossFile {} // same-crate resolution finds the definition
