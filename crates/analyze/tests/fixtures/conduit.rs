//@ file: crates/core/src/coll.rs
pub fn bad(h: &Handle) {
    h.put_bytes(0, &[]); //~ conduit-bytes-confinement
    h.get_bytes(0, &mut []); //~ conduit-bytes-confinement
    my_put_bytes(1); // near miss: different identifier
    put_bytes(2); // near miss: free function, no receiver
    // h.fill_bytes(...) in a comment is not a finding
}
//@ file: crates/core/src/ctx.rs
pub fn ok(h: &Handle) {
    h.put_bytes(0, &[]);
    h.fill_bytes(0, 0, 1);
}
//@ file: crates/gasnet/src/smp.rs
pub fn out_of_scope(h: &Handle) {
    h.put_bytes(0, &[]);
}
