//@ file: crates/gasnet/src/boot.rs
pub fn bad() {
    let l = UnixListener::bind("/tmp/x"); //~ proc-confinement
    let s = UnixStream::connect("/tmp/x"); //~ proc-confinement
    let c = Command::new("ls"); //~ proc-confinement
    unsafe { asm!("nop") }; //~ proc-confinement
    let msg = "UnixStream in a string is not a finding";
    let _ = (l, s, c, msg);
    command_new(); // near miss: different identifier
}
//@ file: crates/gasnet/src/proc.rs
pub fn ok() {
    let l = UnixListener::bind("/tmp/x");
    let c = Command::new("ls");
    let _ = (l, c);
}
//@ file: crates/bench/src/bin/fig3.rs
pub fn out_of_scope() {
    let c = Command::new("ls");
    let _ = c;
}
