//@ file: crates/core/src/team.rs
pub fn bad(a: &Allocator) {
    a.dealloc(3); //~ dealloc-confinement
    let dealloc = 1; // near miss: bare identifier, no receiver
    self_dealloc(dealloc); // near miss: different identifier
    let s = ".dealloc( in a string is not a finding";
    let _ = s;
}
//@ file: crates/core/src/alloc.rs
pub fn ok(a: &Allocator) {
    a.dealloc(3);
}
