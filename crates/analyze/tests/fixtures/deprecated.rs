//@ file: crates/core/src/coll.rs
pub fn bad(x: Slot) {
    let v = broadcast_gather(x); //~ deprecated-api
    let s = "broadcast_gather in a string is not a finding";
    // broadcast_gather in a comment is not a finding
    let _ = (v, s);
    broadcast_gather_all(); // near miss: different identifier
}
#[deprecated]
pub fn broadcast_gather(x: Slot) -> Slot {
    x // the shim's own definition is legal
}
pub fn stats_rpcs() -> u64 { //~ deprecated-api
    0 // even *defining* a stats_* shim is a finding (they were deleted)
}
