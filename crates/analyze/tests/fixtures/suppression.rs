//@ file: crates/core/src/sup.rs
pub fn trailing_ok(off: usize) -> u64 {
    seg_read(off) // analyze: allow(seg-confinement): fixture — justified trailing suppression covers its own line
}
pub fn own_line_ok(off: usize) -> u64 {
    // analyze: allow(seg-confinement): fixture — a comment alone on its line covers the next line
    seg_read(off)
}
pub fn unjustified(off: usize) -> u64 {
    seg_read(off) // analyze: allow(seg-confinement) -- no justification //~ seg-confinement bad-suppression
}
pub fn wrong_rule(off: usize) -> u64 {
    // analyze: allow(dealloc-confinement): names the wrong rule, so the seg finding stays
    seg_read(off) //~ seg-confinement
}
pub fn too_far(off: usize) -> u64 {
    // analyze: allow(seg-confinement): an own-line comment only reaches one line down
    let gap = 1;
    seg_read(off + gap) //~ seg-confinement
}
pub fn typoed_rule() {
    let x = 1; // analyze: allow(seg-confinment): typo in the rule name //~ bad-suppression
    let _ = x;
}
