//@ file: crates/core/src/rma.rs
fn bad(c: &RankCtx) {
    let n = c.metrics.rma_eager.get(); //~ metrics-cell-confinement
    c.metrics.rma_eager.set(n + 1); //~ metrics-cell-confinement
    crate::metrics::count_eager(c); // near miss: the blessed hook path
    // c.metrics.rma_ops.set(0) — comment trap, no finding
    let s = "c.metrics.rma_ops"; // string trap, no finding
    let my_metrics = s; // near miss: different identifier
    let _ = my_metrics;
}
//@ file: crates/core/src/ctx.rs
struct RankCtx {
    metrics: crate::metrics::Metrics, // near miss: field declaration, not access
}
fn init() -> RankCtx {
    RankCtx {
        metrics: crate::metrics::Metrics::new(), // near miss: struct init
    }
}
//@ file: crates/core/src/metrics.rs
fn ok(c: &RankCtx) {
    c.metrics.rma_eager.set(c.metrics.rma_eager.get() + 1);
    let (r, d, e) = c.metrics.flight_read(c.me as u32);
    let _ = (r, d, e);
}
//@ file: crates/gasnet/src/proc.rs
fn out_of_crate(h: &Handle) {
    h.metrics.backlog(); // near miss: rule scopes to crates/core/src only
}
