//! Self-scan acceptance tests: the real workspace must be clean, and the
//! confinement rules must actually bite when code moves out of its blessed
//! module.

use std::path::{Path, PathBuf};
use upcxx_analyze::{analyze_root, analyze_sources};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/analyze has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn workspace_self_scan_is_clean() {
    let report = analyze_root(&workspace_root()).expect("workspace scan");
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(
        report.findings.is_empty(),
        "workspace scan must be clean, got:\n{}",
        rendered.join("\n")
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}) — did the walk break?",
        report.files_scanned
    );
}

/// Deleting a confinement (e.g. moving a `seg_read` call site out of
/// rma.rs) must fail CI: re-present the *real* rma.rs under a different
/// core-crate path and demand seg findings.
#[test]
fn relocating_rma_code_trips_seg_confinement() {
    let rma = std::fs::read_to_string(workspace_root().join("crates/core/src/rma.rs"))
        .expect("read crates/core/src/rma.rs");
    let report = analyze_sources(&[("crates/core/src/agg.rs".to_string(), rma)]);
    assert!(
        report.findings.iter().any(|f| f.rule == "seg-confinement"),
        "real RMA code relocated out of rma.rs must trip seg-confinement"
    );
    assert!(
        report
            .findings
            .iter()
            .any(|f| f.rule == "conduit-bytes-confinement"),
        "relocated RMA code must also trip conduit-bytes-confinement"
    );
}

/// Same for the launcher: proc.rs's process/socket surface anywhere else in
/// the gasnet crate is a violation.
#[test]
fn relocating_proc_code_trips_proc_confinement() {
    let proc_src = std::fs::read_to_string(workspace_root().join("crates/gasnet/src/proc.rs"))
        .expect("read crates/gasnet/src/proc.rs");
    let report = analyze_sources(&[("crates/gasnet/src/shm2.rs".to_string(), proc_src)]);
    assert!(
        report.findings.iter().any(|f| f.rule == "proc-confinement"),
        "relocated launcher code must trip proc-confinement"
    );
}

/// The scan must stay fast enough to sit at the front of CI.
#[test]
fn full_scan_is_fast() {
    let t0 = std::time::Instant::now();
    let _ = analyze_root(&workspace_root()).expect("workspace scan");
    let dt = t0.elapsed();
    assert!(
        dt.as_secs_f64() < 5.0,
        "full workspace scan took {dt:?}, budget is 5s"
    );
}
