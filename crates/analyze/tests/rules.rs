//! Fixture-driven TP/TN suite: every rule has a must-fire case, a near
//! miss, comment/string/raw-string traps, and (where relevant) suppression
//! handling.
//!
//! Fixture format (`tests/fixtures/*.rs`, excluded from workspace scans):
//!
//! * `//@ file: <virtual path>` starts a new virtual source file — paths
//!   matter because confinement rules scope by file;
//! * `//~ rule-name [rule-name ...]` on a line declares that the analyzer
//!   must report exactly those rules on that line (line numbers restart at
//!   1 in each virtual file, not counting the `//@ file:` header).
//!
//! The assertion is exact set equality: an unexpected finding fails the
//! test just as hard as a missing one, so false positives cannot creep in.

use upcxx_analyze::{analyze_sources, rules};

/// Parse a fixture into virtual files + expected findings, run the
/// analyzer, and demand an exact match.
fn run_fixture(fixture: &str) {
    let mut files: Vec<(String, String)> = Vec::new();
    let mut expected: Vec<(String, u32, String)> = Vec::new();
    let mut cur_path: Option<String> = None;
    let mut cur = String::new();
    let mut line_no = 0u32;

    for line in fixture.lines() {
        if let Some(p) = line.trim().strip_prefix("//@ file:") {
            if let Some(path) = cur_path.take() {
                files.push((path, std::mem::take(&mut cur)));
            }
            cur.clear();
            cur_path = Some(p.trim().to_string());
            line_no = 0;
            continue;
        }
        line_no += 1;
        if let Some(at) = line.find("//~") {
            let path = cur_path.clone().expect("//~ marker before any //@ file:");
            for tok in line[at + 3..].split_whitespace() {
                if rules::ALL_RULES.contains(&tok) {
                    expected.push((path.clone(), line_no, tok.to_string()));
                }
            }
        }
        cur.push_str(line);
        cur.push('\n');
    }
    if let Some(path) = cur_path.take() {
        files.push((path, cur));
    }

    let report = analyze_sources(&files);
    let mut got: Vec<(String, u32, String)> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line, f.rule.to_string()))
        .collect();
    got.sort();
    expected.sort();
    assert_eq!(
        got, expected,
        "\nanalyzer findings (left) disagree with //~ markers (right)"
    );
}

#[test]
fn seg_confinement() {
    run_fixture(include_str!("fixtures/seg.rs"));
}

#[test]
fn conduit_bytes_confinement() {
    run_fixture(include_str!("fixtures/conduit.rs"));
}

#[test]
fn dealloc_confinement() {
    run_fixture(include_str!("fixtures/dealloc.rs"));
}

#[test]
fn span_id_confinement() {
    run_fixture(include_str!("fixtures/span.rs"));
}

#[test]
fn thread_spawn_confinement() {
    run_fixture(include_str!("fixtures/thread.rs"));
}

#[test]
fn proc_confinement() {
    run_fixture(include_str!("fixtures/proc.rs"));
}

#[test]
fn metrics_cell_confinement() {
    run_fixture(include_str!("fixtures/metrics.rs"));
}

#[test]
fn restricted_context() {
    run_fixture(include_str!("fixtures/restricted.rs"));
}

#[test]
fn pod_transfer() {
    run_fixture(include_str!("fixtures/pod.rs"));
}

#[test]
fn deprecated_api() {
    run_fixture(include_str!("fixtures/deprecated.rs"));
}

#[test]
fn frame_fn_anchor() {
    run_fixture(include_str!("fixtures/anchor.rs"));
}

#[test]
fn suppressions() {
    run_fixture(include_str!("fixtures/suppression.rs"));
}
