//! Extend-add integration tests: all three communication variants must
//! produce exactly the serial-reference accumulation, over both conduits.

use netsim::MachineConfig;
use sparse_solver::eadd::{
    eadd_traverse, init_rank_storage, install_plan, serial_reference, verify_against_reference,
    EaddPlan,
};
use sparse_solver::{grid3d_laplacian, nested_dissection, symbolic_factorize, Variant};
use std::cell::Cell;
use std::rc::Rc;

fn build_plan(k: usize, leaf: usize, p: usize, nb: usize) -> Rc<EaddPlan> {
    let tree = nested_dissection(k, leaf);
    let a = grid3d_laplacian(k).permute(&tree.perm);
    let fronts = symbolic_factorize(&a, &tree);
    sparse_solver::eadd::EaddPlan::build(tree, fronts, p, nb)
}

fn check_all_parents(plan: &EaddPlan, reference: &std::collections::HashMap<usize, Vec<f64>>) {
    let me = upcxx::rank_me();
    let mut checked = 0usize;
    for id in 0..plan.tree.nodes.len() {
        if plan.tree.nodes[id].level > 0 && plan.map[id].contains(me) {
            checked += verify_against_reference(plan, reference, id);
        }
    }
    // Every rank in some parent team must have verified something.
    let any_parent = (0..plan.tree.nodes.len())
        .any(|id| plan.tree.nodes[id].level > 0 && plan.map[id].contains(me));
    if any_parent {
        assert!(checked > 0, "rank {me} verified nothing");
    }
}

fn run_smp_variant(variant: Variant, p: usize) {
    // The plan is replicated metadata: deterministic, so every rank builds
    // its own copy (it is Rc-based and cannot cross threads; on a real
    // machine each process would run the same analysis — §IV-D3's
    // "frontal matrix tree and data distribution information").
    let reference = serial_reference(&build_plan(4, 6, p, 2));
    upcxx::run_spmd_default(p, move || {
        let plan = build_plan(4, 6, p, 2);
        init_rank_storage(&plan);
        install_plan(plan.clone());
        upcxx::barrier();
        eadd_traverse(plan.clone(), variant).wait();
        upcxx::barrier();
        check_all_parents(&plan, &reference);
        upcxx::barrier();
    });
}

#[test]
fn smp_rpc_variant_matches_reference() {
    run_smp_variant(Variant::UpcxxRpc, 4);
}

#[test]
fn smp_alltoallv_variant_matches_reference() {
    run_smp_variant(Variant::MpiAlltoallv, 4);
}

#[test]
fn smp_p2p_variant_matches_reference() {
    run_smp_variant(Variant::MpiP2p, 4);
}

#[test]
fn smp_single_rank_all_variants() {
    for v in [Variant::UpcxxRpc, Variant::MpiAlltoallv, Variant::MpiP2p] {
        run_smp_variant(v, 1);
    }
}

#[test]
fn smp_more_ranks_than_leaf_teams() {
    run_smp_variant(Variant::UpcxxRpc, 7);
}

fn run_sim_variant(variant: Variant, p: usize, k: usize) -> pgas_des::Time {
    let plan = build_plan(k, 6, p, 2);
    let reference = serial_reference(&plan);
    let rt = upcxx::SimRuntime::new(MachineConfig::test_2x4(), p, 1 << 14);
    let done = Rc::new(Cell::new(0usize));
    for r in 0..p {
        let plan = plan.clone();
        let done = done.clone();
        rt.spawn(r, move || {
            init_rank_storage(&plan);
            install_plan(plan.clone());
            let plan2 = plan.clone();
            let done2 = done.clone();
            upcxx::barrier_async()
                .then_fut(move |_| eadd_traverse(plan2, variant))
                .then(move |_| {
                    done2.set(done2.get() + 1);
                });
        });
    }
    let t = rt.run();
    assert_eq!(done.get(), p, "not every rank finished the traversal");
    for r in 0..p {
        let plan = plan.clone();
        let reference = &reference;
        rt.with_rank(r, || check_all_parents(&plan, reference));
    }
    t
}

#[test]
fn sim_all_variants_match_reference() {
    for v in [Variant::UpcxxRpc, Variant::MpiAlltoallv, Variant::MpiP2p] {
        let t = run_sim_variant(v, 8, 4);
        assert!(t > pgas_des::Time::ZERO);
    }
}

#[test]
fn sim_is_deterministic_per_variant() {
    let a = run_sim_variant(Variant::UpcxxRpc, 6, 3);
    let b = run_sim_variant(Variant::UpcxxRpc, 6, 3);
    assert_eq!(a, b);
}

#[test]
fn sim_rpc_beats_p2p_at_scale() {
    // The Fig. 8 ordering on a modest simulated machine: the RPC variant
    // avoids empty exchanges and O(P) scans, so with enough ranks it must
    // finish the identical traversal sooner in virtual time.
    let p = 32;
    let rpc = run_sim_variant(Variant::UpcxxRpc, p, 6);
    let p2p = run_sim_variant(Variant::MpiP2p, p, 6);
    assert!(
        rpc < p2p,
        "expected RPC ({rpc}) faster than P2P ({p2p}) at {p} ranks"
    );
}
