//! Property tests over the sparse-solver analysis machinery: the index
//! algebra and mapping invariants the extend-add correctness rests on.

use proptest::prelude::*;
use sparse_solver::{
    grid3d_laplacian, nested_dissection, proportional_mapping, symbolic_factorize,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tree + symbolic invariants hold for arbitrary grid/leaf combinations.
    #[test]
    fn symbolic_invariants_random_grids(k in 2usize..7, leaf in 1usize..12) {
        let tree = nested_dissection(k, leaf);
        tree.check_invariants(k * k * k);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        sparse_solver::symbolic::check_symbolic(&a, &tree, &fronts);
    }

    /// Every front index round-trips through the global index space, and
    /// every child border index has a home in the parent front.
    #[test]
    fn front_mapping_total_on_children(k in 2usize..6, leaf in 1usize..10) {
        let tree = nested_dissection(k, leaf);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        for (id, node) in tree.nodes.iter().enumerate() {
            let f = &fronts[id];
            for d in 0..f.dim() {
                prop_assert_eq!(f.global_to_front(f.front_to_global(d)), d);
            }
            if let Some(parent) = node.parent {
                for fi in f.ncols()..f.dim() {
                    let g = f.front_to_global(fi);
                    // Must resolve in the parent (panics otherwise).
                    let _ = fronts[parent].global_to_front(g);
                }
            }
        }
    }

    /// Proportional mapping: every node gets ≥1 rank, children nest inside
    /// parents, and the root covers the whole world — at any world size.
    #[test]
    fn mapping_invariants_any_world(k in 2usize..6, leaf in 2usize..10, p in 1usize..300) {
        let tree = nested_dissection(k, leaf);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        let map = proportional_mapping(&tree, &fronts, p);
        prop_assert_eq!(map[tree.root()].start, 0);
        prop_assert_eq!(map[tree.root()].len, p);
        for (id, node) in tree.nodes.iter().enumerate() {
            prop_assert!(map[id].len >= 1);
            prop_assert!(map[id].start + map[id].len <= p);
            for &c in &node.children {
                prop_assert!(map[c].start >= map[id].start);
                prop_assert!(map[c].start + map[c].len <= map[id].start + map[id].len);
            }
        }
    }

    /// The serial extend-add reference conserves mass: the sum of all seeded
    /// child contributions equals the total accumulated into parents plus
    /// what leaves keep (every child F22 cell lands somewhere exactly once).
    #[test]
    fn eadd_reference_accumulates_every_cell(k in 2usize..5, p in 1usize..17) {
        let tree = nested_dissection(k, 4);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        let plan = sparse_solver::EaddPlan::build(tree, fronts, p, 2);
        let reference = sparse_solver::eadd::serial_reference(&plan);
        // Root front total = sum over all descendants' seeded F22 values
        // mapped up the tree... verified transitively: each parent cell
        // equals the sum of its own seed plus everything mapped into it;
        // spot-check conservation at one level: for each parent, the sum of
        // its F22-region cells >= its own seeds' sum is exact only with the
        // children's contributions, which check_symbolic guarantees land.
        for id in 0..plan.tree.nodes.len() {
            let d = plan.fronts[id].dim();
            let m = reference.get(&id).unwrap();
            prop_assert_eq!(m.len(), d * d);
            for v in m {
                prop_assert!(v.is_finite());
            }
        }
    }
}
