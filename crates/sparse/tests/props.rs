//! Randomized tests over the sparse-solver analysis machinery: the index
//! algebra and mapping invariants the extend-add correctness rests on.
//! (Deterministic PRNG loops replacing the former proptest suite — the
//! workspace builds offline with zero external crates.)

use pgas_des::rng::Rng;
use sparse_solver::{
    grid3d_laplacian, nested_dissection, proportional_mapping, symbolic_factorize,
};

/// Tree + symbolic invariants hold for arbitrary grid/leaf combinations.
#[test]
fn symbolic_invariants_random_grids() {
    let mut r = Rng::new(0x51);
    for _ in 0..24 {
        let k = r.gen_between(2, 7);
        let leaf = r.gen_between(1, 12);
        let tree = nested_dissection(k, leaf);
        tree.check_invariants(k * k * k);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        sparse_solver::symbolic::check_symbolic(&a, &tree, &fronts);
    }
}

/// Every front index round-trips through the global index space, and
/// every child border index has a home in the parent front.
#[test]
fn front_mapping_total_on_children() {
    let mut r = Rng::new(0x52);
    for _ in 0..24 {
        let k = r.gen_between(2, 6);
        let leaf = r.gen_between(1, 10);
        let tree = nested_dissection(k, leaf);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        for (id, node) in tree.nodes.iter().enumerate() {
            let f = &fronts[id];
            for d in 0..f.dim() {
                assert_eq!(f.global_to_front(f.front_to_global(d)), d);
            }
            if let Some(parent) = node.parent {
                for fi in f.ncols()..f.dim() {
                    let g = f.front_to_global(fi);
                    // Must resolve in the parent (panics otherwise).
                    let _ = fronts[parent].global_to_front(g);
                }
            }
        }
    }
}

/// Proportional mapping: every node gets ≥1 rank, children nest inside
/// parents, and the root covers the whole world — at any world size.
#[test]
fn mapping_invariants_any_world() {
    let mut r = Rng::new(0x53);
    for _ in 0..24 {
        let k = r.gen_between(2, 6);
        let leaf = r.gen_between(2, 10);
        let p = r.gen_between(1, 300);
        let tree = nested_dissection(k, leaf);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        let map = proportional_mapping(&tree, &fronts, p);
        assert_eq!(map[tree.root()].start, 0);
        assert_eq!(map[tree.root()].len, p);
        for (id, node) in tree.nodes.iter().enumerate() {
            assert!(map[id].len >= 1);
            assert!(map[id].start + map[id].len <= p);
            for &c in &node.children {
                assert!(map[c].start >= map[id].start);
                assert!(map[c].start + map[c].len <= map[id].start + map[id].len);
            }
        }
    }
}

/// The serial extend-add reference conserves mass: the sum of all seeded
/// child contributions equals the total accumulated into parents plus
/// what leaves keep (every child F22 cell lands somewhere exactly once).
#[test]
fn eadd_reference_accumulates_every_cell() {
    let mut r = Rng::new(0x54);
    for _ in 0..16 {
        let k = r.gen_between(2, 5);
        let p = r.gen_between(1, 17);
        let tree = nested_dissection(k, 4);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        let plan = sparse_solver::EaddPlan::build(tree, fronts, p, 2);
        let reference = sparse_solver::eadd::serial_reference(&plan);
        // Each front's reference matrix is fully populated with finite
        // values; check_symbolic (exercised above) guarantees every child
        // F22 cell has a landing slot, so conservation follows.
        for id in 0..plan.tree.nodes.len() {
            let d = plan.fronts[id].dim();
            let m = reference.get(&id).unwrap();
            assert_eq!(m.len(), d * d);
            for v in m {
                assert!(v.is_finite());
            }
        }
    }
}
