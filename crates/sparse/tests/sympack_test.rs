//! Mini-symPACK integration tests: both API generations must produce the
//! same (correct) Cholesky factor, validated as ‖LLᵀ − A‖ small, over both
//! conduits.

use netsim::MachineConfig;
use sparse_solver::dense::llt;
use sparse_solver::sympack::{install, is_done, local_dense_factor, start, Api, CholPlan};
use sparse_solver::{grid3d_laplacian, nested_dissection, symbolic_factorize};
use std::rc::Rc;

fn build_plan(k: usize, leaf: usize, p: usize) -> Rc<CholPlan> {
    let tree = nested_dissection(k, leaf);
    let a = grid3d_laplacian(k).permute(&tree.perm);
    let fronts = symbolic_factorize(&a, &tree);
    CholPlan::build(tree, fronts, a, p)
}

/// Merge per-rank dense factors (each rank fills only its owned fronts'
/// columns) and validate the factorization.
fn validate_merged_factor(parts: Vec<Vec<f64>>, plan: &CholPlan) {
    let n = plan.a.n;
    let mut l = vec![0.0f64; n * n];
    for part in parts {
        for (dst, src) in l.iter_mut().zip(part.iter()) {
            if *src != 0.0 {
                *dst = *src;
            }
        }
    }
    let r = llt(&l, n);
    for i in 0..n {
        for j in 0..n {
            let want = plan.a.get(i, j);
            assert!(
                (r[i * n + j] - want).abs() < 1e-8,
                "LL^T({i},{j}) = {} but A = {want}",
                r[i * n + j]
            );
        }
    }
}

fn run_smp(api: Api, p: usize, k: usize) {
    // Deterministic replicated metadata: each rank rebuilds the plan
    // (Rc-based, cannot cross threads).
    let parts = std::sync::Mutex::new(Vec::new());
    upcxx::run_spmd_default(p, || {
        let plan = build_plan(k, 4, p);
        install(plan.clone(), api);
        upcxx::barrier();
        start();
        upcxx::wait_until(is_done);
        upcxx::barrier();
        parts.lock().unwrap().push(local_dense_factor(&plan));
        upcxx::barrier();
    });
    let plan = build_plan(k, 4, p);
    validate_merged_factor(parts.into_inner().unwrap(), &plan);
}

#[test]
fn smp_v10_factorization_correct() {
    run_smp(Api::V10, 3, 3);
}

#[test]
fn smp_v01_factorization_correct() {
    run_smp(Api::V01, 3, 3);
}

#[test]
fn smp_single_rank_both_apis() {
    run_smp(Api::V10, 1, 3);
    run_smp(Api::V01, 1, 3);
}

fn run_sim(api: Api, p: usize, k: usize) -> pgas_des::Time {
    let plan = build_plan(k, 4, p);
    let rt = upcxx::SimRuntime::new(MachineConfig::cori_haswell(), p, 1 << 12);
    for r in 0..p {
        let plan = plan.clone();
        rt.spawn(r, move || {
            install(plan.clone(), api);
            upcxx::barrier_async().then(|_| start());
        });
    }
    let t = rt.run();
    // Quiescence implies completion; verify every rank reports done and the
    // merged factor is correct.
    let mut parts = Vec::new();
    for r in 0..p {
        let plan2 = plan.clone();
        parts.push(rt.with_rank(r, move || {
            assert!(is_done(), "rank {r} not done at quiescence");
            local_dense_factor(&plan2)
        }));
    }
    validate_merged_factor(parts, &plan);
    t
}

#[test]
fn sim_both_apis_factorize_correctly() {
    let t10 = run_sim(Api::V10, 6, 4);
    let t01 = run_sim(Api::V01, 6, 4);
    assert!(t10 > pgas_des::Time::ZERO && t01 > pgas_des::Time::ZERO);
}

#[test]
fn sim_apis_perform_nearly_identically() {
    // The Fig. 9 claim: same solver, two API generations, ~equal times.
    let t10 = run_sim(Api::V10, 8, 5);
    let t01 = run_sim(Api::V01, 8, 5);
    let ratio = t01.as_ns_f64() / t10.as_ns_f64();
    assert!(
        (0.8..1.25).contains(&ratio),
        "v0.1/v1.0 time ratio {ratio} outside the near-identical band"
    );
}

#[test]
fn sim_deterministic() {
    assert_eq!(run_sim(Api::V10, 4, 3), run_sim(Api::V10, 4, 3));
}
