//! Small dense kernels for the multifrontal factorization: Cholesky of the
//! pivot block, triangular solve of the panel, and the Schur-complement
//! update — the numeric work inside one front. Plain loops (no BLAS
//! dependency); the sim conduit charges modeled flop time separately.

/// Row-major dense square matrix view helpers.
#[inline]
fn at(n: usize, i: usize, j: usize) -> usize {
    i * n + j
}

/// In-place lower Cholesky of the leading `nc × nc` block, panel solve of
/// the `nr × nc` block below it, and Schur update of the trailing
/// `nr × nr` block — the *partial factorization* of a front of dimension
/// `n = nc + nr` (paper §IV-D1: F11, F21 factors; F22 contribution block).
///
/// On return: F11 holds L11 (lower), F21 holds L21, F22 holds
/// `F22 - L21·L21ᵀ`. The strict upper triangle of F11 and the F12 block are
/// left untouched (unreferenced). Panics on a non-positive pivot.
pub fn partial_cholesky(f: &mut [f64], n: usize, nc: usize) {
    assert!(nc <= n && f.len() == n * n);
    for k in 0..nc {
        let d = f[at(n, k, k)];
        assert!(d > 0.0, "non-positive pivot {d} at column {k}");
        let l = d.sqrt();
        f[at(n, k, k)] = l;
        for i in (k + 1)..n {
            f[at(n, i, k)] /= l;
        }
        // Rank-1 update of the trailing submatrix (lower part only would do,
        // but fronts are stored full; update the full trailing square so the
        // contribution block stays symmetric).
        for i in (k + 1)..n {
            let lik = f[at(n, i, k)];
            if lik == 0.0 {
                continue;
            }
            for j in (k + 1)..n {
                f[at(n, i, j)] -= lik * f[at(n, j, k)];
            }
        }
    }
}

/// Flops of [`partial_cholesky`] (the proportional-mapping cost model and
/// the sim conduit's compute charge).
pub fn partial_cholesky_flops(n: usize, nc: usize) -> f64 {
    let nc = nc as f64;
    let nr = n as f64 - nc;
    nc * nc * nc / 3.0 + nc * nc * nr + nc * nr * nr
}

/// Full lower Cholesky (convenience for tests): `a` becomes L with the
/// strict upper triangle zeroed.
pub fn cholesky(a: &mut [f64], n: usize) {
    partial_cholesky(a, n, n);
    for i in 0..n {
        for j in (i + 1)..n {
            a[at(n, i, j)] = 0.0;
        }
    }
}

/// `L · Lᵀ` for a lower-triangular L (tests).
pub fn llt(l: &[f64], n: usize) -> Vec<f64> {
    let mut out = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                s += l[at(n, i, k)] * l[at(n, j, k)];
            }
            out[at(n, i, j)] = s;
        }
    }
    out
}

/// Forward substitution `L y = b` (lower, unit diag not assumed).
pub fn forward_solve(l: &[f64], n: usize, b: &mut [f64]) {
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[at(n, i, k)] * b[k];
        }
        b[i] = s / l[at(n, i, i)];
    }
}

/// Backward substitution `Lᵀ x = y`.
pub fn backward_solve(l: &[f64], n: usize, y: &mut [f64]) {
    for i in (0..n).rev() {
        let mut s = y[i];
        for k in (i + 1)..n {
            s -= l[at(n, k, i)] * y[k];
        }
        y[i] = s / l[at(n, i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> Vec<f64> {
        // A = B·Bᵀ + n·I is SPD for any B.
        let mut b = vec![0.0; n * n];
        let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
        for v in b.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            *v = ((s >> 33) as f64 / (1u64 << 31) as f64) - 0.5;
        }
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut x = 0.0;
                for k in 0..n {
                    x += b[at(n, i, k)] * b[at(n, j, k)];
                }
                a[at(n, i, j)] = x + if i == j { n as f64 } else { 0.0 };
            }
        }
        a
    }

    #[test]
    fn full_cholesky_reconstructs() {
        for n in [1usize, 2, 5, 12] {
            let a = spd(n, n as u64);
            let mut l = a.clone();
            cholesky(&mut l, n);
            let r = llt(&l, n);
            for (x, y) in r.iter().zip(a.iter()) {
                assert!((x - y).abs() < 1e-9, "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn partial_equals_full_restricted() {
        // Partial factorization of nc columns then full Cholesky of the
        // Schur complement == full Cholesky.
        let n = 10;
        let nc = 4;
        let a = spd(n, 7);
        let mut full = a.clone();
        cholesky(&mut full, n);
        let mut part = a.clone();
        partial_cholesky(&mut part, n, nc);
        // L11/L21 agree with the full factor.
        for i in 0..n {
            for j in 0..nc.min(i + 1) {
                assert!(
                    (part[at(n, i, j)] - full[at(n, i, j)]).abs() < 1e-9,
                    "L({i},{j})"
                );
            }
        }
        // Cholesky of the Schur block agrees with the trailing factor.
        let nr = n - nc;
        let mut schur = vec![0.0; nr * nr];
        for i in 0..nr {
            for j in 0..nr {
                schur[at(nr, i, j)] = part[at(n, nc + i, nc + j)];
            }
        }
        cholesky(&mut schur, nr);
        for i in 0..nr {
            for j in 0..=i {
                assert!(
                    (schur[at(nr, i, j)] - full[at(n, nc + i, nc + j)]).abs() < 1e-9,
                    "S({i},{j})"
                );
            }
        }
    }

    #[test]
    fn solve_roundtrip() {
        let n = 8;
        let a = spd(n, 3);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64) - 2.5).collect();
        // b = A x
        let mut b = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                b[i] += a[at(n, i, j)] * x_true[j];
            }
        }
        let mut l = a.clone();
        cholesky(&mut l, n);
        forward_solve(&l, n, &mut b);
        backward_solve(&l, n, &mut b);
        for (x, t) in b.iter().zip(x_true.iter()) {
            assert!((x - t).abs() < 1e-8);
        }
    }

    #[test]
    #[should_panic(expected = "non-positive pivot")]
    fn indefinite_matrix_panics() {
        let mut a = vec![1.0, 2.0, 2.0, 1.0]; // eigenvalues 3, -1
        cholesky(&mut a, 2);
    }

    #[test]
    fn flops_formula_sane() {
        assert_eq!(partial_cholesky_flops(10, 10), 1000.0 / 3.0);
        assert!(partial_cholesky_flops(10, 4) < partial_cholesky_flops(10, 10));
        assert!(partial_cholesky_flops(20, 4) > partial_cholesky_flops(10, 4));
    }
}
