//! The extend-add (`e_add`) operation — the paper's second application
//! motif (§IV-D, Figs. 5–7) — in three communication variants:
//!
//! * [`Variant::UpcxxRpc`] — the paper's contribution: each child-team rank
//!   packs per-destination bins, issues one RPC per non-empty destination
//!   with a zero-copy [`upcxx::View`] of the entries, and conjoins the
//!   acknowledgment futures; each parent-team rank counts expected incoming
//!   RPCs on a promise initialized from replicated metadata
//!   (`e_add_prom` in the paper's Fig. 7);
//! * [`Variant::MpiAlltoallv`] — the STRUMPACK strategy: one `alltoallv`
//!   over the parent team per front, empty partners included;
//! * [`Variant::MpiP2p`] — the MUMPS-style non-blocking point-to-point
//!   strategy: every parent-team pair exchanges a (possibly empty) message
//!   with `isend`/`irecv`.
//!
//! All three move **exactly the same numerical payload** and accumulate with
//! the same kernel, as the paper requires ("each variant executes the exact
//! same amount of computation and communicates the same amount of data").
//!
//! The driver is continuation-style so it runs unchanged over the smp
//! conduit (tests) and the sim conduit at 2048 ranks (Fig. 8 harness).

use crate::dist2d::Layout2D;
use crate::mapping::RankRange;
use crate::ordering::SnTree;
use crate::symbolic::FrontSym;
use pgas_des::Time;
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use upcxx::{Future, Promise, Team, View};

/// One packed update entry: destination cell in the **parent front's** index
/// space plus the value (the paper sends values with their target locations
/// resolved via the Ip/IlC index translation — Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Entry {
    /// Parent-front row.
    pub i: u32,
    /// Parent-front column.
    pub j: u32,
    /// Value to accumulate.
    pub v: f64,
}

// SAFETY: #[repr(C)] (u32, u32, f64) is 16 bytes with no padding and no
// pointers; any bit pattern we wrote is valid to reread.
unsafe impl upcxx::Pod for Entry {}

/// The communication strategy under test (Fig. 8's three series).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// UPC++ RPC with views and promise counting.
    UpcxxRpc,
    /// MPI alltoallv over the parent team.
    MpiAlltoallv,
    /// MPI non-blocking point-to-point.
    MpiP2p,
}

impl Variant {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Variant::UpcxxRpc => "UPC++ RPC",
            Variant::MpiAlltoallv => "MPI Alltoallv",
            Variant::MpiP2p => "MPI P2P",
        }
    }
}

/// Replicated problem metadata: tree, symbolic structure, team mapping,
/// per-front layouts, and the expected-incoming-RPC counts (which the paper
/// derives from the same replicated analysis data — `e_add_prom` is
/// "initialized with the number of incoming RPCs expected").
pub struct EaddPlan {
    /// The supernode tree.
    pub tree: SnTree,
    /// Per-node symbolic fronts.
    pub fronts: Vec<FrontSym>,
    /// Per-node team (proportional mapping).
    pub map: Vec<RankRange>,
    /// Per-node block-cyclic layout over its team.
    pub layouts: Vec<Layout2D>,
    /// World size.
    pub p: usize,
    /// Per parent node: world rank -> number of incoming child messages
    /// (RPC-variant promise initialization).
    pub expected: Vec<HashMap<usize, usize>>,
    /// Per child node: front index -> parent front index (u32::MAX for the
    /// eliminated columns, which never extend-add). Precomputed once so the
    /// packing hot loop does no binary searches.
    pub to_parent: Vec<Vec<u32>>,
    /// Per-element accumulation cost charged under sim (models the paper's
    /// "accumulation of numerical values").
    pub accum_cost_per_elem: Time,
}

impl EaddPlan {
    /// Build the full replicated plan for `p` ranks with block size `nb`.
    pub fn build(tree: SnTree, fronts: Vec<FrontSym>, p: usize, nb: usize) -> Rc<EaddPlan> {
        let map = crate::mapping::proportional_mapping(&tree, &fronts, p);
        let layouts: Vec<Layout2D> = (0..tree.nodes.len())
            .map(|id| Layout2D::for_team(fronts[id].dim(), map[id].len, nb))
            .collect();
        // Child-front-index -> parent-front-index translation tables.
        let mut to_parent: Vec<Vec<u32>> = vec![Vec::new(); tree.nodes.len()];
        for id in 0..tree.nodes.len() {
            let Some(parent) = tree.nodes[id].parent else {
                continue;
            };
            let f = &fronts[id];
            let nc = f.ncols();
            to_parent[id] = (0..f.dim())
                .map(|fi| {
                    if fi < nc {
                        u32::MAX
                    } else {
                        fronts[parent].global_to_front(f.front_to_global(fi)) as u32
                    }
                })
                .collect();
        }
        // Expected incoming messages per parent rank: walk every child's F22
        // cells once, tallying (child_rank -> parent_rank) adjacency.
        let mut expected: Vec<HashMap<usize, usize>> = vec![HashMap::new(); tree.nodes.len()];
        for id in 0..tree.nodes.len() {
            let Some(parent) = tree.nodes[id].parent else {
                continue;
            };
            let mut pairs: std::collections::HashSet<(usize, usize)> =
                std::collections::HashSet::new();
            let child_front = &fronts[id];
            let nc = child_front.ncols();
            let lay_c = &layouts[id];
            let lay_p = &layouts[parent];
            for fi in nc..child_front.dim() {
                let pi = to_parent[id][fi] as usize;
                #[allow(clippy::needless_range_loop)] // fi/fj symmetry reads better
                for fj in nc..child_front.dim() {
                    let src_team = lay_c.owner(fi, fj);
                    let src_world = map[id].world_rank(src_team.min(map[id].len - 1));
                    let pj = to_parent[id][fj] as usize;
                    let dst_team = lay_p.owner(pi, pj);
                    let dst_world = map[parent].world_rank(dst_team.min(map[parent].len - 1));
                    pairs.insert((src_world, dst_world));
                }
            }
            for (src, dst) in pairs {
                // Self-contributions accumulate locally without an RPC
                // (both here and in the send path below).
                if src != dst {
                    *expected[parent].entry(dst).or_insert(0) += 1;
                }
            }
        }
        Rc::new(EaddPlan {
            tree,
            fronts,
            map,
            layouts,
            p,
            expected,
            to_parent,
            accum_cost_per_elem: Time::from_ns(2),
        })
    }

    /// World rank owning cell `(i, j)` of front `id`'s dense index space.
    pub fn cell_owner_world(&self, id: usize, i: usize, j: usize) -> usize {
        let t = self.layouts[id].owner(i, j);
        // Inactive grid slots never own cells; owner() < active_ranks by
        // construction, but clamp defensively for 1-rank teams.
        self.map[id].world_rank(t.min(self.map[id].len - 1))
    }

    /// Fronts at `level` whose child or parent teams include `world_rank`.
    pub fn my_level_work(&self, level: usize, world_rank: usize) -> Vec<usize> {
        self.tree
            .level_nodes(level)
            .into_iter()
            .filter(|&id| {
                self.map[id].contains(world_rank)
                    || self.tree.nodes[id]
                        .children
                        .iter()
                        .any(|&c| self.map[c].contains(world_rank))
            })
            .collect()
    }

    /// Total expected incoming messages for `world_rank` across the parents
    /// at `level` (RPC-variant promise initialization).
    pub fn expected_at_level(&self, level: usize, world_rank: usize) -> usize {
        self.tree
            .level_nodes(level)
            .into_iter()
            .map(|id| self.expected[id].get(&world_rank).copied().unwrap_or(0))
            .sum()
    }
}

/// Per-rank numeric storage: front id -> local block-cyclic part
/// (row-major `lr × lc`).
#[derive(Default)]
pub struct FrontStore {
    /// Local parts by front id.
    pub data: RefCell<HashMap<usize, Vec<f64>>>,
}

/// This rank's front storage.
pub fn store() -> Rc<FrontStore> {
    upcxx::rank_state::<FrontStore>(FrontStore::default)
}

/// Deterministic seed value for child front `id` cell `(i, j)` — lets the
/// serial reference and every variant agree exactly.
pub fn seed_value(id: usize, i: usize, j: usize) -> f64 {
    let mut x = (id as u64)
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add((i as u64) << 32 | j as u64);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51afd7ed558ccd);
    x ^= x >> 33;
    // Small magnitudes keep sums exact enough for equality checks.
    ((x % 2048) as f64 - 1024.0) / 64.0
}

/// Allocate and seed this rank's local parts for every front at every level:
/// contribution-block cells (i ≥ nc and j ≥ nc) get [`seed_value`]; all
/// other cells start at zero. Call once per rank before the traversal.
pub fn init_rank_storage(plan: &EaddPlan) {
    let me = upcxx::rank_me();
    let st = store();
    let mut data = st.data.borrow_mut();
    data.clear();
    for id in 0..plan.tree.nodes.len() {
        if !plan.map[id].contains(me) {
            continue;
        }
        let team_rank = plan.map[id].team_rank(me);
        let lay = &plan.layouts[id];
        let (lr, lc) = lay.local_dims(team_rank);
        let mut local = vec![0.0f64; lr * lc];
        let nc = plan.fronts[id].ncols();
        if let Some((r, c)) = lay.coords(team_rank) {
            for li in 0..lr {
                let gi = lay.local_to_global_row(li, r);
                if gi < nc {
                    continue;
                }
                for lj in 0..lc {
                    let gj = lay.local_to_global_col(lj, c);
                    if gj < nc {
                        continue;
                    }
                    local[li * lc + lj] = seed_value(id, gi, gj);
                }
            }
        }
        data.insert(id, local);
    }
}

/// Pack this rank's slice of child `id`'s contribution block into
/// per-destination bins (the paper's `pack`, Fig. 7 line 20): maps child
/// front indices to the parent's dense index space and bins by the owning
/// **world** rank of the destination cell.
pub fn pack(plan: &EaddPlan, id: usize) -> BTreeMap<usize, Vec<Entry>> {
    let me = upcxx::rank_me();
    let parent = plan.tree.nodes[id].parent.expect("root has no parent");
    let child_front = &plan.fronts[id];
    let tp = &plan.to_parent[id];
    let nc = child_front.ncols();
    let team_rank = plan.map[id].team_rank(me);
    let lay = &plan.layouts[id];
    let Some((r, c)) = lay.coords(team_rank) else {
        return BTreeMap::new();
    };
    let st = store();
    let data = st.data.borrow();
    let local = data.get(&id).expect("front storage missing");
    let (lr, lc) = lay.local_dims(team_rank);
    // BTreeMap: deterministic destination order, so simulated timings are
    // reproducible run to run.
    let mut bins: BTreeMap<usize, Vec<Entry>> = BTreeMap::new();
    for li in 0..lr {
        let gi = lay.local_to_global_row(li, r);
        if gi < nc {
            continue;
        }
        let pi = tp[gi];
        for lj in 0..lc {
            let gj = lay.local_to_global_col(lj, c);
            if gj < nc {
                continue;
            }
            let v = local[li * lc + lj];
            let pj = tp[gj];
            let dst = plan.cell_owner_world(parent, pi as usize, pj as usize);
            bins.entry(dst).or_default().push(Entry { i: pi, j: pj, v });
        }
    }
    bins
}

/// Accumulate entries into this rank's local part of front `id` (the
/// paper's `accum` callback). Charges the modeled per-element cost.
pub fn accumulate(
    plan: &EaddPlan,
    id: usize,
    entries: impl Iterator<Item = Entry>,
    count_hint: usize,
) {
    let me = upcxx::rank_me();
    let team_rank = plan.map[id].team_rank(me);
    let lay = &plan.layouts[id];
    let (_lr, lc) = lay.local_dims(team_rank);
    upcxx::compute(plan.accum_cost_per_elem * count_hint as u64);
    let st = store();
    let mut data = st.data.borrow_mut();
    let local = data.get_mut(&id).expect("parent storage missing");
    for e in entries {
        debug_assert_eq!(plan.cell_owner_world(id, e.i as usize, e.j as usize), me);
        let (li, lj) = lay.global_to_local(e.i as usize, e.j as usize);
        local[li * lc + lj] += e.v;
    }
}

// ------------------------------------------------------------- RPC variant

/// Per-rank slot shared with the RPC handler: the active plan and the
/// per-level expected-incoming promises.
///
/// Promises are keyed by level and created lazily by **either** side (the
/// local `e_add` call or the first incoming RPC): a fast sender can clear
/// the level barrier and deliver a level-l+1 update before this rank's
/// driver has resumed — UPC++'s promise counting tolerates that because the
/// expected count comes from replicated metadata, not from call order.
#[derive(Default)]
pub struct EaddCtx {
    /// The plan the handlers resolve front metadata from.
    pub plan: RefCell<Option<Rc<EaddPlan>>>,
    /// Per-level expected-incoming promises.
    pub proms: RefCell<HashMap<usize, Promise<()>>>,
}

/// This rank's handler context.
pub fn eadd_ctx() -> Rc<EaddCtx> {
    upcxx::rank_state::<EaddCtx>(EaddCtx::default)
}

/// Install the plan on the calling rank and reset per-traversal state.
/// Collective in the SPMD sense: every rank must call this (and synchronize,
/// e.g. with a barrier) before any rank starts a traversal.
pub fn install_plan(plan: Rc<EaddPlan>) {
    let cx = eadd_ctx();
    *cx.plan.borrow_mut() = Some(plan);
    cx.proms.borrow_mut().clear();
}

/// The level promise, created on first touch with its expected count
/// (the paper's `e_add_prom`, "initialized with the number of incoming RPCs
/// expected by the current process").
fn level_prom(cx: &EaddCtx, plan: &EaddPlan, level: usize) -> Promise<()> {
    let me = upcxx::rank_me();
    cx.proms
        .borrow_mut()
        .entry(level)
        .or_insert_with(|| {
            let p = Promise::<()>::new();
            p.require_anonymous(plan.expected_at_level(level, me));
            p
        })
        .clone()
}

/// The paper's `accum` RPC: traverse the view zero-copy, accumulate, and
/// retire one dependency of the level promise (Fig. 7's
/// `e_add_prom.fulfill_anonymous(1)`).
fn accum_rpc(args: (usize, View<Entry>)) {
    let (parent_id, view) = args;
    let cx = eadd_ctx();
    let plan = cx.plan.borrow().clone().expect("eadd plan not installed");
    accumulate(&plan, parent_id, view.iter(), view.len());
    let level = plan.tree.nodes[parent_id].level;
    level_prom(&cx, &plan, level).fulfill_anonymous(1);
}

/// One rank's extend-add work for every front at `level`, RPC variant
/// (the paper's Fig. 7 `e_add`). Returns the completion future:
/// `when_all(f_conj, e_add_prom.finalize())`.
fn eadd_level_rpc(plan: &Rc<EaddPlan>, level: usize) -> Future<()> {
    let me = upcxx::rank_me();
    let cx = eadd_ctx();
    let prom = level_prom(&cx, plan, level);

    let mut f_conj = upcxx::make_ready_future();
    for id in plan.my_level_work(level, me) {
        for &ch in &plan.tree.nodes[id].children {
            if !plan.map[ch].contains(me) {
                continue;
            }
            // eadd_send: pack, then one RPC per non-empty remote
            // destination; the local bin accumulates in place.
            let bins = pack(plan, ch);
            for (dst, entries) in bins {
                if dst == me {
                    let n = entries.len();
                    accumulate(plan, id, entries.into_iter(), n);
                    continue;
                }
                let view = upcxx::make_view(&entries);
                let fut = upcxx::rpc(dst, accum_rpc, (id, view));
                f_conj = upcxx::conjoin(&f_conj, &fut.ignore());
            }
        }
    }
    let fin = prom.finalize();
    upcxx::conjoin(&f_conj, &fin)
}

// ------------------------------------------------------------- MPI variants

fn entries_to_bytes(entries: &[Entry]) -> Vec<u8> {
    upcxx::ser::pod_to_bytes(entries)
}

fn bytes_to_entries(bytes: &[u8]) -> Vec<Entry> {
    upcxx::ser::pod_from_bytes(bytes)
}

/// Alltoallv variant: one collective over the parent team per front at the
/// level (empty partners included — the MPI semantics the paper contrasts).
fn eadd_level_a2a(plan: &Rc<EaddPlan>, level: usize) -> Future<()> {
    let me = upcxx::rank_me();
    let mut futs: Vec<Future<()>> = Vec::new();
    for id in plan.my_level_work(level, me) {
        if !plan.map[id].contains(me) {
            // Not in the parent team: children teams ⊆ parent team under
            // proportional mapping, so nothing to do here.
            continue;
        }
        let team = Team::from_world_ranks(plan.map[id].world_ranks());
        let pn = team.rank_n();
        // Merge bins from every child I belong to.
        let mut send: Vec<Vec<Entry>> = vec![Vec::new(); pn];
        for &ch in &plan.tree.nodes[id].children {
            if plan.map[ch].contains(me) {
                for (dst_world, mut es) in pack(plan, ch) {
                    let dst_t = plan.map[id].team_rank(dst_world);
                    send[dst_t].append(&mut es);
                }
            }
        }
        let send_bytes = send.iter().map(|v| entries_to_bytes(v)).collect();
        let plan2 = plan.clone();
        let fut =
            minimpi::alltoallv_bytes_with_tag(&team, send_bytes, id as i32).then(move |recv| {
                for bytes in recv {
                    if !bytes.is_empty() {
                        let entries = bytes_to_entries(&bytes);
                        let n = entries.len();
                        accumulate(&plan2, id, entries.into_iter(), n);
                    }
                }
            });
        futs.push(fut);
    }
    upcxx::when_all_vec(futs).then(|_| ())
}

/// Point-to-point variant (the MUMPS-style strategy): because a receiver
/// does not know which team members will contribute, a **counts exchange**
/// (an `MPI_Alltoall` of per-destination element counts) runs first; data
/// then moves with `isend`/`irecv` between the non-empty pairs. The extra
/// full-team phase plus per-message matching through long posted queues is
/// what makes this variant slowest at scale (Fig. 8).
fn eadd_level_p2p(plan: &Rc<EaddPlan>, level: usize) -> Future<()> {
    let me = upcxx::rank_me();
    let mut futs: Vec<Future<()>> = Vec::new();
    for id in plan.my_level_work(level, me) {
        if !plan.map[id].contains(me) {
            continue;
        }
        let pr = &plan.map[id];
        let pn = pr.len;
        let team = Team::from_world_ranks(pr.world_ranks());
        let counts_tag = 0x200_0000 | id as i32;
        let data_tag = 0x400_0000 | id as i32;
        // Merge bins by destination world rank (ordered for determinism).
        let mut send: BTreeMap<usize, Vec<Entry>> = BTreeMap::new();
        for &ch in &plan.tree.nodes[id].children {
            if plan.map[ch].contains(me) {
                for (dst, mut es) in pack(plan, ch) {
                    send.entry(dst).or_default().append(&mut es);
                }
            }
        }
        // Local contribution accumulates directly.
        if let Some(es) = send.remove(&me) {
            let n = es.len();
            accumulate(plan, id, es.into_iter(), n);
        }
        // Phase 1: alltoall of counts (8 bytes per pair, empties included).
        let counts_bytes: Vec<Vec<u8>> = (0..pn)
            .map(|t| {
                let dst = pr.world_rank(t);
                let c = send.get(&dst).map(|v| v.len() as u64).unwrap_or(0);
                c.to_le_bytes().to_vec()
            })
            .collect();
        let plan2 = plan.clone();
        let pr2 = *pr;
        let fut = minimpi::alltoallv_bytes_with_tag(&team, counts_bytes, counts_tag).then_fut(
            move |recv_counts| {
                // Phase 2: data only between non-empty pairs.
                let me = upcxx::rank_me();
                let mut phase2: Vec<Future<()>> = Vec::new();
                for (t, c) in recv_counts.iter().enumerate() {
                    let src = pr2.world_rank(t);
                    if src == me {
                        continue;
                    }
                    let cnt = u64::from_le_bytes(c[..8].try_into().unwrap());
                    if cnt == 0 {
                        continue;
                    }
                    let plan3 = plan2.clone();
                    phase2.push(minimpi::irecv_bytes(src as i64, data_tag).then(
                        move |(bytes, _)| {
                            let entries = bytes_to_entries(&bytes);
                            let n = entries.len();
                            accumulate(&plan3, id, entries.into_iter(), n);
                        },
                    ));
                }
                for (dst, es) in send {
                    phase2.push(minimpi::isend_bytes(dst, data_tag, entries_to_bytes(&es)));
                }
                upcxx::when_all_vec(phase2).then(|_| ())
            },
        );
        futs.push(fut);
    }
    upcxx::when_all_vec(futs).then(|_| ())
}

/// One rank's extend-add for all fronts at `level` with the chosen variant.
pub fn eadd_level(plan: &Rc<EaddPlan>, level: usize, variant: Variant) -> Future<()> {
    match variant {
        Variant::UpcxxRpc => eadd_level_rpc(plan, level),
        Variant::MpiAlltoallv => eadd_level_a2a(plan, level),
        Variant::MpiP2p => eadd_level_p2p(plan, level),
    }
}

/// The full bottom-up traversal for the calling rank: levels 1..n_levels in
/// order, each gated on the previous level's completion plus a world
/// barrier (the paper's per-level synchronization; a rank's level-l sends
/// read cells finalized by its level-(l-1) completion).
///
/// [`install_plan`] must have run (and been synchronized) on every rank.
pub fn eadd_traverse(plan: Rc<EaddPlan>, variant: Variant) -> Future<()> {
    fn step(plan: Rc<EaddPlan>, level: usize, variant: Variant) -> Future<()> {
        if level >= plan.tree.n_levels {
            return upcxx::make_ready_future();
        }
        let done = eadd_level(&plan, level, variant);
        done.then_fut(move |_| {
            upcxx::barrier_async().then_fut(move |_| step(plan, level + 1, variant))
        })
    }
    step(plan, 1, variant)
}

/// Serial reference: accumulate every child contribution block directly
/// (single address space), returning parent-front dense matrices indexed by
/// node id. Used to validate all three variants.
pub fn serial_reference(plan: &EaddPlan) -> HashMap<usize, Vec<f64>> {
    // Seed every front's full F22 (dense dim × dim, zeros elsewhere).
    let mut dense: HashMap<usize, Vec<f64>> = HashMap::new();
    for id in 0..plan.tree.nodes.len() {
        let d = plan.fronts[id].dim();
        let nc = plan.fronts[id].ncols();
        let mut m = vec![0.0; d * d];
        for i in nc..d {
            for j in nc..d {
                m[i * d + j] = seed_value(id, i, j);
            }
        }
        dense.insert(id, m);
    }
    // Bottom-up accumulation.
    for level in 1..plan.tree.n_levels {
        for id in plan.tree.level_nodes(level) {
            let children = plan.tree.nodes[id].children.clone();
            for ch in children {
                let cd = plan.fronts[ch].dim();
                let cnc = plan.fronts[ch].ncols();
                let child = dense.get(&ch).unwrap().clone();
                let pd = plan.fronts[id].dim();
                let parent = dense.get_mut(&id).unwrap();
                for fi in cnc..cd {
                    let pi = plan.fronts[id].global_to_front(plan.fronts[ch].front_to_global(fi));
                    for fj in cnc..cd {
                        let pj =
                            plan.fronts[id].global_to_front(plan.fronts[ch].front_to_global(fj));
                        parent[pi * pd + pj] += child[fi * cd + fj];
                    }
                }
            }
        }
    }
    dense
}

/// Compare a rank's distributed storage of front `id` against the serial
/// reference (tests). Returns the number of cells checked.
pub fn verify_against_reference(
    plan: &EaddPlan,
    reference: &HashMap<usize, Vec<f64>>,
    id: usize,
) -> usize {
    let me = upcxx::rank_me();
    assert!(plan.map[id].contains(me));
    let team_rank = plan.map[id].team_rank(me);
    let lay = &plan.layouts[id];
    let Some((r, c)) = lay.coords(team_rank) else {
        return 0;
    };
    let st = store();
    let data = st.data.borrow();
    let local = data.get(&id).expect("front storage missing");
    let (lr, lc) = lay.local_dims(team_rank);
    let d = plan.fronts[id].dim();
    let reference = reference.get(&id).unwrap();
    let mut checked = 0;
    for li in 0..lr {
        let gi = lay.local_to_global_row(li, r);
        for lj in 0..lc {
            let gj = lay.local_to_global_col(lj, c);
            let got = local[li * lc + lj];
            let want = reference[gi * d + gj];
            assert!(
                (got - want).abs() < 1e-9,
                "front {id} cell ({gi},{gj}): got {got}, want {want}"
            );
            checked += 1;
        }
    }
    checked
}
