//! Geometric nested dissection and the supernode (frontal-matrix) tree.
//!
//! Multifrontal solvers organize computation along the elimination tree
//! (§IV-D1); with a nested-dissection ordering the tree's supernodes are the
//! recursive separators. For the k×k×k grid stand-in we use *geometric*
//! dissection: split the longest box dimension with a one-cell-thick plane,
//! recurse on the halves, and order separator columns after both halves —
//! the textbook construction (George 1973) that STRUMPACK's analysis would
//! produce on this mesh.
//!
//! The result is a [`SnTree`]: a postordered forest of supernodes where each
//! node's columns occupy a contiguous range of the permuted index space and
//! parents follow children — exactly the layout the extend-add traversal
//! (Fig. 5) wants.

use crate::matrix::grid_index;

/// One supernode / frontal matrix in the elimination tree.
#[derive(Clone, Debug)]
pub struct SnNode {
    /// Column range in the permuted ordering (contiguous, after children).
    pub cols: std::ops::Range<usize>,
    /// Child node ids.
    pub children: Vec<usize>,
    /// Parent node id (`None` at the root).
    pub parent: Option<usize>,
    /// Distance from the deepest leaf (leaves are level 0) — the traversal
    /// processes level l before level l+1.
    pub level: usize,
}

impl SnNode {
    /// Number of columns eliminated at this supernode.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }
}

/// A postordered supernode tree plus the fill-reducing permutation.
#[derive(Clone, Debug)]
pub struct SnTree {
    /// Nodes in postorder (children precede parents; the root is last).
    pub nodes: Vec<SnNode>,
    /// Permutation: `perm[new] = old` grid index.
    pub perm: Vec<usize>,
    /// Number of levels (max level + 1).
    pub n_levels: usize,
}

impl SnTree {
    /// The root node id (postorder ⇒ last).
    pub fn root(&self) -> usize {
        self.nodes.len() - 1
    }

    /// Ids of nodes at `level`, in postorder.
    pub fn level_nodes(&self, level: usize) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].level == level)
            .collect()
    }

    /// Validate postorder and column-range invariants (tests, debug).
    pub fn check_invariants(&self, n: usize) {
        let mut seen = vec![false; n];
        for (i, node) in self.nodes.iter().enumerate() {
            for c in node.cols.clone() {
                assert!(!seen[c], "column {c} in two supernodes");
                seen[c] = true;
            }
            for &ch in &node.children {
                assert!(ch < i, "child {ch} after parent {i} (postorder violated)");
                assert_eq!(self.nodes[ch].parent, Some(i));
                assert!(
                    self.nodes[ch].cols.end <= node.cols.start,
                    "child columns must precede parent columns"
                );
                assert!(self.nodes[ch].level < node.level);
            }
        }
        assert!(seen.iter().all(|&s| s), "permutation not a bijection");
        assert_eq!(self.perm.len(), n);
        let mut sorted = self.perm.clone();
        sorted.sort_unstable();
        assert!(sorted.into_iter().eq(0..n), "perm is not a permutation");
    }
}

/// A box of grid cells `[x0, x1) × [y0, y1) × [z0, z1)`.
#[derive(Clone, Copy, Debug)]
struct GridBox {
    x0: usize,
    x1: usize,
    y0: usize,
    y1: usize,
    z0: usize,
    z1: usize,
}

impl GridBox {
    fn dims(&self) -> (usize, usize, usize) {
        (self.x1 - self.x0, self.y1 - self.y0, self.z1 - self.z0)
    }
    fn cells(&self) -> usize {
        let (dx, dy, dz) = self.dims();
        dx * dy * dz
    }
    fn indices(&self, k: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.cells());
        for z in self.z0..self.z1 {
            for y in self.y0..self.y1 {
                for x in self.x0..self.x1 {
                    out.push(grid_index(k, x, y, z));
                }
            }
        }
        out
    }
}

/// Build the nested-dissection supernode tree for the k×k×k grid. Boxes of
/// at most `leaf_size` cells become leaf supernodes.
pub fn nested_dissection(k: usize, leaf_size: usize) -> SnTree {
    assert!(k >= 1 && leaf_size >= 1);
    let mut nodes: Vec<SnNode> = Vec::new();
    let mut order: Vec<usize> = Vec::with_capacity(k * k * k);

    // Recursive dissection returning the new node's id.
    fn dissect(
        k: usize,
        b: GridBox,
        leaf_size: usize,
        nodes: &mut Vec<SnNode>,
        order: &mut Vec<usize>,
    ) -> usize {
        let (dx, dy, dz) = b.dims();
        if b.cells() <= leaf_size || dx.max(dy).max(dz) <= 1 {
            let start = order.len();
            order.extend(b.indices(k));
            let id = nodes.len();
            nodes.push(SnNode {
                cols: start..order.len(),
                children: Vec::new(),
                parent: None,
                level: 0,
            });
            return id;
        }
        // Split the longest dimension with a one-thick separator plane.
        let (mut lo, mut hi) = (b, b);
        let sep: GridBox;
        if dx >= dy && dx >= dz {
            let m = b.x0 + dx / 2;
            lo.x1 = m;
            hi.x0 = m + 1;
            sep = GridBox {
                x0: m,
                x1: m + 1,
                ..b
            };
        } else if dy >= dz {
            let m = b.y0 + dy / 2;
            lo.y1 = m;
            hi.y0 = m + 1;
            sep = GridBox {
                y0: m,
                y1: m + 1,
                ..b
            };
        } else {
            let m = b.z0 + dz / 2;
            lo.z1 = m;
            hi.z0 = m + 1;
            sep = GridBox {
                z0: m,
                z1: m + 1,
                ..b
            };
        }
        let mut children = Vec::new();
        if lo.cells() > 0 {
            children.push(dissect(k, lo, leaf_size, nodes, order));
        }
        if hi.cells() > 0 {
            children.push(dissect(k, hi, leaf_size, nodes, order));
        }
        let start = order.len();
        order.extend(sep.indices(k));
        let level = children
            .iter()
            .map(|&c| nodes[c].level + 1)
            .max()
            .unwrap_or(0);
        let id = nodes.len();
        for &c in &children {
            nodes[c].parent = Some(id);
        }
        nodes.push(SnNode {
            cols: start..order.len(),
            children,
            parent: None,
            level,
        });
        id
    }

    let whole = GridBox {
        x0: 0,
        x1: k,
        y0: 0,
        y1: k,
        z0: 0,
        z1: k,
    };
    dissect(k, whole, leaf_size, &mut nodes, &mut order);
    let n_levels = nodes.iter().map(|n| n.level).max().unwrap_or(0) + 1;
    SnTree {
        nodes,
        perm: order,
        n_levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_invariants_hold_for_various_grids() {
        for k in [1usize, 2, 3, 4, 5, 8] {
            let t = nested_dissection(k, 4);
            t.check_invariants(k * k * k);
        }
    }

    #[test]
    fn single_cell_grid_is_one_leaf() {
        let t = nested_dissection(1, 4);
        assert_eq!(t.nodes.len(), 1);
        assert_eq!(t.nodes[0].cols, 0..1);
        assert_eq!(t.n_levels, 1);
    }

    #[test]
    fn root_separator_of_cube_is_a_plane() {
        let k = 8;
        let t = nested_dissection(k, 8);
        let root = &t.nodes[t.root()];
        // Root separator of a cube: one k×k plane.
        assert_eq!(root.ncols(), k * k);
        assert_eq!(root.children.len(), 2);
        assert!(root.parent.is_none());
    }

    #[test]
    fn levels_increase_toward_root() {
        let t = nested_dissection(8, 8);
        let root = t.root();
        assert_eq!(t.nodes[root].level, t.n_levels - 1);
        for id in t.level_nodes(0) {
            assert!(t.nodes[id].children.is_empty());
        }
        // Every level is non-empty.
        for l in 0..t.n_levels {
            assert!(!t.level_nodes(l).is_empty(), "empty level {l}");
        }
    }

    #[test]
    fn leaf_size_bounds_leaves() {
        let t = nested_dissection(8, 16);
        for n in &t.nodes {
            if n.children.is_empty() {
                assert!(n.ncols() <= 16, "leaf with {} cols", n.ncols());
            }
        }
    }

    #[test]
    fn column_count_matches_grid() {
        let k = 6;
        let t = nested_dissection(k, 5);
        let total: usize = t.nodes.iter().map(SnNode::ncols).sum();
        assert_eq!(total, k * k * k);
    }
}
