//! A miniature symPACK: distributed multifrontal sparse Cholesky, written
//! twice against the two UPC++ generations — the paper's Fig. 9 experiment.
//!
//! §IV-D4: symPACK "was originally implemented using the predecessor UPC++
//! and has recently been ported to UPC++ v1.0. The previous implementation
//! used v0.1 asyncs and events to schedule the asynchronous communication.
//! These translated naturally to RPCs and futures, respectively, in v1.0."
//!
//! Here the solver core (assembly, per-front partial Cholesky, contribution
//! propagation up the elimination tree) is shared; only the communication
//! scheduling differs by [`Api`]:
//!
//! * [`Api::V10`] — contribution blocks travel as `rpc` with a zero-copy
//!   [`upcxx::View`]; initiator-side completion is the RPC future.
//! * [`Api::V01`] — contribution blocks travel as v0.1 `async` carrying an
//!   owned `Vec` (v0.1 had no view serialization — §V-A), with initiator
//!   completion tracked by an [`upcxx_v01::Event`].
//!
//! Fronts are owned whole by single ranks (1-D proportional mapping), the
//! layout symPACK-like solvers use for supernode panels. Real numerics run
//! in both conduits; the sim conduit additionally charges modeled flop time
//! so virtual timings reflect compute as well as communication.

use crate::dense::{partial_cholesky, partial_cholesky_flops};
use crate::eadd::Entry;
use crate::matrix::CsrMatrix;
use crate::ordering::SnTree;
use crate::symbolic::FrontSym;
use pgas_des::Time;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use upcxx::View;

/// Which UPC++ generation schedules the communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Api {
    /// Predecessor: events + asyncs (no return values, owned payloads).
    V01,
    /// v1.0: futures + RPC with views.
    V10,
}

impl Api {
    /// Legend label matching the paper's Fig. 9.
    pub fn label(self) -> &'static str {
        match self {
            Api::V01 => "UPC++ v0.1",
            Api::V10 => "UPC++ v1.0",
        }
    }
}

/// Replicated factorization metadata.
pub struct CholPlan {
    /// Supernode tree.
    pub tree: SnTree,
    /// Symbolic fronts.
    pub fronts: Vec<FrontSym>,
    /// Owning world rank per front (1-D proportional mapping).
    pub owner: Vec<usize>,
    /// The permuted input matrix (assembled into fronts at install).
    pub a: Rc<CsrMatrix>,
    /// Modeled time per flop (sim conduit compute charge).
    pub flop_time: Time,
    /// World size the plan was built for.
    pub p_world: usize,
    /// Per child node: front index -> parent front index (u32::MAX for
    /// eliminated columns). Precomputed to keep packing off binary searches.
    pub to_parent: Vec<Vec<u32>>,
    /// Proportional-mapping team size per front. symPACK distributes each
    /// supernode panel over its team, so the modeled kernel time is
    /// `flops / team_len`; the numerics here run replicated on the owner
    /// (identical results), with the cost model reflecting the
    /// team-parallel dense kernel the real solver uses.
    pub team_len: Vec<usize>,
}

impl CholPlan {
    /// Build the replicated plan over `p` ranks: proportional mapping
    /// collapsed to its first rank per node (supernode-owner layout).
    pub fn build(tree: SnTree, fronts: Vec<FrontSym>, a: CsrMatrix, p: usize) -> Rc<CholPlan> {
        let map = crate::mapping::proportional_mapping(&tree, &fronts, p);
        let owner = map.iter().map(|r| r.start).collect();
        let team_len = map.iter().map(|r| r.len).collect();
        let mut to_parent: Vec<Vec<u32>> = vec![Vec::new(); tree.nodes.len()];
        for id in 0..tree.nodes.len() {
            let Some(parent) = tree.nodes[id].parent else {
                continue;
            };
            let f = &fronts[id];
            let nc = f.ncols();
            to_parent[id] = (0..f.dim())
                .map(|fi| {
                    if fi < nc {
                        u32::MAX
                    } else {
                        fronts[parent].global_to_front(f.front_to_global(fi)) as u32
                    }
                })
                .collect();
        }
        Rc::new(CholPlan {
            tree,
            fronts,
            owner,
            a: Rc::new(a),
            flop_time: Time::from_ps(150), // ≈ 6.7 Gflop/s naive kernel
            p_world: p,
            to_parent,
            team_len,
        })
    }

    /// Fronts owned by `rank`.
    pub fn owned_fronts(&self, rank: usize) -> Vec<usize> {
        (0..self.owner.len())
            .filter(|&id| self.owner[id] == rank)
            .collect()
    }
}

/// Per-rank solver state.
#[derive(Default)]
pub struct CholState {
    /// Active plan.
    pub plan: RefCell<Option<Rc<CholPlan>>>,
    /// Active API generation.
    api: Cell<Option<Api>>,
    /// Owned fronts' dense storage (dim × dim, row-major).
    pub fronts: RefCell<HashMap<usize, Vec<f64>>>,
    /// Outstanding child contributions per owned front.
    pending: RefCell<HashMap<usize, usize>>,
    /// Owned fronts factorized so far.
    factored: Cell<usize>,
    /// Total owned fronts.
    owned_total: Cell<usize>,
    /// v0.1 initiator-side completion tracking.
    pub v01_event: RefCell<Option<upcxx_v01::Event>>,
}

/// This rank's solver state.
pub fn state() -> Rc<CholState> {
    upcxx::rank_state::<CholState>(CholState::default)
}

/// Install the plan on the calling rank: assemble every owned front from
/// the (permuted) matrix and set child counters. Collective in the SPMD
/// sense; synchronize (barrier) before [`start`].
pub fn install(plan: Rc<CholPlan>, api: Api) {
    let me = upcxx::rank_me();
    let st = state();
    st.api.set(Some(api));
    st.factored.set(0);
    *st.v01_event.borrow_mut() = Some(upcxx_v01::Event::new());
    let mut fronts = st.fronts.borrow_mut();
    let mut pending = st.pending.borrow_mut();
    fronts.clear();
    pending.clear();
    let owned = plan.owned_fronts(me);
    st.owned_total.set(owned.len());
    for id in owned {
        let f = &plan.fronts[id];
        let d = f.dim();
        let mut m = vec![0.0f64; d * d];
        // Assemble A's entries whose column is eliminated here and whose row
        // belongs to this front (symmetric full storage).
        for j in f.cols.clone() {
            let fj = f.global_to_front(j);
            for (i, v) in plan.a.row(j) {
                if i >= j && (f.cols.contains(&i) || f.rows.binary_search(&i).is_ok()) {
                    let fi = f.global_to_front(i);
                    m[fi * d + fj] += v;
                    if fi != fj {
                        m[fj * d + fi] += v;
                    }
                }
            }
        }
        fronts.insert(id, m);
        pending.insert(id, plan.tree.nodes[id].children.len());
    }
    drop((fronts, pending));
    *st.plan.borrow_mut() = Some(plan);
}

/// Kick off the calling rank's ready work (leaf fronts). The cascade is
/// event-driven from here; completion is observable via [`is_done`]
/// (smp: `upcxx::wait_until(is_done)`), or by running the sim to
/// quiescence.
pub fn start() {
    let st = state();
    let plan = st
        .plan
        .borrow()
        .clone()
        .expect("sympack plan not installed");
    let ready: Vec<usize> = st
        .pending
        .borrow()
        .iter()
        .filter(|&(_, &c)| c == 0)
        .map(|(&id, _)| id)
        .collect();
    let mut ready = ready;
    ready.sort_unstable();
    for id in ready {
        process_front(&plan, id);
    }
}

/// Whether this rank has factorized all fronts it owns (and, for v0.1, all
/// its outbound asyncs have been acknowledged).
pub fn is_done() -> bool {
    let st = state();
    let ev_done = st
        .v01_event
        .borrow()
        .as_ref()
        .map(|e| e.isdone())
        .unwrap_or(true);
    st.factored.get() == st.owned_total.get() && ev_done
}

/// Factorize front `id` (its contributions are all in) and propagate the
/// contribution block to the parent's owner.
fn process_front(plan: &Rc<CholPlan>, id: usize) {
    let st = state();
    let f = &plan.fronts[id];
    let (d, nc) = (f.dim(), f.ncols());
    // Model the factorization cost: the team-parallel dense kernel
    // (see CholPlan::team_len). Real numerics run below either way.
    let kernel_flops = partial_cholesky_flops(d, nc).max(1.0) / plan.team_len[id] as f64;
    upcxx::compute(plan.flop_time.scale(kernel_flops));
    let contrib: Vec<Entry> = {
        let mut fronts = st.fronts.borrow_mut();
        let m = fronts.get_mut(&id).expect("front not assembled");
        partial_cholesky(m, d, nc);
        // Pack F22 in the parent's front coordinates.
        match plan.tree.nodes[id].parent {
            None => Vec::new(),
            Some(_) => {
                let tp = &plan.to_parent[id];
                let mut out = Vec::with_capacity((d - nc) * (d - nc));
                for fi in nc..d {
                    let pi = tp[fi];
                    for fj in nc..d {
                        out.push(Entry {
                            i: pi,
                            j: tp[fj],
                            v: m[fi * d + fj],
                        });
                    }
                }
                out
            }
        }
    };
    st.factored.set(st.factored.get() + 1);

    let Some(parent) = plan.tree.nodes[id].parent else {
        return; // root: factorization complete on this rank
    };
    let dst = plan.owner[parent];
    match st.api.get().expect("api not installed") {
        Api::V10 => {
            // v1.0: RPC with a zero-copy view; the future is the ack.
            upcxx::rpc(dst, accum_v10, (parent, upcxx::make_view(&contrib))).then(|_| {});
        }
        Api::V01 => {
            // v0.1: async with an owned payload, tracked by an event.
            let ev = st.v01_event.borrow().clone().expect("v01 event missing");
            upcxx_v01::async_launch(dst, accum_v01, (parent, contrib), Some(&ev));
        }
    }
}

/// Shared accumulate-and-maybe-factorize path at the parent's owner.
fn accum_common(parent: usize, entries: impl Iterator<Item = Entry>, count: usize) {
    let st = state();
    let plan = st
        .plan
        .borrow()
        .clone()
        .expect("sympack plan not installed");
    upcxx::compute(Time::from_ns(2) * count as u64);
    {
        let pf = &plan.fronts[parent];
        let d = pf.dim();
        let mut fronts = st.fronts.borrow_mut();
        let m = fronts.get_mut(&parent).expect("parent front not assembled");
        for e in entries {
            m[e.i as usize * d + e.j as usize] += e.v;
        }
    }
    let now_ready = {
        let mut pending = st.pending.borrow_mut();
        let c = pending.get_mut(&parent).expect("pending count missing");
        *c -= 1;
        *c == 0
    };
    if now_ready {
        process_front(&plan, parent);
    }
}

/// v1.0 handler: traverses the incoming view zero-copy.
fn accum_v10(args: (usize, View<Entry>)) {
    let (parent, view) = args;
    let n = view.len();
    accum_common(parent, view.iter(), n);
}

/// v0.1 handler: receives an owned vector — v0.1 had no view-based
/// serialization (§V-A), so the payload deserializes element-wise into an
/// owned container; the extra per-element cost is charged here (this is the
/// small edge v1.0 shows in Fig. 9).
fn accum_v01(args: (usize, Vec<Entry>)) {
    let (parent, entries) = args;
    let n = entries.len();
    upcxx::compute(Time::from_ns_f64(0.1).scale(n as f64));
    accum_common(parent, entries.into_iter(), n);
}

/// Gather the factor into a dense lower-triangular matrix (single-rank
/// verification helper; call on a rank that owns everything, or after
/// collecting all fronts). Reads this rank's fronts only.
pub fn local_dense_factor(plan: &CholPlan) -> Vec<f64> {
    let st = state();
    let n = plan.a.n;
    let mut l = vec![0.0f64; n * n];
    let fronts = st.fronts.borrow();
    for (id, m) in fronts.iter() {
        let f = &plan.fronts[*id];
        let d = f.dim();
        for fj in 0..f.ncols() {
            let gj = f.front_to_global(fj);
            for fi in fj..d {
                let gi = f.front_to_global(fi);
                l[gi * n + gj] = m[fi * d + fj];
            }
        }
    }
    l
}

/// `Vec<Entry>` must serialize for the v0.1 path: provided via the generic
/// `Vec<T: Ser>` impl, with `Entry: Ser` as raw pod bytes.
impl upcxx::Ser for Entry {
    fn ser(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&upcxx::ser::pod_to_bytes(std::slice::from_ref(self)));
    }
    fn deser(r: &mut upcxx::ser::Reader) -> Self {
        let v: [u8; 16] = <[u8; 16] as upcxx::Ser>::deser(r);
        upcxx::ser::pod_from_bytes::<Entry>(&v)[0]
    }
    fn ser_size(&self) -> usize {
        16
    }
}
