//! Symbolic factorization: the row structure of every frontal matrix.
//!
//! In a multifrontal method each supernode owns a dense *front* indexed by
//! its eliminated columns followed by its *row indices* — the paper's
//! `row_indices` field "containing the global indices of the frontal matrix
//! in the sparse matrix (corresponding to Ip, IlC and IrC in Fig. 5)". The
//! classic bottom-up recurrence computes them:
//!
//! `rows(f) = ( struct(A[:, cols(f)]) ∪ ⋃_child rows(child) ) \ {0..cols(f).end}`
//!
//! i.e. the below-diagonal sparsity of the supernode's columns plus
//! everything the children's contribution blocks touch, minus what this
//! front eliminates.

use crate::matrix::CsrMatrix;
use crate::ordering::SnTree;

/// Per-front symbolic structure.
#[derive(Clone, Debug)]
pub struct FrontSym {
    /// Eliminated columns (permuted indices; contiguous).
    pub cols: std::ops::Range<usize>,
    /// Sorted row indices strictly beyond `cols` (the F21/F22 border) —
    /// the paper's `Ip`/`IlC`/`IrC`.
    pub rows: Vec<usize>,
}

impl FrontSym {
    /// Dense dimension of the front: `ncols + nrows`.
    pub fn dim(&self) -> usize {
        self.cols.len() + self.rows.len()
    }
    /// Number of eliminated columns.
    pub fn ncols(&self) -> usize {
        self.cols.len()
    }
    /// Number of border rows (the contribution block is nrows × nrows).
    pub fn nrows(&self) -> usize {
        self.rows.len()
    }

    /// Map a global (permuted) index into this front's dense index space:
    /// eliminated columns map to `0..ncols`, border rows to `ncols..dim`.
    /// Panics when the index is not part of the front — the extend-add
    /// invariant is that every child border index appears in the parent.
    pub fn global_to_front(&self, g: usize) -> usize {
        if self.cols.contains(&g) {
            g - self.cols.start
        } else {
            match self.rows.binary_search(&g) {
                Ok(i) => self.cols.len() + i,
                Err(_) => panic!("index {g} not in front"),
            }
        }
    }

    /// Inverse of [`global_to_front`].
    pub fn front_to_global(&self, f: usize) -> usize {
        if f < self.cols.len() {
            self.cols.start + f
        } else {
            self.rows[f - self.cols.len()]
        }
    }

    /// Estimated factorization flops for this front (dense partial LDLᵀ):
    /// used by proportional mapping.
    pub fn flops(&self) -> f64 {
        let nc = self.ncols() as f64;
        let nr = self.nrows() as f64;
        // Cholesky of F11 + triangular solve for F21 + Schur update of F22.
        nc * nc * nc / 3.0 + nc * nc * nr + nc * nr * nr
    }
}

/// Compute every front's row structure for `a` (already permuted by the
/// tree's ordering) over the supernode tree.
pub fn symbolic_factorize(a: &CsrMatrix, tree: &SnTree) -> Vec<FrontSym> {
    let mut fronts: Vec<FrontSym> = Vec::with_capacity(tree.nodes.len());
    for (id, node) in tree.nodes.iter().enumerate() {
        let mut set: Vec<usize> = Vec::new();
        // Sparsity of A below the supernode's diagonal block.
        for j in node.cols.clone() {
            for (i, _) in a.row(j) {
                if i >= node.cols.end {
                    set.push(i);
                }
            }
        }
        // Children's border rows, minus what this supernode eliminates.
        for &ch in &node.children {
            debug_assert!(ch < id);
            for &r in &fronts[ch].rows {
                if r >= node.cols.end {
                    set.push(r);
                }
            }
        }
        set.sort_unstable();
        set.dedup();
        fronts.push(FrontSym {
            cols: node.cols.clone(),
            rows: set,
        });
    }
    fronts
}

/// Sanity checks connecting the tree and the symbolic structure (tests).
pub fn check_symbolic(a: &CsrMatrix, tree: &SnTree, fronts: &[FrontSym]) {
    assert_eq!(fronts.len(), tree.nodes.len());
    for (id, node) in tree.nodes.iter().enumerate() {
        let f = &fronts[id];
        // Rows strictly increase and lie beyond the column range.
        for w in f.rows.windows(2) {
            assert!(w[0] < w[1]);
        }
        if let Some(&r0) = f.rows.first() {
            assert!(r0 >= node.cols.end);
        }
        // Every child border index is covered by the parent front
        // (the extend-add invariant: child F22 lands wholly in the parent).
        for &ch in &node.children {
            for &r in &fronts[ch].rows {
                if r >= node.cols.end {
                    assert!(
                        f.rows.binary_search(&r).is_ok(),
                        "child row {r} missing from parent front {id}"
                    );
                } else {
                    assert!(node.cols.contains(&r));
                }
            }
        }
        // The root eliminates the tail of the matrix and has no border.
        if node.parent.is_none() {
            assert_eq!(node.cols.end, a.n);
            assert!(f.rows.is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::grid3d_laplacian;
    use crate::ordering::nested_dissection;

    fn setup(k: usize, leaf: usize) -> (CsrMatrix, SnTree, Vec<FrontSym>) {
        let tree = nested_dissection(k, leaf);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        (a, tree, fronts)
    }

    #[test]
    fn symbolic_invariants_small_grids() {
        for k in [2usize, 3, 4, 6] {
            let (a, tree, fronts) = setup(k, 4);
            check_symbolic(&a, &tree, &fronts);
        }
    }

    #[test]
    fn front_index_mapping_roundtrips() {
        let (_a, _tree, fronts) = setup(4, 4);
        for f in &fronts {
            for d in 0..f.dim() {
                let g = f.front_to_global(d);
                assert_eq!(f.global_to_front(g), d);
            }
        }
    }

    #[test]
    fn root_front_has_no_border() {
        let (_a, tree, fronts) = setup(4, 4);
        assert!(fronts[tree.root()].rows.is_empty());
    }

    #[test]
    fn leaf_fronts_touch_only_matrix_structure() {
        let (a, tree, fronts) = setup(3, 2);
        for (id, node) in tree.nodes.iter().enumerate() {
            if !node.children.is_empty() {
                continue;
            }
            // Leaf rows must appear in A's structure for those columns.
            for &r in &fronts[id].rows {
                let touched = node.cols.clone().any(|j| a.get(r, j) != 0.0);
                assert!(touched, "leaf {id} row {r} not in A");
            }
        }
    }

    #[test]
    #[should_panic(expected = "not in front")]
    fn global_to_front_rejects_foreign_index() {
        let (_a, tree, fronts) = setup(3, 2);
        // The first leaf cannot contain the last column of the matrix unless
        // it is also the root (k=3 trees have > 1 node).
        assert!(tree.nodes.len() > 1);
        let f = &fronts[0];
        let foreign = tree.nodes[tree.root()].cols.end - 1;
        assert!(!f.cols.contains(&foreign));
        let _ = f.global_to_front(foreign);
    }

    #[test]
    fn flops_monotone_in_front_size() {
        let small = FrontSym {
            cols: 0..4,
            rows: vec![5, 6],
        };
        let big = FrontSym {
            cols: 0..8,
            rows: vec![9, 10, 11, 12],
        };
        assert!(big.flops() > small.flops());
    }
}
