//! 2-D block-cyclic distribution of dense fronts over a process grid.
//!
//! "Frontal matrices are then distributed in a 2D block-cyclic manner with a
//! fixed block size among processes of each group" (§IV-D1, the colored
//! blocks of Fig. 5). This module is the ScaLAPACK-style index algebra:
//! owner of a global cell, global↔local translation, and local storage
//! extents (`numroc`).

/// A block-cyclic layout of an `n × n` front over a `pr × pc` grid with
/// square blocks of `nb`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Layout2D {
    /// Front dimension.
    pub n: usize,
    /// Process-grid rows.
    pub pr: usize,
    /// Process-grid columns.
    pub pc: usize,
    /// Block size.
    pub nb: usize,
}

impl Layout2D {
    /// Choose a near-square grid for a team of `p` ranks (pr·pc ≤ p, pr ≤ pc
    /// — the STRUMPACK default) and the given block size.
    pub fn for_team(n: usize, p: usize, nb: usize) -> Layout2D {
        assert!(p >= 1 && nb >= 1);
        let pr = (1..=p).take_while(|r| r * r <= p).last().unwrap_or(1);
        let pc = p / pr;
        Layout2D { n, pr, pc, nb }
    }

    /// Number of grid slots actually used (`pr * pc`; may be < team size).
    pub fn active_ranks(&self) -> usize {
        self.pr * self.pc
    }

    /// Grid coordinates of a team rank (row-major over the grid). Ranks
    /// ≥ `active_ranks` hold no data.
    pub fn coords(&self, team_rank: usize) -> Option<(usize, usize)> {
        if team_rank < self.active_ranks() {
            Some((team_rank / self.pc, team_rank % self.pc))
        } else {
            None
        }
    }

    /// Team rank owning global cell `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < self.n && j < self.n);
        let gr = (i / self.nb) % self.pr;
        let gc = (j / self.nb) % self.pc;
        gr * self.pc + gc
    }

    /// `numroc`: how many of `n` indices land on grid coordinate `coord` of
    /// a `nprocs`-strip with block `nb`.
    pub fn numroc(n: usize, nb: usize, coord: usize, nprocs: usize) -> usize {
        let nblocks = n / nb;
        let mut cnt = (nblocks / nprocs) * nb;
        let extra = nblocks % nprocs;
        if coord < extra {
            cnt += nb;
        } else if coord == extra {
            cnt += n % nb;
        }
        cnt
    }

    /// Local storage extent (rows, cols) for a team rank.
    pub fn local_dims(&self, team_rank: usize) -> (usize, usize) {
        match self.coords(team_rank) {
            None => (0, 0),
            Some((r, c)) => (
                Self::numroc(self.n, self.nb, r, self.pr),
                Self::numroc(self.n, self.nb, c, self.pc),
            ),
        }
    }

    /// Local (row, col) of global `(i, j)` on its owner.
    pub fn global_to_local(&self, i: usize, j: usize) -> (usize, usize) {
        let li = (i / (self.nb * self.pr)) * self.nb + i % self.nb;
        let lj = (j / (self.nb * self.pc)) * self.nb + j % self.nb;
        (li, lj)
    }

    /// Global row index of local row `li` on grid row `r` (inverse of the
    /// row half of [`global_to_local`]).
    pub fn local_to_global_row(&self, li: usize, r: usize) -> usize {
        (li / self.nb) * self.nb * self.pr + r * self.nb + li % self.nb
    }

    /// Global col index of local col `lj` on grid col `c`.
    pub fn local_to_global_col(&self, lj: usize, c: usize) -> usize {
        (lj / self.nb) * self.nb * self.pc + c * self.nb + lj % self.nb
    }

    /// Iterate the global cells owned by `team_rank`, row-major in local
    /// storage order.
    pub fn owned_cells(&self, team_rank: usize) -> Vec<(usize, usize)> {
        let Some((r, c)) = self.coords(team_rank) else {
            return Vec::new();
        };
        let (lr, lc) = self.local_dims(team_rank);
        let mut out = Vec::with_capacity(lr * lc);
        for li in 0..lr {
            let gi = self.local_to_global_row(li, r);
            for lj in 0..lc {
                out.push((gi, self.local_to_global_col(lj, c)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_team_grids_are_near_square() {
        let l = Layout2D::for_team(100, 6, 8);
        assert_eq!((l.pr, l.pc), (2, 3));
        let l = Layout2D::for_team(100, 16, 8);
        assert_eq!((l.pr, l.pc), (4, 4));
        let l = Layout2D::for_team(100, 1, 8);
        assert_eq!((l.pr, l.pc), (1, 1));
        let l = Layout2D::for_team(100, 7, 8);
        assert_eq!((l.pr, l.pc), (2, 3)); // one idle rank
    }

    #[test]
    fn owner_and_locals_consistent() {
        let l = Layout2D {
            n: 37,
            pr: 2,
            pc: 3,
            nb: 4,
        };
        // Every cell: owner's owned_cells contains it exactly once, and the
        // local index maps back.
        let mut owned: Vec<Vec<(usize, usize)>> =
            (0..l.active_ranks()).map(|t| l.owned_cells(t)).collect();
        let mut count = 0;
        for i in 0..l.n {
            for j in 0..l.n {
                let t = l.owner(i, j);
                let (li, lj) = l.global_to_local(i, j);
                let (r, c) = l.coords(t).unwrap();
                assert_eq!(l.local_to_global_row(li, r), i);
                assert_eq!(l.local_to_global_col(lj, c), j);
                let (lr, lc) = l.local_dims(t);
                assert!(li < lr && lj < lc, "local index out of extent");
                count += 1;
                // Membership check via sorted search later; collect here.
                assert!(owned[t].contains(&(i, j)));
            }
        }
        assert_eq!(count, l.n * l.n);
        // owned_cells partition the matrix.
        let total: usize = owned.iter_mut().map(|v| v.len()).sum();
        assert_eq!(total, l.n * l.n);
    }

    #[test]
    fn numroc_partitions_exactly() {
        for n in [1usize, 7, 16, 37, 100] {
            for nb in [1usize, 3, 8] {
                for p in [1usize, 2, 3, 5] {
                    let total: usize = (0..p).map(|c| Layout2D::numroc(n, nb, c, p)).sum();
                    assert_eq!(total, n, "n={n} nb={nb} p={p}");
                }
            }
        }
    }

    #[test]
    fn local_extents_match_owned_counts() {
        let l = Layout2D {
            n: 23,
            pr: 3,
            pc: 2,
            nb: 5,
        };
        for t in 0..l.active_ranks() {
            let (lr, lc) = l.local_dims(t);
            assert_eq!(l.owned_cells(t).len(), lr * lc);
        }
    }

    #[test]
    fn inactive_ranks_own_nothing() {
        let l = Layout2D::for_team(50, 7, 8); // 2x3 grid, rank 6 idle
        assert_eq!(l.local_dims(6), (0, 0));
        assert!(l.owned_cells(6).is_empty());
        assert!(l.coords(6).is_none());
    }

    #[test]
    fn single_rank_owns_everything() {
        let l = Layout2D::for_team(10, 1, 4);
        assert_eq!(l.owned_cells(0).len(), 100);
        for i in 0..10 {
            for j in 0..10 {
                assert_eq!(l.owner(i, j), 0);
            }
        }
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use pgas_des::rng::Rng;

    /// Global→local→global index roundtrip over random layouts (deterministic
    /// PRNG replacing the former proptest suite).
    #[test]
    fn roundtrip_global_local() {
        let mut r = Rng::new(0x2d);
        for _ in 0..2048 {
            let n = r.gen_between(1, 200);
            let pr = r.gen_between(1, 5);
            let pc = r.gen_between(1, 5);
            let nb = r.gen_between(1, 9);
            let seed = r.gen_range(10_000);
            let l = Layout2D { n, pr, pc, nb };
            let i = seed % n;
            let j = (seed * 31) % n;
            let t = l.owner(i, j);
            assert!(t < l.active_ranks());
            let (li, lj) = l.global_to_local(i, j);
            let (row, c) = l.coords(t).unwrap();
            assert_eq!(l.local_to_global_row(li, row), i);
            assert_eq!(l.local_to_global_col(lj, c), j);
            let (lr, lc) = l.local_dims(t);
            assert!(li < lr && lj < lc);
        }
    }
}
