//! Proportional mapping of the frontal tree onto process teams.
//!
//! "Frontal matrices are … mapped onto groups of processes using the
//! proportional mapping heuristic, which assigns subtrees of frontal
//! matrices to groups of processes of varying size depending on their
//! computational cost" (§IV-D1, citing Pothen & Sun). The root gets all P
//! ranks; each node splits its rank range among its children's subtrees in
//! proportion to their flop counts, every child receiving at least one rank.

use crate::ordering::SnTree;
use crate::symbolic::FrontSym;

/// Rank assignment per tree node: a contiguous world-rank range
/// `start..start+len` (teams in the paper's sense; contiguity is what the
/// proportional-mapping recursion produces).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankRange {
    /// First world rank of the team.
    pub start: usize,
    /// Team size (≥ 1).
    pub len: usize,
}

impl RankRange {
    /// Whether `rank` belongs to this team.
    pub fn contains(&self, rank: usize) -> bool {
        rank >= self.start && rank < self.start + self.len
    }
    /// Team-relative index of a world rank.
    pub fn team_rank(&self, world: usize) -> usize {
        assert!(self.contains(world));
        world - self.start
    }
    /// World rank of a team-relative index.
    pub fn world_rank(&self, team: usize) -> usize {
        assert!(team < self.len);
        self.start + team
    }
    /// The member world ranks in team order.
    pub fn world_ranks(&self) -> Vec<usize> {
        (self.start..self.start + self.len).collect()
    }
}

/// Subtree work: the node's own front flops plus all descendants'.
pub fn subtree_flops(tree: &SnTree, fronts: &[FrontSym]) -> Vec<f64> {
    let mut w = vec![0.0f64; tree.nodes.len()];
    // Postorder: children precede parents.
    for id in 0..tree.nodes.len() {
        let mut total = fronts[id].flops().max(1.0);
        for &ch in &tree.nodes[id].children {
            total += w[ch];
        }
        w[id] = total;
    }
    w
}

/// Assign every tree node a rank range by proportional mapping over `p`
/// total ranks.
pub fn proportional_mapping(tree: &SnTree, fronts: &[FrontSym], p: usize) -> Vec<RankRange> {
    assert!(p >= 1);
    let w = subtree_flops(tree, fronts);
    let mut out = vec![RankRange { start: 0, len: 0 }; tree.nodes.len()];
    let root = tree.root();
    out[root] = RankRange { start: 0, len: p };
    // Top-down (reverse postorder): parents before children.
    for id in (0..tree.nodes.len()).rev() {
        let my = out[id];
        debug_assert!(my.len >= 1, "unassigned node {id}");
        let kids = &tree.nodes[id].children;
        if kids.is_empty() {
            continue;
        }
        let total: f64 = kids.iter().map(|&c| w[c]).sum();
        if my.len == 1 {
            // One rank serves the whole subtree.
            for &c in kids {
                out[c] = my;
            }
            continue;
        }
        // Contiguous proportional split; every child gets ≥ 1 rank (ranges
        // may overlap when children outnumber ranks — sharing, as in the
        // classic heuristic's sequential fallback).
        let mut cum = 0.0f64;
        for &c in kids {
            let lo = ((cum / total) * my.len as f64).floor() as usize;
            cum += w[c];
            let hi = ((cum / total) * my.len as f64).ceil() as usize;
            let lo = lo.min(my.len - 1);
            let hi = hi.clamp(lo + 1, my.len);
            out[c] = RankRange {
                start: my.start + lo,
                len: hi - lo,
            };
        }
    }
    out
}

/// Every rank participating anywhere at a given tree level (for barriers).
pub fn ranks_at_level(tree: &SnTree, map: &[RankRange], level: usize) -> Vec<usize> {
    let mut set = std::collections::BTreeSet::new();
    for id in tree.level_nodes(level) {
        for r in map[id].world_ranks() {
            set.insert(r);
        }
    }
    set.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::grid3d_laplacian;
    use crate::ordering::nested_dissection;
    use crate::symbolic::symbolic_factorize;

    fn setup(k: usize) -> (SnTree, Vec<FrontSym>) {
        let tree = nested_dissection(k, 8);
        let a = grid3d_laplacian(k).permute(&tree.perm);
        let fronts = symbolic_factorize(&a, &tree);
        (tree, fronts)
    }

    #[test]
    fn root_gets_all_ranks() {
        let (tree, fronts) = setup(6);
        for p in [1usize, 2, 7, 32] {
            let map = proportional_mapping(&tree, &fronts, p);
            assert_eq!(map[tree.root()], RankRange { start: 0, len: p });
        }
    }

    #[test]
    fn children_stay_within_parent_range() {
        let (tree, fronts) = setup(6);
        let map = proportional_mapping(&tree, &fronts, 16);
        for (id, node) in tree.nodes.iter().enumerate() {
            for &c in &node.children {
                assert!(map[c].len >= 1);
                assert!(map[c].start >= map[id].start);
                assert!(map[c].start + map[c].len <= map[id].start + map[id].len);
            }
        }
    }

    #[test]
    fn siblings_partition_without_gaps_when_ranks_suffice() {
        let (tree, fronts) = setup(6);
        let map = proportional_mapping(&tree, &fronts, 64);
        let root = tree.root();
        let kids = &tree.nodes[root].children;
        if kids.len() == 2 {
            let (a, b) = (map[kids[0]], map[kids[1]]);
            // Two halves of a symmetric grid: roughly equal splits.
            let ratio = a.len as f64 / b.len as f64;
            assert!((0.5..2.0).contains(&ratio), "split ratio {ratio}");
        }
    }

    #[test]
    fn single_rank_maps_everything_to_rank_zero() {
        let (tree, fronts) = setup(4);
        let map = proportional_mapping(&tree, &fronts, 1);
        for r in &map {
            assert_eq!(*r, RankRange { start: 0, len: 1 });
        }
    }

    #[test]
    fn subtree_flops_accumulate() {
        let (tree, fronts) = setup(4);
        let w = subtree_flops(&tree, &fronts);
        let root = tree.root();
        for &c in &tree.nodes[root].children {
            assert!(w[root] > w[c]);
        }
        // Root subtree ≥ sum of all front flops.
        let total: f64 = fronts.iter().map(|f| f.flops().max(1.0)).sum();
        assert!((w[root] - total).abs() / total < 1e-9);
    }

    #[test]
    fn rank_range_arithmetic() {
        let r = RankRange { start: 4, len: 3 };
        assert!(r.contains(4) && r.contains(6) && !r.contains(7));
        assert_eq!(r.team_rank(5), 1);
        assert_eq!(r.world_rank(2), 6);
        assert_eq!(r.world_ranks(), vec![4, 5, 6]);
    }

    #[test]
    fn level_rank_union_is_sorted_unique() {
        let (tree, fronts) = setup(6);
        let map = proportional_mapping(&tree, &fronts, 8);
        for l in 0..tree.n_levels {
            let rs = ranks_at_level(&tree, &map, l);
            for w in rs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
