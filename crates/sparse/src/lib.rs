//! # sparse-solver — the paper's sparse-solver application motif (§IV-D)
//!
//! Everything the extend-add and symPACK experiments need, built from
//! scratch:
//!
//! * [`matrix`] — CSR symmetric matrices and the 3-D grid Laplacian
//!   stand-in for the paper's SuiteSparse inputs;
//! * [`ordering`] — geometric nested dissection producing the supernode /
//!   frontal-matrix tree (the elimination-tree hierarchy of Fig. 5);
//! * [`symbolic`] — per-front row structure (`Ip`, `IlC`, `IrC`);
//! * [`mapping`] — the proportional-mapping heuristic assigning process
//!   teams to subtrees;
//! * [`dist2d`] — 2-D block-cyclic distribution of fronts over team grids;
//! * [`dense`] — the partial-Cholesky kernel that factorizes a front;
//! * [`eadd`] — the extend-add operation in the paper's three communication
//!   variants (UPC++ RPC / MPI alltoallv / MPI point-to-point), Fig. 6–8;
//! * [`sympack`] — a miniature symPACK comparing UPC++ v0.1 events/asyncs
//!   against v1.0 futures/RPC on an identical factorization, Fig. 9.

#![warn(missing_docs)]

pub mod dense;
pub mod dist2d;
pub mod eadd;
pub mod mapping;
pub mod matrix;
pub mod ordering;
pub mod symbolic;
pub mod sympack;

pub use dist2d::Layout2D;
pub use eadd::{EaddPlan, Entry, Variant};
pub use mapping::{proportional_mapping, RankRange};
pub use matrix::{grid3d_laplacian, CsrMatrix};
pub use ordering::{nested_dissection, SnTree};
pub use symbolic::{symbolic_factorize, FrontSym};
pub use sympack::{Api, CholPlan};
