//! Sparse symmetric matrices in CSR form and the synthetic problem
//! generator.
//!
//! The paper's extend-add and symPACK experiments use `audikw_1` and
//! `Flan_1565` from SuiteSparse — large SPD matrices from 3-D mechanical
//! models. Offline, we substitute the 7-point Laplacian on a k×k×k grid
//! (`grid3d_laplacian`): the same problem class (3-D mesh, SPD, planar-ish
//! separators growing as k² toward the elimination-tree root), which is what
//! drives the communication structure the benchmarks measure. DESIGN.md
//! records the substitution.

/// A sparse symmetric matrix stored as full (both triangles) CSR.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    /// Dimension.
    pub n: usize,
    /// Row pointers (len n+1).
    pub rowptr: Vec<usize>,
    /// Column indices, sorted within each row.
    pub colind: Vec<usize>,
    /// Values, aligned with `colind`.
    pub values: Vec<f64>,
}

impl CsrMatrix {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.colind.len()
    }

    /// Iterate the (col, value) pairs of `row`.
    pub fn row(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.rowptr[row];
        let hi = self.rowptr[row + 1];
        self.colind[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Value at (i, j), or 0.0 when not stored.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let lo = self.rowptr[i];
        let hi = self.rowptr[i + 1];
        match self.colind[lo..hi].binary_search(&j) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Check structural and numerical symmetry (tests).
    pub fn is_symmetric(&self) -> bool {
        for i in 0..self.n {
            for (j, v) in self.row(i) {
                if (self.get(j, i) - v).abs() > 1e-12 {
                    return false;
                }
            }
        }
        true
    }

    /// Symmetrically permute: `out[p(i)][p(j)] = self[i][j]` where
    /// `perm[new] = old` (i.e. `perm` lists old indices in new order).
    pub fn permute(&self, perm: &[usize]) -> CsrMatrix {
        assert_eq!(perm.len(), self.n);
        let mut inv = vec![0usize; self.n];
        for (new, &old) in perm.iter().enumerate() {
            inv[old] = new;
        }
        let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.n];
        for i_old in 0..self.n {
            for (j_old, v) in self.row(i_old) {
                rows[inv[i_old]].push((inv[j_old], v));
            }
        }
        let mut rowptr = Vec::with_capacity(self.n + 1);
        let mut colind = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        rowptr.push(0);
        for mut r in rows {
            r.sort_unstable_by_key(|&(j, _)| j);
            for (j, v) in r {
                colind.push(j);
                values.push(v);
            }
            rowptr.push(colind.len());
        }
        CsrMatrix {
            n: self.n,
            rowptr,
            colind,
            values,
        }
    }

    /// Multiply y = A x (tests: residual checks for the solver).
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| self.row(i).map(|(j, v)| v * x[j]).sum())
            .collect()
    }
}

/// Linear index of grid point (x, y, z) in a k×k×k grid.
pub fn grid_index(k: usize, x: usize, y: usize, z: usize) -> usize {
    (z * k + y) * k + x
}

/// The 7-point Laplacian on a k×k×k grid: diagonal 6 + ε (SPD), off-diagonal
/// -1 to the six axis neighbors. The stand-in for the paper's SuiteSparse
/// inputs (module docs).
pub fn grid3d_laplacian(k: usize) -> CsrMatrix {
    assert!(k >= 1);
    let n = k * k * k;
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colind = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    for z in 0..k {
        for y in 0..k {
            for x in 0..k {
                let mut entries: Vec<(usize, f64)> = Vec::with_capacity(7);
                // Strong diagonal keeps Cholesky comfortably stable.
                entries.push((grid_index(k, x, y, z), 6.5));
                if x > 0 {
                    entries.push((grid_index(k, x - 1, y, z), -1.0));
                }
                if x + 1 < k {
                    entries.push((grid_index(k, x + 1, y, z), -1.0));
                }
                if y > 0 {
                    entries.push((grid_index(k, x, y - 1, z), -1.0));
                }
                if y + 1 < k {
                    entries.push((grid_index(k, x, y + 1, z), -1.0));
                }
                if z > 0 {
                    entries.push((grid_index(k, x, y, z - 1), -1.0));
                }
                if z + 1 < k {
                    entries.push((grid_index(k, x, y, z + 1), -1.0));
                }
                entries.sort_unstable_by_key(|&(j, _)| j);
                for (j, v) in entries {
                    colind.push(j);
                    values.push(v);
                }
                rowptr.push(colind.len());
            }
        }
    }
    CsrMatrix {
        n,
        rowptr,
        colind,
        values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplacian_shape_and_symmetry() {
        let a = grid3d_laplacian(4);
        assert_eq!(a.n, 64);
        // Interior points have 7 entries; corners 4.
        assert_eq!(a.row(grid_index(4, 1, 1, 1)).count(), 7);
        assert_eq!(a.row(grid_index(4, 0, 0, 0)).count(), 4);
        assert!(a.is_symmetric());
    }

    #[test]
    fn laplacian_is_diagonally_dominant() {
        let a = grid3d_laplacian(3);
        for i in 0..a.n {
            let diag = a.get(i, i);
            let off: f64 = a
                .row(i)
                .filter(|&(j, _)| j != i)
                .map(|(_, v)| v.abs())
                .sum();
            assert!(diag > off, "row {i}: {diag} <= {off}");
        }
    }

    #[test]
    fn get_returns_zero_off_pattern() {
        let a = grid3d_laplacian(3);
        assert_eq!(a.get(0, 26), 0.0);
        assert_eq!(a.get(0, 1), -1.0);
        assert_eq!(a.get(0, 0), 6.5);
    }

    #[test]
    fn permute_preserves_symmetry_and_values() {
        let a = grid3d_laplacian(3);
        // Reverse permutation.
        let perm: Vec<usize> = (0..a.n).rev().collect();
        let b = a.permute(&perm);
        assert!(b.is_symmetric());
        assert_eq!(b.nnz(), a.nnz());
        // b[new_i][new_j] == a[old_i][old_j]
        assert_eq!(b.get(a.n - 1, a.n - 1), a.get(0, 0));
        assert_eq!(b.get(a.n - 1, a.n - 2), a.get(0, 1));
    }

    #[test]
    fn spmv_constant_vector() {
        // A * 1 has row sums: 6.5 - (#neighbors).
        let a = grid3d_laplacian(3);
        let y = a.spmv(&vec![1.0; a.n]);
        let corner = grid_index(3, 0, 0, 0);
        let center = grid_index(3, 1, 1, 1);
        assert!((y[corner] - (6.5 - 3.0)).abs() < 1e-12);
        assert!((y[center] - (6.5 - 6.0)).abs() < 1e-12);
    }
}
