//! # pgas-dht — the distributed hash table motif (§IV-C)
//!
//! "In our first example application motif, we show how to implement a
//! distributed hash table that scales efficiently to large numbers of
//! processes." Two variants, exactly as the paper presents them:
//!
//! * [`insert_rpc`] — the RPC-only table: one RPC carries key and value to
//!   the owner, which stores them in its `local_map`;
//! * [`insert`] — the RMA-enabled table: an RPC of `make_lz` allocates a
//!   *landing zone* in the owner's shared segment and returns its global
//!   pointer; a `.then` callback rputs the value bytes zero-copy into it
//!   (the paper's exact future chain).
//!
//! As in the paper's benchmark (footnote 7), keys are integers and values
//! are fixed-size byte blocks. The owner of a key is `hash(key) % rank_n`
//! ([`get_target`]). `find` is provided for both variants.
//!
//! The module works unchanged over both conduits; the Fig. 4 weak-scaling
//! harness drives it on the sim conduit with up to 34816 ranks.
//!
//! Because every insert targets the key's *owner*, DHT throughput is
//! hostage to the owner's attentiveness: an owner busy computing answers
//! nothing until its next `upcxx::progress()`. The opt-in progress persona
//! (`UPCXX_PROGRESS=1` / `upcxx::set_progress_thread`) removes that
//! coupling — the owner-side handlers here are persona-agnostic (they only
//! touch `rank_state` through the engine-locked runtime surface), so a
//! progress thread can execute them mid-compute. The inattentive-target
//! A/B bench (`cargo bench -p bench --bench micro -- dht_inattentive`,
//! EXPERIMENTS.md) measures the effect on this module directly.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use upcxx::{Future, GlobalPtr};

/// A stored value's location in the owner's shared segment — the paper's
/// `lz_t { global_ptr<char> gptr; size_t len; }`.
#[derive(Clone, Copy, Debug)]
pub struct Lz {
    /// Landing-zone pointer in the owner's segment.
    pub gptr: GlobalPtr<u8>,
    /// Stored length in bytes.
    pub len: usize,
}

/// The owner-side map: key -> landing zone (RMA variant) and
/// key -> inline value (RPC variant). One per rank via `rank_state`.
#[derive(Default)]
pub struct LocalMap {
    /// RMA variant: landing zones.
    pub lz: RefCell<HashMap<u64, Lz>>,
    /// RPC-only variant: inline values.
    pub inline: RefCell<HashMap<u64, Vec<u8>>>,
    /// Set true by the benchmark to recycle landing zones (bounded-memory
    /// weak-scaling runs; the communication pattern is unchanged).
    pub recycle: std::cell::Cell<bool>,
    /// Free list of recyclable landing zones by padded size class.
    pub pool: RefCell<HashMap<usize, Vec<GlobalPtr<u8>>>>,
}

/// This rank's map instance.
pub fn local_map() -> Rc<LocalMap> {
    upcxx::rank_state::<LocalMap>(LocalMap::default)
}

/// Owner of `key` (the paper's `get_target`): a multiplicative hash onto
/// ranks, so random keys spread traffic uniformly — "the network traffic is
/// well-distributed, which aids in the scaling".
pub fn get_target(key: u64, rank_n: usize) -> usize {
    // splitmix64 finalizer: cheap, well-mixed.
    let mut x = key.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x % rank_n as u64) as usize
}

// ------------------------------------------------------------ RPC variant

fn rpc_insert_handler(args: (u64, Vec<u8>)) {
    let (key, val) = args;
    local_map().inline.borrow_mut().insert(key, val);
}

fn rpc_find_handler(key: u64) -> Option<Vec<u8>> {
    local_map().inline.borrow().get(&key).cloned()
}

/// RPC-only insert (the paper's first listing): ships key and value in one
/// RPC; the returned future readies when the owner has stored them.
pub fn insert_rpc(key: u64, val: Vec<u8>) -> Future<()> {
    let target = get_target(key, upcxx::rank_n());
    upcxx::rpc(target, rpc_insert_handler, (key, val))
}

/// Find for the RPC-only variant.
pub fn find_rpc(key: u64) -> Future<Option<Vec<u8>>> {
    let target = get_target(key, upcxx::rank_n());
    upcxx::rpc(target, rpc_find_handler, key)
}

/// Windowed RPC-only insert — the aggregation-friendly batch path. Issues
/// every insert in `pairs` back-to-back without blocking, so when per-target
/// aggregation is enabled (`upcxx::set_agg_config`) inserts bound for the
/// same owner coalesce into one wire message, then flushes the coalescing
/// buffers and returns a future that readies once every owner has
/// acknowledged its insert. With aggregation disabled this degenerates to a
/// plain unordered window of [`insert_rpc`]s.
pub fn insert_rpc_window(pairs: Vec<(u64, Vec<u8>)>) -> Future<()> {
    let futs: Vec<_> = pairs.into_iter().map(|(k, v)| insert_rpc(k, v)).collect();
    upcxx::flush_all();
    upcxx::when_all_vec(futs).then(|_| ())
}

// ------------------------------------------------------------ RMA variant

/// Owner-side allocation of a landing zone (the paper's `make_lz`): creates
/// uninitialized space in the owner's shared segment, records it in the
/// local map, and returns a global pointer suitable for RMA.
fn make_lz(args: (u64, usize)) -> GlobalPtr<u8> {
    let (key, len) = args;
    let m = local_map();
    let dest = if m.recycle.get() {
        // Bounded-memory mode: reuse a previously released zone of the same
        // size class if available (identical wire traffic either way).
        let class = len.next_power_of_two();
        let reused = m.pool.borrow_mut().get_mut(&class).and_then(Vec::pop);
        match reused {
            Some(p) => p,
            None => upcxx::allocate::<u8>(class),
        }
    } else {
        upcxx::allocate::<u8>(len)
    };
    let prev = m.lz.borrow_mut().insert(key, Lz { gptr: dest, len });
    if let (Some(old), true) = (prev, m.recycle.get()) {
        let class = old.len.next_power_of_two();
        m.pool.borrow_mut().entry(class).or_default().push(old.gptr);
    }
    dest
}

/// RMA-enabled insert — the paper's second listing, verbatim in shape:
/// RPC `make_lz` to the owner, then `.then` chains an `rput` of the value
/// into the returned landing zone. The returned future represents the whole
/// chain.
pub fn insert(key: u64, val: Vec<u8>) -> Future<()> {
    let target = get_target(key, upcxx::rank_n());
    upcxx::rpc(target, make_lz, (key, val.len())).then_fut(move |dest| upcxx::rput(&val, dest))
}

fn rma_find_lz(key: u64) -> Option<(GlobalPtr<u8>, usize)> {
    local_map()
        .lz
        .borrow()
        .get(&key)
        .map(|lz| (lz.gptr, lz.len))
}

/// Find for the RMA variant: an RPC fetches the landing-zone pointer, then
/// an `rget` pulls the value one-sided — the symmetric read path.
pub fn find(key: u64) -> Future<Option<Vec<u8>>> {
    let target = get_target(key, upcxx::rank_n());
    upcxx::rpc(target, rma_find_lz, key).then_fut(move |lz| match lz {
        None => upcxx::make_future(None),
        Some((gptr, len)) => upcxx::rget(gptr, len).then(Some),
    })
}

/// Enable landing-zone recycling on the calling rank (benchmark use; see
/// [`LocalMap::recycle`]).
pub fn enable_recycling() {
    local_map().recycle.set(true);
}

/// Number of keys stored on the calling rank (both variants).
pub fn local_len() -> usize {
    let m = local_map();
    let a = m.lz.borrow().len();
    let b = m.inline.borrow().len();
    a + b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_target_is_deterministic_and_in_range() {
        for n in [1usize, 2, 7, 64, 34816] {
            for key in 0..1000u64 {
                let t = get_target(key, n);
                assert!(t < n);
                assert_eq!(t, get_target(key, n));
            }
        }
    }

    #[test]
    fn get_target_spreads_keys() {
        let n = 64;
        let mut counts = vec![0usize; n];
        for key in 0..64_000u64 {
            counts[get_target(key, n)] += 1;
        }
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        // Uniform expectation is 1000/rank; demand better than 2x skew.
        assert!(*min > 500 && *max < 2000, "min {min} max {max}");
    }
}
