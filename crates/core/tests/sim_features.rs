//! Feature coverage under the sim conduit that the basic sim suite doesn't
//! touch: strided RMA, zero-copy views at scale, subset-team collectives,
//! distributed objects, timers, and per-node NIC contention structure.

use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::Cell;
use std::rc::Rc;
use upcxx::SimRuntime;

fn rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn alloc_u64(count: usize) -> upcxx::GlobalPtr<u64> {
    upcxx::allocate::<u64>(count)
}

#[test]
fn strided_put_under_sim() {
    let r = rt(8);
    let ok = Rc::new(Cell::new(false));
    let ok2 = ok.clone();
    r.spawn(0, move || {
        let ok3 = ok2.clone();
        upcxx::rpc(4, alloc_u64, 32usize)
            .then_fut(|gp| {
                let src: Vec<u64> = (0..8).collect();
                upcxx::rput_strided(&src, 2, gp, 8, 2, 4).then(move |_| gp)
            })
            .then_fut(|gp| upcxx::rget(gp, 32))
            .then(move |all| {
                for c in 0..4u64 {
                    assert_eq!(all[(c * 8) as usize], c * 2);
                    assert_eq!(all[(c * 8 + 1) as usize], c * 2 + 1);
                }
                ok3.set(true);
            });
    });
    r.run();
    assert!(ok.get());
}

#[test]
fn team_reduce_and_barrier_under_sim() {
    let n = 32;
    let r = rt(n);
    let done = Rc::new(Cell::new(0u32));
    for rank in 0..n {
        let done = done.clone();
        r.spawn(rank, move || {
            let team = upcxx::Team::world().split_by(|x| (x % 4) as u64);
            let done = done.clone();
            upcxx::reduce_all_team(&team, rank as u64, upcxx::ops::add_u64).then_fut(move |s| {
                let expect: u64 = (0..n as u64).filter(|x| x % 4 == (rank % 4) as u64).sum();
                assert_eq!(s, expect);
                let d = done.clone();
                upcxx::barrier_async_team(&upcxx::Team::world().split_by(|x| (x % 4) as u64))
                    .then(move |_| d.set(d.get() + 1))
            });
        });
    }
    r.run();
    assert_eq!(done.get(), n as u32);
}

#[test]
fn dist_object_fetch_under_sim() {
    let n = 6;
    let r = rt(n);
    let got = Rc::new(Cell::new(0u32));
    fn read_it(v: std::rc::Rc<u64>) -> u64 {
        *v
    }
    for rank in 0..n {
        let got = got.clone();
        r.spawn(rank, move || {
            let obj = upcxx::DistObject::new(rank as u64 * 3);
            let got = got.clone();
            // Collective-order construction; fetch from the right neighbor
            // after a barrier guarantees existence.
            upcxx::barrier_async()
                .then_fut(move |_| obj.fetch_map((rank + 1) % n, read_it))
                .then(move |v| {
                    assert_eq!(v, (((rank + 1) % n) as u64) * 3);
                    got.set(got.get() + 1);
                });
        });
    }
    r.run();
    assert_eq!(got.get(), n as u32);
}

#[test]
fn after_timer_fires_at_virtual_time() {
    let r = rt(2);
    let fired = Rc::new(Cell::new(Time::ZERO));
    let f2 = fired.clone();
    r.spawn(0, move || {
        let f3 = f2.clone();
        upcxx::after(Time::from_us(123)).then(move |_| f3.set(upcxx::sim_now().unwrap()));
    });
    r.run();
    assert_eq!(fired.get(), Time::from_us(123));
}

#[test]
fn nic_contention_slows_many_senders_per_node() {
    // All ranks of node 0 flooding one remote rank serialize on the node's
    // transmit engine: doubling the senders must not halve completion time.
    let run = |senders: usize| {
        let r = rt(8); // 2 nodes x 4 ranks
        let done = Rc::new(Cell::new(Time::ZERO));
        for s in 0..senders {
            let done = done.clone();
            r.spawn(s, move || {
                let done = done.clone();
                upcxx::rpc(4 + s % 4, alloc_u64, 512usize).then_fut(move |gp| {
                    let p = upcxx::Promise::<()>::new();
                    let buf = vec![0u64; 512];
                    for _ in 0..50 {
                        upcxx::rput_promise(&buf, gp, &p);
                    }
                    let d = done.clone();
                    p.finalize()
                        .then(move |_| d.set(d.get().max(upcxx::sim_now().unwrap())))
                });
            });
        }
        r.run();
        done.get()
    };
    let one = run(1);
    let four = run(4);
    // 4x the data through the same NIC: completion must grow substantially
    // (perfect sharing would be 4x; demand at least 2x).
    assert!(
        four > one + one,
        "no injection contention visible: 1 sender {one}, 4 senders {four}"
    );
}

#[test]
fn view_rpc_zero_copy_many_ranks() {
    fn sum_view(v: upcxx::View<u64>) -> u64 {
        v.iter().sum()
    }
    let n = 16;
    let r = rt(n);
    let acc = Rc::new(Cell::new(0u64));
    for rank in 0..n {
        let acc = acc.clone();
        r.spawn(rank, move || {
            let data: Vec<u64> = (0..100).map(|i| (rank * 1000 + i) as u64).collect();
            let expect: u64 = data.iter().sum();
            let acc = acc.clone();
            upcxx::rpc((rank + 5) % n, sum_view, upcxx::make_view(&data)).then(move |s| {
                assert_eq!(s, expect);
                acc.set(acc.get() + 1);
            });
        });
    }
    r.run();
    assert_eq!(acc.get(), n as u64);
}

#[test]
fn rpc_ff_under_sim_counts_arrivals() {
    use std::cell::RefCell;
    type Tally = RefCell<u64>;
    fn bump_tally(by: u64) {
        let t = upcxx::rank_state::<Tally>(|| RefCell::new(0));
        *t.borrow_mut() += by;
    }
    let n = 8;
    let r = rt(n);
    for rank in 1..n {
        r.spawn(rank, move || {
            upcxx::rpc_ff(0, bump_tally, rank as u64);
        });
    }
    r.run();
    r.with_rank(0, || {
        let t = upcxx::rank_state::<Tally>(|| RefCell::new(0));
        assert_eq!(*t.borrow(), (1..8u64).sum::<u64>());
    });
}
