//! Shared integration-test helpers — currently a minimal JSON parser for
//! round-tripping the runtime's hand-rolled exports (the workspace is
//! dependency-free, so tests parse by hand too). Supports the full JSON
//! value grammar the exporters emit: objects, arrays, strings with the
//! common escapes, numbers, booleans and null.
#![allow(dead_code)]

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (None on missing key or non-object).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
    /// The value as an array; panics otherwise.
    pub fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("expected array, got {other:?}"),
        }
    }
    /// The value as a number; panics otherwise.
    pub fn num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }
    /// The value as a string; panics otherwise.
    pub fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

/// Parse a complete JSON document; panics (with position) on any syntax
/// error or trailing garbage — exactly what a round-trip test wants.
pub fn parse_json(s: &str) -> Json {
    let b = s.as_bytes();
    let mut i = 0;
    let v = value(b, &mut i);
    ws(b, &mut i);
    assert_eq!(i, b.len(), "trailing garbage at byte {i}");
    v
}

fn ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, c: u8) {
    assert!(
        *i < b.len() && b[*i] == c,
        "expected '{}' at byte {i}",
        c as char
    );
    *i += 1;
}

fn value(b: &[u8], i: &mut usize) -> Json {
    ws(b, i);
    assert!(*i < b.len(), "unexpected end of input");
    match b[*i] {
        b'{' => {
            *i += 1;
            let mut kv = Vec::new();
            ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Json::Obj(kv);
            }
            loop {
                ws(b, i);
                let k = string(b, i);
                ws(b, i);
                expect(b, i, b':');
                let v = value(b, i);
                kv.push((k, v));
                ws(b, i);
                match b.get(*i) {
                    Some(&b',') => *i += 1,
                    Some(&b'}') => {
                        *i += 1;
                        return Json::Obj(kv);
                    }
                    _ => panic!("expected ',' or '}}' at byte {i}"),
                }
            }
        }
        b'[' => {
            *i += 1;
            let mut v = Vec::new();
            ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Json::Arr(v);
            }
            loop {
                v.push(value(b, i));
                ws(b, i);
                match b.get(*i) {
                    Some(&b',') => *i += 1,
                    Some(&b']') => {
                        *i += 1;
                        return Json::Arr(v);
                    }
                    _ => panic!("expected ',' or ']' at byte {i}"),
                }
            }
        }
        b'"' => Json::Str(string(b, i)),
        b't' => {
            lit(b, i, b"true");
            Json::Bool(true)
        }
        b'f' => {
            lit(b, i, b"false");
            Json::Bool(false)
        }
        b'n' => {
            lit(b, i, b"null");
            Json::Null
        }
        _ => {
            let start = *i;
            while *i < b.len() && matches!(b[*i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
                *i += 1;
            }
            let txt = std::str::from_utf8(&b[start..*i]).unwrap();
            Json::Num(txt.parse().unwrap_or_else(|_| panic!("bad number '{txt}'")))
        }
    }
}

fn lit(b: &[u8], i: &mut usize, l: &[u8]) {
    assert!(b[*i..].starts_with(l), "bad literal at byte {i}");
    *i += l.len();
}

fn string(b: &[u8], i: &mut usize) -> String {
    expect(b, i, b'"');
    let mut out = String::new();
    loop {
        assert!(*i < b.len(), "unterminated string");
        match b[*i] {
            b'"' => {
                *i += 1;
                return out;
            }
            b'\\' => {
                *i += 1;
                match b[*i] {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = std::str::from_utf8(&b[*i + 1..*i + 5]).unwrap();
                        let cp = u32::from_str_radix(hex, 16).unwrap();
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *i += 4;
                    }
                    c => panic!("bad escape '\\{}'", c as char),
                }
                *i += 1;
            }
            c => {
                // Multi-byte UTF-8 passes through untouched.
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                out.push_str(std::str::from_utf8(&b[*i..*i + ch_len]).unwrap());
                *i += ch_len;
            }
        }
    }
}
