//! Progress-persona equivalence suite: the opt-in progress thread
//! (`UPCXX_PROGRESS` / `upcxx::set_progress_thread`) must be observationally
//! identical to the default user-driven path — same data movement and RPC
//! results, same trace event counts per (kind, phase), same sanitizer
//! true-positive/true-negative reports — while actually servicing traffic
//! for an inattentive master (the stress test: only rank 0 ever calls
//! `progress()` and every RPC still completes).
//!
//! Convention (mirrors `tests/rma_fastpath.rs`): smp sanitizer tests use
//! Count mode so no rank dies while peers wait in a barrier; sim tests
//! assert the knob is inert (figures byte-identical either way).

use netsim::MachineConfig;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;
use upcxx::san::{self, SanConfig, SanMode};
use upcxx::trace;
use upcxx::{OpKind, Phase, SimRuntime, TraceConfig};

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn tracing_on() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 14,
    }
}

fn san_cfg(mode: SanMode) -> SanConfig {
    SanConfig {
        enabled: true,
        mode,
    }
}

/// Per-rank count of RPC handler executions. Handlers run on whichever
/// persona drains them from the inbox; `rank_state` itself takes the engine
/// lock, so a master-side `hits()` call after all senders waited their
/// futures is ordered after every progress-persona increment.
struct Hits(Cell<u64>);

fn hits() -> Rc<Hits> {
    upcxx::rank_state(|| Hits(Cell::new(0)))
}

fn rpc_double(x: u64) -> u64 {
    let h = hits();
    h.0.set(h.0.get() + 1);
    x.wrapping_mul(2)
}

// ----------------------------------------------------- smp: data equivalence

/// One mixed RMA+RPC workload, parameterized by the knob: rput a slice to
/// the right neighbor, rget it back, send 16 waited RPCs, count handler
/// executions. Returns everything observed so the two knob states can be
/// compared.
fn mixed_workload(progress_thread: bool) -> (Vec<u64>, u64, u64) {
    upcxx::set_progress_thread(progress_thread);
    let me = upcxx::rank_me();
    let n = upcxx::rank_n();
    let right = (me + 1) % n;
    let base = hits().0.get(); // quiescent: no traffic in flight yet
    let slot = upcxx::allocate::<u64>(4);
    let slots = upcxx::allgather(slot);
    upcxx::barrier();
    let src: Vec<u64> = (0..4).map(|i| me as u64 * 10 + i).collect();
    upcxx::rput(&src, slots[right]).wait();
    upcxx::barrier();
    let got = upcxx::rget(slot, 4).wait();
    let mut sum = 0u64;
    for i in 0..16u64 {
        sum += upcxx::rpc(right, rpc_double, i).wait();
    }
    upcxx::barrier();
    // Every sender waited its futures before the barrier, so all handlers
    // have run; the engine-lock acquisition inside `hits()` orders this
    // read after any progress-persona increments.
    let handled = hits().0.get() - base;
    upcxx::barrier();
    upcxx::deallocate(slot);
    upcxx::barrier();
    upcxx::set_progress_thread(false);
    (got, sum, handled)
}

#[test]
fn smp_progress_thread_on_off_same_results() {
    upcxx::run_spmd_default(3, || {
        let on = mixed_workload(true);
        let off = mixed_workload(false);
        assert_eq!(on, off, "both personas must produce identical results");
        let left = ((upcxx::rank_me() + 2) % 3) as u64;
        let expect: Vec<u64> = (0..4).map(|i| left * 10 + i).collect();
        assert_eq!(on.0, expect);
        assert_eq!(on.1, (0..16u64).map(|i| i * 2).sum::<u64>());
        assert_eq!(on.2, 16, "the left neighbor sent us 16 rpcs");
    });
}

// ------------------------------------------- smp: trace-shape equivalence

/// Count trace events per (kind, phase) for one traced put+get+rpc sequence
/// under the given knob state, and collect the persona ids stamped on them.
/// Runs on rank 0 only. Keys are the Debug renderings — `OpKind`/`Phase`
/// deliberately don't implement `Ord`.
fn traced_counts(progress_thread: bool) -> (BTreeMap<(String, String), usize>, Vec<u8>) {
    upcxx::set_progress_thread(progress_thread);
    let slot = upcxx::allocate::<u64>(4);
    let slots = upcxx::allgather(slot);
    upcxx::barrier();
    let mut counts = BTreeMap::new();
    let mut personas = Vec::new();
    if upcxx::rank_me() == 0 {
        trace::set_config(tracing_on());
        upcxx::rput(&[9u64, 8, 7, 6], slots[1]).wait();
        assert_eq!(upcxx::rget(slots[1], 4).wait(), vec![9, 8, 7, 6]);
        assert_eq!(upcxx::rpc(1, rpc_double, 21).wait(), 42);
        for e in trace::take_local() {
            *counts
                .entry((format!("{:?}", e.kind), format!("{:?}", e.phase)))
                .or_insert(0) += 1;
            personas.push(e.persona);
        }
        trace::set_config(TraceConfig::default());
    }
    upcxx::barrier();
    upcxx::deallocate(slot);
    upcxx::barrier();
    upcxx::set_progress_thread(false);
    (counts, personas)
}

#[test]
fn smp_trace_event_counts_match_across_knob() {
    upcxx::run_spmd_default(2, || {
        let (on, on_personas) = traced_counts(true);
        let (off, off_personas) = traced_counts(false);
        if upcxx::rank_me() == 0 {
            assert_eq!(on, off, "per-(kind, phase) event counts must match");
            // The progress persona changes *who* records an event, never
            // whether it is recorded: one put and one get, four phases each.
            for ph in [
                Phase::Inject,
                Phase::Conduit,
                Phase::Deliver,
                Phase::Complete,
            ] {
                let key = |k: OpKind| (format!("{k:?}"), format!("{ph:?}"));
                assert_eq!(on.get(&key(OpKind::Put)), Some(&1), "{ph:?}");
                assert_eq!(on.get(&key(OpKind::Get)), Some(&1), "{ph:?}");
            }
            assert!(
                off_personas.iter().all(|&p| p == 0),
                "thread off: every event is stamped with the master persona"
            );
            assert!(
                on_personas.iter().all(|&p| p <= 1),
                "thread on: persona ids are master (0) or progress (1)"
            );
        }
    });
}

// ------------------------------------------- smp: sanitizer equivalence

/// The racy-rput scenario of `tests/san.rs`, under an explicit knob state:
/// ranks 0 and 1 both write rank 2's word with no ordering edge. Exactly
/// one injection must be diagnosed whether or not a progress thread drains
/// the target — `check_rma` runs at injection time on both paths.
fn racy_pair_races(progress_thread: bool) -> u64 {
    upcxx::set_progress_thread(progress_thread);
    san::set_config(san_cfg(SanMode::Count));
    let base = san::san_report();
    upcxx::barrier();
    let words = upcxx::allocate::<u64>(2);
    words.local_write(&[0, 0]);
    let all = upcxx::allgather(words);
    if upcxx::rank_me() < 2 {
        upcxx::rput_val(upcxx::rank_me() as u64, all[2]).wait();
        let done = all[2].add(1);
        let ad = upcxx::AtomicDomain::all();
        ad.fetch_add(done, 1).wait();
        while ad.load(done).wait() < 2 {}
    }
    upcxx::barrier();
    // Counters are cumulative per rank: report the delta so the scenario can
    // run under both knob states in one world.
    let races = upcxx::reduce_all(san::san_report().races - base.races, |a, b| a + b).wait();
    let c = san::san_report();
    assert_eq!((c.uaf, c.oob, c.bad_frees), (0, 0, 0), "{c:?}");
    san::set_config(SanConfig::default());
    upcxx::barrier();
    upcxx::set_progress_thread(false);
    races
}

#[test]
fn smp_san_true_positive_matches_across_knob() {
    upcxx::run_spmd_default(3, || {
        let threaded = racy_pair_races(true);
        assert_eq!(threaded, 1, "progress persona must still diagnose the race");
        let user_driven = racy_pair_races(false);
        assert_eq!(threaded, user_driven, "same TP count on both paths");
    });
}

#[test]
fn smp_san_true_negative_matches_across_knob() {
    upcxx::run_spmd_default(2, || {
        for threaded in [true, false] {
            upcxx::set_progress_thread(threaded);
            san::set_config(san_cfg(SanMode::Count));
            upcxx::barrier();
            let slot = upcxx::allocate::<u64>(4);
            let slots = upcxx::allgather(slot);
            upcxx::barrier(); // ordering edge before ...
            if upcxx::rank_me() == 0 {
                upcxx::rput(&[1u64, 2, 3, 4], slots[1]).wait();
            }
            upcxx::barrier(); // ... and after: no race to report.
            assert_eq!(upcxx::rget(slot, 4).wait().len(), 4);
            upcxx::barrier();
            assert_eq!(
                san::san_report(),
                upcxx::SanCounters::default(),
                "clean workload must stay clean (threaded={threaded})"
            );
            san::set_config(SanConfig::default());
            upcxx::deallocate(slot);
            upcxx::barrier();
            upcxx::set_progress_thread(false);
        }
    });
}

// ------------------------------------------- smp: inattentive-target stress

/// Only rank 0 ever calls `progress()` (via the waits on its futures); rank 1
/// never does inside the window — its progress persona alone services 200
/// RPCs and the completion flag. Rank 1 detects the end of the window by
/// polling a segment word with `local_read` (a plain local access, not
/// progress) that rank 0 sets with an atomic store — the sanctioned
/// flag-polling idiom, so the suite stays clean under `UPCXX_SAN=1`.
#[test]
fn smp_inattentive_target_rpcs_complete() {
    upcxx::run_spmd_default(2, || {
        upcxx::set_progress_thread(true);
        let flag = upcxx::allocate::<u64>(1);
        flag.local_write(&[0]);
        let flags = upcxx::allgather(flag);
        let base = hits().0.get();
        upcxx::barrier();
        if upcxx::rank_me() == 0 {
            let futs: Vec<_> = (0..200u64).map(|i| upcxx::rpc(1, rpc_double, i)).collect();
            for (i, f) in futs.into_iter().enumerate() {
                assert_eq!(f.wait(), i as u64 * 2);
            }
            let ad = upcxx::AtomicDomain::all();
            ad.store(flags[1], 1).wait();
        } else {
            let mut v = [0u64; 1];
            loop {
                flag.local_read(&mut v);
                if v[0] == 1 {
                    break;
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        // Joining the thread happens-before this read, so the handler count
        // is safe to inspect directly.
        upcxx::set_progress_thread(false);
        if upcxx::rank_me() == 1 {
            assert_eq!(hits().0.get() - base, 200, "all rpcs ran while inattentive");
        }
        upcxx::barrier();
        upcxx::deallocate(flag);
        upcxx::barrier();
    });
}

// ----------------------------------- smp: attentiveness reset + comp chunks

#[test]
fn smp_attentiveness_resets_and_tracks_both_personas() {
    upcxx::run_spmd_default(1, || {
        // Force a known state: `UPCXX_PROGRESS=1` starts the thread at init.
        upcxx::set_progress_thread(false);
        trace::set_config(tracing_on());
        upcxx::progress();
        std::thread::sleep(Duration::from_millis(2));
        upcxx::progress();
        let s = upcxx::runtime_stats();
        assert!(
            s.max_progress_gap_ps >= 1_000_000_000,
            "a >=1 ms master gap must be recorded, got {} ps",
            s.max_progress_gap_ps
        );
        assert_eq!(
            s.max_progress_gap_prog_ps, 0,
            "thread off: the progress persona never runs"
        );
        // A fresh set_config starts a new measurement world: back-to-back
        // worlds must not inherit the previous world's max gap.
        trace::set_config(tracing_on());
        let s = upcxx::runtime_stats();
        assert_eq!(s.max_progress_gap_ps, 0, "reset must clear the master gap");
        assert_eq!(s.max_progress_gap_prog_ps, 0);
        // With the thread on, the progress persona's attentiveness is
        // tracked separately from the master's.
        upcxx::set_progress_thread(true);
        std::thread::sleep(Duration::from_millis(5));
        upcxx::set_progress_thread(false);
        let s = upcxx::runtime_stats();
        assert!(
            s.max_progress_gap_prog_ps > 0,
            "progress persona gaps must be measured while the thread runs"
        );
        trace::set_config(TraceConfig::default());
    });
}

#[test]
fn smp_comp_chunks_exposed_in_stats() {
    upcxx::run_spmd_default(2, || {
        upcxx::set_eager(false); // deferred path: completions retire via compQ
        let slot = upcxx::allocate::<u64>(1);
        let slots = upcxx::allgather(slot);
        upcxx::barrier();
        upcxx::rput_val(7u64, slots[(upcxx::rank_me() + 1) % 2]).wait();
        upcxx::barrier();
        let s = upcxx::runtime_stats();
        assert!(
            s.comp_chunks >= 1,
            "bounded compQ drain must report its chunks, got {}",
            s.comp_chunks
        );
        upcxx::deallocate(slot);
        upcxx::barrier();
    });
}

// --------------------------------------------------- sim: knob is inert

fn sim_hit(_: u64) {}

/// One deterministic sim workload; returns the virtual end time.
fn sim_elapsed(enable_thread: bool) -> impl PartialEq + std::fmt::Debug {
    let rt = test_rt(2);
    rt.spawn(0, move || {
        // Must be a no-op on the modeled conduit: no thread, no figure drift.
        upcxx::set_progress_thread(enable_thread);
        let p = upcxx::allocate::<u64>(4);
        upcxx::rput(&[1u64, 2, 3, 4], p)
            .then_fut(move |()| upcxx::rget(p, 4))
            .then(|got| assert_eq!(got, vec![1, 2, 3, 4]));
        for i in 0..20u64 {
            upcxx::rpc_ff(1, sim_hit, i);
        }
    });
    rt.run()
}

#[test]
fn sim_progress_thread_is_inert() {
    let off = sim_elapsed(false);
    let on = sim_elapsed(true);
    assert_eq!(
        on, off,
        "sim figures must be byte-identical across the knob"
    );
}
