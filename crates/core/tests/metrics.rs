//! Integration suite for the always-on `upcxx::metrics` layer: the
//! disabled/default-path equivalence contract (interval dumping on or off,
//! the application observes bit-identical results — mirroring
//! `tests/rma_fastpath.rs`), round-tripping the dump files through the
//! hand-written JSON parser in `tests/common`, and the panic-hook flight
//! dump.
//!
//! The dump directory is process-global state (`set_dump_dir`), so every
//! test here serializes on one mutex — Rust's test harness otherwise runs
//! them concurrently in one process.

mod common;

use std::path::PathBuf;
use std::sync::Mutex;
use upcxx::{ConduitKind, Config};

static DUMP_DIR_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    DUMP_DIR_LOCK
        .lock()
        .unwrap_or_else(|poison| poison.into_inner())
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("upcxx-metrics-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

// --------------------------------------- interval on/off equivalence

/// The `rma_fastpath` workload shape: rput a slice to the right neighbor,
/// read my own slot back three ways, and RPC the neighbor — everything the
/// application can observe, returned for comparison across dump states.
fn workload() -> (Vec<u64>, u64, Vec<u64>, u64) {
    let me = upcxx::rank_me() as u64;
    let n = upcxx::rank_n();
    let slot = upcxx::allocate::<u64>(8);
    slot.local_write(&[0; 8]);
    let slots = upcxx::allgather(slot);
    let right = (upcxx::rank_me() + 1) % n;
    let src: Vec<u64> = (0..8).map(|i| me * 100 + i).collect();
    upcxx::rput(&src, slots[right]).wait();
    upcxx::barrier();
    let got = upcxx::rget(slot, 8).wait();
    let head = upcxx::rget_val(slot).wait();
    let mut into = vec![0u64; 8];
    upcxx::rget_into(slot, &mut into).wait();
    let echoed = upcxx::rpc(right, |x: u64| x + 1, me).wait();
    upcxx::barrier();
    upcxx::deallocate(slot);
    upcxx::barrier();
    (got, head, into, echoed)
}

/// One world, both dump states: a 1 ms dump interval (continuously firing
/// from user progress) must not change anything the application observes.
fn body_dump_on_off_equivalence() {
    upcxx::metrics::set_dump_interval(1);
    let on = workload();
    upcxx::metrics::set_dump_interval(0);
    let off = workload();
    assert_eq!(on, off, "interval dumping must be observationally inert");
    let left = ((upcxx::rank_me() + upcxx::rank_n() - 1) % upcxx::rank_n()) as u64;
    let expect: Vec<u64> = (0..8).map(|i| left * 100 + i).collect();
    assert_eq!(on.0, expect);
    assert_eq!(on.1, expect[0]);
    assert_eq!(on.2, expect);
    // Interval firing is wall-clock-driven; spin progress (which is where
    // opportunistic dumping lives) until one lands rather than racing it.
    upcxx::metrics::set_dump_interval(1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while upcxx::metrics::snapshot().dumps_written == 0 {
        upcxx::progress();
        assert!(
            std::time::Instant::now() < deadline,
            "interval dump never fired"
        );
    }
    upcxx::metrics::set_dump_interval(0);
    upcxx::barrier();
}

#[test]
fn smp_dump_interval_on_off_same_results() {
    let _g = lock();
    upcxx::metrics::set_dump_dir(Some(fresh_dir("smp-equiv")));
    upcxx::run_spmd_default(3, body_dump_on_off_equivalence);
    upcxx::metrics::set_dump_dir(None);
}

#[test]
fn proc_dump_interval_on_off_same_results() {
    let _g = lock();
    // Children dump into $UPCXX_PROC_DIR (the world's bootstrap directory),
    // which the launcher owns and removes — no explicit dir needed.
    upcxx::run_spmd_with(
        3,
        Config::default().with_conduit(ConduitKind::Proc),
        body_dump_on_off_equivalence,
    );
}

// ------------------------------------------- dump-file round tripping

#[test]
fn smp_dump_files_round_trip_through_parser() {
    let _g = lock();
    let dir = fresh_dir("roundtrip");
    upcxx::metrics::set_dump_dir(Some(dir.clone()));
    upcxx::run_spmd_default(2, || {
        let _ = workload();
        let where_to = upcxx::metrics::dump().unwrap();
        let d2 = upcxx::metrics::dump().unwrap(); // series gets a 2nd line
        assert_eq!(where_to, d2);
        upcxx::barrier();
        let me = upcxx::rank_me();
        let s = upcxx::metrics::snapshot();

        // JSON dump: parses with the hand-written parser, sections present,
        // counters consistent with the live snapshot.
        let j = common::parse_json(
            &std::fs::read_to_string(where_to.join(format!("metrics.{me}.json"))).unwrap(),
        );
        assert_eq!(j.get("rank").unwrap().num() as usize, me);
        let counters = j.get("counters").unwrap();
        assert!(counters.get("rma_ops").unwrap().num() >= 1.0);
        assert!(counters.get("rpcs").unwrap().num() >= 1.0);
        assert!(counters.get("flight_recorded").unwrap().num() >= 1.0);
        assert!(counters.get("rma_ops").unwrap().num() as u64 <= s.rma_ops);
        let gauges = j.get("gauges").unwrap();
        assert!(gauges.get("staging_cap").is_some());
        let hist = j.get("hists").unwrap().get("op_bytes").unwrap();
        assert!(hist.get("count").unwrap().num() >= 1.0);

        // In-process exposition strings parse/scrape the same way.
        let _ = common::parse_json(&upcxx::metrics::to_json());
        let prom = std::fs::read_to_string(where_to.join(format!("metrics.{me}.prom"))).unwrap();
        assert!(prom.contains("# TYPE upcxx_rma_ops_total counter"));
        assert!(prom.contains(&format!("upcxx_rma_ops_total{{rank=\"{me}\"}}")));
        assert!(prom.contains("upcxx_op_bytes_bucket"));

        // Series file: one JSON object per dump, seq and counters monotone.
        let series =
            std::fs::read_to_string(where_to.join(format!("metrics.{me}.series.jsonl"))).unwrap();
        let lines: Vec<_> = series.lines().map(common::parse_json).collect();
        assert!(lines.len() >= 2, "two dumps must append two lines");
        for pair in lines.windows(2) {
            for key in ["seq", "rma_ops", "rpcs", "bytes_out", "progress_calls"] {
                assert!(
                    pair[0].get(key).unwrap().num() <= pair[1].get(key).unwrap().num(),
                    "{key} went backwards across dumps"
                );
            }
        }
        upcxx::barrier();
    });
    upcxx::metrics::set_dump_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------------ panic-hook flight dump

#[test]
fn panic_hook_writes_parseable_flight_dump() {
    let _g = lock();
    let dir = fresh_dir("flight");
    upcxx::metrics::set_dump_dir(Some(dir.clone()));
    upcxx::run_spmd_default(1, || {
        // Self-directed traffic gives the ring something to record.
        let slot = upcxx::allocate::<u64>(4);
        upcxx::rput(&[1u64, 2, 3, 4], slot).wait();
        assert_eq!(upcxx::rget(slot, 4).wait(), vec![1, 2, 3, 4]);
        let live = upcxx::metrics::flight_events();
        assert!(!live.is_empty(), "flight ring empty after traffic");
        assert!(live.len() <= upcxx::metrics::FLIGHT_CAP);

        // The hook fires on any panic on a thread holding a rank context —
        // catching the unwind afterwards does not un-write the file.
        let caught = std::panic::catch_unwind(|| panic!("flight-dump probe"));
        assert!(caught.is_err());

        let j = common::parse_json(&std::fs::read_to_string(dir.join("flight.0.json")).unwrap());
        assert_eq!(j.get("rank").unwrap().num() as u64, 0);
        assert_eq!(j.get("n").unwrap().num() as u64, 1);
        assert!(j.get("recorded").unwrap().num() >= live.len() as f64);
        assert_eq!(
            j.get("dropped").unwrap().num() as u64,
            0,
            "tiny run cannot wrap"
        );
        let events = j.get("events").unwrap().arr();
        assert!(events.len() >= live.len(), "dump lost live events");
        for e in events {
            assert_eq!(e.arr().len(), 11, "events are 11-number arrays");
        }
        // Timestamps are merge-ready: nondecreasing oldest-first.
        let ts: Vec<f64> = events.iter().map(|e| e.arr()[0].num()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "dump not oldest-first");
    });
    upcxx::metrics::set_dump_dir(None);
    let _ = std::fs::remove_dir_all(&dir);
}
