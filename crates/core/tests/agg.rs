//! Integration tests of the per-target RPC aggregation layer (`upcxx::agg`)
//! over **both** conduits: injection-order preservation through batches,
//! flush-on-barrier quiescence, threshold-edge bypass, auto-flush at the
//! size threshold, round trips with aggregated replies, the modeled cost
//! amortization on sim, and attentiveness of batched delivery.

use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use upcxx::{AggConfig, SimRuntime};

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn agg_on(max_bytes: usize) -> AggConfig {
    AggConfig {
        enabled: true,
        max_bytes,
    }
}

// ------------------------------------------------------------ ordering

static SMP_ORDER: Mutex<Vec<u64>> = Mutex::new(Vec::new());
fn smp_record(x: u64) {
    SMP_ORDER.lock().unwrap().push(x);
}
fn smp_record_big(args: (u64, Vec<u8>)) {
    SMP_ORDER.lock().unwrap().push(args.0);
}

#[test]
fn smp_batched_rpcs_execute_in_injection_order() {
    // Small messages interleaved with an oversize (bypassing) one: the
    // per-target order must survive threshold flushes and the bypass path.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            upcxx::set_agg_config(agg_on(256));
            for i in 0..20u64 {
                if i == 7 {
                    // Oversize: flushes the buffer first, then goes direct.
                    upcxx::rpc_ff(1, smp_record_big, (i, vec![0u8; 1024]));
                } else {
                    upcxx::rpc_ff(1, smp_record, i);
                }
            }
            upcxx::flush_all();
        }
        upcxx::barrier();
        if upcxx::rank_me() == 1 {
            let got = SMP_ORDER.lock().unwrap().clone();
            assert_eq!(got, (0..20u64).collect::<Vec<_>>());
        }
        upcxx::barrier();
    });
}

static SIM_ORDER: Mutex<Vec<u64>> = Mutex::new(Vec::new());
fn sim_record(x: u64) {
    SIM_ORDER.lock().unwrap().push(x);
}

#[test]
fn sim_batched_rpcs_execute_in_injection_order() {
    let rt = test_rt(2);
    rt.spawn(0, || {
        upcxx::set_agg_config(agg_on(512));
        for i in 0..40u64 {
            upcxx::rpc_ff(1, sim_record, i);
        }
        upcxx::flush_all();
    });
    rt.run();
    assert_eq!(
        SIM_ORDER.lock().unwrap().clone(),
        (0..40u64).collect::<Vec<_>>()
    );
}

// ------------------------------------------------ flush-on-barrier quiescence

fn bump_rank_counter(_: u64) {
    let c = upcxx::rank_state(|| Cell::new(0u64));
    c.set(c.get() + 1);
}

#[test]
fn smp_barrier_flushes_buffered_rpcs() {
    // Every rank buffers sub-threshold rpc_ffs at every other rank, then
    // enters a barrier without ever calling flush_all. Barrier entry must
    // flush, and the delivery order argument (batch pushed before the first
    // barrier flag) guarantees execution before the barrier exits.
    let n = 4;
    let k = 5u64;
    upcxx::run_spmd_default(n, move || {
        upcxx::set_agg_config(agg_on(1 << 20)); // threshold never reached
        let me = upcxx::rank_me();
        for t in 0..n {
            if t != me {
                for i in 0..k {
                    upcxx::rpc_ff(t, bump_rank_counter, i);
                }
            }
        }
        upcxx::barrier();
        let mine = upcxx::rank_state(|| Cell::new(0u64)).get();
        assert_eq!(mine, k * (n as u64 - 1), "rank {me} missing batched RPCs");
        assert!(
            upcxx::runtime_stats().agg_batches >= 1,
            "nothing was batched"
        );
        upcxx::barrier();
    });
}

static SIM_BARRIER_HITS: AtomicU64 = AtomicU64::new(0);
fn sim_barrier_hit(_: u64) {
    SIM_BARRIER_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn sim_barrier_flushes_buffered_rpcs() {
    let n = 4;
    let k = 6u64;
    let rt = test_rt(n);
    for r in 0..n {
        rt.spawn(r, move || {
            upcxx::set_agg_config(agg_on(1 << 20));
            for t in 0..n {
                if t != r {
                    for i in 0..k {
                        upcxx::rpc_ff(t, sim_barrier_hit, i);
                    }
                }
            }
            // No explicit flush: barrier entry must ship the buffers, so the
            // run cannot quiesce with payloads stranded.
            upcxx::barrier_async().then(|_| {});
        });
    }
    rt.run();
    assert_eq!(
        SIM_BARRIER_HITS.load(Ordering::SeqCst),
        k * (n as u64) * (n as u64 - 1)
    );
}

// ----------------------------------------------------- threshold / bypass

static SMP_BIG_HITS: AtomicU64 = AtomicU64::new(0);
fn smp_big_handler(v: Vec<u8>) {
    assert_eq!(v.len(), 4096);
    SMP_BIG_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn smp_oversize_payload_bypasses_aggregator() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            upcxx::set_agg_config(agg_on(256));
            upcxx::rpc_ff(1, smp_big_handler, vec![7u8; 4096]);
            // Never buffered: no aggregated message, no batch.
            let s = upcxx::runtime_stats();
            assert_eq!(s.agg_msgs, 0);
            assert_eq!(s.agg_batches, 0);
            upcxx::wait_until(|| SMP_BIG_HITS.load(Ordering::SeqCst) == 1);
        }
        upcxx::barrier();
    });
}

static SMP_AUTO_HITS: AtomicU64 = AtomicU64::new(0);
fn smp_auto_hit(_: u64) {
    SMP_AUTO_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn smp_threshold_triggers_auto_flush() {
    // max_bytes = 256 with 8-byte payloads (16-byte records after framing):
    // the 15th submission crosses the threshold and must flush on its own,
    // with no explicit flush_all and no barrier.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            upcxx::set_agg_config(agg_on(256));
            for i in 0..20u64 {
                upcxx::rpc_ff(1, smp_auto_hit, i);
            }
            assert_eq!(
                upcxx::runtime_stats().agg_batches,
                1,
                "threshold flush missing"
            );
            upcxx::wait_until(|| SMP_AUTO_HITS.load(Ordering::SeqCst) >= 15);
            upcxx::flush_all();
            upcxx::wait_until(|| SMP_AUTO_HITS.load(Ordering::SeqCst) == 20);
        }
        upcxx::barrier();
    });
}

// ----------------------------------------------- round trips / replies

fn bump(x: u64) -> u64 {
    x + 1
}

#[test]
fn smp_rpc_round_trips_through_aggregated_replies() {
    upcxx::run_spmd_default(2, || {
        upcxx::set_agg_config(agg_on(4096));
        if upcxx::rank_me() == 0 {
            assert_eq!(upcxx::rpc(1, bump, 41u64).wait(), 42);
            let futs: Vec<_> = (0..64u64).map(|i| upcxx::rpc(1, bump, i)).collect();
            let got = upcxx::when_all_vec(futs).wait();
            assert_eq!(got, (1..=64u64).collect::<Vec<_>>());
        }
        upcxx::barrier();
    });
}

static SIM_RT_SUM: AtomicU64 = AtomicU64::new(0);

#[test]
fn sim_rpc_round_trips_through_aggregated_replies() {
    let rt = test_rt(8);
    rt.spawn(0, || {
        upcxx::set_agg_config(agg_on(4096));
        let futs: Vec<_> = (0..50u64).map(|i| upcxx::rpc(4, bump, i)).collect();
        upcxx::when_all_vec(futs).then(|vs| {
            SIM_RT_SUM.store(vs.iter().sum(), Ordering::SeqCst);
        });
        upcxx::flush_all();
    });
    rt.run();
    assert_eq!(SIM_RT_SUM.load(Ordering::SeqCst), (1..=50u64).sum::<u64>());
}

// -------------------------------------------------- modeled amortization

static SIM_COST_HITS: AtomicU64 = AtomicU64::new(0);
fn sim_cost_hit(_: u64) {
    SIM_COST_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn sim_batching_amortizes_messages_and_time() {
    // Identical 200-message fine-grained workload, aggregation off vs on:
    // batching must collapse the modeled message count and shorten the
    // virtual timeline (one injection gap + one dispatch per batch).
    let run_workload = |enabled: bool| -> (Time, u64) {
        let rt = test_rt(8);
        rt.spawn(0, move || {
            upcxx::set_agg_config(AggConfig {
                enabled,
                max_bytes: 4096,
            });
            for i in 0..200u64 {
                upcxx::rpc_ff(4, sim_cost_hit, i);
            }
            upcxx::flush_all();
        });
        let t = rt.run();
        (t, rt.world().msg_count())
    };
    let (t_off, msgs_off) = run_workload(false);
    let (t_on, msgs_on) = run_workload(true);
    assert_eq!(SIM_COST_HITS.load(Ordering::SeqCst), 400, "payloads lost");
    assert!(msgs_on * 10 < msgs_off, "msgs: on={msgs_on} off={msgs_off}");
    assert!(
        t_off >= t_on + t_on,
        "aggregation should be >=2x faster here: on={t_on} off={t_off}"
    );
}

fn sim_det_hit(_: u64) {}

#[test]
fn sim_aggregated_runs_are_deterministic() {
    let run_once = || {
        let rt = test_rt(8);
        for r in 0..8usize {
            rt.spawn(r, move || {
                upcxx::set_agg_config(agg_on(1024));
                for i in 0..30u64 {
                    upcxx::rpc_ff((r + 1) % 8, sim_det_hit, i);
                }
                upcxx::barrier_async().then(|_| {});
            });
        }
        rt.run()
    };
    assert_eq!(run_once(), run_once());
}

// ------------------------------------------------------- attentiveness

static SIM_EXEC_AT: Mutex<Vec<u64>> = Mutex::new(Vec::new());
fn sim_note_time(_: u64) {
    SIM_EXEC_AT
        .lock()
        .unwrap()
        .push(upcxx::sim_rank_now().unwrap().as_ps());
}

#[test]
fn sim_inattentive_rank_stalls_batched_rpcs() {
    // Rank 1 computes for 1 ms; a batch arriving meanwhile must not execute
    // any of its payloads until the compute window ends (the paper's
    // attentiveness requirement applies to batches exactly as to single AMs).
    let rt = test_rt(2);
    rt.spawn(1, || upcxx::compute(Time::from_ms(1)));
    rt.spawn(0, || {
        upcxx::set_agg_config(agg_on(4096));
        for i in 0..10u64 {
            upcxx::rpc_ff(1, sim_note_time, i);
        }
        upcxx::flush_all();
    });
    rt.run();
    let times = SIM_EXEC_AT.lock().unwrap().clone();
    assert_eq!(times.len(), 10);
    for t in times {
        assert!(
            Time::from_ps(t) >= Time::from_ms(1),
            "batched RPC ran during the compute window at {t} ps"
        );
    }
}
