//! Integration tests of the UPC++ API over the sim conduit: driver-style
//! programs under virtual time, including the attentiveness semantics and
//! determinism guarantees the large-scale figure harnesses rely on.

use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use upcxx::SimRuntime;

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

#[test]
fn rput_then_chain_lands_data() {
    // The paper's DHT chain: rank 4 allocates on request (RPC returns the
    // landing pointer), rank 0 rputs through the returned future, then reads
    // back with rget.
    fn alloc_slot(count: usize) -> upcxx::GlobalPtr<u64> {
        upcxx::allocate::<u64>(count)
    }
    let rt = test_rt(8);
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    rt.spawn(0, move || {
        let d = d.clone();
        upcxx::rpc(4, alloc_slot, 4usize)
            .then_fut(|gp| upcxx::rput(&[5u64, 6, 7, 8], gp).then(move |_| gp))
            .then_fut(|gp| upcxx::rget(gp, 4))
            .then(move |v| {
                assert_eq!(v, vec![5, 6, 7, 8]);
                d.set(true);
            });
    });
    let t = rt.run();
    assert!(t > Time::ZERO);
    assert!(done.get(), "chain never completed");
}

fn bump(x: u64) -> u64 {
    x + 1
}

#[test]
fn rpc_ring_visits_every_rank() {
    // Each rank RPCs its neighbor; total hops == n.
    let n = 16;
    let rt = test_rt(n);
    let hops = Rc::new(Cell::new(0u64));
    for r in 0..n {
        let hops = hops.clone();
        rt.spawn(r, move || {
            upcxx::rpc((r + 1) % n, bump, r as u64).then(move |v| {
                assert_eq!(v, r as u64 + 1);
                hops.set(hops.get() + 1);
            });
        });
    }
    rt.run();
    assert_eq!(hops.get(), n as u64);
}

#[test]
fn barrier_async_synchronizes_virtual_time() {
    let n = 32;
    let rt = test_rt(n);
    let after = Rc::new(RefCell::new(Vec::new()));
    for r in 0..n {
        let after = after.clone();
        rt.spawn(r, move || {
            // Rank 3 computes 1ms before entering; everyone's barrier must
            // complete at >= 1ms of virtual time.
            if r == 3 {
                upcxx::compute(Time::from_ms(1));
            }
            let after = after.clone();
            upcxx::barrier_async().then(move |_| {
                after.borrow_mut().push(upcxx::sim_now().unwrap());
            });
        });
    }
    rt.run();
    let after = after.borrow();
    assert_eq!(after.len(), n);
    for t in after.iter() {
        assert!(*t >= Time::from_ms(1), "barrier exited early at {t}");
    }
}

#[test]
fn reduce_all_sums_across_simulated_ranks() {
    let n = 24;
    let rt = test_rt(n);
    let results = Rc::new(RefCell::new(Vec::new()));
    for r in 0..n {
        let results = results.clone();
        rt.spawn(r, move || {
            let results = results.clone();
            upcxx::reduce_all(r as u64, upcxx::ops::add_u64).then(move |s| {
                results.borrow_mut().push(s);
            });
        });
    }
    rt.run();
    let expect: u64 = (0..n as u64).sum();
    let results = results.borrow();
    assert_eq!(results.len(), n);
    assert!(results.iter().all(|&s| s == expect));
}

#[test]
fn broadcast_reaches_all_ranks() {
    let n = 13;
    let rt = test_rt(n);
    let got = Rc::new(Cell::new(0u32));
    for r in 0..n {
        let got = got.clone();
        rt.spawn(r, move || {
            let v = if r == 5 { Some(777u64) } else { None };
            let got = got.clone();
            upcxx::broadcast(5, v).then(move |x| {
                assert_eq!(x, 777);
                got.set(got.get() + 1);
            });
        });
    }
    rt.run();
    assert_eq!(got.get(), n as u32);
}

type LocalMap = RefCell<HashMap<u64, u64>>;

fn sim_insert(kv: (u64, u64)) {
    let m = upcxx::rank_state::<LocalMap>(|| RefCell::new(HashMap::new()));
    m.borrow_mut().insert(kv.0, kv.1);
}

fn sim_lookup(k: u64) -> Option<u64> {
    let m = upcxx::rank_state::<LocalMap>(|| RefCell::new(HashMap::new()));
    let v = m.borrow().get(&k).copied();
    v
}

#[test]
fn rank_state_is_per_rank_under_sim() {
    // All ranks share one OS thread; rank_state must still be per-rank.
    let n = 8;
    let rt = test_rt(n);
    let checked = Rc::new(Cell::new(0u32));
    for r in 0..n {
        let checked = checked.clone();
        rt.spawn(r, move || {
            let dst = (r + 1) % n;
            let checked = checked.clone();
            upcxx::rpc(dst, sim_insert, (r as u64, 100 + r as u64))
                .then_fut(move |_| upcxx::rpc(dst, sim_lookup, r as u64))
                .then(move |v| {
                    assert_eq!(v, Some(100 + r as u64));
                    checked.set(checked.get() + 1);
                });
            // A key another rank inserted elsewhere must NOT appear here.
        });
    }
    rt.run();
    assert_eq!(checked.get(), n as u32);
    // Each rank's map holds exactly the one key addressed to it.
    for r in 0..n {
        rt.with_rank(r, || {
            let m = upcxx::rank_state::<LocalMap>(|| RefCell::new(HashMap::new()));
            assert_eq!(m.borrow().len(), 1);
        });
    }
}

#[test]
fn attentiveness_busy_target_delays_rpc_reply() {
    // Paper §III: "if the target enters intensive, protracted computation
    // without calls to progress, incoming RPCs will stall."
    let run = |busy: bool| {
        let rt = test_rt(8);
        let done_at = Rc::new(Cell::new(Time::ZERO));
        if busy {
            rt.spawn(4, || upcxx::compute(Time::from_ms(5)));
        }
        let d = done_at.clone();
        rt.spawn(0, move || {
            let d = d.clone();
            upcxx::rpc(4, bump, 1u64).then(move |_| {
                d.set(upcxx::sim_now().unwrap());
            });
        });
        rt.run();
        done_at.get()
    };
    let idle = run(false);
    let busy = run(true);
    assert!(busy >= Time::from_ms(5), "busy target replied at {busy}");
    assert!(idle < Time::from_ms(1), "idle target too slow: {idle}");
}

#[test]
fn remote_atomics_offloaded_in_sim() {
    let n = 8;
    let rt = test_rt(n);
    // Rank 0 allocates a counter; its pointer is deterministic (first
    // allocation), so other ranks reconstruct it via an RPC fetch.
    fn get_counter(_: ()) -> upcxx::GlobalPtr<u64> {
        upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u64>>>>(|| Cell::new(None))
            .get()
            .expect("counter not yet allocated")
    }
    rt.spawn(0, || {
        let c = upcxx::allocate::<u64>(1);
        upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u64>>>>(|| Cell::new(None)).set(Some(c));
    });
    let added = Rc::new(Cell::new(0u32));
    for r in 1..n {
        let added = added.clone();
        rt.spawn_at(r, Time::from_us(10), move || {
            let added = added.clone();
            upcxx::rpc(0, get_counter, ())
                .then_fut(move |gp| upcxx::AtomicDomain::all().fetch_add(gp, r as u64))
                .then(move |_| added.set(added.get() + 1));
        });
    }
    rt.run();
    assert_eq!(added.get(), (n - 1) as u32);
    rt.with_rank(0, || {
        let gp = upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u64>>>>(|| Cell::new(None))
            .get()
            .unwrap();
        assert_eq!(gp.try_local_value(), Some((1..8u64).sum()));
    });
}

#[test]
fn deterministic_virtual_time() {
    let run_once = || {
        let n = 16;
        let rt = test_rt(n);
        for r in 0..n {
            rt.spawn(r, move || {
                for i in 0..5usize {
                    let dst = (r + i + 1) % n;
                    upcxx::rpc(dst, bump, (r * 100 + i) as u64).then(|_| {});
                }
            });
        }
        rt.run()
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b);
    assert!(a > Time::ZERO);
}

#[test]
#[should_panic(expected = "blocking wait()")]
fn blocking_wait_panics_under_sim() {
    let rt = test_rt(4);
    rt.spawn(0, || {
        // An RPC round trip needs virtual time; wait() cannot provide it.
        let f = upcxx::rpc(1, bump, 1u64);
        let _ = f.wait();
    });
    rt.run();
}

#[test]
fn knl_world_is_slower_than_haswell() {
    let run_on = |cfg: MachineConfig| {
        let rt = SimRuntime::new(cfg, 64, 1 << 14);
        for r in 0..64 {
            rt.spawn(r, move || {
                // A little RPC burst; KNL's slower cores must stretch it.
                for i in 0..8usize {
                    upcxx::rpc((r + i * 7 + 1) % 64, bump, i as u64).then(|_| {});
                }
            });
        }
        rt.run()
    };
    let h = run_on(MachineConfig::cori_haswell());
    let k = run_on(MachineConfig::cori_knl());
    assert!(k > h, "knl {k} should be slower than haswell {h}");
}

#[test]
fn view_rpc_under_sim_charges_wire_bytes() {
    fn sum_view(v: upcxx::View<u64>) -> u64 {
        v.iter().sum()
    }
    let rt = test_rt(8);
    rt.spawn(0, move || {
        let data: Vec<u64> = (0..4).collect();
        upcxx::rpc(4, sum_view, upcxx::make_view(&data)).then(|s| assert_eq!(s, 6));
    });
    rt.run();
    let msgs_small = rt.world().msg_count();
    assert!(msgs_small >= 2); // request + reply
    let t_small = rt.world().now();

    // A much larger view must take longer on the wire.
    let rt2 = test_rt(8);
    rt2.spawn(0, move || {
        let data: Vec<u64> = (0..100_000).collect();
        upcxx::rpc(4, sum_view, upcxx::make_view(&data)).then(|_| {});
    });
    let t_large = rt2.run();
    assert!(t_large > t_small, "large view {t_large} vs small {t_small}");
}
