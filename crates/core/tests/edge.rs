//! Edge cases and failure injection: misuse must fail loudly (never
//! corrupt runtime state), and stress shapes must hold up.

use std::panic::{catch_unwind, AssertUnwindSafe};

#[test]
fn rput_to_null_pointer_panics() {
    upcxx::run_spmd_default(1, || {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = upcxx::rput(&[1u8], upcxx::GlobalPtr::<u8>::null());
        }));
        assert!(r.is_err());
    });
}

#[test]
fn segment_exhaustion_panics_with_message() {
    upcxx::run_spmd(1, upcxx::SpmdConfig { seg_size: 1 << 10 }, || {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _ = upcxx::allocate::<u8>(1 << 20);
        }));
        let err = r.unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("segment exhausted"), "got: {msg}");
    });
}

#[test]
fn deallocate_remote_pointer_panics() {
    upcxx::run_spmd_default(2, || {
        let p = upcxx::allocate::<u64>(1);
        let ps = upcxx::allgather(p);
        if upcxx::rank_me() == 0 {
            let r = catch_unwind(AssertUnwindSafe(|| {
                upcxx::deallocate(ps[1]);
            }));
            assert!(r.is_err());
        }
        upcxx::barrier();
    });
}

#[test]
fn dist_lookup_before_construction_parks_until_ready() {
    // when_constructed queues work that arrives before DistObject::new.
    upcxx::run_spmd_default(1, || {
        use std::cell::Cell;
        use std::rc::Rc;
        let ran = Rc::new(Cell::new(false));
        let r2 = ran.clone();
        let future_id = upcxx::DistId(0); // first object this rank will create
        upcxx::when_constructed(future_id, move || r2.set(true));
        assert!(!ran.get());
        let _obj = upcxx::DistObject::new(42u32);
        assert!(ran.get(), "parked continuation did not run at construction");
        assert_eq!(*upcxx::dist_lookup::<u32>(future_id), 42);
    });
}

#[test]
fn team_membership_is_enforced() {
    upcxx::run_spmd_default(4, || {
        let evens = upcxx::Team::world().split_by(|r| (r % 2) as u64);
        // split_by builds MY color's team: every caller is a member.
        assert!(evens.contains_me());
        // A hand-built team I am not in reports rank_me() as a panic.
        let me = upcxx::rank_me();
        let others: Vec<usize> = (0..4).filter(|&r| r != me).collect();
        let not_mine = upcxx::Team::from_world_ranks(others);
        assert!(!not_mine.contains_me());
        let r = catch_unwind(AssertUnwindSafe(|| not_mine.rank_me()));
        assert!(r.is_err());
        upcxx::barrier();
    });
}

#[test]
fn deep_then_chain_does_not_overflow() {
    upcxx::run_spmd_default(1, || {
        let p = upcxx::Promise::<u64>::new();
        let mut f = p.get_future();
        for _ in 0..10_000 {
            f = f.then(|v| v + 1);
        }
        p.fulfill(0);
        assert_eq!(f.wait(), 10_000);
    });
}

#[test]
fn many_barrier_epochs() {
    upcxx::run_spmd_default(3, || {
        for _ in 0..200 {
            upcxx::barrier();
        }
    });
}

fn echo_len(v: Vec<u8>) -> usize {
    v.len()
}

#[test]
fn megabyte_rpc_payload() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let big = vec![3u8; 1 << 20];
            assert_eq!(upcxx::rpc(1, echo_len, big).wait(), 1 << 20);
        }
        upcxx::barrier();
    });
}

#[test]
fn interleaved_collectives_many_rounds() {
    // Broadcasts and reductions issued back to back must match by sequence
    // even with arbitrary completion interleavings.
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let mut futs = Vec::new();
        for round in 0..20u64 {
            let b = upcxx::broadcast(
                (round % 4) as usize,
                (me == (round % 4) as usize).then_some(round * 7),
            );
            let r = upcxx::reduce_all(round + me as u64, upcxx::ops::add_u64);
            futs.push((round, b, r));
        }
        for (round, b, r) in futs {
            assert_eq!(b.wait(), round * 7);
            assert_eq!(r.wait(), 4 * round + 6);
        }
        upcxx::barrier();
    });
}

#[test]
fn alloc_dealloc_churn_many_cycles() {
    upcxx::run_spmd_default(1, || {
        for cycle in 0..100 {
            let ptrs: Vec<_> = (0..32)
                .map(|i| upcxx::allocate::<u64>(1 + (cycle + i) % 64))
                .collect();
            for p in ptrs {
                upcxx::deallocate(p);
            }
        }
    });
}

#[test]
fn rget_strided_reassembles_rows() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            fn alloc64(_: ()) -> upcxx::GlobalPtr<u64> {
                upcxx::allocate::<u64>(64)
            }
            let dest = upcxx::rpc(1, alloc64, ()).wait();
            upcxx::rput(&(0..64u64).collect::<Vec<_>>(), dest).wait();
            // Read a 4x3 sub-block of the 8x8 row-major "matrix" at (2,1).
            let block = upcxx::rget_strided(dest.add(2 * 8 + 1), 8, 3, 4).wait();
            assert_eq!(block, vec![17, 18, 19, 25, 26, 27, 33, 34, 35, 41, 42, 43]);
        }
        upcxx::barrier();
    });
}

#[test]
fn stats_counters_advance() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let before = upcxx::runtime_stats();
            fn nothing(_: ()) {}
            upcxx::rpc_ff(1, nothing, ());
            fn alloc8(_: ()) -> upcxx::GlobalPtr<u8> {
                upcxx::allocate::<u8>(8)
            }
            let gp = upcxx::rpc(1, alloc8, ()).wait();
            upcxx::rput(&[1u8; 8], gp).wait();
            let after = upcxx::runtime_stats();
            assert_eq!(after.rank, 0);
            assert!(after.rma_ops > before.rma_ops);
            assert!(after.rpcs >= before.rpcs + 2);
            assert!(after.bytes_out > before.bytes_out);
        }
        upcxx::barrier();
    });
}

/// The pre-rename name must keep working (deprecated shim) so downstream
/// code migrates on its own schedule.
#[test]
#[allow(deprecated)]
fn broadcast_gather_shim_still_works() {
    upcxx::run_spmd_default(2, || {
        let slot = upcxx::allocate::<u64>(1);
        // analyze: allow(deprecated-api): this is the shim's own regression test — the deprecated name must keep working until downstream migrates
        let via_shim = upcxx::broadcast_gather(slot);
        let via_new = upcxx::allgather(slot);
        assert_eq!(via_shim.len(), 2);
        assert_eq!(via_shim, via_new);
        upcxx::barrier();
    });
}
