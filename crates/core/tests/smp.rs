//! Integration tests of the full UPC++ API over the smp conduit (real
//! threads, real memory). Each test spins up a small SPMD world; patterns
//! mirror the paper's listings (DHT insert chain, flood promises, Fig. 7
//! conjunction loops).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

#[test]
fn rput_rget_roundtrip() {
    upcxx::run_spmd_default(2, || {
        let me = upcxx::rank_me();
        let slot = upcxx::allocate::<u64>(8);
        let slots = upcxx::allgather(slot);
        if me == 0 {
            let data: Vec<u64> = (0..8).map(|i| i * 7).collect();
            upcxx::rput(&data, slots[1]).wait();
            let back = upcxx::rget(slots[1], 8).wait();
            assert_eq!(back, data);
        }
        upcxx::barrier();
    });
}

#[test]
fn rput_val_visible_after_barrier() {
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        let slot = upcxx::allocate::<u64>(1);
        let slots = upcxx::allgather(slot);
        upcxx::rput_val(me as u64 + 100, slots[(me + 1) % n]).wait();
        upcxx::barrier();
        assert_eq!(
            slot.try_local_value(),
            Some(((me + n - 1) % n) as u64 + 100)
        );
        upcxx::barrier();
    });
}

fn double_it(x: u64) -> u64 {
    x * 2
}

#[test]
fn rpc_returns_value() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let got = upcxx::rpc(1, double_it, 21u64).wait();
            assert_eq!(got, 42);
        }
        upcxx::barrier();
    });
}

fn whoami(_: ()) -> u64 {
    upcxx::rank_me() as u64
}

#[test]
fn rpc_executes_on_target_rank() {
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        for dst in 0..n {
            if dst != me {
                assert_eq!(upcxx::rpc(dst, whoami, ()).wait(), dst as u64);
            }
        }
        upcxx::barrier();
    });
}

type LocalMap = RefCell<HashMap<u64, Vec<u8>>>;

fn map_insert(args: (u64, Vec<u8>)) {
    let map = upcxx::rank_state::<LocalMap>(|| RefCell::new(HashMap::new()));
    map.borrow_mut().insert(args.0, args.1);
}

fn map_find(key: u64) -> Option<Vec<u8>> {
    let map = upcxx::rank_state::<LocalMap>(|| RefCell::new(HashMap::new()));
    let v = map.borrow().get(&key).cloned();
    v
}

#[test]
fn rpc_hash_table_pattern() {
    // The paper's §IV-C RPC-only DHT insert/find, distilled.
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        let key = me as u64 * 1000;
        let target = (key as usize) % n;
        upcxx::rpc(target, map_insert, (key, vec![me as u8; 16])).wait();
        upcxx::barrier();
        let found = upcxx::rpc(target, map_find, key).wait();
        assert_eq!(found, Some(vec![me as u8; 16]));
        let missing = upcxx::rpc(target, map_find, key + 1).wait();
        assert_eq!(missing, None);
        upcxx::barrier();
    });
}

fn make_lz(len: usize) -> upcxx::GlobalPtr<u8> {
    upcxx::allocate::<u8>(len)
}

#[test]
fn dht_landing_zone_chain() {
    // The paper's RMA-enabled insert: RPC for the landing zone, then() chains
    // the rput — the exact future composition of §IV-C.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let val = vec![0xabu8; 256];
            let fut =
                upcxx::rpc(1, make_lz, val.len()).then_fut(move |dest| upcxx::rput(&val, dest));
            fut.wait();
        }
        upcxx::barrier();
    });
}

static FF_HITS: AtomicU64 = AtomicU64::new(0);

fn ff_handler(x: u64) {
    FF_HITS.fetch_add(x, Ordering::SeqCst);
}

#[test]
fn rpc_ff_fire_and_forget() {
    FF_HITS.store(0, Ordering::SeqCst);
    upcxx::run_spmd_default(3, || {
        if upcxx::rank_me() != 0 {
            upcxx::rpc_ff(0, ff_handler, upcxx::rank_me() as u64);
        }
        upcxx::barrier();
        if upcxx::rank_me() == 0 {
            // rpc_ff has no ack; the barrier orders delivery here because
            // target progress runs during the barrier spin.
            assert_eq!(FF_HITS.load(Ordering::SeqCst), 1 + 2);
        }
        upcxx::barrier();
    });
}

#[test]
fn promise_counts_flood_of_puts() {
    // The flood-bandwidth idiom from §IV-B: many rputs tracked by one
    // promise, finalized and waited once.
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let dest = upcxx::rpc(1, make_lz, 8 * 64).wait();
            let dest = dest.cast::<u64>();
            let p = upcxx::Promise::<()>::new();
            for i in 0..64u64 {
                upcxx::rput_promise(&[i], dest.add(i as usize), &p);
                if i % 10 == 0 {
                    upcxx::progress();
                }
            }
            p.finalize().wait();
            let back = upcxx::rget(dest, 64).wait();
            assert_eq!(back, (0..64).collect::<Vec<u64>>());
        }
        upcxx::barrier();
    });
}

#[test]
fn when_all_conjoins_rpcs() {
    upcxx::run_spmd_default(3, || {
        if upcxx::rank_me() == 0 {
            let a = upcxx::rpc(1, double_it, 5u64);
            let b = upcxx::rpc(2, double_it, 7u64);
            let both = upcxx::when_all(&a, &b);
            assert_eq!(both.wait(), (10, 14));
        }
        upcxx::barrier();
    });
}

#[test]
fn conjoin_loop_like_fig7() {
    // f_conj = when_all(f_conj, fut) in a loop, then wait — Fig. 7 lines 5-14.
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        if me == 0 {
            let mut f_conj = upcxx::make_ready_future();
            for dst in 1..n {
                let fut = upcxx::rpc(dst, double_it, dst as u64).ignore();
                f_conj = upcxx::conjoin(&f_conj, &fut);
            }
            f_conj.wait();
        }
        upcxx::barrier();
    });
}

#[test]
fn barrier_orders_one_sided_writes() {
    upcxx::run_spmd_default(8, || {
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        let slot = upcxx::allocate::<u64>(n);
        let slots = upcxx::allgather(slot);
        // All-to-all scatter of rank ids by one-sided puts.
        let p = upcxx::Promise::<()>::new();
        for slot in &slots {
            upcxx::rput_promise(&[me as u64], slot.add(me), &p);
        }
        p.finalize().wait();
        upcxx::barrier();
        let mut got = vec![0u64; n];
        slot.local_read(&mut got);
        assert_eq!(got, (0..n as u64).collect::<Vec<u64>>());
        upcxx::barrier();
    });
}

#[test]
fn broadcast_delivers_roots_value() {
    upcxx::run_spmd_default(6, || {
        let me = upcxx::rank_me();
        let v = upcxx::broadcast(
            2,
            if me == 2 {
                Some(String::from("hello"))
            } else {
                None
            },
        )
        .wait();
        assert_eq!(v, "hello");
        upcxx::barrier();
    });
}

#[test]
fn reduce_all_sums_ranks() {
    upcxx::run_spmd_default(7, || {
        let me = upcxx::rank_me() as u64;
        let total = upcxx::reduce_all(me, upcxx::ops::add_u64).wait();
        assert_eq!(total, (0..7).sum::<u64>());
        upcxx::barrier();
    });
}

#[test]
fn reduce_one_at_root() {
    upcxx::run_spmd_default(5, || {
        let me = upcxx::rank_me() as u64;
        let fut = upcxx::reduce_one(3, me + 1, upcxx::ops::add_u64);
        let v = fut.wait();
        if upcxx::rank_me() == 3 {
            assert_eq!(v, (1..=5).sum::<u64>());
        }
        upcxx::barrier();
    });
}

#[test]
fn remote_atomics_sum() {
    upcxx::run_spmd_default(6, || {
        let me = upcxx::rank_me();
        let counter = upcxx::allocate::<u64>(1);
        let counters = upcxx::allgather(counter);
        let ad = upcxx::AtomicDomain::all();
        // Everyone adds into rank 0's counter.
        ad.fetch_add(counters[0], (me + 1) as u64).wait();
        upcxx::barrier();
        if me == 0 {
            assert_eq!(ad.load(counters[0]).wait(), (1..=6).sum::<u64>());
        }
        upcxx::barrier();
    });
}

#[test]
fn atomic_cas_elects_single_winner() {
    upcxx::run_spmd_default(4, || {
        let me = upcxx::rank_me() as u64;
        let word = upcxx::allocate::<u64>(1);
        let words = upcxx::allgather(word);
        let ad = upcxx::AtomicDomain::all();
        let old = ad.compare_exchange(words[0], 0, me + 1).wait();
        upcxx::barrier();
        let winner = ad.load(words[0]).wait();
        if old == 0 {
            // I won; the stored value must be mine.
            assert_eq!(winner, me + 1);
        }
        assert_ne!(winner, 0);
        upcxx::barrier();
    });
}

#[test]
fn strided_put_lands_in_pattern() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let dest = upcxx::rpc(1, make_lz, 8 * 32).wait();
            let dest = dest.cast::<u64>();
            // 4 chunks of 2 elements, source stride 2 (dense), dest stride 8.
            let src: Vec<u64> = (0..8).collect();
            upcxx::rput_strided(&src, 2, dest, 8, 2, 4).wait();
            let all = upcxx::rget(dest, 32).wait();
            for c in 0..4u64 {
                assert_eq!(all[(c * 8) as usize], c * 2);
                assert_eq!(all[(c * 8 + 1) as usize], c * 2 + 1);
            }
        }
        upcxx::barrier();
    });
}

fn sum_view(v: upcxx::View<u64>) -> u64 {
    v.iter().sum()
}

#[test]
fn view_rpc_sums_at_target() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let data: Vec<u64> = (1..=100).collect();
            let s = upcxx::rpc(1, sum_view, upcxx::make_view(&data)).wait();
            assert_eq!(s, 5050);
        }
        upcxx::barrier();
    });
}

#[test]
fn teams_split_even_odd() {
    upcxx::run_spmd_default(6, || {
        let me = upcxx::rank_me();
        let team = upcxx::Team::world().split_by(|r| (r % 2) as u64);
        assert_eq!(team.rank_n(), 3);
        assert_eq!(team.rank_me(), me / 2);
        assert_eq!(team.world_rank(team.rank_me()), me);
        // Team-scoped reduction.
        let sum = upcxx::reduce_all_team(&team, me as u64, upcxx::ops::add_u64).wait();
        let expect: u64 = (0..6u64).filter(|r| *r as usize % 2 == me % 2).sum();
        assert_eq!(sum, expect);
        upcxx::barrier();
    });
}

#[test]
fn team_barrier_works() {
    upcxx::run_spmd_default(4, || {
        let team = upcxx::Team::world().split_by(|r| (r < 2) as u64);
        upcxx::barrier_async_team(&team).wait();
        upcxx::barrier();
    });
}

fn read_dist_counter(c: std::rc::Rc<RefCell<u64>>) -> u64 {
    *c.borrow()
}

#[test]
fn dist_object_fetch() {
    upcxx::run_spmd_default(3, || {
        let me = upcxx::rank_me() as u64;
        let obj = upcxx::DistObject::new(RefCell::new(me * 11));
        upcxx::barrier(); // ensure all representatives exist
        let v = obj
            .fetch_map((upcxx::rank_me() + 1) % 3, read_dist_counter)
            .wait();
        assert_eq!(v, (((upcxx::rank_me() + 1) % 3) as u64) * 11);
        upcxx::barrier();
    });
}

#[test]
fn global_ptr_arithmetic_and_locality() {
    upcxx::run_spmd_default(2, || {
        let p = upcxx::allocate::<u64>(10);
        assert!(p.is_local());
        let q = p.add(3);
        assert_eq!(q.elems_from(&p), 3);
        assert_eq!(q.offset_elems(-3), p);
        assert_eq!(q.rank(), upcxx::rank_me());
        p.local_write(&(0..10u64).collect::<Vec<_>>());
        let mut out = vec![0u64; 10];
        p.local_read(&mut out);
        assert_eq!(out[9], 9);
        upcxx::deallocate(p);
        upcxx::barrier();
    });
}

#[test]
fn rget_irregular_gathers_chunks() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            let dest = upcxx::rpc(1, make_lz, 8 * 16).wait();
            let dest = dest.cast::<u64>();
            upcxx::rput(&(0..16u64).collect::<Vec<_>>(), dest).wait();
            let parts = upcxx::rget_irregular(&[(dest, 2), (dest.add(8), 3)]).wait();
            assert_eq!(parts, vec![vec![0, 1], vec![8, 9, 10]]);
        }
        upcxx::barrier();
    });
}

#[test]
fn single_rank_world_works() {
    upcxx::run_spmd_default(1, || {
        let p = upcxx::allocate::<u64>(4);
        upcxx::rput(&[9, 9, 9, 9], p).wait();
        assert_eq!(upcxx::rget(p, 4).wait(), vec![9; 4]);
        assert_eq!(upcxx::reduce_all(5u64, upcxx::ops::add_u64).wait(), 5);
        upcxx::barrier();
    });
}
