//! TEMPORARY review probe — do not commit.
use std::io::Write;
use upcxx::{ConduitKind, Config};

fn mark(tag: &str) {
    let path = std::env::var("PROBE_OUT").unwrap();
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    writeln!(f, "{tag} rank {}", upcxx::rank_me()).unwrap();
}

#[test]
fn probe_a() {
    upcxx::run_spmd_with(2, Config::default().with_conduit(ConduitKind::Proc), || {
        mark("a");
        upcxx::barrier();
    });
}

#[test]
fn probe_b() {
    upcxx::run_spmd_with(2, Config::default().with_conduit(ConduitKind::Proc), || {
        mark("b");
        upcxx::barrier();
    });
}
