//! Integration tests of the progress-engine observability subsystem
//! (`upcxx::trace` + `upcxx::runtime_stats`) over **both** conduits: exact
//! event counts for scripted op sequences, the four-phase quartet per op id,
//! per-rank timestamp monotonicity under sim, zero-cost disabled mode, batch
//! events with flush reasons, and causal-parent links on replies.

use netsim::MachineConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use upcxx::trace;
use upcxx::{OpKind, Phase, SimRuntime, TraceConfig, TraceEvent};

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn tracing_on() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 14,
    }
}

fn of_kind(events: &[TraceEvent], kind: OpKind) -> Vec<TraceEvent> {
    events.iter().copied().filter(|e| e.kind == kind).collect()
}

fn phases(events: &[TraceEvent]) -> Vec<Phase> {
    events.iter().map(|e| e.phase).collect()
}

// --------------------------------------------------- smp: RMA event quartet

#[test]
fn smp_rma_ops_emit_full_quartet() {
    upcxx::run_spmd_default(2, || {
        let slot = upcxx::allocate::<u64>(4);
        let slots = upcxx::allgather(slot);
        upcxx::barrier();
        if upcxx::rank_me() == 0 {
            trace::set_config(tracing_on());
            upcxx::rput(&[1u64, 2, 3, 4], slots[1]).wait();
            let got = upcxx::rget(slots[1], 4).wait();
            assert_eq!(got, vec![1, 2, 3, 4]);
            let events = trace::take_local();
            // A blocking put then a blocking get: every phase recorded at
            // the initiator, strictly in queue order.
            let puts = of_kind(&events, OpKind::Put);
            assert_eq!(
                phases(&puts),
                vec![
                    Phase::Inject,
                    Phase::Conduit,
                    Phase::Deliver,
                    Phase::Complete
                ]
            );
            let gets = of_kind(&events, OpKind::Get);
            assert_eq!(
                phases(&gets),
                vec![
                    Phase::Inject,
                    Phase::Conduit,
                    Phase::Deliver,
                    Phase::Complete
                ]
            );
            assert!(puts
                .iter()
                .all(|e| e.rank == 0 && e.origin == 0 && e.peer == 1));
            assert_eq!(puts[0].bytes, 32);
            // Put and get are distinct ops of the same origin.
            assert_ne!(puts[0].op, gets[0].op);
            // The histograms saw one defQ transit and one compQ transit each.
            let s = upcxx::runtime_stats();
            assert!(s.def_q_wait.total() >= 2);
            assert!(s.comp_q_wait.total() >= 2);
            assert!(s.trace_events >= 8);
            trace::set_config(TraceConfig::default());
        }
        upcxx::barrier();
    });
}

// ----------------------------------------------------- smp: RPC round trip

fn double(x: u64) -> u64 {
    x * 2
}

#[test]
fn smp_rpc_round_trip_event_split() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            trace::set_config(tracing_on());
            assert_eq!(upcxx::rpc(1, double, 21).wait(), 42);
            let events = trace::take_local();
            // The Rpc op records Inject/Conduit here and Complete when the
            // reply fulfills the promise; its Deliver happens at rank 1.
            let rpcs = of_kind(&events, OpKind::Rpc);
            assert_eq!(
                phases(&rpcs),
                vec![Phase::Inject, Phase::Conduit, Phase::Complete]
            );
            // The reply is its own op, originated by rank 1, whose
            // Deliver/Complete land here.
            let replies = of_kind(&events, OpKind::Reply);
            assert_eq!(phases(&replies), vec![Phase::Deliver, Phase::Complete]);
            assert!(replies.iter().all(|e| e.rank == 0 && e.origin == 1));
            trace::set_config(TraceConfig::default());
        }
        upcxx::barrier();
    });
}

// ------------------------------------------- smp: batches carry flush reasons

static FF_HITS: AtomicU64 = AtomicU64::new(0);
fn ff_hit(_: u64) {
    FF_HITS.fetch_add(1, Ordering::SeqCst);
}

// Dedicated counter: `ff_hit` is shared by concurrently-running tests in
// this binary, so an equality wait on it would race.
static BATCH_HITS: AtomicU64 = AtomicU64::new(0);
fn batch_hit(_: u64) {
    BATCH_HITS.fetch_add(1, Ordering::SeqCst);
}

#[test]
fn smp_batch_events_record_flush_reason() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            upcxx::set_agg_config(upcxx::AggConfig {
                enabled: true,
                max_bytes: 1 << 20,
            });
            trace::set_config(tracing_on());
            for i in 0..5u64 {
                upcxx::rpc_ff(1, batch_hit, i);
            }
            upcxx::flush_all();
            upcxx::wait_until(|| BATCH_HITS.load(Ordering::SeqCst) >= 5);
            let events = trace::take_local();
            // Five member payloads injected into the buffer, shipped by one
            // explicit flush: their Conduit events carry the reason, and the
            // carrying batch is one more traced op.
            let ffs = of_kind(&events, OpKind::RpcFf);
            assert_eq!(ffs.iter().filter(|e| e.phase == Phase::Inject).count(), 5);
            let shipped: Vec<_> = ffs.iter().filter(|e| e.phase == Phase::Conduit).collect();
            assert_eq!(shipped.len(), 5);
            assert!(shipped
                .iter()
                .all(|e| e.reason == upcxx::trace::FlushReason::Explicit));
            let batches = of_kind(&events, OpKind::Batch);
            assert_eq!(
                batches
                    .iter()
                    .filter(|e| e.phase == Phase::Inject
                        && e.reason == upcxx::trace::FlushReason::Explicit)
                    .count(),
                1
            );
            let s = upcxx::runtime_stats();
            assert_eq!(s.agg_msgs, 5);
            assert_eq!(s.agg_batches, 1);
            trace::set_config(TraceConfig::default());
            upcxx::set_agg_config(upcxx::AggConfig::default());
        }
        upcxx::barrier();
    });
}

// ------------------------------------------------ sim: exact global counts

#[test]
fn sim_event_counts_match_op_counts() {
    let n = 4;
    let k = 8u64;
    let rt = test_rt(n);
    // Every rank enables tracing, allocates a slot, and rputs k values into
    // its right neighbor's slot (pointers are exchanged out-of-band through
    // `with_rank`, keeping the traced traffic exactly n*k puts).
    let ptrs: Vec<upcxx::GlobalPtr<u64>> = (0..n)
        .map(|r| rt.with_rank(r, || upcxx::allocate::<u64>(1)))
        .collect();
    for r in 0..n {
        let dst = ptrs[(r + 1) % n];
        rt.spawn(r, move || {
            trace::set_config(TraceConfig {
                enabled: true,
                capacity: 1 << 14,
            });
            for i in 0..k {
                let _ = upcxx::rput_val(i, dst);
            }
        });
    }
    rt.run();
    let events = rt.take_trace();
    let puts = of_kind(&events, OpKind::Put);
    // n ranks x k puts x 4 phases, all recorded at the initiator under sim.
    assert_eq!(puts.len(), (n as u64 * k * 4) as usize);
    for ph in [
        Phase::Inject,
        Phase::Conduit,
        Phase::Deliver,
        Phase::Complete,
    ] {
        assert_eq!(
            puts.iter().filter(|e| e.phase == ph).count(),
            (n as u64 * k) as usize,
            "phase {ph:?} count"
        );
    }
    // Each (origin, op) id appears exactly four times — one full quartet.
    let mut by_id: std::collections::HashMap<(u32, u64), Vec<Phase>> =
        std::collections::HashMap::new();
    for e in &puts {
        by_id.entry((e.origin, e.op)).or_default().push(e.phase);
    }
    assert_eq!(by_id.len(), (n as u64 * k) as usize);
    for (id, phs) in &by_id {
        assert_eq!(phs.len(), 4, "op {id:?} missing phases: {phs:?}");
    }
    // Typed snapshot agrees per rank.
    for r in 0..n {
        let s = rt.with_rank(r, upcxx::runtime_stats);
        assert_eq!(s.rank, r);
        assert_eq!(s.rma_ops, k);
        assert_eq!(s.dropped_events, 0);
        assert!(s.act_q_hwm >= 1);
        assert!(s.comp_q_hwm >= 1);
    }
}

#[test]
fn sim_rpc_ff_events_split_across_ranks() {
    let n = 4;
    let rt = test_rt(n);
    for r in 0..n {
        let t = (r + 1) % n;
        rt.spawn(r, move || {
            trace::set_config(TraceConfig {
                enabled: true,
                capacity: 1 << 14,
            });
            upcxx::rpc_ff(t, ff_hit, 7);
        });
    }
    rt.run();
    let events = rt.take_trace();
    let ffs = of_kind(&events, OpKind::RpcFf);
    // One rpc_ff per rank: Inject/Conduit at the sender, Deliver/Complete
    // recorded by the target with the sender as origin.
    assert_eq!(ffs.len(), n * 4);
    for e in &ffs {
        match e.phase {
            Phase::Inject | Phase::Conduit => assert_eq!(e.rank, e.origin),
            Phase::Deliver | Phase::Complete => {
                assert_eq!(e.rank as usize, (e.origin as usize + 1) % n)
            }
        }
    }
}

// ------------------------------------------- sim: per-rank monotone virtual time

#[test]
fn sim_timestamps_monotone_per_rank() {
    let n = 4;
    let k = 6u64;
    let rt = test_rt(n);
    let ptrs: Vec<upcxx::GlobalPtr<u64>> = (0..n)
        .map(|r| rt.with_rank(r, || upcxx::allocate::<u64>(1)))
        .collect();
    for r in 0..n {
        let dst = ptrs[(r + 1) % n];
        let t = (r + 2) % n;
        rt.spawn(r, move || {
            trace::set_config(TraceConfig {
                enabled: true,
                capacity: 1 << 14,
            });
            for i in 0..k {
                let _ = upcxx::rput_val(i, dst);
                upcxx::rpc_ff(t, ff_hit, i);
            }
        });
    }
    rt.run();
    let events = rt.take_trace();
    assert!(!events.is_empty());
    // take_trace keeps each rank's slice chronological; within a rank the
    // virtual clock never goes backwards, and at least one event sits at a
    // nonzero virtual timestamp (time actually advanced).
    let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for e in &events {
        let prev = last.insert(e.rank, e.ts_ps);
        if let Some(p) = prev {
            assert!(
                e.ts_ps >= p,
                "rank {} clock went backwards: {} -> {}",
                e.rank,
                p,
                e.ts_ps
            );
        }
    }
    assert!(events.iter().any(|e| e.ts_ps > 0));
}

// ------------------------------------------------------- disabled mode

#[test]
fn sim_disabled_mode_emits_nothing() {
    let n = 2;
    let rt = test_rt(n);
    let ptrs: Vec<upcxx::GlobalPtr<u64>> = (0..n)
        .map(|r| rt.with_rank(r, || upcxx::allocate::<u64>(1)))
        .collect();
    for r in 0..n {
        let dst = ptrs[(r + 1) % n];
        rt.spawn(r, move || {
            for i in 0..4u64 {
                let _ = upcxx::rput_val(i, dst);
                upcxx::rpc_ff((upcxx::rank_me() + 1) % upcxx::rank_n(), ff_hit, i);
            }
        });
    }
    rt.run();
    assert!(rt.take_trace().is_empty());
    for r in 0..n {
        let s = rt.with_rank(r, upcxx::runtime_stats);
        assert_eq!(s.trace_events, 0);
        assert_eq!(s.max_progress_gap_ps, 0);
        assert_eq!(s.def_q_wait.total(), 0);
        assert_eq!(s.comp_q_wait.total(), 0);
        // Ordinary counters still advance with tracing off.
        assert_eq!(s.rma_ops, 4);
        assert_eq!(s.rpcs, 4);
    }
}

// ------------------------------------------------- chrome export round trip

#[test]
fn sim_chrome_export_contains_all_phases() {
    let n = 2;
    let rt = test_rt(n);
    let ptrs: Vec<upcxx::GlobalPtr<u64>> = (0..n)
        .map(|r| rt.with_rank(r, || upcxx::allocate::<u64>(1)))
        .collect();
    for r in 0..n {
        let dst = ptrs[(r + 1) % n];
        rt.spawn(r, move || {
            trace::set_config(TraceConfig {
                enabled: true,
                capacity: 1 << 12,
            });
            for i in 0..3u64 {
                let _ = upcxx::rput_val(i, dst);
            }
        });
    }
    rt.run();
    let dir = std::env::temp_dir().join(format!("upcxx-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.json");
    rt.export_chrome(&path).unwrap();
    let s = std::fs::read_to_string(&path).unwrap();
    for phase in ["Inject", "Conduit", "Deliver", "Complete"] {
        assert!(s.contains(&format!(".{phase}\"")), "missing phase {phase}");
    }
    assert!(s.contains("\"pid\":0") && s.contains("\"pid\":1"));
    assert!(s.contains("\"displayTimeUnit\""));
    assert_eq!(s.matches('{').count(), s.matches('}').count());
    std::fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------- causal parents: reply names rpc

#[test]
fn smp_reply_events_record_rpc_parent() {
    upcxx::run_spmd_default(2, || {
        if upcxx::rank_me() == 0 {
            trace::set_config(tracing_on());
            assert_eq!(upcxx::rpc(1, double, 4).wait(), 8);
            let events = trace::take_local();
            let rpc = of_kind(&events, OpKind::Rpc);
            // The rpc itself was injected at top level: no parent.
            assert!(rpc.iter().all(|e| e.parent_op == 0));
            // The reply (originated by rank 1 inside the handler) names the
            // rpc's span as its causal parent on every one of its events
            // recorded here.
            let replies = of_kind(&events, OpKind::Reply);
            assert!(!replies.is_empty());
            for e in &replies {
                assert_eq!(e.parent_origin, 0, "reply parent origin");
                assert_eq!(e.parent_op, rpc[0].op, "reply parent op");
            }
            trace::set_config(TraceConfig::default());
        }
        upcxx::barrier();
    });
}

// ------------------------------------------- attentiveness metric advances

#[test]
fn sim_attentiveness_gap_is_tracked_when_tracing() {
    let rt = test_rt(2);
    let dst = rt.with_rank(1, || upcxx::allocate::<u64>(1));
    // Two separate driver items 100us apart: the first put's completion
    // drains at ~virtual-time-zero-plus-latency, the second's only after the
    // scheduling gap — an inattentive window between user-progress calls.
    rt.spawn(0, move || {
        trace::set_config(TraceConfig {
            enabled: true,
            capacity: 1 << 12,
        });
        let _ = upcxx::rput_val(1u64, dst);
    });
    rt.spawn_at(0, pgas_des::Time::from_us(100), move || {
        let _ = upcxx::rput_val(2u64, dst);
    });
    rt.run();
    let s = rt.with_rank(0, upcxx::runtime_stats);
    // The window is ~100us minus two put latencies; well above 50us.
    assert!(
        s.max_progress_gap_ps >= 50_000_000,
        "gap {} ps",
        s.max_progress_gap_ps
    );
}
