//! Eager fast-path equivalence suite: the zero-copy injection-time RMA path
//! (`UPCXX_EAGER`, smp conduit only) must be observationally identical to
//! the deferred three-queue path — same data movement, same trace event
//! counts per (kind, phase), same sanitizer true-positive/true-negative
//! reports — plus `rget_into` coverage on both conduits and an alignment
//! regression with a 16-byte-aligned Pod element.
//!
//! Convention (mirrors `tests/san.rs`): smp sanitizer tests use Count mode
//! so no rank dies while peers wait in a barrier.

use netsim::MachineConfig;
use std::collections::BTreeMap;
use upcxx::san::{self, SanConfig, SanMode};
use upcxx::trace;
use upcxx::{OpKind, Phase, SimRuntime, TraceConfig};

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn tracing_on() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 14,
    }
}

fn san_cfg(mode: SanMode) -> SanConfig {
    SanConfig {
        enabled: true,
        mode,
    }
}

/// A Pod element whose alignment (16) exceeds every scalar the runtime
/// traffics in — exercises `pod_to_bytes`/`pod_from_bytes` and the eager
/// raw-pointer copies against over-aligned element types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C, align(16))]
struct Al16 {
    a: u64,
    b: u32,
    // Explicit tail bytes: rounding size_of to 16 with implicit padding
    // would ship uninitialized memory through the raw-pointer copies.
    pad: [u8; 4],
}

unsafe impl upcxx::Pod for Al16 {}

fn al16(seed: u64) -> Al16 {
    Al16 {
        a: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        b: seed as u32 ^ 0xdead_beef,
        pad: [0; 4],
    }
}

// ----------------------------------------------------- smp: data equivalence

/// One contiguous-RMA workload, parameterized by the knob: rput a slice,
/// read it back three ways (rget, rget_val, rget_into), rput_val a scalar.
/// Returns everything observed so the two knob states can be compared.
fn rma_workload(eager: bool) -> (Vec<u64>, u64, Vec<u64>, u64) {
    upcxx::set_eager(eager);
    assert_eq!(upcxx::eager_enabled(), eager, "knob must stick on smp");
    let slot = upcxx::allocate::<u64>(8);
    let slots = upcxx::allgather(slot);
    upcxx::barrier();
    let me = upcxx::rank_me() as u64;
    let n = upcxx::rank_n();
    let peer = slots[(upcxx::rank_me() + 1) % n];
    let src: Vec<u64> = (0..8).map(|i| me * 100 + i).collect();
    upcxx::rput(&src, peer).wait();
    upcxx::barrier();
    let got = upcxx::rget(slot, 8).wait();
    let head = upcxx::rget_val(slot).wait();
    let mut into = vec![0u64; 8];
    upcxx::rget_into(slot, &mut into).wait();
    upcxx::barrier(); // reads above done everywhere before slot[7] is retargeted
    upcxx::rput_val(me * 1000, peer.add(7)).wait();
    upcxx::barrier();
    let tail = upcxx::rget_val(slot.add(7)).wait();
    upcxx::barrier();
    upcxx::deallocate(slot);
    upcxx::barrier();
    (got, head, into, tail)
}

#[test]
fn smp_eager_on_off_same_results() {
    upcxx::run_spmd_default(3, || {
        let on = rma_workload(true);
        let off = rma_workload(false);
        assert_eq!(on, off, "eager and deferred paths must agree bit-for-bit");
        let left = ((upcxx::rank_me() + 3 - 1) % 3) as u64;
        let expect: Vec<u64> = (0..8).map(|i| left * 100 + i).collect();
        assert_eq!(on.0, expect);
        assert_eq!(on.1, expect[0]);
        assert_eq!(on.2, expect);
        assert_eq!(on.3, left * 1000, "slot[7] carries the left neighbor's id");
    });
}

// ------------------------------------------- smp: trace-shape equivalence

/// Count trace events per (kind, phase) for one traced put+get+get_into
/// sequence under the given knob state. Runs on rank 0 only. Keys are the
/// Debug renderings — `OpKind`/`Phase` deliberately don't implement `Ord`.
fn traced_counts(eager: bool) -> BTreeMap<(String, String), usize> {
    upcxx::set_eager(eager);
    let slot = upcxx::allocate::<u64>(4);
    let slots = upcxx::allgather(slot);
    upcxx::barrier();
    let mut counts = BTreeMap::new();
    if upcxx::rank_me() == 0 {
        trace::set_config(tracing_on());
        upcxx::rput(&[9u64, 8, 7, 6], slots[1]).wait();
        assert_eq!(upcxx::rget(slots[1], 4).wait(), vec![9, 8, 7, 6]);
        let mut buf = [0u64; 4];
        upcxx::rget_into(slots[1], &mut buf).wait();
        assert_eq!(buf, [9, 8, 7, 6]);
        for e in trace::take_local() {
            *counts
                .entry((format!("{:?}", e.kind), format!("{:?}", e.phase)))
                .or_insert(0) += 1;
        }
        trace::set_config(TraceConfig::default());
    }
    upcxx::barrier();
    upcxx::deallocate(slot);
    upcxx::barrier();
    counts
}

#[test]
fn smp_trace_event_counts_match_across_knob() {
    upcxx::run_spmd_default(2, || {
        let on = traced_counts(true);
        let off = traced_counts(false);
        if upcxx::rank_me() == 0 {
            assert_eq!(on, off, "per-(kind, phase) event counts must match");
            // The telescoped fast path still emits the full quartet: one
            // put and two gets, four phases each.
            for ph in [
                Phase::Inject,
                Phase::Conduit,
                Phase::Deliver,
                Phase::Complete,
            ] {
                let key = |k: OpKind| (format!("{k:?}"), format!("{ph:?}"));
                assert_eq!(on.get(&key(OpKind::Put)), Some(&1), "{ph:?}");
                assert_eq!(on.get(&key(OpKind::Get)), Some(&2), "{ph:?}");
            }
        }
    });
}

// ------------------------------------------- smp: sanitizer equivalence

/// The racy-rput scenario of `tests/san.rs`, under an explicit knob state:
/// ranks 0 and 1 both write rank 2's word with no ordering edge. Exactly
/// one injection must be diagnosed, eager or not — `check_rma` runs at
/// injection time on both paths.
fn racy_pair_races(eager: bool) -> u64 {
    upcxx::set_eager(eager);
    san::set_config(san_cfg(SanMode::Count));
    let base = san::san_report();
    upcxx::barrier();
    let words = upcxx::allocate::<u64>(2);
    words.local_write(&[0, 0]);
    let all = upcxx::allgather(words);
    if upcxx::rank_me() < 2 {
        upcxx::rput_val(upcxx::rank_me() as u64, all[2]).wait();
        let done = all[2].add(1);
        let ad = upcxx::AtomicDomain::all();
        ad.fetch_add(done, 1).wait();
        while ad.load(done).wait() < 2 {}
    }
    upcxx::barrier();
    // Counters are cumulative per rank: report the delta so the scenario can
    // run under both knob states in one world.
    let races = upcxx::reduce_all(san::san_report().races - base.races, |a, b| a + b).wait();
    let c = san::san_report();
    assert_eq!((c.uaf, c.oob, c.bad_frees), (0, 0, 0), "{c:?}");
    san::set_config(SanConfig::default());
    upcxx::barrier();
    races
}

#[test]
fn smp_san_true_positive_matches_across_knob() {
    upcxx::run_spmd_default(3, || {
        let eager = racy_pair_races(true);
        assert_eq!(eager, 1, "eager path must still diagnose the race");
        let deferred = racy_pair_races(false);
        assert_eq!(eager, deferred, "same TP count on both paths");
    });
}

#[test]
fn smp_san_true_negative_matches_across_knob() {
    upcxx::run_spmd_default(2, || {
        for eager in [true, false] {
            upcxx::set_eager(eager);
            san::set_config(san_cfg(SanMode::Count));
            upcxx::barrier();
            let slot = upcxx::allocate::<u64>(4);
            let slots = upcxx::allgather(slot);
            upcxx::barrier(); // ordering edge before ...
            if upcxx::rank_me() == 0 {
                upcxx::rput(&[1u64, 2, 3, 4], slots[1]).wait();
            }
            upcxx::barrier(); // ... and after: no race to report.
            assert_eq!(upcxx::rget(slot, 4).wait().len(), 4);
            upcxx::barrier();
            assert_eq!(
                san::san_report(),
                upcxx::SanCounters::default(),
                "clean workload must stay clean (eager={eager})"
            );
            san::set_config(SanConfig::default());
            upcxx::deallocate(slot);
            upcxx::barrier();
        }
    });
}

// --------------------------------------------------- sim: knob is inert

#[test]
fn sim_knob_is_inert_and_rget_into_works() {
    let rt = test_rt(2);
    rt.spawn(0, || {
        assert!(!upcxx::eager_enabled(), "sim never runs the eager path");
        upcxx::set_eager(true); // must be a no-op on the modeled conduit
        assert!(!upcxx::eager_enabled());
        let p = upcxx::allocate::<u64>(4);
        p.local_write(&[5, 6, 7, 8]);
        let mut out = vec![0u64; 4];
        upcxx::rget_into(p, &mut out).then(move |()| {
            assert_eq!(out, vec![5, 6, 7, 8]);
        });
    });
    rt.run();
}

// --------------------------------------------- both conduits: alignment

#[test]
fn smp_overaligned_pod_round_trips() {
    assert_eq!(std::mem::size_of::<Al16>(), 16);
    assert_eq!(std::mem::align_of::<Al16>(), 16);
    upcxx::run_spmd_default(2, || {
        for eager in [true, false] {
            upcxx::set_eager(eager);
            let slot = upcxx::allocate::<Al16>(3);
            let slots = upcxx::allgather(slot);
            upcxx::barrier();
            let me = upcxx::rank_me();
            let src = [al16(me as u64), al16(42), al16(u64::MAX)];
            upcxx::rput(&src, slots[1 - me]).wait();
            upcxx::barrier();
            let peer = 1 - me;
            let got = upcxx::rget(slot, 3).wait();
            assert_eq!(got, vec![al16(peer as u64), al16(42), al16(u64::MAX)]);
            let head = upcxx::rget_val(slot).wait();
            assert_eq!(head, al16(peer as u64));
            let mut into = [al16(0); 3];
            upcxx::rget_into(slot, &mut into).wait();
            assert_eq!(into.as_slice(), got.as_slice());
            upcxx::barrier();
            upcxx::deallocate(slot);
            upcxx::barrier();
        }
    });
}

#[test]
fn sim_overaligned_pod_round_trips() {
    let rt = test_rt(2);
    rt.spawn(0, || {
        let p = upcxx::allocate::<Al16>(2);
        upcxx::rput(&[al16(1), al16(2)], p)
            .then_fut(move |()| upcxx::rget(p, 2))
            .then(|got| assert_eq!(got, vec![al16(1), al16(2)]));
    });
    rt.run();
}

#[test]
fn pod_bytes_round_trip_preserves_overaligned_values() {
    let src = [al16(3), al16(0), al16(999)];
    let bytes = upcxx::ser::pod_to_bytes(&src);
    assert_eq!(bytes.len(), 48);
    // pod_from_bytes must land values correctly even when the source byte
    // buffer is arbitrarily aligned: probe a deliberately offset copy.
    let mut shifted = vec![0u8; bytes.len() + 1];
    shifted[1..].copy_from_slice(&bytes);
    let back: Vec<Al16> = upcxx::ser::pod_from_bytes(&shifted[1..]);
    assert_eq!(back.as_slice(), src.as_slice());
}
