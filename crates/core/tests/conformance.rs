//! Conduit conformance suite: one set of semantic contracts, instantiated
//! against every conduit — smp (threads + shared memory), proc (one OS
//! process per rank: shm segments + Unix-domain sockets) and sim (discrete
//! event). The contracts:
//!
//! 1. **RPC round-trip** — an RPC with a return value executes at the
//!    target and its reply fulfills the initiator's future.
//! 2. **rput/rget equivalence** — bytes written one-sided are the bytes
//!    read back, both by the owner locally and by the writer via rget.
//! 3. **Trace quartet shape** — a traced blocking RMA op records exactly
//!    Inject → Conduit → Deliver → Complete at the initiator, with the op's
//!    identity (origin/peer/bytes) intact. On proc this is what proves AM
//!    frames carry trace identity across address spaces.
//! 4. **Sanitizer TP/TN** — an out-of-bounds rget is counted (true
//!    positive) and an in-bounds one is silent (true negative).
//! 5. **Metrics & depth probe** — the always-on `upcxx::metrics` counters
//!    move monotonically under traffic and the conduit-uniform
//!    `Conduit::depths()` probe reports internally consistent occupancy
//!    (staging within capacity; fields a conduit lacks stay zero).
//!
//! smp and proc share the *same* blocking rank bodies, launched through
//! [`upcxx::run_spmd_with`] with only the conduit differing. sim drivers
//! cannot block, so the sim instantiations restate the identical contracts
//! as then-chains and share the assertion helpers. Proc instantiations
//! re-exec this test binary per rank (see `gasnet::proc::launch`); their
//! assertions run inside the rank processes and a failed rank fails the
//! launcher, which fails the test.

use netsim::MachineConfig;
use std::cell::Cell;
use std::rc::Rc;
use upcxx::san::{self, SanConfig, SanMode};
use upcxx::{trace, ConduitKind, Config, OpKind, Phase, SimRuntime, TraceConfig, TraceEvent};

fn smp_cfg() -> Config {
    Config::default()
}

fn proc_cfg() -> Config {
    Config::default().with_conduit(ConduitKind::Proc)
}

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn tracing_on() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 14,
    }
}

// ------------------------------------------------------- shared assertions

/// Contract 3's shape check, shared by all three conduits: `kind` ops in
/// `events` form exactly one Inject → Conduit → Deliver → Complete quartet
/// recorded at `origin` against `peer`, carrying `bytes`.
fn assert_quartet(events: &[TraceEvent], kind: OpKind, origin: u32, peer: u32, bytes: u32) {
    let ops: Vec<&TraceEvent> = events.iter().filter(|e| e.kind == kind).collect();
    let phases: Vec<Phase> = ops.iter().map(|e| e.phase).collect();
    assert_eq!(
        phases,
        vec![
            Phase::Inject,
            Phase::Conduit,
            Phase::Deliver,
            Phase::Complete
        ],
        "{kind:?} quartet malformed"
    );
    assert!(
        ops.iter()
            .all(|e| e.rank == origin && e.origin == origin && e.peer == peer),
        "{kind:?} quartet identity wrong"
    );
    assert_eq!(ops[0].bytes, bytes, "{kind:?} quartet payload size wrong");
    let op_ids: Vec<u64> = ops.iter().map(|e| e.op).collect();
    assert!(
        op_ids.iter().all(|&id| id == op_ids[0]),
        "{kind:?} quartet spans multiple op ids"
    );
}

// --------------------------------------------- contract 1: RPC round trip

fn double(x: u64) -> u64 {
    x * 2
}

/// Blocking rank body (smp + proc): every rank RPCs its right neighbor and
/// the reply must carry the target's computation.
fn body_rpc_round_trip() {
    let me = upcxx::rank_me();
    let n = upcxx::rank_n();
    let got = upcxx::rpc((me + 1) % n, double, me as u64 + 7).wait();
    assert_eq!(got, (me as u64 + 7) * 2);
    upcxx::barrier();
}

#[test]
fn smp_rpc_round_trip() {
    upcxx::run_spmd_with(4, smp_cfg(), body_rpc_round_trip);
}

#[test]
fn proc_rpc_round_trip() {
    upcxx::run_spmd_with(4, proc_cfg(), body_rpc_round_trip);
}

#[test]
fn sim_rpc_round_trip() {
    let n = 4;
    let rt = test_rt(n);
    let done = Rc::new(Cell::new(0usize));
    for r in 0..n {
        let done = done.clone();
        rt.spawn(r, move || {
            upcxx::rpc((r + 1) % n, double, r as u64 + 7).then(move |got| {
                assert_eq!(got, (r as u64 + 7) * 2);
                done.set(done.get() + 1);
            });
        });
    }
    rt.run();
    assert_eq!(done.get(), n);
}

// -------------------------------------- contract 2: rput/rget equivalence

/// Blocking rank body (smp + proc): each rank one-sided-writes a rank-keyed
/// pattern into its right neighbor's slot; the owner must read it back
/// locally and the writer must read the same bytes back with rget.
fn body_rma_equivalence() {
    let me = upcxx::rank_me();
    let n = upcxx::rank_n();
    let slot = upcxx::allocate::<u64>(4);
    slot.local_write(&[0; 4]);
    let slots = upcxx::allgather(slot);
    let right = (me + 1) % n;
    let pattern = [right as u64; 4].map(|r| r * 1000 + me as u64);
    upcxx::rput(&pattern, slots[right]).wait();
    upcxx::barrier();
    // Owner view: my slot holds my left neighbor's pattern.
    let left = (me + n - 1) % n;
    let mut mine = [0u64; 4];
    slot.local_read(&mut mine);
    assert_eq!(mine, [me as u64; 4].map(|r| r * 1000 + left as u64));
    // Writer view: rget returns exactly what I rput.
    let echoed = upcxx::rget(slots[right], 4).wait();
    assert_eq!(echoed[..], pattern[..]);
    upcxx::barrier();
}

#[test]
fn smp_rma_equivalence() {
    upcxx::run_spmd_with(3, smp_cfg(), body_rma_equivalence);
}

#[test]
fn proc_rma_equivalence() {
    upcxx::run_spmd_with(3, proc_cfg(), body_rma_equivalence);
}

#[test]
fn sim_rma_equivalence() {
    let rt = test_rt(2);
    let dst = rt.with_rank(1, || upcxx::allocate::<u64>(4));
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    rt.spawn(0, move || {
        let d = d.clone();
        upcxx::rput(&[11u64, 22, 33, 44], dst)
            .then_fut(move |_| upcxx::rget(dst, 4))
            .then(move |echoed| {
                assert_eq!(echoed, vec![11, 22, 33, 44]);
                d.set(true);
            });
    });
    rt.run();
    assert!(done.get());
    rt.with_rank(1, || {
        let mut owner = [0u64; 4];
        dst.local_read(&mut owner);
        assert_eq!(owner, [11, 22, 33, 44]);
    });
}

// ----------------------------------------- contract 3: trace quartet shape

/// Blocking rank body (smp + proc): rank 0 traces one blocking rput and one
/// blocking rget against rank 1 and checks both quartets.
fn body_trace_quartet() {
    if upcxx::rank_me() == 0 {
        let slot = upcxx::allocate::<u64>(4);
        let slots = upcxx::allgather(slot);
        trace::set_config(tracing_on());
        upcxx::rput(&[9u64, 8, 7, 6], slots[1]).wait();
        let got = upcxx::rget(slots[1], 4).wait();
        assert_eq!(got, vec![9, 8, 7, 6]);
        let events = trace::take_local();
        assert_quartet(&events, OpKind::Put, 0, 1, 32);
        assert_quartet(&events, OpKind::Get, 0, 1, 32);
        trace::set_config(TraceConfig::default());
    } else {
        let slot = upcxx::allocate::<u64>(4);
        let _ = upcxx::allgather(slot);
    }
    upcxx::barrier();
}

#[test]
fn smp_trace_quartet() {
    upcxx::run_spmd_with(2, smp_cfg(), body_trace_quartet);
}

#[test]
fn proc_trace_quartet() {
    upcxx::run_spmd_with(2, proc_cfg(), body_trace_quartet);
}

#[test]
fn sim_trace_quartet() {
    let rt = test_rt(2);
    let dst = rt.with_rank(1, || upcxx::allocate::<u64>(4));
    rt.spawn(0, move || {
        trace::set_config(TraceConfig {
            enabled: true,
            capacity: 1 << 14,
        });
        upcxx::rput(&[9u64, 8, 7, 6], dst)
            .then_fut(move |_| upcxx::rget(dst, 4))
            .then(|got| assert_eq!(got, vec![9, 8, 7, 6]));
    });
    rt.run();
    let events = rt.with_rank(0, trace::take_local);
    assert_quartet(&events, OpKind::Put, 0, 1, 32);
    assert_quartet(&events, OpKind::Get, 0, 1, 32);
    rt.with_rank(0, || trace::set_config(TraceConfig::default()));
}

// -------------------------------------------- contract 4: sanitizer TP/TN

/// Blocking rank body (smp + proc): in Count mode, an in-bounds rget of my
/// own 4-word extent is silent (TN) and a 16-word rget overrunning it is
/// counted as out-of-bounds (TP). Local-target ops keep the contract
/// meaningful on proc, where each process sanitizes its own segment.
fn body_san_tp_tn() {
    san::set_config(SanConfig {
        enabled: true,
        mode: SanMode::Count,
    });
    upcxx::barrier();
    let mine = upcxx::allocate::<u64>(4);
    mine.local_write(&[1, 2, 3, 4]);
    let ok = upcxx::rget(mine, 4).wait();
    assert_eq!(ok, vec![1, 2, 3, 4]);
    assert_eq!(san::san_report().oob, 0, "true negative violated");
    let _ = upcxx::rget(mine, 16).wait();
    let c = san::san_report();
    assert_eq!(c.oob, 1, "true positive violated: {c:?}");
    san::set_config(SanConfig::default());
    upcxx::barrier();
}

#[test]
fn smp_san_tp_tn() {
    upcxx::run_spmd_with(2, smp_cfg(), body_san_tp_tn);
}

#[test]
fn proc_san_tp_tn() {
    upcxx::run_spmd_with(2, proc_cfg(), body_san_tp_tn);
}

// ------------------------------------- contract 5: metrics & depth probe

/// Blocking rank body (smp + proc): the always-on metrics counters advance
/// under one-sided and RPC traffic, the flight recorder records events, and
/// the conduit depth probe is internally consistent on whichever conduit is
/// underneath.
fn body_metrics_depths() {
    let me = upcxx::rank_me();
    let n = upcxx::rank_n();
    let before = upcxx::metrics::snapshot();
    assert_eq!(before.rank, me);
    let slot = upcxx::allocate::<u64>(4);
    slot.local_write(&[0; 4]);
    let slots = upcxx::allgather(slot);
    let right = (me + 1) % n;
    upcxx::rput(&[me as u64; 4], slots[right]).wait();
    let got = upcxx::rpc(right, double, 21).wait();
    assert_eq!(got, 42);
    upcxx::barrier();
    let after = upcxx::metrics::snapshot();
    // Counters move, and only forward.
    assert!(after.rma_ops > before.rma_ops, "rma_ops stuck");
    assert!(after.rpcs > before.rpcs, "rpcs stuck");
    assert!(after.bytes_out > before.bytes_out, "bytes_out stuck");
    assert!(
        after.progress_calls > before.progress_calls,
        "progress_calls stuck"
    );
    assert!(
        after.flight_recorded > before.flight_recorded,
        "flight recorder recorded nothing"
    );
    assert!(
        after.rma_eager + after.rma_deferred >= after.rma_ops,
        "every RMA op must be classified eager or deferred: {after:?}"
    );
    // Depth probe consistency: staging occupancy within capacity; a conduit
    // with no staging (smp) reports zero for both.
    assert!(
        after.staging_used <= after.staging_cap,
        "staging occupancy exceeds capacity: {after:?}"
    );
    if after.staging_cap == 0 {
        assert_eq!(after.eager_fallbacks, 0, "fallbacks without staging");
    }
    upcxx::barrier();
}

#[test]
fn smp_metrics_depths() {
    upcxx::run_spmd_with(3, smp_cfg(), body_metrics_depths);
}

#[test]
fn proc_metrics_depths() {
    upcxx::run_spmd_with(3, proc_cfg(), body_metrics_depths);
}

#[test]
fn sim_metrics_depths() {
    let n = 2;
    let rt = test_rt(n);
    let dst = rt.with_rank(1, || upcxx::allocate::<u64>(4));
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    rt.spawn(0, move || {
        let d = d.clone();
        upcxx::rput(&[5u64, 6, 7, 8], dst).then(move |_| d.set(true));
    });
    rt.run();
    assert!(done.get());
    let s = rt.with_rank(0, upcxx::metrics::snapshot);
    assert!(s.rma_ops >= 1, "sim rma_ops stuck");
    assert!(s.flight_recorded >= 1, "sim flight recorder empty");
    // Sim executes deliveries at their arrival event: every depth gauge is
    // definitionally zero (deferral lives in virtual time, not a queue).
    assert_eq!(s.inbox_depth, 0);
    assert_eq!(s.staging_cap, 0);
    assert_eq!(s.backlog_bytes, 0);
}

#[test]
fn sim_san_tp_tn() {
    let rt = test_rt(2);
    for r in 0..2 {
        rt.with_rank(r, || {
            san::set_config(SanConfig {
                enabled: true,
                mode: SanMode::Count,
            })
        });
    }
    let src = rt.with_rank(0, || {
        let p = upcxx::allocate::<u64>(4);
        p.local_write(&[1, 2, 3, 4]);
        p
    });
    let done = Rc::new(Cell::new(false));
    let d = done.clone();
    rt.spawn(1, move || {
        let d = d.clone();
        upcxx::rget(src, 4)
            .then_fut(move |ok| {
                assert_eq!(ok, vec![1, 2, 3, 4]);
                assert_eq!(san::san_report().oob, 0, "true negative violated");
                upcxx::rget(src, 16)
            })
            .then(move |_| d.set(true));
    });
    rt.run();
    assert!(done.get());
    let c = rt.with_rank(1, san::san_report);
    assert_eq!(c.oob, 1, "true positive violated: {c:?}");
}
