//! Integration tests of the distributed profiler (`upcxx::prof`) over both
//! conduits: deterministic collection under sim (byte-identical reports and
//! JSON across identical runs), causal linkage of every remote delivery to
//! its originating inject, cross-rank critical paths, the smp collective
//! `collect()` (profile on rank 0, `None` elsewhere), ring-overflow warnings,
//! and Chrome-trace export round-trips (parsed back with a hand-written JSON
//! parser: one metadata track per rank, flow-event ids pairing up exactly).

mod common;

use common::{parse_json, Json};
use netsim::MachineConfig;
use upcxx::prof::Profile;
use upcxx::{OpKind, Phase, SimRuntime, TraceConfig};

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn tracing_on() -> TraceConfig {
    TraceConfig {
        enabled: true,
        capacity: 1 << 14,
    }
}

fn bump(x: u64) -> u64 {
    x + 1
}

fn sink(_x: u64) {}

/// Every rank fires a chain of `iters` RPCs at its right neighbor, each
/// chained on the previous reply — the profiler's bread-and-butter workload
/// (cross-rank parent links on every hop).
fn run_rpc_chain(n: usize, iters: u32) -> Profile {
    let rt = test_rt(n);
    for r in 0..n {
        rt.spawn(r, move || {
            upcxx::trace::set_config(tracing_on());
            fn step(me: usize, n: usize, k: u32) {
                if k == 0 {
                    return;
                }
                upcxx::rpc((me + 1) % n, bump, k as u64).then(move |v| {
                    assert_eq!(v, k as u64 + 1);
                    step(me, n, k - 1);
                });
            }
            step(r, n, iters);
        });
    }
    rt.run();
    rt.collect_prof()
}

// ------------------------------------------------------- sim: determinism

#[test]
fn sim_profile_byte_for_byte_deterministic() {
    let a = run_rpc_chain(6, 4);
    let b = run_rpc_chain(6, 4);
    assert_eq!(
        upcxx::prof::report(&a),
        upcxx::prof::report(&b),
        "text reports differ between identical runs"
    );
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "JSON profiles differ between identical runs"
    );
}

// ------------------------------------------------- sim: causal completeness

#[test]
fn sim_every_remote_deliver_links_to_its_inject() {
    let p = run_rpc_chain(4, 3);
    let remote_delivers: Vec<_> = p
        .events
        .iter()
        .filter(|e| e.phase == Phase::Deliver && e.rank != e.origin && e.op != 0)
        .collect();
    assert!(
        !remote_delivers.is_empty(),
        "workload produced no deliveries"
    );
    for d in &remote_delivers {
        assert!(
            p.events.iter().any(|e| e.phase == Phase::Inject
                && e.origin == d.origin
                && e.op == d.op
                && e.rank == e.origin),
            "remote Deliver of span ({}, {}) has no originating Inject",
            d.origin,
            d.op
        );
    }
    // The chained workload also gives every follow-up RPC a causal parent:
    // each chain step is injected from inside the previous reply's handler.
    let parented = p
        .events
        .iter()
        .filter(|e| e.kind == OpKind::Rpc && e.phase == Phase::Inject && e.parent_op != 0)
        .count();
    assert!(
        parented > 0,
        "no chained RPC recorded its predecessor as causal parent"
    );
}

#[test]
fn sim_critical_path_crosses_ranks() {
    let p = run_rpc_chain(4, 4);
    assert!(!p.critical_path.is_empty());
    let ranks: std::collections::BTreeSet<u32> = p.critical_path.iter().map(|h| h.rank).collect();
    assert!(
        ranks.len() >= 2,
        "critical path of an RPC chain names only ranks {ranks:?}"
    );
    // Hop costs telescope back to the end-to-end span.
    let total: u64 = p.critical_path.iter().map(|h| h.dt_ps).sum();
    let span = p.critical_path.last().unwrap().ts_ps - p.critical_path[0].ts_ps;
    assert_eq!(total, span);
}

#[test]
fn sim_comm_matrix_counts_the_ring() {
    let n = 5;
    let iters = 3;
    let p = run_rpc_chain(n, iters);
    for r in 0..n {
        // Each rank fired `iters` RPCs at its right neighbor (plus the
        // replies flowing the other way).
        assert!(
            p.comm_ops[r][(r + 1) % n] >= iters as u64,
            "rank {r} -> {} shows {} ops",
            (r + 1) % n,
            p.comm_ops[r][(r + 1) % n]
        );
        assert!(p.comm_bytes[r][(r + 1) % n] > 0);
    }
    // The latency table decomposes the RPC round trip.
    let rpc = p
        .kinds
        .iter()
        .find(|k| k.kind == OpKind::Rpc)
        .expect("no Rpc latency row");
    assert_eq!(rpc.total.count, (n * iters as usize) as u64);
    assert!(rpc.total.p50 > 0);
}

// --------------------------------------------------- sim: overflow warning

#[test]
fn sim_dropped_events_surface_in_report() {
    let rt = test_rt(2);
    rt.spawn(0, || {
        upcxx::trace::set_config(TraceConfig {
            enabled: true,
            capacity: 8,
        });
        for i in 0..64u64 {
            upcxx::rpc_ff(1, sink, i);
        }
    });
    rt.run();
    let p = rt.collect_prof();
    assert!(
        p.meta[0].dropped > 0,
        "64 ops through an 8-event ring must drop"
    );
    assert!(upcxx::prof::report(&p).contains("WARNING: rank 0 dropped"));
}

// ------------------------------------------------------- smp: collect()

#[test]
fn smp_collect_profiles_on_root_only() {
    upcxx::run_spmd_default(4, || {
        upcxx::trace::set_config(tracing_on());
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        assert_eq!(
            upcxx::rpc((me + 1) % n, bump, me as u64).wait(),
            me as u64 + 1
        );
        upcxx::barrier();
        let p = upcxx::prof::collect();
        if me == 0 {
            let p = p.expect("rank 0 must receive the merged profile");
            assert_eq!(p.ranks, 4);
            assert!(!p.virtual_time);
            assert_eq!(p.meta.len(), 4);
            let total_ops: u64 = p.comm_ops.iter().flatten().sum();
            assert!(total_ops >= 4, "4 ring RPCs must appear in the matrix");
            // Merged timeline is monotone (events sort by aligned wall time).
            assert!(p.events.windows(2).all(|w| w[0].ts_ps <= w[1].ts_ps));
            let txt = upcxx::prof::report(&p);
            assert!(txt.contains("ranks: 4"));
            assert!(txt.contains("clock: wall-ps"));
        } else {
            assert!(p.is_none(), "non-root ranks get None");
        }
        upcxx::barrier();
    });
}

// ------------------------------------------- Chrome export round trips

/// Parse a Chrome-trace document and check the structural invariants the
/// export promises: one `process_name` metadata record per traced rank, and
/// flow start/finish events pairing up exactly by id.
fn check_chrome(doc: &Json, want_ranks: usize) {
    let events = doc.get("traceEvents").expect("no traceEvents key").arr();
    assert!(!events.is_empty());
    let mut meta_pids: Vec<i64> = events
        .iter()
        .filter(|e| e.get("ph").map(Json::str) == Some("M"))
        .map(|e| {
            assert_eq!(e.get("name").unwrap().str(), "process_name");
            e.get("pid").unwrap().num() as i64
        })
        .collect();
    meta_pids.sort_unstable();
    assert_eq!(
        meta_pids,
        (0..want_ranks as i64).collect::<Vec<_>>(),
        "expected one metadata track per rank"
    );
    let ids = |ph: &str| -> Vec<i64> {
        let mut v: Vec<i64> = events
            .iter()
            .filter(|e| e.get("ph").map(Json::str) == Some(ph))
            .map(|e| e.get("id").unwrap().num() as i64)
            .collect();
        v.sort_unstable();
        v
    };
    let starts = ids("s");
    let finishes = ids("f");
    assert!(!starts.is_empty(), "no cross-rank flow events");
    assert_eq!(starts, finishes, "flow start/finish ids must pair exactly");
    let mut uniq = starts.clone();
    uniq.dedup();
    assert_eq!(uniq.len(), starts.len(), "duplicate flow ids");
    // Every flow finish is the Perfetto "bind enclosing" form.
    for e in events {
        if e.get("ph").map(Json::str) == Some("f") {
            assert_eq!(e.get("bp").map(Json::str), Some("e"));
        }
    }
}

#[test]
fn sim_export_chrome_roundtrip() {
    let p = run_rpc_chain(4, 2);
    let mut buf = Vec::new();
    p.export_chrome(&mut buf).unwrap();
    let doc = parse_json(std::str::from_utf8(&buf).unwrap());
    check_chrome(&doc, 4);
}

#[test]
fn smp_export_chrome_roundtrip() {
    upcxx::run_spmd_default(3, || {
        upcxx::trace::set_config(tracing_on());
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        assert_eq!(upcxx::rpc((me + 1) % n, bump, 1).wait(), 2);
        upcxx::barrier();
        if let Some(p) = upcxx::prof::collect() {
            let mut buf = Vec::new();
            p.export_chrome(&mut buf).unwrap();
            let doc = parse_json(std::str::from_utf8(&buf).unwrap());
            check_chrome(&doc, 3);
        }
        upcxx::barrier();
    });
}
