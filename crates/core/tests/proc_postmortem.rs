//! Crash-harvest integration for the proc conduit: when a rank dies, its
//! panic hook flushes the flight recorder to the world's bootstrap
//! directory, the launcher harvests the dumps *before* cleanup, and the
//! postmortem report it prints (retained via
//! [`upcxx::metrics::last_postmortem`]) names the dead rank and its final
//! recorded events — `proc_crash` upgraded from "non-zero exit propagates"
//! to "here is what the rank was doing when it died".

use upcxx::{ConduitKind, Config};

fn crashing_world() {
    upcxx::run_spmd_with(4, Config::default().with_conduit(ConduitKind::Proc), || {
        // Everyone arrives before anyone dies: the crash hits a live,
        // communicating world, so the flight ring has events to dump.
        upcxx::barrier();
        if upcxx::rank_me() == 2 {
            panic!("postmortem-test: rank 2 failing on purpose");
        }
        // Survivors block until the launcher kills them.
        upcxx::barrier();
    });
}

#[test]
fn proc_crash_postmortem_names_dead_rank() {
    // Re-exec'd rank children must run the world body unguarded: rank 2's
    // panic has to reach the process exit code for the launcher to see it.
    if std::env::var("UPCXX_PROC_RANK").is_ok() {
        crashing_world();
        return;
    }
    let result = std::panic::catch_unwind(crashing_world);
    assert!(result.is_err(), "launcher must propagate rank failure");
    let msg = result
        .unwrap_err()
        .downcast::<String>()
        .map(|b| *b)
        .unwrap_or_default();
    assert!(
        msg.contains("rank 2"),
        "launcher panic must name the failed rank: {msg:?}"
    );

    let report = upcxx::metrics::last_postmortem()
        .expect("launcher must harvest the dead rank's flight dump");
    assert!(report.contains("upcxx postmortem"), "{report}");
    assert!(report.contains("first failed rank: rank 2"), "{report}");
    assert!(report.contains("rank 2's final recorded event"), "{report}");
    // The harvested timeline is real decoded traffic, not placeholders: the
    // pre-crash barrier shows up as system AMs attributed to rank 2.
    assert!(report.contains("rank 2 SysAm"), "{report}");
}
