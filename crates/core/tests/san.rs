//! True-positive / true-negative suites for the `upcxx::san` sanitizer on
//! both conduits: racy vs. barrier-separated rput pairs, blocking inside
//! RPC callbacks, use-after-free through stale global pointers, out-of-
//! bounds rgets, pointer-arithmetic overflow, bad frees — plus the
//! determinism guarantee that the same sim schedule yields the same race
//! report.
//!
//! Convention: Panic-mode true-positive tests run only on the sim conduit
//! (single thread — the panic propagates out of `run()`); smp tests use
//! Count mode so no rank dies while peers wait in a barrier.

use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::Cell;
use std::rc::Rc;
use upcxx::san::{self, SanConfig, SanMode};
use upcxx::SimRuntime;

fn test_rt(n: usize) -> SimRuntime {
    SimRuntime::new(MachineConfig::test_2x4(), n, 1 << 16)
}

fn cfg(mode: SanMode) -> SanConfig {
    SanConfig {
        enabled: true,
        mode,
    }
}

/// Enable the sanitizer on every rank of a sim world (the module-docs
/// rule: all ranks or none).
fn enable_all(rt: &SimRuntime, mode: SanMode) {
    for r in 0..rt.rank_n() {
        rt.with_rank(r, || san::set_config(cfg(mode)));
    }
}

/// Rank-state slot drivers use to publish a pointer to other ranks.
fn publish(p: upcxx::GlobalPtr<u64>) {
    upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u64>>>>(|| Cell::new(None)).set(Some(p));
}
fn fetch(_: ()) -> upcxx::GlobalPtr<u64> {
    upcxx::rank_state::<Cell<Option<upcxx::GlobalPtr<u64>>>>(|| Cell::new(None))
        .get()
        .expect("pointer not yet published")
}

/// Drive the unordered-rput scenario: ranks 0 and 1 both rput the same
/// 4-word extent of rank 2's segment with no ordering edge between them.
/// Returns every rank's retained reports, concatenated in rank order.
fn run_racy_rput_pair(mode: SanMode) -> (Vec<String>, u64) {
    let rt = test_rt(4);
    enable_all(&rt, mode);
    rt.spawn(2, || publish(upcxx::allocate::<u64>(4)));
    for r in 0..2 {
        rt.spawn_at(r, Time::from_us(10), move || {
            upcxx::rpc(2, fetch, ())
                .then_fut(move |gp| upcxx::rput(&[r as u64; 4], gp))
                .then(|_| ());
        });
    }
    rt.run();
    let mut reports = Vec::new();
    let mut races = 0;
    for r in 0..rt.rank_n() {
        reports.extend(rt.with_rank(r, san::take_reports));
        races += rt.with_rank(r, || san::san_report().races);
    }
    (reports, races)
}

#[test]
fn sim_racy_rput_pair_detected() {
    let (reports, races) = run_racy_rput_pair(SanMode::Count);
    assert_eq!(races, 1, "exactly one of the two injections sees the other");
    let r = &reports[0];
    assert!(r.contains("data race"), "report: {r}");
    // The report names both offending operations (origin:op id) and kinds.
    assert!(r.contains("rput") && r.contains("write"), "report: {r}");
    assert!(
        r.contains("from rank 0") && r.contains("from rank 1"),
        "report names both origins: {r}"
    );
}

#[test]
#[should_panic(expected = "data race")]
fn sim_racy_rput_pair_panics_in_panic_mode() {
    run_racy_rput_pair(SanMode::Panic);
}

#[test]
fn sim_race_reports_are_deterministic() {
    // Same program, fresh worlds: bit-identical reports (the sim conduit's
    // schedule is deterministic, so races reproduce).
    let (a, _) = run_racy_rput_pair(SanMode::Count);
    let (b, _) = run_racy_rput_pair(SanMode::Count);
    assert!(!a.is_empty());
    assert_eq!(a, b);
}

#[test]
fn sim_barrier_separated_rputs_are_clean() {
    // Same two conflicting rputs, but rank 1's happens after a world
    // barrier that rank 0 enters only once its put completed: the
    // dissemination flags carry rank 0's clock, so the pair is ordered and
    // no race may be reported.
    let rt = test_rt(4);
    enable_all(&rt, SanMode::Panic);
    rt.spawn(2, || {
        publish(upcxx::allocate::<u64>(4));
        upcxx::barrier_async().then(|_| ());
    });
    rt.spawn(3, || {
        upcxx::barrier_async().then(|_| ());
    });
    rt.spawn_at(0, Time::from_us(10), || {
        upcxx::rpc(2, fetch, ())
            .then_fut(|gp| upcxx::rput(&[7u64; 4], gp))
            .then_fut(|_| upcxx::barrier_async())
            .then(|_| ());
    });
    rt.spawn_at(1, Time::from_us(10), || {
        upcxx::rpc(2, fetch, ())
            .then_fut(|gp| upcxx::barrier_async().then(move |_| gp))
            .then_fut(|gp| upcxx::rput(&[9u64; 4], gp))
            .then(|_| ());
    });
    rt.run();
    for r in 0..rt.rank_n() {
        let c = rt.with_rank(r, san::san_report);
        assert_eq!(c, upcxx::SanCounters::default(), "rank {r}: {c:?}");
    }
}

fn wait_unready(_: ()) {
    let p = upcxx::Promise::<()>::new();
    p.require_anonymous(1); // never fulfilled: the future stays pending
                            // analyze: allow(restricted-context): deliberate violation — this handler exists so the test below can assert the dynamic sanitizer diagnoses it
    p.finalize().wait();
}

#[test]
#[should_panic(expected = "restricted-context violation")]
fn sim_wait_inside_rpc_callback_is_diagnosed() {
    // Without the sanitizer this hangs (smp) or dies with the opaque
    // cannot-advance-virtual-time assert (sim); with it, the report names
    // the violation at the blocking call.
    let rt = test_rt(2);
    enable_all(&rt, SanMode::Panic);
    rt.spawn(0, || {
        upcxx::rpc(1, wait_unready, ()).then(|_| ());
    });
    rt.run();
}

fn reenter_progress(_: ()) -> u64 {
    // Waiting on an already-ready future inside a callback is legal (the
    // check sits after the fast path) ...
    upcxx::make_ready_future().wait();
    // ... but re-entering user-level progress is a violation.
    // analyze: allow(restricted-context): deliberate violation — the count-mode test asserts the dynamic sanitizer tallies this re-entry
    upcxx::progress();
    upcxx::san_report().restricted
}

#[test]
fn sim_restricted_violations_are_counted_not_fatal_in_count_mode() {
    let rt = test_rt(2);
    enable_all(&rt, SanMode::Count);
    let got = Rc::new(Cell::new(0u64));
    let g = got.clone();
    rt.spawn(0, move || {
        let g = g.clone();
        upcxx::rpc(1, reenter_progress, ()).then(move |v| g.set(v));
    });
    rt.run();
    assert_eq!(got.get(), 1, "exactly the progress() call was flagged");
    let report = rt.with_rank(1, san::take_reports);
    assert!(report[0].contains("progress()"), "report: {report:?}");
    // runtime_stats carries the same counters.
    let stats = rt.with_rank(1, || upcxx::runtime_stats().san);
    assert_eq!(stats.restricted, 1);
}

#[test]
fn sim_use_after_free_rget_detected_and_poisoned() {
    let rt = test_rt(2);
    enable_all(&rt, SanMode::Count);
    rt.spawn(0, || {
        let p = upcxx::allocate::<u64>(4);
        p.local_write(&[1, 2, 3, 4]);
        publish(p);
        // Freed: the extent moves to quarantine (poison-filled), so the
        // stale pointer below is caught instead of reading recycled memory.
        upcxx::deallocate(p);
    });
    let data = Rc::new(Cell::new(0u64));
    let d = data.clone();
    rt.spawn_at(1, Time::from_us(10), move || {
        let d = d.clone();
        upcxx::rpc(0, fetch, ())
            .then_fut(|gp| upcxx::rget(gp, 4))
            .then(move |v| d.set(v[0]));
    });
    rt.run();
    let c = rt.with_rank(1, san::san_report);
    assert_eq!(c.uaf, 1, "{c:?}");
    let reports = rt.with_rank(1, san::take_reports);
    assert!(
        reports[0].contains("use-after-free") && reports[0].contains("quarantine"),
        "report: {}",
        reports[0]
    );
    // The quarantined extent was poison-filled at deallocate.
    assert_eq!(data.get(), u64::from_le_bytes([san::POISON; 8]));
}

#[test]
fn sim_out_of_bounds_rget_detected() {
    let rt = test_rt(2);
    enable_all(&rt, SanMode::Count);
    rt.spawn(0, || publish(upcxx::allocate::<u64>(4)));
    rt.spawn_at(1, Time::from_us(10), || {
        // 16 words from a 4-word extent: 96 bytes beyond the allocation.
        upcxx::rpc(0, fetch, ())
            .then_fut(|gp| upcxx::rget(gp, 16))
            .then(|_| ());
    });
    rt.run();
    let c = rt.with_rank(1, san::san_report);
    assert_eq!(c.oob, 1, "{c:?}");
    let reports = rt.with_rank(1, san::take_reports);
    assert!(
        reports[0].contains("out-of-bounds") && reports[0].contains("overrunning live extent"),
        "report: {}",
        reports[0]
    );
}

#[test]
#[should_panic(expected = "global-pointer arithmetic overflow")]
fn gptr_add_overflow_panics() {
    let rt = test_rt(1);
    rt.with_rank(0, || {
        let p = upcxx::allocate::<u64>(1);
        let _ = p.add(usize::MAX / 8 + 1);
    });
}

#[test]
#[should_panic(expected = "global-pointer arithmetic overflow")]
fn gptr_offset_elems_negative_panics() {
    let rt = test_rt(1);
    rt.with_rank(0, || {
        let p = upcxx::allocate::<u64>(1);
        // Negative result used to wrap into a huge offset silently.
        let _ = p.offset_elems(-((p.byte_offset() / 8) as isize) - 1);
    });
}

#[test]
#[should_panic(expected = "interior to the live extent")]
fn deallocate_interior_pointer_is_diagnosed_at_boundary() {
    let rt = test_rt(1);
    rt.with_rank(0, || {
        san::set_config(cfg(SanMode::Panic)); // pin the mode against UPCXX_SAN
        let p = upcxx::allocate::<u64>(4);
        upcxx::deallocate(p.add(1));
    });
}

#[test]
#[should_panic(expected = "invalid deallocate of gptr<u64>")]
fn deallocate_never_allocated_names_the_pointer() {
    let rt = test_rt(1);
    rt.with_rank(0, || {
        san::set_config(cfg(SanMode::Panic)); // pin the mode against UPCXX_SAN
        let p = upcxx::allocate::<u64>(1);
        upcxx::deallocate(p); // fine
        upcxx::deallocate(p); // double free: caught with the Debug rendering
    });
}

// ---------------------------------------------------------------------------
// smp conduit
// ---------------------------------------------------------------------------

#[test]
fn smp_racy_rput_pair_detected_in_count_mode() {
    upcxx::run_spmd_default(3, || {
        san::set_config(cfg(SanMode::Count));
        upcxx::barrier(); // all ranks sanitized before traffic flows
                          // words[0]: the raced word; words[1]: a rendezvous counter.
        let words = upcxx::allocate::<u64>(2);
        words.local_write(&[0, 0]);
        let all = upcxx::allgather(words);
        if upcxx::rank_me() < 2 {
            // Both write rank 2's word with no ordering edge: one-sided puts
            // and atomics exchange no vector-clock snapshots, so whichever
            // racer is second under the shadow-world lock must see the
            // other's record as unordered.
            upcxx::rput_val(upcxx::rank_me() as u64, all[2]).wait();
            // Rendezvous on atomics before any barrier traffic: a racer that
            // finished first may not enter the trailing barrier (whose flags
            // carry its post-completion clock) until the other has injected.
            let done = all[2].add(1);
            let ad = upcxx::AtomicDomain::all();
            ad.fetch_add(done, 1).wait();
            while ad.load(done).wait() < 2 {}
        }
        upcxx::barrier();
        let races = upcxx::reduce_all(san::san_report().races, |a, b| a + b).wait();
        assert_eq!(races, 1, "exactly one injection saw the other");
        let c = san::san_report();
        assert_eq!((c.uaf, c.oob, c.bad_frees), (0, 0, 0), "{c:?}");
        assert_eq!(upcxx::runtime_stats().san, c);
    });
}

fn blocked_then_counted(_: ()) -> u64 {
    upcxx::make_ready_future().wait(); // ready: not a violation
    upcxx::progress(); // re-entrant: violation -- analyze: allow(restricted-context): deliberate violation the smp count-mode test asserts the sanitizer counts
    upcxx::san_report().restricted
}

#[test]
fn smp_wait_in_callback_counted() {
    upcxx::run_spmd_default(2, || {
        san::set_config(cfg(SanMode::Count));
        upcxx::barrier(); // handler must run with Count installed
        if upcxx::rank_me() == 0 {
            let v = upcxx::rpc(1, blocked_then_counted, ()).wait();
            assert_eq!(v, 1);
        }
        upcxx::barrier();
    });
}

#[test]
fn smp_mixed_workload_clean_under_panic_mode() {
    // True-negative: the bread-and-butter idioms of the existing tests run
    // with the sanitizer in Panic mode — any false positive dies loudly.
    upcxx::run_spmd_default(4, || {
        san::set_config(cfg(SanMode::Panic));
        upcxx::barrier();
        let me = upcxx::rank_me();
        let n = upcxx::rank_n();
        let slot = upcxx::allocate::<u64>(4);
        slot.local_write(&[me as u64; 4]);
        let slots = upcxx::allgather(slot);
        upcxx::rput(&[me as u64 * 10; 4], slots[(me + 1) % n]).wait();
        upcxx::barrier();
        let got = upcxx::rget(slot, 4).wait();
        assert_eq!(got, vec![((me + n - 1) % n) as u64 * 10; 4]);
        // Atomics: all ranks bump rank 0's counter, then read it back.
        let ctr = upcxx::allocate::<u64>(1);
        ctr.local_write(&[0]);
        let ctrs = upcxx::allgather(ctr);
        upcxx::barrier();
        let ad = upcxx::AtomicDomain::all();
        ad.fetch_add(ctrs[0], me as u64).wait();
        upcxx::barrier();
        assert_eq!(ad.load(ctrs[0]).wait(), (0..n as u64).sum::<u64>());
        upcxx::barrier();
        upcxx::deallocate(slot);
        upcxx::barrier();
        let c = san::san_report();
        assert_eq!(c, upcxx::SanCounters::default(), "rank {me}: {c:?}");
    });
}
