//! The per-rank runtime context and progress engine (§III of the paper).
//!
//! Every rank owns a [`RankCtx`] holding its shared-segment allocator, the
//! three progress queues, the RPC reply table, distributed-object registry
//! and collective state. User code reaches it through a thread-local — the
//! same discipline as UPC++'s per-persona state.
//!
//! ## The three queues
//!
//! The paper's Progress Engine keeps operations in three unordered queues:
//!
//! * **defQ** — operations injected but not yet handed to GASNet-EX. Our
//!   [`RankCtx::def_q`] holds [`DefOp`]s; *internal progress* (which runs at
//!   every communication call and at explicit [`progress`]) drains it into
//!   the conduit.
//! * **actQ** — operations the conduit owns. We track the count
//!   ([`RankCtx::active_ops`]); completion is signaled by conduit callbacks.
//! * **compQ** — completed operations whose user-visible effects (future
//!   fulfillment, `.then` callbacks, incoming RPC bodies) are pending. Our
//!   [`RankCtx::comp_q`] is drained **only by user-level progress**
//!   ([`progress`] or a blocking `wait`), reproducing the paper's
//!   *attentiveness* requirement: a rank that computes without calling
//!   progress stalls its incoming RPCs (physically true on the smp conduit;
//!   modeled through CPU-clock serialization on the sim conduit).

use crate::future::Future;
use crate::ser::Reader;
use crate::trace::{Phase, TraceEvent, TraceState, TraceTag};
use gasnet::{sim::SimWorld, Conduit, Rank};
use netsim::config::SwCosts;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// Which conduit this rank runs over.
///
/// Real-time conduits (smp's thread-per-rank, proc's process-per-rank, any
/// future transport) plug in through the [`gasnet::Conduit`] trait object —
/// the runtime has no conduit-specific branches beyond `Cond` vs `Sim`. The
/// sim conduit keeps its bespoke virtual-time API because its completion
/// callbacks re-enter the engine under simulated time and can never block.
pub(crate) enum Backend {
    /// A real transport behind the unified [`gasnet::Conduit`] trait.
    Cond(Arc<dyn Conduit>),
    /// Discrete-event simulation; virtual time.
    Sim(SimWorld),
}

/// A deferred operation (an entry of the paper's defQ).
pub(crate) enum DefOp {
    /// One-sided put of `bytes` into `target`'s segment.
    Put {
        target: Rank,
        dst_off: usize,
        bytes: Vec<u8>,
        done: Box<dyn FnOnce()>,
    },
    /// One-sided get of `len` bytes from `target`'s segment.
    Get {
        target: Rank,
        src_off: usize,
        len: usize,
        done: Box<dyn FnOnce(Vec<u8>)>,
    },
    /// Active message (RPC, RPC reply, or an internal collective flag) in
    /// the conduit's representation — a closure on in-process conduits, a
    /// serialized frame on the proc conduit. `wire_bytes` is the modeled
    /// payload size.
    Am {
        target: Rank,
        wire_bytes: usize,
        am: gasnet::Am,
    },
    /// An aggregated batch of active messages for one target (built by
    /// `crate::agg`): members execute in order at the target, but the whole
    /// batch costs **one** conduit injection — one inbox push on smp, one
    /// socket message on proc, one modeled transfer (single NIC gap +
    /// dispatch) on sim. `wire_bytes` is the accounted batch size (one
    /// header + per-record framing + payloads).
    AmBatch {
        target: Rank,
        wire_bytes: usize,
        batch: gasnet::Batch,
    },
    /// Remote atomic operation on a u64 in `target`'s segment.
    Amo {
        target: Rank,
        off: usize,
        op: gasnet::sim::AmoOp,
        operand: u64,
        compare: u64,
        done: Box<dyn FnOnce(u64)>,
    },
}

/// A defQ entry: the deferred operation plus its trace identity and the
/// injection timestamp (0 when tracing is off) for the time-in-queue
/// histogram.
pub(crate) struct Queued {
    pub(crate) tag: TraceTag,
    pub(crate) t_inject: u64,
    pub(crate) op: DefOp,
}

/// A compQ entry's user-visible effect. Almost everything is a parked
/// closure; the eager RMA fast path gets a dedicated variant so completing a
/// put (or `rget_into`) costs no closure allocation at all.
pub(crate) enum CompEff {
    /// Run a parked closure (the general case).
    Thunk(Box<dyn FnOnce()>),
    /// Eager-RMA completion: fulfill one anonymous dependency on `p` after
    /// marking `(me, op)` against `target` complete in the sanitizer (when
    /// it was enabled at injection). The data itself already moved at
    /// injection time — this record is only the attentiveness gate.
    EagerRma {
        p: crate::future::Promise<()>,
        target: Rank,
        op: u64,
        san: bool,
    },
}

/// A compQ entry: the user-visible effect plus its trace identity and the
/// delivery timestamp (0 when tracing is off).
pub(crate) struct CompItem {
    tag: TraceTag,
    t_deliver: u64,
    eff: CompEff,
}

/// A parked continuation.
pub(crate) type Thunk = Box<dyn FnOnce()>;

/// A parked RPC-reply continuation (receives the reply payload).
pub(crate) type ReplyHandler = Box<dyn FnOnce(Reader)>;

/// Per-rank collective-operation state (dissemination barrier, broadcast and
/// reduction slots). See `coll.rs` for the algorithms.
#[derive(Default)]
pub(crate) struct CollState {
    /// Next barrier epoch per team id.
    pub barrier_epoch: HashMap<u64, u64>,
    /// Arrived dissemination flags: (team, epoch, round) -> ().
    pub barrier_flags: HashMap<(u64, u64, u32), ()>,
    /// Parked barrier continuations keyed like the flags.
    pub barrier_waiters: HashMap<(u64, u64, u32), Thunk>,
    /// Next broadcast/reduce sequence number per team id.
    pub coll_seq: HashMap<u64, u64>,
    /// Broadcast slots: (team, seq) -> slot.
    pub bcast: HashMap<(u64, u64), BcastSlot>,
    /// Reduction slots: (team, seq) -> slot.
    pub reduce: HashMap<(u64, u64), ReduceSlot>,
}

/// In-flight broadcast state on one rank.
#[derive(Default)]
pub(crate) struct BcastSlot {
    /// Serialized payload, once known.
    pub value: Option<Vec<u8>>,
    /// Local collective call's continuation (fulfills the caller's promise).
    pub waiter: Option<Box<dyn FnOnce(Vec<u8>)>>,
}

/// In-flight reduction state on one rank.
pub(crate) struct ReduceSlot {
    /// Combined partial value (type-erased).
    pub partial: Option<Box<dyn Any>>,
    /// Contributions still expected from tree children.
    pub pending_children: usize,
    /// Pending incoming child payloads that arrived before the local call
    /// (we cannot combine them until the local call supplies the combine fn).
    pub early: Vec<Vec<u8>>,
    /// Local call's continuation: combines + forwards + maybe fulfills.
    pub on_child: Option<Rc<dyn Fn(Vec<u8>)>>,
}

/// Raw runtime counters. Snapshot through [`crate::trace::runtime_stats`];
/// the counters themselves are crate-plumbing.
#[derive(Default)]
pub struct CtxStats {
    /// rput/rget operations injected.
    pub rma_ops: Cell<u64>,
    /// RPCs injected (including `rpc_ff`).
    pub rpcs: Cell<u64>,
    /// Bytes serialized into outgoing messages.
    pub bytes_out: Cell<u64>,
    /// Bytes received: rget data, incoming RPC args, incoming replies.
    pub bytes_in: Cell<u64>,
    /// Items executed from compQ by user progress.
    pub comp_items: Cell<u64>,
    /// Messages routed through the aggregation layer's buffers.
    pub agg_msgs: Cell<u64>,
    /// Aggregated batches shipped (each one wire message carrying >1 payload).
    pub agg_batches: Cell<u64>,
    /// defQ depth high-water mark (tracked only while tracing is enabled,
    /// like every other per-event gauge — the disabled path stays at one
    /// branch per hook).
    pub def_q_hwm: Cell<u64>,
    /// Conduit-owned (actQ) operation-count high-water mark (tracing only).
    pub act_q_hwm: Cell<u64>,
    /// compQ depth high-water mark (tracing only).
    pub comp_q_hwm: Cell<u64>,
    /// Attentiveness: largest gap between user-progress calls (ps; tracked
    /// only while tracing is enabled).
    pub max_progress_gap_ps: Cell<u64>,
    /// Timestamp of the previous user-progress call (ps; tracing only).
    pub last_progress_ps: Cell<u64>,
    /// compQ chunks drained by user progress. Each chunk is at most 64
    /// items — the bound that keeps one progress call from running
    /// arbitrarily long on a flooded rank (smp conduit).
    pub comp_chunks: Cell<u64>,
    /// Attentiveness of the *progress persona*: largest gap between the
    /// progress thread's conduit-poll iterations (ps; tracked only while
    /// tracing is enabled and the thread is running; 0 otherwise).
    pub max_progress_gap_prog_ps: Cell<u64>,
    /// Timestamp of the progress persona's previous poll (ps).
    pub last_progress_prog_ps: Cell<u64>,
}

/// The per-rank runtime state. One per rank; reached via the thread-local.
pub struct RankCtx {
    pub(crate) backend: Backend,
    pub(crate) me: Rank,
    pub(crate) n: usize,
    pub(crate) alloc: RefCell<crate::alloc::SegAlloc>,
    pub(crate) def_q: RefCell<VecDeque<Queued>>,
    pub(crate) comp_q: RefCell<VecDeque<CompItem>>,
    pub(crate) active_ops: Cell<usize>,
    /// Next per-origin span id. Declared here, **allocated only by**
    /// `crate::trace::new_span_id` (lint-enforced) so span identity, RPC
    /// reply matching and sanitizer access records share one sequence.
    pub(crate) next_op: Cell<u64>,
    /// The span of the delivered item currently executing on this rank
    /// (`(origin, op)`; `(0, 0)` = none). Maintained by
    /// `crate::trace::SpanGuard` around RPC/reply/system-AM handlers; read
    /// by `crate::trace::new_tag` to record causal parentage.
    pub(crate) cur_span: Cell<(u32, u64)>,
    pub(crate) reply_tbl: RefCell<HashMap<u64, ReplyHandler>>,
    pub(crate) dist_next: Cell<u64>,
    pub(crate) dist_tbl: RefCell<HashMap<u64, Rc<dyn Any>>>,
    /// Continuations parked until a dist-object id is registered (RPCs that
    /// raced ahead of local construction; UPC++ queues these too).
    pub(crate) dist_waiters: RefCell<HashMap<u64, Vec<Thunk>>>,
    pub(crate) coll: RefCell<CollState>,
    pub(crate) rank_state: RefCell<HashMap<std::any::TypeId, Rc<dyn Any>>>,
    /// Per-target RPC aggregation buffers (see `crate::agg`).
    pub(crate) agg: RefCell<crate::agg::AggState>,
    /// Statistics counters.
    pub stats: CtxStats,
    /// Always-on metrics registry and flight recorder (see `crate::metrics`).
    /// Counter cells follow the same single-writer engine-lock discipline as
    /// [`CtxStats`]; the flight ring inside is relaxed atomics so the panic
    /// hook can read it from any thread.
    pub(crate) metrics: crate::metrics::Metrics,
    /// Event-trace ring buffer and in-queue histograms (see `crate::trace`).
    pub(crate) trace: RefCell<TraceState>,
    /// Fast gate every trace hook checks: the *only* cost tracing adds to
    /// the hot path while disabled.
    pub(crate) trace_on: Cell<bool>,
    /// Whether contiguous RMA takes the eager fast path (smp only; always
    /// `false` under sim so modeled timings never depend on a host knob).
    /// Seeded from `UPCXX_EAGER` (unset/`1` = on, `0` = off); togglable per
    /// rank via `crate::rma::set_eager` for A/B measurement.
    pub(crate) eager: Cell<bool>,
    /// Sanitizer state: config, counters, retained reports (see
    /// `crate::san`).
    pub(crate) san: RefCell<crate::san::SanCtx>,
    /// Fast gate every sanitizer hook checks (same discipline as
    /// `trace_on`): the only cost the sanitizer adds while disabled.
    pub(crate) san_on: Cell<bool>,
    /// Restricted-context depth: >0 while an RPC/reply/system-AM callback
    /// executes on this rank (maintained unconditionally; *checked* only
    /// when the sanitizer is enabled).
    pub(crate) san_depth: Cell<u32>,
    /// Handle to the world-shared shadow state.
    pub(crate) san_shared: crate::san::SanShared,
    /// Whether the sanitizer's shadow state actually mirrors *remote*
    /// ranks. True on in-process conduits (one shared `SanWorld`); false on
    /// the proc conduit, where each process sees only its own allocations —
    /// remote-target shadow checks would false-positive and are skipped
    /// (local checks, restricted-context and vector clocks still run).
    pub(crate) san_remote: bool,
    /// Cached `am_mode() == Frames`: AMs must ship as serialized frames
    /// (proc) rather than boxed closures (smp/sim).
    pub(crate) frames: bool,
    /// Gated re-entrant engine lock serializing the master and progress
    /// personas over this context (see `crate::persona`). Skipped entirely
    /// (one predicted branch) while `progress_on` is false.
    pub(crate) engine: crate::persona::EngineLock,
    /// Lock-free handoff queue of thunks the progress persona parked for
    /// the master persona (reply handlers, collective continuations —
    /// everything that fulfills user-visible futures).
    pub(crate) handoff: crate::persona::Handoff,
    /// Fast gate: `true` while the opt-in progress thread is running.
    pub(crate) progress_on: AtomicBool,
    /// The running progress thread, if any (master-persona state).
    pub(crate) progress_thread: RefCell<Option<crate::persona::ProgressThread>>,
}

// SAFETY: `RankCtx` is shared between exactly two threads — the rank's
// master thread and its opt-in progress thread (`crate::persona`). Every
// access to its interior-mutable state (`RefCell`s / `Cell`s) from either
// thread happens while holding the per-rank engine lock whenever the
// progress thread is enabled (`progress_on`); while it is disabled (the
// default) only the master thread touches the context, exactly as before
// this type was `Send`/`Sync`. The engine lock's Acquire/Release pair
// provides the happens-before edge for all non-atomic state, including the
// smp conduit inbox stash and the sanitizer's shadow handles.
unsafe impl Send for RankCtx {}
unsafe impl Sync for RankCtx {}

thread_local! {
    static CTX: RefCell<Option<Arc<RankCtx>>> = const { RefCell::new(None) };
}

/// The calling thread's (or simulated rank's) context. Panics outside a
/// UPC++ world — i.e. outside `run_spmd` rank mains or sim drivers.
pub(crate) fn ctx() -> Arc<RankCtx> {
    try_ctx().expect("no upcxx context on this thread: call inside run_spmd / SimRuntime drivers")
}

/// Like [`ctx`] but returns `None` outside a world.
pub(crate) fn try_ctx() -> Option<Arc<RankCtx>> {
    CTX.with(|c| c.borrow().clone())
}

/// Panic-proof variant of [`try_ctx`] for the flight-recorder panic hook:
/// returns `None` instead of panicking when the thread-local is mid-teardown
/// or its slot is already borrowed (a `with_ctx` swap in progress). A plain
/// `try_ctx` there could double-panic inside the hook and abort before the
/// flight dump is written.
pub(crate) fn panic_ctx() -> Option<Arc<RankCtx>> {
    CTX.try_with(|c| c.try_borrow().ok().and_then(|s| s.clone()))
        .ok()
        .flatten()
}

/// Install `c` for the duration of `f` (restores the previous context after;
/// the sim conduit nests these when ranks trigger one another synchronously).
pub(crate) fn with_ctx(c: Arc<RankCtx>, f: impl FnOnce()) {
    let prev = CTX.with(|slot| slot.borrow_mut().replace(c));
    f();
    CTX.with(|slot| *slot.borrow_mut() = prev);
}

impl RankCtx {
    /// Build a rank context over a real-transport conduit. `cfg` is the
    /// typed knob set (see [`crate::config::Config`]) — the single place
    /// `UPCXX_*` env vars are interpreted.
    pub(crate) fn new_cond(
        h: Arc<dyn Conduit>,
        san_shared: crate::san::SanShared,
        cfg: &crate::config::Config,
    ) -> Arc<RankCtx> {
        let seg = h.seg_size();
        let san_cfg = cfg.san;
        let mut san = crate::san::SanCtx::new();
        san.cfg = san_cfg;
        let frames = h.am_mode() == gasnet::AmMode::Frames;
        Arc::new(RankCtx {
            me: h.rank_me(),
            n: h.rank_n(),
            backend: Backend::Cond(h),
            alloc: RefCell::new(crate::alloc::SegAlloc::new(seg)),
            def_q: RefCell::new(VecDeque::new()),
            comp_q: RefCell::new(VecDeque::new()),
            active_ops: Cell::new(0),
            next_op: Cell::new(1),
            cur_span: Cell::new((0, 0)),
            reply_tbl: RefCell::new(HashMap::new()),
            dist_next: Cell::new(0),
            dist_tbl: RefCell::new(HashMap::new()),
            dist_waiters: RefCell::new(HashMap::new()),
            coll: RefCell::new(CollState::default()),
            rank_state: RefCell::new(HashMap::new()),
            agg: RefCell::new(crate::agg::AggState::new()),
            stats: CtxStats::default(),
            metrics: crate::metrics::Metrics::new(),
            trace: RefCell::new(TraceState::new()),
            trace_on: Cell::new(false),
            eager: Cell::new(cfg.eager),
            san_on: Cell::new(san_cfg.enabled),
            san: RefCell::new(san),
            san_depth: Cell::new(0),
            san_shared,
            // Shadow state mirrors remote ranks only when every rank shares
            // this process's SanWorld — i.e. on in-process conduits.
            san_remote: !frames,
            frames,
            engine: crate::persona::EngineLock::new(),
            handoff: crate::persona::Handoff::new(),
            progress_on: AtomicBool::new(false),
            progress_thread: RefCell::new(None),
        })
    }

    pub(crate) fn new_sim(
        w: SimWorld,
        me: Rank,
        san_shared: crate::san::SanShared,
    ) -> Arc<RankCtx> {
        let seg = w.seg_size();
        let n = w.rank_n();
        let san_cfg = crate::san::env_config();
        let mut san = crate::san::SanCtx::new();
        san.cfg = san_cfg;
        Arc::new(RankCtx {
            me,
            n,
            backend: Backend::Sim(w),
            alloc: RefCell::new(crate::alloc::SegAlloc::new(seg)),
            def_q: RefCell::new(VecDeque::new()),
            comp_q: RefCell::new(VecDeque::new()),
            active_ops: Cell::new(0),
            next_op: Cell::new(1),
            cur_span: Cell::new((0, 0)),
            reply_tbl: RefCell::new(HashMap::new()),
            dist_next: Cell::new(0),
            dist_tbl: RefCell::new(HashMap::new()),
            dist_waiters: RefCell::new(HashMap::new()),
            coll: RefCell::new(CollState::default()),
            rank_state: RefCell::new(HashMap::new()),
            agg: RefCell::new(crate::agg::AggState::new()),
            stats: CtxStats::default(),
            metrics: crate::metrics::Metrics::new(),
            trace: RefCell::new(TraceState::new()),
            trace_on: Cell::new(false),
            eager: Cell::new(false),
            san_on: Cell::new(san_cfg.enabled),
            san: RefCell::new(san),
            san_depth: Cell::new(0),
            san_shared,
            san_remote: true,
            frames: false,
            engine: crate::persona::EngineLock::new(),
            handoff: crate::persona::Handoff::new(),
            progress_on: AtomicBool::new(false),
            progress_thread: RefCell::new(None),
        })
    }

    /// This rank's id.
    pub fn rank_me(&self) -> Rank {
        self.me
    }
    /// World size.
    pub fn rank_n(&self) -> usize {
        self.n
    }

    /// Software-cost table when running simulated; `None` on real conduits
    /// (real costs are real there).
    pub(crate) fn sw(&self) -> Option<SwCosts> {
        match &self.backend {
            Backend::Cond(_) => None,
            Backend::Sim(w) => Some(w.config().sw.clone()),
        }
    }

    /// Charge serialization cost for `bytes` (no-op on smp — the copy itself
    /// is the cost there).
    pub(crate) fn charge_ser(&self, bytes: usize) {
        if let Backend::Sim(w) = &self.backend {
            let per = w.config().sw.ser_per_byte;
            w.charge(self.me, per * bytes as u64);
        }
    }

    /// The trace clock: virtual picoseconds of this rank's local view of
    /// time under sim (monotone per rank), wall picoseconds since the
    /// world's launch epoch on smp (one epoch per world, shared by all
    /// ranks — see `smp::RankHandle::wall_ps`). Called by the tracer's
    /// (gated) hooks and by the always-on flight recorder's injection stamp.
    pub(crate) fn now_ps(&self) -> u64 {
        match &self.backend {
            Backend::Cond(h) => h.wall_ps(),
            Backend::Sim(w) => w.rank_now(self.me).as_ps(),
        }
    }

    /// Record one trace event for `tag` with this rank as origin. Returns
    /// the timestamp, or 0 when tracing is disabled (the single-branch gate
    /// every hook pays).
    #[inline]
    pub(crate) fn emit(&self, phase: Phase, tag: TraceTag) -> u64 {
        if tag.tid == 0 || !self.trace_on.get() {
            return 0;
        }
        self.emit_slow(phase, tag, self.me as u32, crate::trace::FlushReason::None)
    }

    /// Record one trace event with an explicit origin rank (target-side
    /// events of RPC-family ops) and/or flush reason (aggregation events).
    #[inline]
    pub(crate) fn emit_from(
        &self,
        phase: Phase,
        tag: TraceTag,
        origin: u32,
        reason: crate::trace::FlushReason,
    ) -> u64 {
        if tag.tid == 0 || !self.trace_on.get() {
            return 0;
        }
        self.emit_slow(phase, tag, origin, reason)
    }

    /// Out-of-line so the disabled-path branch in `emit`/`emit_from` stays
    /// a compact forward jump in the progress engine's hot code.
    #[cold]
    #[inline(never)]
    fn emit_slow(
        &self,
        phase: Phase,
        tag: TraceTag,
        origin: u32,
        reason: crate::trace::FlushReason,
    ) -> u64 {
        let ts = self.now_ps();
        self.trace.borrow_mut().push(TraceEvent {
            rank: self.me as u32,
            origin,
            op: tag.tid,
            kind: tag.kind,
            phase,
            peer: tag.peer,
            bytes: tag.bytes,
            reason,
            ts_ps: ts,
            parent_origin: tag.parent_origin,
            parent_op: tag.parent_op,
            persona: crate::persona::current_id(),
        });
        ts
    }

    /// Build the trace identity for a new operation and emit its `Inject`
    /// event. Ids are allocated unconditionally — an op's identity must
    /// survive the wire so a *traced* rank can record deliveries from ranks
    /// that are not tracing — but all *trace* emission gates on the
    /// recording rank's `trace_on`. The always-on metrics layer records the
    /// injection too (flight ring + payload histogram, a few relaxed/cell
    /// writes — see `crate::metrics`); when tracing is disabled that plus
    /// one branch is the whole injection hook.
    #[inline]
    pub(crate) fn op_tag(&self, kind: crate::trace::OpKind, peer: u32, bytes: u32) -> TraceTag {
        let tag = crate::trace::new_tag(self, kind, peer, bytes);
        crate::metrics::on_inject(self, tag);
        if self.trace_on.get() {
            self.emit_inject(tag);
        }
        tag
    }

    /// Traced arm of [`Self::op_tag`].
    #[cold]
    #[inline(never)]
    fn emit_inject(&self, tag: TraceTag) {
        self.emit_slow(
            Phase::Inject,
            tag,
            self.me as u32,
            crate::trace::FlushReason::None,
        );
    }

    /// Traced arm of [`Self::issue`]: `Conduit` event, defQ-wait histogram
    /// sample, actQ high-water mark.
    #[cold]
    #[inline(never)]
    fn issue_traced(&self, tag: TraceTag, t_inject: u64) {
        let ts = self.emit_slow(
            Phase::Conduit,
            tag,
            self.me as u32,
            crate::trace::FlushReason::None,
        );
        self.trace
            .borrow_mut()
            .def_q_wait
            .record(ts.saturating_sub(t_inject));
        let act = self.active_ops.get() as u64;
        if act > self.stats.act_q_hwm.get() {
            self.stats.act_q_hwm.set(act);
        }
    }

    /// Enqueue an operation in defQ and run internal progress (every
    /// communication call is an internal-progress opportunity — §III).
    /// The caller has already emitted the op's `Inject` event.
    ///
    /// The engine is monomorphized over traced-ness: one `trace_on` load
    /// here selects either the traced instantiation of the inject → issue →
    /// complete chain or an untraced one whose machine code carries no trace
    /// state at all — the disabled hot path pays exactly this one branch.
    pub(crate) fn inject(&self, op: DefOp, tag: TraceTag) {
        if self.trace_on.get() {
            self.inject_go::<true>(op, tag);
        } else {
            self.inject_go::<false>(op, tag);
        }
    }

    fn inject_go<const TRACED: bool>(&self, op: DefOp, tag: TraceTag) {
        if TRACED && tag.tid != 0 {
            self.inject_traced(op, tag);
        } else {
            self.def_q.borrow_mut().push_back(Queued {
                tag,
                t_inject: 0,
                op,
            });
        }
        self.progress_internal_go::<TRACED>();
    }

    /// Traced arm of [`Self::inject`], out-of-line so the disabled path stays
    /// a bare queue push.
    #[cold]
    #[inline(never)]
    fn inject_traced(&self, op: DefOp, tag: TraceTag) {
        let t_inject = self.now_ps();
        let mut q = self.def_q.borrow_mut();
        q.push_back(Queued { tag, t_inject, op });
        let d = q.len() as u64;
        if d > self.stats.def_q_hwm.get() {
            self.stats.def_q_hwm.set(d);
        }
    }

    /// Internal progress: drain defQ into the conduit (defQ -> actQ).
    pub(crate) fn progress_internal(&self) {
        if self.trace_on.get() {
            self.progress_internal_go::<true>();
        } else {
            self.progress_internal_go::<false>();
        }
    }

    fn progress_internal_go<const TRACED: bool>(&self) {
        loop {
            let op = self.def_q.borrow_mut().pop_front();
            let Some(op) = op else { break };
            self.issue::<TRACED>(op);
        }
    }

    /// Hand one operation to the conduit. In the untraced instantiation the
    /// tag fields are dead: the compiler drops every trace read from the
    /// conduit arms, restoring the pre-trace code shape.
    fn issue<const TRACED: bool>(&self, q: Queued) {
        let Queued { tag, t_inject, op } = q;
        self.active_ops.set(self.active_ops.get() + 1);
        if TRACED && tag.tid != 0 {
            self.issue_traced(tag, t_inject);
        }
        match (&self.backend, op) {
            (
                Backend::Cond(h),
                DefOp::Put {
                    target,
                    dst_off,
                    bytes,
                    done,
                },
            ) => {
                // Shared memory: the one-sided copy completes synchronously;
                // user-visible completion still goes through compQ. The
                // staging buffer came from the serialization pool (deferred
                // path) and is returned the moment the copy lands.
                h.put_bytes(target, dst_off, &bytes);
                crate::ser::recycle_buf(bytes);
                self.complete::<TRACED>(tag, done);
            }
            (
                Backend::Cond(h),
                DefOp::Get {
                    target,
                    src_off,
                    len,
                    done,
                },
            ) => {
                let mut buf = crate::ser::pooled_filled(len);
                h.get_bytes(target, src_off, &mut buf);
                self.stats
                    .bytes_in
                    .set(self.stats.bytes_in.get() + len as u64);
                self.complete::<TRACED>(tag, Box::new(move || done(buf)));
            }
            (Backend::Cond(h), DefOp::Am { target, am, .. }) => {
                h.send_am(target, am);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (Backend::Cond(h), DefOp::AmBatch { target, batch, .. }) => {
                h.send_am_batch(target, batch);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Cond(h),
                DefOp::Amo {
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    done,
                },
            ) => {
                use gasnet::sim::AmoOp::*;
                let old = match op {
                    FetchAdd => h.atomic_fetch_add_u64(target, off, operand),
                    Load => h.atomic_load_u64(target, off),
                    Store => {
                        let old = h.atomic_load_u64(target, off);
                        h.atomic_store_u64(target, off, operand);
                        old
                    }
                    CompareExchange => h.atomic_cas_u64(target, off, compare, operand),
                };
                self.complete::<TRACED>(tag, Box::new(move || done(old)));
            }
            (
                Backend::Sim(w),
                DefOp::Put {
                    target,
                    dst_off,
                    bytes,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                let me = self.me;
                // Completion lands in compQ and drains at the next progress
                // (delivery events on the sim conduit run with our ctx).
                w.put(
                    me,
                    target,
                    dst_off,
                    bytes,
                    o,
                    Box::new(move || {
                        let c = ctx();
                        c.complete::<TRACED>(tag, done);
                        c.progress_user();
                    }),
                );
            }
            (
                Backend::Sim(w),
                DefOp::Get {
                    target,
                    src_off,
                    len,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                w.get(
                    self.me,
                    target,
                    src_off,
                    len,
                    o,
                    Box::new(move |data| {
                        let c = ctx();
                        c.stats
                            .bytes_in
                            .set(c.stats.bytes_in.get() + data.len() as u64);
                        c.complete::<TRACED>(tag, Box::new(move || done(data)));
                        c.progress_user();
                    }),
                );
            }
            (
                Backend::Sim(w),
                DefOp::Am {
                    target,
                    wire_bytes,
                    am,
                },
            ) => {
                let gasnet::Am::Item(item) = am else {
                    unreachable!("sim is an in-process conduit; AMs travel as items")
                };
                let sw = &w.config().sw;
                let o = sw.gex_am_inject + sw.upcxx_op_overhead;
                w.am(self.me, target, wire_bytes, o, item);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Sim(w),
                DefOp::AmBatch {
                    target,
                    wire_bytes,
                    batch,
                },
            ) => {
                // One injection overhead and one modeled transfer for the
                // whole batch — the per-message gap amortization that makes
                // aggregation pay off on the fine-grained path.
                let gasnet::Batch::Items(items) = batch else {
                    unreachable!("sim is an in-process conduit; AMs travel as items")
                };
                let sw = &w.config().sw;
                let o = sw.gex_am_inject + sw.upcxx_op_overhead;
                let items: Vec<gasnet::sim::LocalItem> = items
                    .into_iter()
                    .map(|i| -> gasnet::sim::LocalItem { i })
                    .collect();
                w.am_batch(self.me, target, wire_bytes, o, items);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Sim(w),
                DefOp::Amo {
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                w.amo(
                    self.me,
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    o,
                    Box::new(move |old| {
                        let c = ctx();
                        c.complete::<TRACED>(tag, Box::new(move || done(old)));
                        c.progress_user();
                    }),
                );
            }
        }
    }

    /// Move a finished operation's user-visible effect to compQ
    /// (actQ -> compQ transition), emitting its `Deliver` event. `TRACED` is
    /// sampled where the op entered the engine (sim completion callbacks run
    /// later and keep the instantiation they were issued under).
    /// Force-inlined: the seed inlined this push into the conduit arms of
    /// [`Self::issue`], and an out-of-line call here is measurable on the
    /// smp fast path.
    #[inline(always)]
    fn complete<const TRACED: bool>(&self, tag: TraceTag, eff: Box<dyn FnOnce()>) {
        self.active_ops.set(self.active_ops.get().saturating_sub(1));
        if TRACED && tag.tid != 0 {
            self.complete_traced(tag, CompEff::Thunk(eff));
        } else {
            self.comp_q.borrow_mut().push_back(CompItem {
                tag,
                t_deliver: 0,
                eff: CompEff::Thunk(eff),
            });
        }
    }

    /// Traced arm of [`Self::complete`]: `Deliver` event plus the compQ
    /// high-water mark.
    #[cold]
    #[inline(never)]
    fn complete_traced(&self, tag: TraceTag, eff: CompEff) {
        let t_deliver = self.emit_slow(
            Phase::Deliver,
            tag,
            self.me as u32,
            crate::trace::FlushReason::None,
        );
        let mut q = self.comp_q.borrow_mut();
        q.push_back(CompItem {
            tag,
            t_deliver,
            eff,
        });
        let d = q.len() as u64;
        if d > self.stats.comp_q_hwm.get() {
            self.stats.comp_q_hwm.set(d);
        }
    }

    /// compQ entry for an operation whose data already moved at injection
    /// (the eager RMA fast path): no defQ traversal, no actQ epoch — but
    /// user-visible completion still waits for user-level progress, so the
    /// paper's attentiveness semantics hold exactly. The traced arm emits
    /// the `Conduit` and `Deliver` phases here, telescoped onto the
    /// injection timestamp, and records a truthful zero defQ-wait sample so
    /// eager and deferred runs stay comparable histogram-for-histogram.
    #[inline]
    pub(crate) fn eager_complete(&self, tag: TraceTag, eff: CompEff) {
        if self.trace_on.get() && tag.tid != 0 {
            self.eager_complete_traced(tag, eff);
        } else {
            self.comp_q.borrow_mut().push_back(CompItem {
                tag,
                t_deliver: 0,
                eff,
            });
        }
    }

    /// Traced arm of [`Self::eager_complete`].
    #[cold]
    #[inline(never)]
    fn eager_complete_traced(&self, tag: TraceTag, eff: CompEff) {
        self.emit_slow(
            Phase::Conduit,
            tag,
            self.me as u32,
            crate::trace::FlushReason::None,
        );
        // Zero time spent deferred — by construction, not by omission.
        self.trace.borrow_mut().def_q_wait.record(0);
        self.complete_traced(tag, eff);
    }

    /// Track the gap between consecutive user-progress calls — the paper's
    /// *attentiveness* concern (§VII), tracked only while tracing is on.
    #[cold]
    #[inline(never)]
    fn note_progress_gap(&self) {
        let ts = self.now_ps();
        let last = self.stats.last_progress_ps.get();
        if last != 0 {
            let gap = ts.saturating_sub(last);
            if gap > self.stats.max_progress_gap_ps.get() {
                self.stats.max_progress_gap_ps.set(gap);
            }
        }
        self.stats.last_progress_ps.set(ts);
    }

    /// Progress-persona twin of [`Self::note_progress_gap`]: the gap between
    /// the progress thread's poll iterations (tracing only; called from the
    /// progress loop while it holds the engine lock).
    #[cold]
    #[inline(never)]
    pub(crate) fn note_progress_gap_prog(&self) {
        let ts = self.now_ps();
        let last = self.stats.last_progress_prog_ps.get();
        if last != 0 {
            let gap = ts.saturating_sub(last);
            if gap > self.stats.max_progress_gap_prog_ps.get() {
                self.stats.max_progress_gap_prog_ps.set(gap);
            }
        }
        self.stats.last_progress_prog_ps.set(ts);
    }

    /// User-level progress: aggregation flush, internal progress, conduit
    /// poll (smp), handoff drain, compQ drain. This is the only place
    /// `.then` callbacks, future fulfillments and (on the master persona)
    /// incoming RPC bodies execute.
    pub(crate) fn progress_user(&self) {
        // Serialize against the opt-in progress persona. One predicted
        // branch when the thread is off; re-entrant, so nested progress from
        // inside drained effects is fine. Never held across a wait() spin —
        // each progress_user call acquires and releases it independently.
        let _g = crate::persona::lock(self);
        // Always-on metrics: one counter bump; the spacing probe and the
        // interval dump hide behind their own amortized/disabled gates.
        crate::metrics::on_progress(self);
        // One flag load covers the entry and exit stamps; the per-item check
        // in the drain loop below stays live because a drained effect may
        // itself reconfigure tracing.
        let tracing = self.trace_on.get();
        if tracing {
            self.note_progress_gap();
        }
        // Buffered aggregated payloads leave at every progress opportunity,
        // so a blocking wait can never deadlock on this rank's own buffers.
        crate::agg::flush_all_ctx(self, crate::trace::FlushReason::Progress);
        self.progress_internal();
        if let Backend::Cond(h) = &self.backend {
            // Incoming items run here (and enqueue any effects into compQ).
            // Frame-mode conduits hand serialized AMs to the decoder instead.
            h.poll(64, &mut crate::frame::exec_frame_sink);
        }
        // Thunks the progress persona parked for the master persona: reply
        // handlers and collective continuations that fulfill user-visible
        // futures run here, preserving single-threaded callback semantics.
        crate::persona::drain_handoff(self);
        let mut drained: u64 = 0;
        loop {
            // Bound the smp drain at one 64-item chunk per call so a flooded
            // rank cannot make a single user-progress call arbitrarily long
            // (`wait()` spins on progress, so blocked callers still drain
            // everything). The sim conduit drains fully: its per-delivery
            // progress calls would otherwise strand effects at quiescence.
            if drained == 64 && matches!(self.backend, Backend::Cond(_)) {
                break;
            }
            let item = self.comp_q.borrow_mut().pop_front();
            let Some(CompItem {
                tag,
                t_deliver,
                eff,
            }) = item
            else {
                break;
            };
            self.stats.comp_items.set(self.stats.comp_items.get() + 1);
            match eff {
                CompEff::Thunk(f) => f(),
                CompEff::EagerRma { p, target, op, san } => {
                    if san {
                        crate::san::mark_complete(self, target, op);
                    }
                    p.fulfill_anonymous(1);
                }
            }
            drained += 1;
            if tracing && tag.tid != 0 {
                self.drain_traced(tag, t_deliver);
            }
        }
        if drained > 0 {
            self.stats
                .comp_chunks
                .set(self.stats.comp_chunks.get() + drained.div_ceil(64));
        }
        // Handlers executed above may have buffered replies or forwards;
        // pushing them out now keeps round-trip latency at one progress call.
        crate::agg::flush_all_ctx(self, crate::trace::FlushReason::Progress);
        self.progress_internal();
        if tracing {
            self.stamp_progress_exit();
        }
    }

    /// Traced arm of the compQ drain loop: `Complete` event plus the
    /// compQ-wait histogram sample.
    #[cold]
    #[inline(never)]
    fn drain_traced(&self, tag: TraceTag, t_deliver: u64) {
        let ts = self.emit_slow(
            Phase::Complete,
            tag,
            self.me as u32,
            crate::trace::FlushReason::None,
        );
        // `t_deliver == 0` marks an item delivered before tracing was
        // enabled; its wait would be measured against the epoch, not the
        // delivery, so it is excluded from the histogram.
        if t_deliver != 0 {
            self.trace
                .borrow_mut()
                .comp_q_wait
                .record(ts.saturating_sub(t_deliver));
        }
    }

    /// Stamp the exit of a user-progress call, so compQ drain time is not
    /// itself counted as inattentiveness.
    #[cold]
    #[inline(never)]
    fn stamp_progress_exit(&self) {
        self.stats.last_progress_ps.set(self.now_ps());
    }
}

/// This rank's id within the world (paper: `upcxx::rank_me()`).
pub fn rank_me() -> Rank {
    ctx().me
}

/// Number of ranks in the world (paper: `upcxx::rank_n()`).
pub fn rank_n() -> usize {
    ctx().n
}

/// Make user-level progress: advance deferred operations and run completed
/// operations' callbacks and incoming RPCs (paper: `upcxx::progress()`).
pub fn progress() {
    let c = ctx();
    // Re-entrant user-level progress from inside an RPC/reply callback is
    // the paper's restricted-context violation; with the sanitizer on it is
    // diagnosed instead of silently re-entering the engine.
    if c.san_on.get() && c.san_depth.get() > 0 {
        crate::san::restricted_violation(&c, "progress()");
    }
    c.progress_user();
}

/// Spin on user progress until `pred` holds (the engine behind
/// `Future::wait`; the paper notes `wait` "is simply a spin loop around
/// progress"). Only the smp conduit supports blocking; under sim this
/// panics unless the predicate is already true. Public so layers above
/// (e.g. the v0.1 compatibility events) can block on their own conditions.
pub fn wait_until(pred: impl Fn() -> bool) {
    if pred() {
        return;
    }
    let c = ctx();
    // A blocking wait inside an RPC/reply callback can never be satisfied:
    // the callback *is* the progress engine's current item, so spinning on
    // progress here self-deadlocks (smp) or hangs the virtual timeline
    // (sim). The check sits after the fast path above on purpose — waiting
    // on an already-ready future inside a callback is harmless.
    if c.san_on.get() && c.san_depth.get() > 0 {
        crate::san::restricted_violation(&c, "wait()/barrier()");
    }
    match &c.backend {
        Backend::Cond(_) => {
            let mut spins: u32 = 0;
            while !pred() {
                c.progress_user();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(32) {
                    std::thread::yield_now();
                }
            }
        }
        Backend::Sim(_) => {
            // One chance: deferred work may satisfy the predicate without
            // needing virtual time to pass.
            c.progress_user();
            assert!(
                pred(),
                "blocking wait() cannot advance virtual time under the sim conduit; \
                 restructure the driver with then()-chains"
            );
        }
    }
}

/// Per-rank user state keyed by type: returns (creating on first use via
/// `init`) this rank's instance of `T`. This is how applications keep
/// "process-local" state (like the DHT's `local_map`) that RPC handlers can
/// reach — the moral equivalent of a C++ global in SPMD UPC++ programs,
/// made rank-correct under the sim conduit where many ranks share one thread.
pub fn rank_state<T: 'static>(init: impl FnOnce() -> T) -> Rc<T> {
    let c = ctx();
    // Handlers running on the progress persona reach rank state through this
    // same map; the engine lock serializes the registry's Rc bookkeeping.
    // (Ownership of the *values* follows the persona rules — DESIGN.md §4.)
    let _g = crate::persona::lock(&c);
    let key = std::any::TypeId::of::<T>();
    if let Some(v) = c.rank_state.borrow().get(&key) {
        return v
            .clone()
            .downcast::<T>()
            .expect("rank_state type confusion");
    }
    let v: Rc<T> = Rc::new(init());
    c.rank_state.borrow_mut().insert(key, v.clone());
    v
}

/// A `Future<()>` that is already complete — start of a conjunction chain
/// (paper Fig. 7 line 6: `f_conj = upcxx::make_future()`).
pub fn make_ready_future() -> Future<()> {
    crate::future::make_future(())
}
