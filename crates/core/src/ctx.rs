//! The per-rank runtime context and progress engine (§III of the paper).
//!
//! Every rank owns a [`RankCtx`] holding its shared-segment allocator, the
//! three progress queues, the RPC reply table, distributed-object registry
//! and collective state. User code reaches it through a thread-local — the
//! same discipline as UPC++'s per-persona state.
//!
//! ## The three queues
//!
//! The paper's Progress Engine keeps operations in three unordered queues:
//!
//! * **defQ** — operations injected but not yet handed to GASNet-EX. Our
//!   [`RankCtx::def_q`] holds [`DefOp`]s; *internal progress* (which runs at
//!   every communication call and at explicit [`progress`]) drains it into
//!   the conduit.
//! * **actQ** — operations the conduit owns. We track the count
//!   ([`RankCtx::active_ops`]); completion is signaled by conduit callbacks.
//! * **compQ** — completed operations whose user-visible effects (future
//!   fulfillment, `.then` callbacks, incoming RPC bodies) are pending. Our
//!   [`RankCtx::comp_q`] is drained **only by user-level progress**
//!   ([`progress`] or a blocking `wait`), reproducing the paper's
//!   *attentiveness* requirement: a rank that computes without calling
//!   progress stalls its incoming RPCs (physically true on the smp conduit;
//!   modeled through CPU-clock serialization on the sim conduit).

use crate::future::Future;
use crate::ser::Reader;
use gasnet::{sim::SimWorld, smp, Rank};
use netsim::config::SwCosts;
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Which conduit this rank runs over.
pub(crate) enum Backend {
    /// Real threads and memory; real time.
    Smp(smp::RankHandle),
    /// Discrete-event simulation; virtual time.
    Sim(SimWorld),
}

/// A deferred operation (an entry of the paper's defQ).
pub(crate) enum DefOp {
    /// One-sided put of `bytes` into `target`'s segment.
    Put {
        target: Rank,
        dst_off: usize,
        bytes: Vec<u8>,
        done: Box<dyn FnOnce()>,
    },
    /// One-sided get of `len` bytes from `target`'s segment.
    Get {
        target: Rank,
        src_off: usize,
        len: usize,
        done: Box<dyn FnOnce(Vec<u8>)>,
    },
    /// Active message carrying an executable item (RPC, RPC reply, or an
    /// internal collective flag). `wire_bytes` is the modeled payload size.
    Am {
        target: Rank,
        wire_bytes: usize,
        item: gasnet::Item,
    },
    /// An aggregated batch of active messages for one target (built by
    /// `crate::agg`): `items` execute in order at the target, but the whole
    /// batch costs **one** conduit injection — one inbox push on smp, one
    /// modeled transfer (single NIC gap + dispatch) on sim. `wire_bytes` is
    /// the accounted batch size (one header + per-record framing + payloads).
    AmBatch {
        target: Rank,
        wire_bytes: usize,
        items: Vec<gasnet::Item>,
    },
    /// Remote atomic operation on a u64 in `target`'s segment.
    Amo {
        target: Rank,
        off: usize,
        op: gasnet::sim::AmoOp,
        operand: u64,
        compare: u64,
        done: Box<dyn FnOnce(u64)>,
    },
}

/// A parked continuation.
pub(crate) type Thunk = Box<dyn FnOnce()>;

/// A parked RPC-reply continuation (receives the reply payload).
pub(crate) type ReplyHandler = Box<dyn FnOnce(Reader)>;

/// Per-rank collective-operation state (dissemination barrier, broadcast and
/// reduction slots). See `coll.rs` for the algorithms.
#[derive(Default)]
pub(crate) struct CollState {
    /// Next barrier epoch per team id.
    pub barrier_epoch: HashMap<u64, u64>,
    /// Arrived dissemination flags: (team, epoch, round) -> ().
    pub barrier_flags: HashMap<(u64, u64, u32), ()>,
    /// Parked barrier continuations keyed like the flags.
    pub barrier_waiters: HashMap<(u64, u64, u32), Thunk>,
    /// Next broadcast/reduce sequence number per team id.
    pub coll_seq: HashMap<u64, u64>,
    /// Broadcast slots: (team, seq) -> slot.
    pub bcast: HashMap<(u64, u64), BcastSlot>,
    /// Reduction slots: (team, seq) -> slot.
    pub reduce: HashMap<(u64, u64), ReduceSlot>,
}

/// In-flight broadcast state on one rank.
#[derive(Default)]
pub(crate) struct BcastSlot {
    /// Serialized payload, once known.
    pub value: Option<Vec<u8>>,
    /// Local collective call's continuation (fulfills the caller's promise).
    pub waiter: Option<Box<dyn FnOnce(Vec<u8>)>>,
}

/// In-flight reduction state on one rank.
pub(crate) struct ReduceSlot {
    /// Combined partial value (type-erased).
    pub partial: Option<Box<dyn Any>>,
    /// Contributions still expected from tree children.
    pub pending_children: usize,
    /// Pending incoming child payloads that arrived before the local call
    /// (we cannot combine them until the local call supplies the combine fn).
    pub early: Vec<Vec<u8>>,
    /// Local call's continuation: combines + forwards + maybe fulfills.
    pub on_child: Option<Rc<dyn Fn(Vec<u8>)>>,
}

/// Runtime statistics (used by benches and tests).
#[derive(Default)]
pub struct CtxStats {
    /// rput/rget operations injected.
    pub rma_ops: Cell<u64>,
    /// RPCs injected (including `rpc_ff`).
    pub rpcs: Cell<u64>,
    /// Bytes serialized into outgoing messages.
    pub bytes_out: Cell<u64>,
    /// Items executed from compQ by user progress.
    pub comp_items: Cell<u64>,
    /// Messages routed through the aggregation layer's buffers.
    pub agg_msgs: Cell<u64>,
    /// Aggregated batches shipped (each one wire message carrying >1 payload).
    pub agg_batches: Cell<u64>,
}

/// The per-rank runtime state. One per rank; reached via the thread-local.
pub struct RankCtx {
    pub(crate) backend: Backend,
    pub(crate) me: Rank,
    pub(crate) n: usize,
    pub(crate) alloc: RefCell<crate::alloc::SegAlloc>,
    pub(crate) def_q: RefCell<VecDeque<DefOp>>,
    pub(crate) comp_q: RefCell<VecDeque<Box<dyn FnOnce()>>>,
    pub(crate) active_ops: Cell<usize>,
    pub(crate) next_op: Cell<u64>,
    pub(crate) reply_tbl: RefCell<HashMap<u64, ReplyHandler>>,
    pub(crate) dist_next: Cell<u64>,
    pub(crate) dist_tbl: RefCell<HashMap<u64, Rc<dyn Any>>>,
    /// Continuations parked until a dist-object id is registered (RPCs that
    /// raced ahead of local construction; UPC++ queues these too).
    pub(crate) dist_waiters: RefCell<HashMap<u64, Vec<Thunk>>>,
    pub(crate) coll: RefCell<CollState>,
    pub(crate) rank_state: RefCell<HashMap<std::any::TypeId, Rc<dyn Any>>>,
    /// Per-target RPC aggregation buffers (see `crate::agg`).
    pub(crate) agg: RefCell<crate::agg::AggState>,
    /// Statistics counters.
    pub stats: CtxStats,
}

thread_local! {
    static CTX: RefCell<Option<Rc<RankCtx>>> = const { RefCell::new(None) };
}

/// The calling thread's (or simulated rank's) context. Panics outside a
/// UPC++ world — i.e. outside `run_spmd` rank mains or sim drivers.
pub(crate) fn ctx() -> Rc<RankCtx> {
    try_ctx().expect("no upcxx context on this thread: call inside run_spmd / SimRuntime drivers")
}

/// Like [`ctx`] but returns `None` outside a world.
pub(crate) fn try_ctx() -> Option<Rc<RankCtx>> {
    CTX.with(|c| c.borrow().clone())
}

/// Install `c` for the duration of `f` (restores the previous context after;
/// the sim conduit nests these when ranks trigger one another synchronously).
pub(crate) fn with_ctx(c: Rc<RankCtx>, f: impl FnOnce()) {
    let prev = CTX.with(|slot| slot.borrow_mut().replace(c));
    f();
    CTX.with(|slot| *slot.borrow_mut() = prev);
}

impl RankCtx {
    pub(crate) fn new_smp(h: smp::RankHandle) -> Rc<RankCtx> {
        let seg = h.seg_size();
        Rc::new(RankCtx {
            me: h.rank_me(),
            n: h.rank_n(),
            backend: Backend::Smp(h),
            alloc: RefCell::new(crate::alloc::SegAlloc::new(seg)),
            def_q: RefCell::new(VecDeque::new()),
            comp_q: RefCell::new(VecDeque::new()),
            active_ops: Cell::new(0),
            next_op: Cell::new(0),
            reply_tbl: RefCell::new(HashMap::new()),
            dist_next: Cell::new(0),
            dist_tbl: RefCell::new(HashMap::new()),
            dist_waiters: RefCell::new(HashMap::new()),
            coll: RefCell::new(CollState::default()),
            rank_state: RefCell::new(HashMap::new()),
            agg: RefCell::new(crate::agg::AggState::new()),
            stats: CtxStats::default(),
        })
    }

    pub(crate) fn new_sim(w: SimWorld, me: Rank) -> Rc<RankCtx> {
        let seg = w.seg_size();
        let n = w.rank_n();
        Rc::new(RankCtx {
            me,
            n,
            backend: Backend::Sim(w),
            alloc: RefCell::new(crate::alloc::SegAlloc::new(seg)),
            def_q: RefCell::new(VecDeque::new()),
            comp_q: RefCell::new(VecDeque::new()),
            active_ops: Cell::new(0),
            next_op: Cell::new(0),
            reply_tbl: RefCell::new(HashMap::new()),
            dist_next: Cell::new(0),
            dist_tbl: RefCell::new(HashMap::new()),
            dist_waiters: RefCell::new(HashMap::new()),
            coll: RefCell::new(CollState::default()),
            rank_state: RefCell::new(HashMap::new()),
            agg: RefCell::new(crate::agg::AggState::new()),
            stats: CtxStats::default(),
        })
    }

    /// This rank's id.
    pub fn rank_me(&self) -> Rank {
        self.me
    }
    /// World size.
    pub fn rank_n(&self) -> usize {
        self.n
    }

    /// Software-cost table when running simulated; `None` on smp (real costs
    /// are real there).
    pub(crate) fn sw(&self) -> Option<SwCosts> {
        match &self.backend {
            Backend::Smp(_) => None,
            Backend::Sim(w) => Some(w.config().sw.clone()),
        }
    }

    /// Charge serialization cost for `bytes` (no-op on smp — the copy itself
    /// is the cost there).
    pub(crate) fn charge_ser(&self, bytes: usize) {
        if let Backend::Sim(w) = &self.backend {
            let per = w.config().sw.ser_per_byte;
            w.charge(self.me, per * bytes as u64);
        }
    }

    /// Allocate a fresh operation id (RPC reply matching).
    pub(crate) fn new_op_id(&self) -> u64 {
        let id = self.next_op.get();
        self.next_op.set(id + 1);
        id
    }

    /// Enqueue an operation in defQ and run internal progress (every
    /// communication call is an internal-progress opportunity — §III).
    pub(crate) fn inject(&self, op: DefOp) {
        self.def_q.borrow_mut().push_back(op);
        self.progress_internal();
    }

    /// Internal progress: drain defQ into the conduit (defQ -> actQ).
    pub(crate) fn progress_internal(&self) {
        loop {
            let op = self.def_q.borrow_mut().pop_front();
            let Some(op) = op else { break };
            self.issue(op);
        }
    }

    /// Hand one operation to the conduit.
    fn issue(&self, op: DefOp) {
        self.active_ops.set(self.active_ops.get() + 1);
        match (&self.backend, op) {
            (
                Backend::Smp(h),
                DefOp::Put {
                    target,
                    dst_off,
                    bytes,
                    done,
                },
            ) => {
                // Shared memory: the one-sided copy completes synchronously;
                // user-visible completion still goes through compQ.
                h.put_bytes(target, dst_off, &bytes);
                self.complete(done);
            }
            (
                Backend::Smp(h),
                DefOp::Get {
                    target,
                    src_off,
                    len,
                    done,
                },
            ) => {
                let mut buf = vec![0u8; len];
                h.get_bytes(target, src_off, &mut buf);
                self.complete(Box::new(move || done(buf)));
            }
            (Backend::Smp(h), DefOp::Am { target, item, .. }) => {
                h.send_item(target, item);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (Backend::Smp(h), DefOp::AmBatch { target, items, .. }) => {
                h.send_batch(target, items);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Smp(h),
                DefOp::Amo {
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    done,
                },
            ) => {
                use gasnet::sim::AmoOp::*;
                let old = match op {
                    FetchAdd => h.atomic_fetch_add_u64(target, off, operand),
                    Load => h.atomic_load_u64(target, off),
                    Store => {
                        let old = h.atomic_load_u64(target, off);
                        h.atomic_store_u64(target, off, operand);
                        old
                    }
                    CompareExchange => h.atomic_cas_u64(target, off, compare, operand),
                };
                self.complete(Box::new(move || done(old)));
            }
            (
                Backend::Sim(w),
                DefOp::Put {
                    target,
                    dst_off,
                    bytes,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                let me = self.me;
                // Completion lands in compQ and drains at the next progress
                // (delivery events on the sim conduit run with our ctx).
                w.put(
                    me,
                    target,
                    dst_off,
                    bytes,
                    o,
                    Box::new(move || {
                        let c = ctx();
                        c.complete(done);
                        c.progress_user();
                    }),
                );
            }
            (
                Backend::Sim(w),
                DefOp::Get {
                    target,
                    src_off,
                    len,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                w.get(
                    self.me,
                    target,
                    src_off,
                    len,
                    o,
                    Box::new(move |data| {
                        let c = ctx();
                        c.complete(Box::new(move || done(data)));
                        c.progress_user();
                    }),
                );
            }
            (
                Backend::Sim(w),
                DefOp::Am {
                    target,
                    wire_bytes,
                    item,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_am_inject + sw.upcxx_op_overhead;
                w.am(self.me, target, wire_bytes, o, item);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Sim(w),
                DefOp::AmBatch {
                    target,
                    wire_bytes,
                    items,
                },
            ) => {
                // One injection overhead and one modeled transfer for the
                // whole batch — the per-message gap amortization that makes
                // aggregation pay off on the fine-grained path.
                let sw = &w.config().sw;
                let o = sw.gex_am_inject + sw.upcxx_op_overhead;
                let items: Vec<gasnet::sim::LocalItem> = items
                    .into_iter()
                    .map(|i| -> gasnet::sim::LocalItem { i })
                    .collect();
                w.am_batch(self.me, target, wire_bytes, o, items);
                self.active_ops.set(self.active_ops.get() - 1);
            }
            (
                Backend::Sim(w),
                DefOp::Amo {
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    done,
                },
            ) => {
                let sw = &w.config().sw;
                let o = sw.gex_rma_inject + sw.upcxx_op_overhead;
                w.amo(
                    self.me,
                    target,
                    off,
                    op,
                    operand,
                    compare,
                    o,
                    Box::new(move |old| {
                        let c = ctx();
                        c.complete(Box::new(move || done(old)));
                        c.progress_user();
                    }),
                );
            }
        }
    }

    /// Move a finished operation's user-visible effect to compQ
    /// (actQ -> compQ transition).
    pub(crate) fn complete(&self, eff: Box<dyn FnOnce()>) {
        self.active_ops.set(self.active_ops.get().saturating_sub(1));
        self.comp_q.borrow_mut().push_back(eff);
    }

    /// User-level progress: aggregation flush, internal progress, conduit
    /// poll (smp), compQ drain. This is the only place `.then` callbacks,
    /// future fulfillments and incoming RPC bodies execute.
    pub(crate) fn progress_user(&self) {
        // Buffered aggregated payloads leave at every progress opportunity,
        // so a blocking wait can never deadlock on this rank's own buffers.
        crate::agg::flush_all_ctx(self);
        self.progress_internal();
        if let Backend::Smp(h) = &self.backend {
            // Incoming items enqueue their effects into compQ.
            h.poll(64);
        }
        loop {
            let eff = self.comp_q.borrow_mut().pop_front();
            let Some(eff) = eff else { break };
            self.stats.comp_items.set(self.stats.comp_items.get() + 1);
            eff();
        }
        // Handlers executed above may have buffered replies or forwards;
        // pushing them out now keeps round-trip latency at one progress call.
        crate::agg::flush_all_ctx(self);
        self.progress_internal();
    }
}

/// This rank's id within the world (paper: `upcxx::rank_me()`).
pub fn rank_me() -> Rank {
    ctx().me
}

/// Number of ranks in the world (paper: `upcxx::rank_n()`).
pub fn rank_n() -> usize {
    ctx().n
}

/// Make user-level progress: advance deferred operations and run completed
/// operations' callbacks and incoming RPCs (paper: `upcxx::progress()`).
pub fn progress() {
    ctx().progress_user();
}

/// Spin on user progress until `pred` holds (the engine behind
/// `Future::wait`; the paper notes `wait` "is simply a spin loop around
/// progress"). Only the smp conduit supports blocking; under sim this
/// panics unless the predicate is already true. Public so layers above
/// (e.g. the v0.1 compatibility events) can block on their own conditions.
pub fn wait_until(pred: impl Fn() -> bool) {
    if pred() {
        return;
    }
    let c = ctx();
    match &c.backend {
        Backend::Smp(_) => {
            let mut spins: u32 = 0;
            while !pred() {
                c.progress_user();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(32) {
                    std::thread::yield_now();
                }
            }
        }
        Backend::Sim(_) => {
            // One chance: deferred work may satisfy the predicate without
            // needing virtual time to pass.
            c.progress_user();
            assert!(
                pred(),
                "blocking wait() cannot advance virtual time under the sim conduit; \
                 restructure the driver with then()-chains"
            );
        }
    }
}

/// Per-rank user state keyed by type: returns (creating on first use via
/// `init`) this rank's instance of `T`. This is how applications keep
/// "process-local" state (like the DHT's `local_map`) that RPC handlers can
/// reach — the moral equivalent of a C++ global in SPMD UPC++ programs,
/// made rank-correct under the sim conduit where many ranks share one thread.
pub fn rank_state<T: 'static>(init: impl FnOnce() -> T) -> Rc<T> {
    let c = ctx();
    let key = std::any::TypeId::of::<T>();
    if let Some(v) = c.rank_state.borrow().get(&key) {
        return v
            .clone()
            .downcast::<T>()
            .expect("rank_state type confusion");
    }
    let v: Rc<T> = Rc::new(init());
    c.rank_state.borrow_mut().insert(key, v.clone());
    v
}

/// Statistics snapshot for the current rank.
pub fn stats_rma_ops() -> u64 {
    ctx().stats.rma_ops.get()
}
/// RPCs injected by the current rank so far.
pub fn stats_rpcs() -> u64 {
    ctx().stats.rpcs.get()
}
/// Messages this rank has routed through the aggregation buffers so far.
pub fn stats_agg_msgs() -> u64 {
    ctx().stats.agg_msgs.get()
}
/// Aggregated batches this rank has shipped so far (each a single wire
/// message carrying more than one payload).
pub fn stats_agg_batches() -> u64 {
    ctx().stats.agg_batches.get()
}

/// A `Future<()>` that is already complete — start of a conjunction chain
/// (paper Fig. 7 line 6: `f_conj = upcxx::make_future()`).
pub fn make_ready_future() -> Future<()> {
    crate::future::make_future(())
}
