//! Progress-engine observability: structured event tracing and the typed
//! [`RuntimeStats`] snapshot.
//!
//! The paper's central structural claim (§III, §VII) is that a user-driven
//! three-queue progress engine delivers attentiveness and overlap without
//! hidden threads. This module makes that claim *observable*: every
//! operation the runtime injects gets an id and emits one event per queue
//! transition —
//!
//! * [`Phase::Inject`] — the operation enters the deferred queue (defQ); for
//!   aggregated RPC payloads this is the moment the payload enters the
//!   per-target coalescing buffer (morally part of defQ);
//! * [`Phase::Conduit`] — internal progress hands the operation to the
//!   conduit (defQ → actQ); for buffered payloads, the flush that ships the
//!   carrying batch (the event records the [`FlushReason`]);
//! * [`Phase::Deliver`] — the conduit reports the operation: an RMA
//!   completion callback lands in compQ at the initiator, or an incoming
//!   RPC/system-AM handler begins executing at the target (actQ → compQ);
//! * [`Phase::Complete`] — the user-visible effect runs: user-level progress
//!   drains the compQ entry at the initiator, an RPC's reply fulfills its
//!   promise, or a fire-and-forget handler returns at the target.
//!
//! Every operation therefore produces **exactly four events**, possibly
//! split across two ranks (an `rpc`'s Deliver is recorded by the target).
//! Events carry the recording rank, the originating rank + per-origin
//! sequence number (together a global op id), the op kind, a peer rank, a
//! byte count and a timestamp: **virtual picoseconds** under the sim conduit
//! (`SimWorld::rank_now`, monotone per rank) or wall-clock picoseconds since
//! process start on smp. Events land in a per-rank ring buffer — single
//! writer, no locks, overwrite-oldest beyond [`TraceConfig::capacity`] — and
//! export as Chrome-trace JSON ([`export_chrome`]) loadable in Perfetto or
//! `chrome://tracing`.
//!
//! Tracing is runtime-gated: [`set_config`] flips a per-rank flag, and every
//! hook in the hot path is a single load-and-branch when disabled (verified
//! by the `rput` latency microbenches in `crates/bench`). Alongside the
//! stream, the engine keeps per-queue depth high-water marks, time-in-queue
//! histograms ([`LatencyHist`]) and an *attentiveness* metric — the maximum
//! gap between user-progress calls, §VII's concern — all surfaced through
//! [`runtime_stats`].
//!
//! ## Causal spans
//!
//! Every operation is a **span** identified by `(origin, op)`; the id rides
//! the wire inside the modeled AM header ([`crate::wire::SPAN_BYTES`]), so a
//! remote Deliver is always attributable to its originating Inject. On top
//! of identity, spans record **parentage**: while a delivered item (RPC
//! body, reply continuation, system-AM handler) executes, the rank's
//! *current span* is set to that item's span, and any operation injected
//! inside it — the reply an RPC sends back, an rput issued from a handler, a
//! `.then`-chained follow-up RPC — records it as `(parent_origin,
//! parent_op)`. Those links are what [`crate::prof`] walks to reconstruct
//! cross-rank causal chains (critical paths) and what [`export_chrome`]
//! turns into Perfetto *flow events* (cross-rank arrows). Span ids are
//! allocated **only** in this module ([`new_span_id`]; lint-enforced), which
//! keeps the id space and the reply-matching key space unified.

use crate::ctx::{ctx, Backend, RankCtx};
use std::io::{self, Write};

/// Runtime configuration of the tracing subsystem (per rank).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record events at all. Off by default: every hook reduces to one
    /// branch on a per-rank flag.
    pub enabled: bool,
    /// Ring-buffer capacity in events; beyond it the oldest events are
    /// overwritten (the drop count is reported in [`RuntimeStats`]).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            capacity: 1 << 16,
        }
    }
}

/// Which queue transition an event records (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Operation entered defQ (or the aggregation buffer).
    Inject,
    /// Operation handed to the conduit (defQ → actQ).
    Conduit,
    /// Conduit reported the operation (actQ → compQ / handler start).
    Deliver,
    /// User-visible effect ran (compQ drain / promise fulfilled / handler
    /// returned).
    Complete,
}

impl Phase {
    /// Stable name (used in the Chrome export and CI greps).
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Inject => "Inject",
            Phase::Conduit => "Conduit",
            Phase::Deliver => "Deliver",
            Phase::Complete => "Complete",
        }
    }
}

/// What kind of operation an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// One-sided put.
    Put,
    /// One-sided get.
    Get,
    /// Remote atomic.
    Amo,
    /// Round-trip RPC (its Complete is the initiator-side promise
    /// fulfillment; the reply travels as a separate [`OpKind::Reply`] op).
    Rpc,
    /// Fire-and-forget RPC.
    RpcFf,
    /// An RPC reply in flight back to the initiator.
    Reply,
    /// Internal system AM (collective flags and payloads).
    SysAm,
    /// An aggregated batch shipped by `upcxx::agg` (the member payloads keep
    /// their own ids; the batch is one more traced op).
    Batch,
}

impl OpKind {
    /// Stable name (used in the Chrome export).
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Put => "Put",
            OpKind::Get => "Get",
            OpKind::Amo => "Amo",
            OpKind::Rpc => "Rpc",
            OpKind::RpcFf => "RpcFf",
            OpKind::Reply => "Reply",
            OpKind::SysAm => "SysAm",
            OpKind::Batch => "Batch",
        }
    }
}

/// Why an aggregation buffer was flushed (recorded on the Conduit event of
/// each flushed member and on the batch's Inject event).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// Not a flush-related event.
    None,
    /// The buffer reached `AggConfig::max_bytes`.
    Threshold,
    /// An oversize payload (or a system AM) forced the buffer out first to
    /// preserve per-target ordering.
    Ordering,
    /// User-level progress ran.
    Progress,
    /// The rank entered a barrier (quiescence).
    Barrier,
    /// Explicit `upcxx::flush_all()`.
    Explicit,
    /// The tail of a delivered item/batch flushed buffered replies.
    ItemTail,
    /// `set_agg_config` drained buffers before reconfiguring.
    Reconfig,
}

impl FlushReason {
    /// Stable name (used in the Chrome export).
    pub fn as_str(self) -> &'static str {
        match self {
            FlushReason::None => "None",
            FlushReason::Threshold => "Threshold",
            FlushReason::Ordering => "Ordering",
            FlushReason::Progress => "Progress",
            FlushReason::Barrier => "Barrier",
            FlushReason::Explicit => "Explicit",
            FlushReason::ItemTail => "ItemTail",
            FlushReason::Reconfig => "Reconfig",
        }
    }
}

/// The per-op identity and accounting the runtime threads through its
/// queues: assigned once at the API entry point, carried by the deferred-
/// queue entry, completion-queue entry and item closures.
///
/// Ids are allocated unconditionally (an op's identity must survive the
/// wire so a traced rank can record deliveries originated by ranks that are
/// not tracing); whether events are *recorded* gates on the recording
/// rank's `trace_on` — see `RankCtx::op_tag` and the monomorphized
/// inject → issue → complete chain in `ctx.rs`. `tid == 0` never names a
/// real op and is treated as untraceable wherever it appears.
#[derive(Clone, Copy)]
pub(crate) struct TraceTag {
    /// Per-origin sequence number, starting at 1 ((origin, tid) is
    /// globally unique); 0 never names a real op.
    pub tid: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// The other rank involved (target for outgoing, initiator for replies).
    pub peer: u32,
    /// Payload bytes accounted to the op.
    pub bytes: u32,
    /// Origin rank of the causal parent span (the delivered item whose
    /// handler injected this op); meaningful only when `parent_op != 0`.
    pub parent_origin: u32,
    /// Parent span's per-origin sequence number; 0 = injected outside any
    /// delivered item (application top level).
    pub parent_op: u64,
}

/// Allocate a fresh span id on rank `c`. This is the **only** allocation
/// site of the per-origin sequence (lint-enforced: `next_op` is read/written
/// here alone) — RPC reply matching, sanitizer access records and event
/// tracing all draw from this one sequence, so a span id doubles as the
/// reply-table key and `(origin, id)` is globally unique across all uses.
pub(crate) fn new_span_id(c: &RankCtx) -> u64 {
    let id = c.next_op.get();
    c.next_op.set(id + 1);
    id
}

/// Build the trace identity for a new operation on rank `c`: a fresh span id
/// plus the causal parent (the span of the delivered item currently
/// executing on this rank, if any).
pub(crate) fn new_tag(c: &RankCtx, kind: OpKind, peer: u32, bytes: u32) -> TraceTag {
    let (parent_origin, parent_op) = c.cur_span.get();
    TraceTag {
        tid: new_span_id(c),
        kind,
        peer,
        bytes,
        parent_origin,
        parent_op,
    }
}

/// RAII marker that a delivered item's handler is executing on rank `c`:
/// sets the rank's *current span* so everything injected inside the handler
/// records `(origin, op)` as its causal parent; restores the previous span
/// on drop (items can nest — a batch bracket around member handlers).
pub(crate) struct SpanGuard<'a> {
    c: &'a RankCtx,
    prev: (u32, u64),
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(c: &'a RankCtx, origin: u32, op: u64) -> SpanGuard<'a> {
        let prev = c.cur_span.replace((origin, op));
        SpanGuard { c, prev }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.c.cur_span.set(self.prev);
    }
}

/// One recorded queue-transition event.
///
/// `repr(C)`: events cross ranks when `prof.rs` gathers per-rank buffers,
/// so the layout must not depend on the compilation's field ordering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(C)]
pub struct TraceEvent {
    /// The rank that recorded the event.
    pub rank: u32,
    /// The rank that initiated the operation.
    pub origin: u32,
    /// Per-origin operation sequence number; `(origin, op)` is unique.
    pub op: u64,
    /// Operation kind.
    pub kind: OpKind,
    /// Queue transition.
    pub phase: Phase,
    /// The other rank involved in the operation.
    pub peer: u32,
    /// Payload bytes.
    pub bytes: u32,
    /// Flush reason (aggregation events only; `None` otherwise).
    pub reason: FlushReason,
    /// Timestamp in picoseconds: virtual time (sim) or wall time since the
    /// world's launch epoch (smp; one epoch per world, captured before any
    /// rank thread starts). Monotone per recording rank and mutually
    /// comparable across ranks of one world.
    pub ts_ps: u64,
    /// Origin rank of the causal parent span (see module docs); meaningful
    /// only when `parent_op != 0`.
    pub parent_origin: u32,
    /// Parent span's sequence number; 0 = no recorded parent (the op was
    /// injected outside any delivered item).
    pub parent_op: u64,
    /// Which persona of the recording rank recorded the event: 0 = master
    /// (the application thread), 1 = the opt-in progress persona
    /// ([`crate::persona`]). Always 0 while the progress thread is off.
    pub persona: u8,
}

/// A log2-bucketed latency histogram (picoseconds). Bucket `i` counts
/// samples in `[2^i, 2^(i+1))`; bucket 0 additionally holds zeros.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct LatencyHist {
    counts: [u64; 64],
    max_ps: u64,
    total: u64,
}

impl Default for LatencyHist {
    fn default() -> Self {
        LatencyHist {
            counts: [0; 64],
            max_ps: 0,
            total: 0,
        }
    }
}

impl LatencyHist {
    /// Record one sample.
    pub(crate) fn record(&mut self, ps: u64) {
        let b = if ps == 0 {
            0
        } else {
            63 - ps.leading_zeros() as usize
        };
        self.counts[b] += 1;
        self.total += 1;
        if ps > self.max_ps {
            self.max_ps = ps;
        }
    }
    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }
    /// Largest sample seen, in picoseconds.
    pub fn max_ps(&self) -> u64 {
        self.max_ps
    }
    /// The per-bucket counts (bucket `i` covers `[2^i, 2^(i+1))` ps).
    pub fn buckets(&self) -> &[u64; 64] {
        &self.counts
    }
}

impl std::fmt::Debug for LatencyHist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LatencyHist {{ total: {}, max_ps: {} }}",
            self.total, self.max_ps
        )
    }
}

/// Per-rank trace state: the ring buffer plus the time-in-queue histograms
/// (touched only while tracing is enabled). Lives in `RankCtx`; single
/// writer (the owning rank), so no locks.
pub(crate) struct TraceState {
    pub(crate) cfg: TraceConfig,
    /// Ring storage; `head` is the next overwrite position once full.
    buf: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    emitted: u64,
    /// defQ residency (Inject → Conduit) per drained op.
    pub(crate) def_q_wait: LatencyHist,
    /// compQ residency (Deliver → Complete) per drained op.
    pub(crate) comp_q_wait: LatencyHist,
}

impl TraceState {
    pub(crate) fn new() -> TraceState {
        TraceState {
            cfg: TraceConfig::default(),
            buf: Vec::new(),
            head: 0,
            dropped: 0,
            emitted: 0,
            def_q_wait: LatencyHist::default(),
            comp_q_wait: LatencyHist::default(),
        }
    }

    /// Install a new configuration, resetting the ring (histograms and the
    /// counters persist until `take`).
    pub(crate) fn reconfig(&mut self, cfg: TraceConfig) {
        self.cfg = cfg;
        self.buf = Vec::with_capacity(if cfg.enabled { cfg.capacity.max(1) } else { 0 });
        self.head = 0;
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        self.emitted += 1;
        let cap = self.cfg.capacity.max(1);
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
        }
    }

    pub(crate) fn emitted(&self) -> u64 {
        self.emitted
    }
    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the ring in chronological order.
    pub(crate) fn take(&mut self) -> Vec<TraceEvent> {
        let head = std::mem::take(&mut self.head);
        let buf = std::mem::take(&mut self.buf);
        if head == 0 {
            return buf;
        }
        // Oldest events start at `head` once the ring has wrapped.
        let mut out = Vec::with_capacity(buf.len());
        out.extend_from_slice(&buf[head..]);
        out.extend_from_slice(&buf[..head]);
        out
    }
}

/// One typed snapshot of the calling rank's runtime counters — the coherent
/// replacement for the deprecated loose `stats_*` free functions.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// The rank this snapshot describes.
    pub rank: usize,
    /// rput/rget/atomic operations injected.
    pub rma_ops: u64,
    /// RPCs injected (including `rpc_ff`).
    pub rpcs: u64,
    /// Bytes serialized into outgoing messages (RMA payloads + RPC args).
    pub bytes_out: u64,
    /// Bytes received by this rank: rget data, incoming RPC arguments and
    /// incoming RPC replies.
    pub bytes_in: u64,
    /// Items executed from compQ by user progress.
    pub comp_items: u64,
    /// Messages routed through the aggregation layer's buffers.
    pub agg_msgs: u64,
    /// Aggregated batches shipped (each one wire message carrying >1
    /// payload).
    pub agg_batches: u64,
    /// Deferred-queue depth high-water mark.
    pub def_q_hwm: u64,
    /// Active-operation (conduit-owned) high-water mark.
    pub act_q_hwm: u64,
    /// Completion-queue depth high-water mark.
    pub comp_q_hwm: u64,
    /// Conduit inbound backlog right now: items waiting in this rank's smp
    /// inbox (always 0 under sim, where delivery is event-driven).
    pub conduit_backlog: u64,
    /// Total virtual time deliveries to this rank spent parked behind a busy
    /// CPU (sim conduit's attentiveness cost; 0 on smp).
    pub deliver_deferred_ps: u64,
    /// Attentiveness of the **master persona**: the largest observed gap
    /// between consecutive user-progress calls, in picoseconds. Tracked only
    /// while tracing is enabled (0 otherwise — the disabled hot path stays
    /// one branch). Reset by [`set_config`], so back-to-back worlds (or A/B
    /// phases within one world) never inherit a previous phase's gap.
    pub max_progress_gap_ps: u64,
    /// Attentiveness of the **progress persona**: the largest gap between
    /// consecutive progress-thread poll iterations, in picoseconds. Zero
    /// unless the progress thread ([`crate::persona`]) ran while tracing was
    /// enabled. Also reset by [`set_config`].
    pub max_progress_gap_prog_ps: u64,
    /// Bounded-drain accounting: how many compQ chunks (of at most 64
    /// completions each) user-progress calls have retired. A flooded rank
    /// shows `comp_chunks` ≈ `comp_items / 64`; an attentive one shows one
    /// chunk per progress call that found completions.
    pub comp_chunks: u64,
    /// Trace events emitted since tracing was (re)configured.
    pub trace_events: u64,
    /// Trace events overwritten because the ring filled. A profile built
    /// from a ring that dropped events is incomplete — `prof::report`
    /// prints a warning per affected rank.
    pub dropped_events: u64,
    /// defQ residency histogram (Inject → Conduit), tracing only.
    pub def_q_wait: LatencyHist,
    /// compQ residency histogram (Deliver → Complete), tracing only.
    pub comp_q_wait: LatencyHist,
    /// Sanitizer findings on this rank (all zero unless `upcxx::san` is —
    /// or was — enabled; see [`crate::san::san_report`]).
    pub san: crate::san::SanCounters,
}

/// Snapshot the calling rank's runtime statistics
/// (paper-level analogue: the introspection hooks DASH and HPX-style
/// runtimes grew to diagnose progress starvation).
pub fn runtime_stats() -> RuntimeStats {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let san = c.san.borrow().counters;
    let tr = c.trace.borrow();
    let (conduit_backlog, deliver_deferred_ps) = match &c.backend {
        Backend::Cond(h) => (h.inbox_depth(), 0),
        Backend::Sim(w) => (0, w.rank_deferred(c.me).as_ps()),
    };
    RuntimeStats {
        rank: c.me,
        rma_ops: c.stats.rma_ops.get(),
        rpcs: c.stats.rpcs.get(),
        bytes_out: c.stats.bytes_out.get(),
        bytes_in: c.stats.bytes_in.get(),
        comp_items: c.stats.comp_items.get(),
        agg_msgs: c.stats.agg_msgs.get(),
        agg_batches: c.stats.agg_batches.get(),
        def_q_hwm: c.stats.def_q_hwm.get(),
        act_q_hwm: c.stats.act_q_hwm.get(),
        comp_q_hwm: c.stats.comp_q_hwm.get(),
        conduit_backlog,
        deliver_deferred_ps,
        max_progress_gap_ps: c.stats.max_progress_gap_ps.get(),
        max_progress_gap_prog_ps: c.stats.max_progress_gap_prog_ps.get(),
        comp_chunks: c.stats.comp_chunks.get(),
        trace_events: tr.emitted(),
        dropped_events: tr.dropped(),
        def_q_wait: tr.def_q_wait,
        comp_q_wait: tr.comp_q_wait,
        san,
    }
}

/// Install a tracing configuration on the **current rank** (each rank
/// configures its own ring; a driver that wants whole-world traces enables
/// tracing on every rank). Resets the ring buffer.
pub fn set_config(cfg: TraceConfig) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.trace_on.set(cfg.enabled);
    // Reset the attentiveness tracking of both personas: the gap metric
    // describes the phase being traced, not whatever ran before it (a
    // previous world in the same process, or a previous A/B phase).
    c.stats.last_progress_ps.set(0);
    c.stats.max_progress_gap_ps.set(0);
    c.stats.last_progress_prog_ps.set(0);
    c.stats.max_progress_gap_prog_ps.set(0);
    c.trace.borrow_mut().reconfig(cfg);
}

/// The current rank's tracing configuration.
pub fn config() -> TraceConfig {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let cfg = c.trace.borrow().cfg;
    cfg
}

/// Drain the current rank's recorded events (chronological order). The ring
/// keeps recording afterwards if tracing is enabled.
pub fn take_local() -> Vec<TraceEvent> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let events = c.trace.borrow_mut().take();
    events
}

/// Serialize `events` as Chrome-trace JSON (the "JSON Array Format" with a
/// `traceEvents` wrapper) loadable in Perfetto / `chrome://tracing`. Each
/// trace event becomes one instant event named `<Kind>.<Phase>` on
/// `pid = recording rank` (one metadata track per rank), with timestamps
/// converted from picoseconds to the format's microseconds; op identity,
/// causal parent, peer, bytes and flush reason ride in `args`.
///
/// **Cross-rank arrows**: for every span whose Deliver was recorded on a
/// rank other than its origin, the export emits a Perfetto *flow* — a
/// `ph:"s"` start bound to the origin-side hand-off (the span's Conduit
/// event, falling back to Inject) and a `ph:"f"` finish bound to the remote
/// Deliver, sharing one `id`. Flow endpoints bind to enclosing slices, so
/// each endpoint is also materialized as a minimal `ph:"X"` slice at the
/// same timestamp; both ends of a flow are emitted or neither, so flow ids
/// always pair up exactly.
pub fn export_chrome<W: Write>(events: &[TraceEvent], w: &mut W) -> io::Result<()> {
    let mut ranks: Vec<u32> = events.iter().map(|e| e.rank).collect();
    ranks.sort_unstable();
    ranks.dedup();
    // Origin-side hand-off event per span: Conduit preferred, Inject as the
    // fallback (aggregated members may drop their Conduit to ring overwrite).
    let mut send: std::collections::BTreeMap<(u32, u64), &TraceEvent> =
        std::collections::BTreeMap::new();
    for e in events {
        if e.rank == e.origin && e.op != 0 {
            match e.phase {
                Phase::Conduit => {
                    send.insert((e.origin, e.op), e);
                }
                Phase::Inject => {
                    send.entry((e.origin, e.op)).or_insert(e);
                }
                _ => {}
            }
        }
    }
    // (send event, remote deliver event) pairs, in deterministic span order.
    let mut flows: Vec<(&TraceEvent, &TraceEvent)> = Vec::new();
    for e in events {
        if e.phase == Phase::Deliver && e.rank != e.origin && e.op != 0 {
            if let Some(s) = send.get(&(e.origin, e.op)) {
                flows.push((s, e));
            }
        }
    }
    flows.sort_by_key(|(_, d)| (d.origin, d.op, d.rank));
    w.write_all(b"{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")?;
    let mut first = true;
    for r in &ranks {
        if !first {
            w.write_all(b",\n")?;
        }
        first = false;
        write!(
            w,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{r},\"tid\":0,\
             \"args\":{{\"name\":\"rank {r}\"}}}}"
        )?;
    }
    for e in events {
        if !first {
            w.write_all(b",\n")?;
        }
        first = false;
        let ts = e.ts_ps as f64 / 1e6; // ps -> us
        write!(
            w,
            "{{\"name\":\"{kind}.{phase}\",\"cat\":\"{kind}\",\"ph\":\"i\",\"s\":\"t\",\
             \"ts\":{ts:.6},\"pid\":{pid},\"tid\":0,\"args\":{{\"op\":\"{origin}:{op}\",\
             \"parent\":\"{pori}:{pop}\",\
             \"phase\":\"{phase}\",\"peer\":{peer},\"bytes\":{bytes},\"reason\":\"{reason}\",\
             \"persona\":{persona}}}}}",
            kind = e.kind.as_str(),
            phase = e.phase.as_str(),
            pid = e.rank,
            origin = e.origin,
            op = e.op,
            pori = e.parent_origin,
            pop = e.parent_op,
            peer = e.peer,
            bytes = e.bytes,
            reason = e.reason.as_str(),
            persona = e.persona,
        )?;
    }
    for (id, (s, d)) in flows.iter().enumerate() {
        let id = id as u64 + 1;
        let kind = d.kind.as_str();
        let ts_s = s.ts_ps as f64 / 1e6;
        let ts_d = d.ts_ps as f64 / 1e6;
        // Anchor slices for the flow endpoints (flows bind to slices, not to
        // instants), then the s/f pair itself.
        write!(
            w,
            ",\n{{\"name\":\"{kind} send {o}:{op}\",\"cat\":\"{kind}\",\"ph\":\"X\",\
             \"ts\":{ts_s:.6},\"dur\":0.001,\"pid\":{sp},\"tid\":0}},\n\
             {{\"name\":\"{kind} recv {o}:{op}\",\"cat\":\"{kind}\",\"ph\":\"X\",\
             \"ts\":{ts_d:.6},\"dur\":0.001,\"pid\":{dp},\"tid\":0}},\n\
             {{\"name\":\"{kind} {o}:{op}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\
             \"ts\":{ts_s:.6},\"pid\":{sp},\"tid\":0}},\n\
             {{\"name\":\"{kind} {o}:{op}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{id},\"ts\":{ts_d:.6},\"pid\":{dp},\"tid\":0}}",
            o = d.origin,
            op = d.op,
            sp = s.rank,
            dp = d.rank,
        )?;
    }
    w.write_all(b"\n]}\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(op: u64, ts: u64) -> TraceEvent {
        TraceEvent {
            rank: 0,
            origin: 0,
            op,
            kind: OpKind::Put,
            phase: Phase::Inject,
            peer: 1,
            bytes: 8,
            reason: FlushReason::None,
            ts_ps: ts,
            parent_origin: 0,
            parent_op: 0,
            persona: 0,
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_takes_in_order() {
        let mut st = TraceState::new();
        st.reconfig(TraceConfig {
            enabled: true,
            capacity: 4,
        });
        for i in 0..6u64 {
            st.push(ev(i, i * 10));
        }
        assert_eq!(st.emitted(), 6);
        assert_eq!(st.dropped(), 2);
        let got = st.take();
        assert_eq!(
            got.iter().map(|e| e.op).collect::<Vec<_>>(),
            vec![2, 3, 4, 5]
        );
    }

    #[test]
    fn hist_buckets_and_max() {
        let mut h = LatencyHist::default();
        h.record(0);
        h.record(1);
        h.record(1023);
        h.record(1024);
        assert_eq!(h.total(), 4);
        assert_eq!(h.max_ps(), 1024);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[9], 1); // 512..1024
        assert_eq!(h.buckets()[10], 1); // 1024..2048
    }

    #[test]
    fn chrome_export_is_wellformed() {
        let events = vec![ev(0, 1_000_000), ev(1, 2_000_000)];
        let mut out = Vec::new();
        export_chrome(&events, &mut out).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("{\"displayTimeUnit\""));
        assert!(s.contains("\"name\":\"Put.Inject\""));
        assert!(s.contains("\"ts\":1.000000"));
        assert!(s.trim_end().ends_with("]}"));
        // Balanced braces (poor man's JSON parse — no external deps).
        let opens = s.matches('{').count();
        let closes = s.matches('}').count();
        assert_eq!(opens, closes);
    }
}
