//! Serialization for RPC arguments and results.
//!
//! UPC++ serializes RPC callables and arguments into Active Message payloads
//! (§III). We reproduce that with a compact little-endian codec rather than
//! `serde`, for two reasons: the network model charges per *wire byte*, so
//! the runtime must own the byte layout; and UPC++'s `view` semantics —
//! deserializing a sequence as a non-owning window into the incoming network
//! buffer — map directly onto [`View`] but poorly onto serde's data model.
//!
//! * [`Ser`] — types that can cross ranks by value (the analogue of UPC++
//!   `Serializable`).
//! * [`Pod`] — plain-old-data marker (analogue of `TriviallySerializable`):
//!   these move as raw bytes, may live in shared segments, and may be viewed
//!   zero-copy.
//! * [`View`] — the paper's `upcxx::view`: a sequence serialized from any
//!   slice and deserialized as a window into the landing buffer, traversed at
//!   the target without an intermediate owned copy (used by the extend-add
//!   motif, Fig. 6–7).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

// ------------------------------------------------------------- buffer pool
//
// Every RPC serializes its arguments with `to_bytes` and every reply does the
// same for its result — on the fine-grained hot path that is one heap
// allocation per message. The pool below recycles those buffers: `to_bytes`
// takes a pooled `Vec<u8>` and the `Reader` wrapping a fully-consumed message
// returns its buffer on drop (only when no zero-copy `View` still shares it).
// Thread-local, so the smp conduit's rank threads never contend; under sim
// all ranks share one thread and therefore one pool, which only helps.

/// Buffers kept per thread; beyond this, freed buffers go back to the heap.
const POOL_MAX_BUFS: usize = 32;
/// Buffers with more capacity than this are not retained (one giant view
/// payload must not pin megabytes forever).
const POOL_MAX_CAP: usize = 64 << 10;

thread_local! {
    static BUF_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
    static POOL_HITS: Cell<u64> = const { Cell::new(0) };
    static POOL_MISSES: Cell<u64> = const { Cell::new(0) };
}

fn pool_take(cap: usize) -> Vec<u8> {
    BUF_POOL.with(|p| match p.borrow_mut().pop() {
        Some(mut b) => {
            POOL_HITS.with(|h| h.set(h.get() + 1));
            b.clear();
            b.reserve(cap);
            b
        }
        None => {
            POOL_MISSES.with(|m| m.set(m.get() + 1));
            Vec::with_capacity(cap)
        }
    })
}

fn pool_recycle(mut buf: Vec<u8>) {
    if buf.capacity() == 0 || buf.capacity() > POOL_MAX_CAP {
        return;
    }
    BUF_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < POOL_MAX_BUFS {
            buf.clear();
            pool.push(buf);
        }
    });
}

/// This thread's serialization-buffer-pool counters: `(hits, misses)` —
/// `hits` are `to_bytes` calls served with a recycled buffer, `misses` fell
/// through to a fresh allocation. Diagnostics for benches and tests.
pub fn buf_pool_stats() -> (u64, u64) {
    (POOL_HITS.with(Cell::get), POOL_MISSES.with(Cell::get))
}

/// Plain-old-data: `T` may be transported and stored as raw bytes.
///
/// # Safety
/// Implementors must be `Copy`, have no padding whose content matters, no
/// pointers/references, and tolerate any bit pattern produced by a prior
/// `Pod` store of the same type (we only ever reread bytes we wrote).
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for i8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for i16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for i32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for i64 {}
unsafe impl Pod for usize {}
unsafe impl Pod for isize {}
unsafe impl Pod for f32 {}
unsafe impl Pod for f64 {}
unsafe impl<T: Pod, const N: usize> Pod for [T; N] {}

/// Copy a `Pod` slice to raw bytes (native endianness: both "ends" are the
/// same process in this reproduction, as on a homogeneous Cray system).
pub fn pod_to_bytes<T: Pod>(src: &[T]) -> Vec<u8> {
    let len = std::mem::size_of_val(src);
    let mut out = vec![0u8; len];
    // SAFETY: Pod guarantees plain bytes; sizes match by construction.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr() as *const u8, out.as_mut_ptr(), len);
    }
    out
}

/// Reconstruct a `Pod` vector from raw bytes (length must divide evenly).
pub fn pod_from_bytes<T: Pod>(bytes: &[u8]) -> Vec<T> {
    let sz = std::mem::size_of::<T>();
    assert!(
        sz > 0 && bytes.len().is_multiple_of(sz),
        "byte length not a multiple of element size"
    );
    let n = bytes.len() / sz;
    let mut out = Vec::<T>::with_capacity(n);
    // SAFETY: Pod tolerates any previously-written bit pattern; capacity
    // reserved; read_unaligned handles arbitrary source alignment.
    unsafe {
        std::ptr::copy_nonoverlapping(bytes.as_ptr(), out.as_mut_ptr() as *mut u8, bytes.len());
        out.set_len(n);
    }
    out
}

/// View a `Pod` slice as raw bytes without copying — the eager RMA path's
/// injection-time source window.
pub(crate) fn pod_as_bytes<T: Pod>(src: &[T]) -> &[u8] {
    // SAFETY: Pod guarantees plain bytes with no invalid representations.
    unsafe { std::slice::from_raw_parts(src.as_ptr() as *const u8, std::mem::size_of_val(src)) }
}

/// View a mutable `Pod` slice as raw bytes — the `rget_into` landing window.
pub(crate) fn pod_as_bytes_mut<T: Pod>(dst: &mut [T]) -> &mut [u8] {
    // SAFETY: Pod tolerates any bit pattern, so arbitrary bytes written
    // through this view cannot form an invalid `T`; `dst` is initialized, so
    // the byte view never exposes uninitialized memory.
    unsafe {
        std::slice::from_raw_parts_mut(dst.as_mut_ptr() as *mut u8, std::mem::size_of_val(dst))
    }
}

/// [`pod_to_bytes`] drawing from the thread-local buffer pool — the deferred
/// rput path's payload staging. Pair with [`recycle_buf`] once the bytes
/// have been consumed.
pub(crate) fn pod_to_bytes_pooled<T: Pod>(src: &[T]) -> Vec<u8> {
    let mut out = pool_take(std::mem::size_of_val(src));
    out.extend_from_slice(pod_as_bytes(src));
    out
}

/// A zeroed pooled buffer of exactly `len` bytes — the deferred rget path's
/// landing buffer (the allocation, though not the memset, is amortized away).
pub(crate) fn pooled_filled(len: usize) -> Vec<u8> {
    let mut b = pool_take(len);
    b.resize(len, 0);
    b
}

/// Return a payload buffer to the thread-local pool (the pool's recycle
/// half, exposed for crate-internal callers outside this module).
pub(crate) fn recycle_buf(buf: Vec<u8>) {
    pool_recycle(buf);
}

/// A cursor over an incoming message buffer. Holds the buffer by `Rc` so
/// [`View`]s deserialized from it stay valid zero-copy windows.
pub struct Reader {
    buf: Rc<Vec<u8>>,
    pos: usize,
}

impl Reader {
    /// Wrap an owned message buffer.
    pub fn new(buf: Vec<u8>) -> Reader {
        Reader {
            buf: Rc::new(buf),
            pos: 0,
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consume `n` bytes, returning their range start.
    fn take(&mut self, n: usize) -> usize {
        assert!(
            self.remaining() >= n,
            "message truncated: need {n}, have {}",
            self.remaining()
        );
        let at = self.pos;
        self.pos += n;
        at
    }

    /// Read a little-endian fixed-size array.
    fn read_arr<const N: usize>(&mut self) -> [u8; N] {
        let at = self.take(N);
        self.buf[at..at + N].try_into().unwrap()
    }
}

impl Drop for Reader {
    fn drop(&mut self) {
        // Recycle the message buffer into the thread's pool — but only when
        // no zero-copy `View` (or clone) still shares it.
        if Rc::strong_count(&self.buf) == 1 {
            let rc = std::mem::replace(&mut self.buf, Rc::new(Vec::new()));
            if let Ok(v) = Rc::try_unwrap(rc) {
                pool_recycle(v);
            }
        }
    }
}

/// Types transportable by value in RPC arguments and results.
pub trait Ser: Sized + 'static {
    /// Append this value's encoding to `out`.
    fn ser(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn deser(r: &mut Reader) -> Self;
    /// Encoded size in bytes (drives the network model's wire charges).
    fn ser_size(&self) -> usize {
        let mut tmp = Vec::new();
        self.ser(&mut tmp);
        tmp.len()
    }
}

macro_rules! ser_prim {
    ($($t:ty),*) => {$(
        impl Ser for $t {
            fn ser(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn deser(r: &mut Reader) -> Self {
                <$t>::from_le_bytes(r.read_arr())
            }
            fn ser_size(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}
ser_prim!(u8, i8, u16, i16, u32, i32, u64, i64, f32, f64);

impl Ser for usize {
    fn ser(&self, out: &mut Vec<u8>) {
        (*self as u64).ser(out);
    }
    fn deser(r: &mut Reader) -> Self {
        u64::deser(r) as usize
    }
    fn ser_size(&self) -> usize {
        8
    }
}

impl Ser for bool {
    fn ser(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn deser(r: &mut Reader) -> Self {
        let at = r.take(1);
        r.buf[at] != 0
    }
    fn ser_size(&self) -> usize {
        1
    }
}

impl Ser for () {
    fn ser(&self, _out: &mut Vec<u8>) {}
    fn deser(_r: &mut Reader) -> Self {}
    fn ser_size(&self) -> usize {
        0
    }
}

impl Ser for String {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u64).ser(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn deser(r: &mut Reader) -> Self {
        let n = u64::deser(r) as usize;
        let at = r.take(n);
        String::from_utf8(r.buf[at..at + n].to_vec()).expect("invalid utf8 in message")
    }
    fn ser_size(&self) -> usize {
        8 + self.len()
    }
}

impl<T: Ser> Ser for Vec<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len() as u64).ser(out);
        for v in self {
            v.ser(out);
        }
    }
    fn deser(r: &mut Reader) -> Self {
        let n = u64::deser(r) as usize;
        (0..n).map(|_| T::deser(r)).collect()
    }
    fn ser_size(&self) -> usize {
        8 + self.iter().map(Ser::ser_size).sum::<usize>()
    }
}

impl<T: Ser> Ser for Option<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.ser(out);
            }
        }
    }
    fn deser(r: &mut Reader) -> Self {
        let at = r.take(1);
        if r.buf[at] == 0 {
            None
        } else {
            Some(T::deser(r))
        }
    }
    fn ser_size(&self) -> usize {
        1 + self.as_ref().map_or(0, Ser::ser_size)
    }
}

impl<T: Pod + 'static, const N: usize> Ser for [T; N] {
    fn ser(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&pod_to_bytes(self));
    }
    fn deser(r: &mut Reader) -> Self {
        let bytes = N * std::mem::size_of::<T>();
        let at = r.take(bytes);
        let v = pod_from_bytes::<T>(&r.buf[at..at + bytes]);
        v.try_into().map_err(|_| ()).expect("array length mismatch")
    }
    fn ser_size(&self) -> usize {
        N * std::mem::size_of::<T>()
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Ser),+> Ser for ($($name,)+) {
            fn ser(&self, out: &mut Vec<u8>) {
                $(self.$idx.ser(out);)+
            }
            fn deser(r: &mut Reader) -> Self {
                ($($name::deser(r),)+)
            }
            fn ser_size(&self) -> usize {
                0 $(+ self.$idx.ser_size())+
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

/// The paper's `upcxx::view<T>`: a serializable window over a sequence.
///
/// On the **sending** side, construct with [`make_view`] over any `Pod`
/// slice: serialization writes length + raw element bytes straight from the
/// caller's buffer. On the **receiving** side, deserialization produces a
/// `View` backed by the incoming network buffer (shared `Rc`) — no owned
/// copy. Handlers traverse it with [`View::iter`] or copy out explicitly
/// with [`View::to_vec`], matching the paper's "non-owning view into the
/// incoming network buffer" used by `accum` in the extend-add motif.
// analyze: allow(pod-transfer): View is a non-owning handle; Ser writes length + element bytes, the handle's own (Rc, offsets) layout never crosses the wire
pub struct View<T: Pod> {
    buf: Rc<Vec<u8>>,
    off: usize,
    len: usize, // element count
    _pd: std::marker::PhantomData<T>,
}

impl<T: Pod> Clone for View<T> {
    fn clone(&self) -> Self {
        View {
            buf: self.buf.clone(),
            off: self.off,
            len: self.len,
            _pd: std::marker::PhantomData,
        }
    }
}

/// Build a serializable view of `data` (paper: `upcxx::make_view`). The
/// elements are copied into the view eagerly so the view owns its bytes on
/// the send side; the zero-copy property applies on the receive side.
pub fn make_view<T: Pod>(data: &[T]) -> View<T> {
    let bytes = pod_to_bytes(data);
    View {
        buf: Rc::new(bytes),
        off: 0,
        len: data.len(),
        _pd: std::marker::PhantomData,
    }
}

impl<T: Pod> View<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }
    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element at `i` (reads unaligned from the underlying buffer).
    pub fn get(&self, i: usize) -> T {
        assert!(i < self.len, "view index {i} out of {}", self.len);
        let p = self.off + i * std::mem::size_of::<T>();
        // SAFETY: in-bounds by construction; Pod tolerates unaligned reads
        // via read_unaligned.
        unsafe { (self.buf.as_ptr().add(p) as *const T).read_unaligned() }
    }

    /// Iterate elements without materializing an owned copy.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Copy out into an owned vector.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }
}

impl<T: Pod> Ser for View<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        (self.len as u64).ser(out);
        let bytes = self.len * std::mem::size_of::<T>();
        out.extend_from_slice(&self.buf[self.off..self.off + bytes]);
    }
    fn deser(r: &mut Reader) -> Self {
        let len = u64::deser(r) as usize;
        let bytes = len * std::mem::size_of::<T>();
        let at = r.take(bytes);
        // Zero-copy: share the reader's buffer.
        View {
            buf: r.buf.clone(),
            off: at,
            len,
            _pd: std::marker::PhantomData,
        }
    }
    fn ser_size(&self) -> usize {
        8 + self.len * std::mem::size_of::<T>()
    }
}

/// Serialize a value to a buffer (recycled from the thread-local pool when
/// one is available — see the module's buffer-pool section).
pub fn to_bytes<T: Ser>(v: &T) -> Vec<u8> {
    let mut out = pool_take(v.ser_size());
    v.ser(&mut out);
    out
}

/// Deserialize a value from an owned buffer (must consume it exactly).
pub fn from_bytes<T: Ser>(buf: Vec<u8>) -> T {
    let mut r = Reader::new(buf);
    let v = T::deser(&mut r);
    assert_eq!(r.remaining(), 0, "trailing bytes after deserialization");
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Ser + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_bytes(&v);
        assert_eq!(bytes.len(), v.ser_size(), "ser_size mismatch for {v:?}");
        let back: T = from_bytes(bytes);
        assert_eq!(back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-7i8);
        roundtrip(53191u16);
        roundtrip(-12345i16);
        roundtrip(0xdead_beefu32);
        roundtrip(-1_000_000i32);
        roundtrip(u64::MAX);
        roundtrip(i64::MIN);
        roundtrip(3.5f32);
        roundtrip(-2.25e300f64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
        roundtrip(());
    }

    #[test]
    fn strings_and_collections_roundtrip() {
        roundtrip(String::from(""));
        roundtrip(String::from("Bonn"));
        roundtrip(String::from("ünïcødé ✓"));
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![String::from("a"), String::from("bb")]);
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip([1u64, 2, 3, 4]);
    }

    #[test]
    fn tuples_roundtrip() {
        roundtrip((1u32,));
        roundtrip((String::from("Germany"), String::from("Bonn")));
        roundtrip((1u8, 2u16, 3u32, 4u64, 5i64));
    }

    #[test]
    fn pod_bytes_roundtrip() {
        let v = vec![1.5f64, -2.5, 1e-300];
        let b = pod_to_bytes(&v);
        assert_eq!(b.len(), 24);
        assert_eq!(pod_from_bytes::<f64>(&b), v);
    }

    #[test]
    fn view_roundtrips_and_is_zero_copy() {
        let data: Vec<u64> = (0..100).map(|i| i * i).collect();
        let v = make_view(&data);
        assert_eq!(v.len(), 100);
        let bytes = to_bytes(&v);
        let mut r = Reader::new(bytes);
        let back = View::<u64>::deser(&mut r);
        assert_eq!(back.len(), 100);
        assert_eq!(back.to_vec(), data);
        assert_eq!(back.get(7), 49);
        // Zero-copy: the view shares the reader's buffer.
        assert_eq!(Rc::strong_count(&back.buf), 2); // reader + view
        assert_eq!(back.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn view_survives_reader_drop() {
        let data = vec![3u32, 1, 4, 1, 5];
        let bytes = to_bytes(&make_view(&data));
        let back = {
            let mut r = Reader::new(bytes);
            View::<u32>::deser(&mut r)
        };
        assert_eq!(back.to_vec(), data);
    }

    #[test]
    fn view_inside_tuple_message() {
        // The extend-add wire format: (sender_rank, view-of-doubles).
        let vals = vec![1.0f64, 2.0, 3.0];
        let msg = (7usize, make_view(&vals));
        let bytes = to_bytes(&msg);
        let mut r = Reader::new(bytes);
        let (rank, view) = <(usize, View<f64>)>::deser(&mut r);
        assert_eq!(rank, 7);
        assert_eq!(view.to_vec(), vals);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn truncated_message_panics() {
        let bytes = to_bytes(&12345u64);
        let mut r = Reader::new(bytes[..4].to_vec());
        let _ = u64::deser(&mut r);
    }

    #[test]
    #[should_panic(expected = "trailing bytes")]
    fn trailing_bytes_detected() {
        let mut bytes = to_bytes(&1u32);
        bytes.push(99);
        let _: u32 = from_bytes(bytes);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn view_index_bounds_checked() {
        let v = make_view(&[1u8, 2]);
        let _ = v.get(2);
    }

    #[test]
    fn ser_size_matches_for_views() {
        let v = make_view(&[0u64; 13]);
        assert_eq!(v.ser_size(), 8 + 13 * 8);
        assert_eq!(to_bytes(&v).len(), v.ser_size());
    }

    #[test]
    fn buffer_pool_recycles_consumed_readers() {
        let v: Vec<u64> = (0..16).collect();
        // First roundtrip seeds the pool (its Reader drops fully consumed).
        let _: Vec<u64> = from_bytes(to_bytes(&v));
        let (hits_before, _) = buf_pool_stats();
        let _: Vec<u64> = from_bytes(to_bytes(&v));
        let (hits_after, _) = buf_pool_stats();
        assert!(
            hits_after > hits_before,
            "second roundtrip should reuse the recycled buffer"
        );
    }

    #[test]
    fn buffer_shared_with_view_is_not_recycled() {
        let data = vec![11u64, 22, 33];
        let bytes = to_bytes(&make_view(&data));
        let view = {
            let mut r = Reader::new(bytes);
            View::<u64>::deser(&mut r)
            // Reader drops here, but the view still shares the buffer: the
            // pool must not reclaim it out from under the zero-copy window.
        };
        // Churn the pool: if the view's bytes had been recycled, this write
        // would corrupt them.
        for _ in 0..8 {
            let _: u64 = from_bytes(to_bytes(&0xdead_beef_u64));
        }
        assert_eq!(view.to_vec(), data);
    }
}

#[cfg(test)]
mod randomized {
    //! Deterministic randomized roundtrips (replacing the former proptest
    //! suite — the workspace builds offline with no external crates).
    use super::*;
    use pgas_des::rng::Rng;

    fn rand_string(r: &mut Rng) -> String {
        let n = r.gen_range(40);
        (0..n)
            .map(|_| char::from_u32(r.gen_between(1, 0xD7FF) as u32).unwrap_or('x'))
            .collect()
    }

    #[test]
    fn u64_roundtrip_random() {
        let mut r = Rng::new(0x5e5);
        for _ in 0..256 {
            let v = r.next_u64();
            assert_eq!(from_bytes::<u64>(to_bytes(&v)), v);
        }
    }

    #[test]
    fn string_roundtrip_random() {
        let mut r = Rng::new(0x57);
        for _ in 0..128 {
            let v = rand_string(&mut r);
            assert_eq!(from_bytes::<String>(to_bytes(&v)), v);
        }
    }

    #[test]
    fn vec_f64_roundtrip_random() {
        let mut r = Rng::new(0xf64);
        for _ in 0..128 {
            let v: Vec<f64> = (0..r.gen_range(100))
                .map(|_| (r.gen_f64() - 0.5) * 1e12)
                .collect();
            let got: Vec<f64> = from_bytes(to_bytes(&v));
            assert_eq!(got, v);
        }
    }

    #[test]
    fn nested_tuple_roundtrip_random() {
        let mut r = Rng::new(0x70b1e);
        for _ in 0..128 {
            let v = (
                r.next_u64() as u32,
                rand_string(&mut r),
                (0..r.gen_range(20))
                    .map(|_| r.next_u64())
                    .collect::<Vec<u64>>(),
            );
            let got: (u32, String, Vec<u64>) = from_bytes(to_bytes(&v));
            assert_eq!(got, v);
        }
    }

    #[test]
    fn view_roundtrip_random() {
        let mut r = Rng::new(0x41e);
        for _ in 0..128 {
            let v: Vec<u64> = (0..r.gen_range(200)).map(|_| r.next_u64()).collect();
            let bytes = to_bytes(&make_view(&v));
            let mut rd = Reader::new(bytes);
            let view = View::<u64>::deser(&mut rd);
            assert_eq!(view.to_vec(), v);
        }
    }

    #[test]
    fn ser_size_always_matches_random() {
        let mut r = Rng::new(0x512e);
        for _ in 0..128 {
            let msg = (
                r.next_u64(),
                rand_string(&mut r),
                (0..r.gen_range(50))
                    .map(|_| r.next_u64() as u32)
                    .collect::<Vec<u32>>(),
            );
            assert_eq!(to_bytes(&msg).len(), msg.ser_size());
        }
    }
}
