//! Self-describing Active-Message frames for address-space-crossing
//! conduits.
//!
//! The smp and sim conduits move AMs as boxed closures ([`gasnet::Item`]) —
//! possible only because every rank shares one address space. The proc
//! conduit's ranks are separate processes, so an AM must travel as bytes: a
//! **frame** carrying (a) *which handler to run*, (b) the op's trace
//! identity, (c) the sender's sanitizer clock snapshot and (d) the
//! serialized payload. This module is the single encoder/decoder.
//!
//! ## Shipping functions across processes
//!
//! Every rank of a proc world executes the *same binary* (the launcher
//! re-execs `current_exe()`), but ASLR gives each process a different image
//! base, so a raw `fn` address from one rank is garbage in another. What
//! *is* stable is the distance between two text symbols of one binary:
//! frames therefore carry each function as its offset from a fixed
//! [`code_anchor`], and the receiver adds its own anchor back. (The same
//! trick fixes [`crate::dist`]'s serialized `fn` tokens.)
//!
//! ## One code path for closures and frames
//!
//! Handler logic is **not** duplicated per representation. Every AM is
//! built as an [`AmDesc`] naming a monomorphized *trampoline*
//! `fn(FrameEnv)`; [`AmDesc::into_am`] then either wraps it in a closure
//! (`Items` conduits) or encodes it (`Frames` conduits). Either way the
//! target runs the identical trampoline with an identical [`FrameEnv`], so
//! trace shape, sanitizer joins and span bookkeeping cannot diverge between
//! conduits.
//!
//! ## Wire layout (little-endian)
//!
//! Single frame:
//!
//! ```text
//! [0u8] [u64 tramp_off] [u64 user_off]
//! [u64 tid][u8 kind][u32 peer][u32 bytes][u32 parent_origin][u64 parent_op]
//! [u32 origin] [u64 aux]
//! [u8 has_snap] { [u32 n] [n × u64] }   // sanitizer clock, if any
//! [u32 body_len] [body]
//! ```
//!
//! Batch container (built by `crate::agg` in frame mode):
//!
//! ```text
//! [1u8]
//! [u64 tid][u8 kind][u32 peer][u32 bytes][u32 parent_origin][u64 parent_op]
//! [u32 origin] [u32 count] count × { [u32 len] [single frame] }
//! ```
//!
//! The decoder brackets a batch exactly like `agg::flush_target`'s
//! closure-mode batches: batch `Deliver`, members in order, batch
//! `Complete`, then an `ItemTail` flush of whatever the members buffered.

use crate::ctx::try_ctx;
use crate::trace::{FlushReason, OpKind, Phase, TraceTag};

/// A monomorphized AM handler entry point (see module docs): receives the
/// decoded environment and runs the op's full target-side logic.
pub(crate) type Tramp = fn(FrameEnv);

/// Everything an AM trampoline needs at the target, identical whether the
/// AM arrived as a closure or as a decoded frame.
pub(crate) struct FrameEnv {
    /// The user/handler `fn` pointer as an absolute address in *this*
    /// process (already anchor-adjusted); `0` when the trampoline needs no
    /// user function (RPC replies).
    pub user: usize,
    /// Trampoline-specific word (the reply path's op id).
    pub aux: u64,
    /// The op's trace identity, as assigned at the initiator.
    pub tag: TraceTag,
    /// The initiating rank.
    pub origin: u32,
    /// Sender's sanitizer vector-clock snapshot.
    pub snap: Option<Vec<u64>>,
    /// Serialized payload.
    pub body: Vec<u8>,
}

/// One outgoing AM, representation-neutral. Built by `crate::rpc`, shipped
/// via [`AmDesc::into_am`] according to the conduit's [`gasnet::AmMode`].
pub(crate) struct AmDesc {
    /// Target-side entry point.
    pub tramp: Tramp,
    /// User `fn` passed through to the trampoline (absolute, this process).
    pub user: usize,
    /// Trampoline-specific word.
    pub aux: u64,
    /// Trace identity.
    pub tag: TraceTag,
    /// Initiating rank.
    pub origin: u32,
    /// Sanitizer clock snapshot.
    pub snap: Option<Vec<u64>>,
    /// Serialized payload.
    pub body: Vec<u8>,
}

impl AmDesc {
    /// Package for the conduit: a closure for `Items` conduits, an encoded
    /// frame for `Frames` conduits.
    pub(crate) fn into_am(self, frames: bool) -> gasnet::Am {
        if frames {
            gasnet::Am::Frame(self.encode())
        } else {
            gasnet::Am::Item(self.into_item())
        }
    }

    /// The closure form: defers straight to the trampoline.
    pub(crate) fn into_item(self) -> gasnet::Item {
        let AmDesc {
            tramp,
            user,
            aux,
            tag,
            origin,
            snap,
            body,
        } = self;
        Box::new(move || {
            tramp(FrameEnv {
                user,
                aux,
                tag,
                origin,
                snap,
                body,
            })
        })
    }

    /// The wire form (layout in module docs).
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.body.len());
        out.push(0u8);
        out.extend_from_slice(&encode_fn(self.tramp as usize).to_le_bytes());
        out.extend_from_slice(&encode_fn(self.user).to_le_bytes());
        encode_tag(&mut out, self.tag);
        out.extend_from_slice(&self.origin.to_le_bytes());
        out.extend_from_slice(&self.aux.to_le_bytes());
        match &self.snap {
            None => out.push(0),
            Some(clock) => {
                out.push(1);
                out.extend_from_slice(&(clock.len() as u32).to_le_bytes());
                for w in clock {
                    out.extend_from_slice(&w.to_le_bytes());
                }
            }
        }
        out.extend_from_slice(&(self.body.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

// ------------------------------------------------- fn <-> offset encoding

/// Fixed text-segment reference point for function encoding (module docs).
/// `#[inline(never)]` pins a real symbol whose address is meaningful.
#[inline(never)]
fn anchor_symbol() {}

/// This process's code anchor.
fn code_anchor() -> usize {
    anchor_symbol as fn() as usize
}

/// Encode a function address (or 0) as an ASLR-stable anchor offset.
pub(crate) fn encode_fn(addr: usize) -> u64 {
    (addr as u64).wrapping_sub(code_anchor() as u64)
}

/// Recover an absolute address in this process from an anchor offset.
pub(crate) fn decode_fn(off: u64) -> usize {
    off.wrapping_add(code_anchor() as u64) as usize
}

// ------------------------------------------------------- tag wire helpers

fn kind_to_u8(k: OpKind) -> u8 {
    match k {
        OpKind::Put => 0,
        OpKind::Get => 1,
        OpKind::Amo => 2,
        OpKind::Rpc => 3,
        OpKind::RpcFf => 4,
        OpKind::Reply => 5,
        OpKind::SysAm => 6,
        OpKind::Batch => 7,
    }
}

fn kind_from_u8(b: u8) -> OpKind {
    match b {
        0 => OpKind::Put,
        1 => OpKind::Get,
        2 => OpKind::Amo,
        3 => OpKind::Rpc,
        4 => OpKind::RpcFf,
        5 => OpKind::Reply,
        6 => OpKind::SysAm,
        7 => OpKind::Batch,
        other => panic!("corrupt AM frame: unknown OpKind byte {other}"),
    }
}

fn encode_tag(out: &mut Vec<u8>, tag: TraceTag) {
    out.extend_from_slice(&tag.tid.to_le_bytes());
    out.push(kind_to_u8(tag.kind));
    out.extend_from_slice(&tag.peer.to_le_bytes());
    out.extend_from_slice(&tag.bytes.to_le_bytes());
    out.extend_from_slice(&tag.parent_origin.to_le_bytes());
    out.extend_from_slice(&tag.parent_op.to_le_bytes());
}

/// Minimal cursor over a frame (panics on truncation — a malformed frame is
/// a runtime bug, never application data).
struct Cur<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Cur<'a> {
        Cur { b, i: 0 }
    }
    fn u8(&mut self) -> u8 {
        let v = self.b[self.i];
        self.i += 1;
        v
    }
    fn u32(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.b[self.i..self.i + 4].try_into().unwrap());
        self.i += 4;
        v
    }
    fn u64(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.b[self.i..self.i + 8].try_into().unwrap());
        self.i += 8;
        v
    }
    fn bytes(&mut self, n: usize) -> &'a [u8] {
        let v = &self.b[self.i..self.i + n];
        self.i += n;
        v
    }
}

fn decode_tag(c: &mut Cur) -> TraceTag {
    TraceTag {
        tid: c.u64(),
        kind: kind_from_u8(c.u8()),
        peer: c.u32(),
        bytes: c.u32(),
        parent_origin: c.u32(),
        parent_op: c.u64(),
    }
}

fn decode_single(c: &mut Cur) -> (Tramp, FrameEnv) {
    let tramp_addr = decode_fn(c.u64());
    let user = decode_fn(c.u64());
    let tag = decode_tag(c);
    let origin = c.u32();
    let aux = c.u64();
    let snap = match c.u8() {
        0 => None,
        _ => {
            let n = c.u32() as usize;
            Some((0..n).map(|_| c.u64()).collect())
        }
    };
    let body_len = c.u32() as usize;
    let body = c.bytes(body_len).to_vec();
    // SAFETY: `tramp_addr` was produced by `encode_fn` from a `Tramp` in
    // this same binary (single-executable SPMD; module docs); the anchor
    // arithmetic restores the original address under this process's image
    // base. The signature is pinned by construction in `AmDesc`.
    let tramp: Tramp = unsafe { std::mem::transmute::<usize, Tramp>(tramp_addr) };
    (
        tramp,
        FrameEnv {
            user,
            aux,
            tag,
            origin,
            snap,
            body,
        },
    )
}

// ----------------------------------------------------------- batch frames

/// Build a batch container from already-encoded member frames (`crate::agg`
/// frame-mode flush). `batch_tag`/`origin` brand the target-side bracket.
pub(crate) fn encode_batch(members: &[Vec<u8>], batch_tag: TraceTag, origin: u32) -> Vec<u8> {
    let total: usize = members.iter().map(|m| 4 + m.len()).sum();
    let mut out = Vec::with_capacity(48 + total);
    out.push(1u8);
    encode_tag(&mut out, batch_tag);
    out.extend_from_slice(&origin.to_le_bytes());
    out.extend_from_slice(&(members.len() as u32).to_le_bytes());
    for m in members {
        out.extend_from_slice(&(m.len() as u32).to_le_bytes());
        out.extend_from_slice(m);
    }
    out
}

// -------------------------------------------------------------- execution

/// Decode and run one received frame (single or batch) on the current rank.
/// This is the `sink` the progress paths hand to [`gasnet::Conduit::poll`]
/// on frame-mode conduits.
pub(crate) fn exec_frame_sink(bytes: Vec<u8>) {
    let mut c = Cur::new(&bytes);
    match c.u8() {
        0 => {
            let (tramp, env) = decode_single(&mut c);
            tramp(env);
        }
        1 => exec_batch(&mut c),
        other => panic!("corrupt AM frame: unknown container byte {other}"),
    }
}

/// Run a batch container: the same Deliver/members/Complete/ItemTail
/// bracket `agg::flush_target` builds in closure mode.
fn exec_batch(c: &mut Cur) {
    let batch_tag = decode_tag(c);
    let origin = c.u32();
    let count = c.u32() as usize;
    if let Some(rc) = try_ctx() {
        rc.emit_from(Phase::Deliver, batch_tag, origin, FlushReason::None);
    }
    for _ in 0..count {
        let len = c.u32() as usize;
        let mut mc = Cur::new(c.bytes(len));
        match mc.u8() {
            0 => {
                let (tramp, env) = decode_single(&mut mc);
                tramp(env);
            }
            other => panic!("corrupt AM batch member: container byte {other}"),
        }
    }
    if let Some(rc) = try_ctx() {
        rc.emit_from(Phase::Complete, batch_tag, origin, FlushReason::None);
        crate::agg::flush_all_ctx(&rc, FlushReason::ItemTail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static SEEN: AtomicU64 = AtomicU64::new(0);

    fn probe_tramp(env: FrameEnv) {
        // Record enough of the env to prove a lossless round trip.
        let first_body = env.body.first().copied().unwrap_or(0) as u64;
        SEEN.store(
            env.aux ^ env.tag.tid ^ (env.origin as u64) ^ first_body,
            Ordering::SeqCst,
        );
        assert_eq!(env.user, probe_user as fn() as usize);
        assert_eq!(env.snap.as_deref(), Some(&[7u64, 9][..]));
        assert_eq!(env.tag.kind, OpKind::SysAm);
        assert_eq!(env.tag.parent_origin, 3);
        assert_eq!(env.tag.parent_op, 44);
    }

    fn probe_user() {}

    fn desc() -> AmDesc {
        AmDesc {
            tramp: probe_tramp,
            user: probe_user as fn() as usize,
            aux: 0xA5,
            tag: TraceTag {
                tid: 21,
                kind: OpKind::SysAm,
                peer: 2,
                bytes: 3,
                parent_origin: 3,
                parent_op: 44,
            },
            origin: 6,
            snap: Some(vec![7, 9]),
            body: vec![13, 1, 2],
        }
    }

    #[test]
    fn fn_offsets_round_trip() {
        for f in [
            probe_tramp as Tramp as usize,
            probe_user as fn() as usize,
            0usize,
        ] {
            assert_eq!(decode_fn(encode_fn(f)), f);
        }
    }

    #[test]
    fn encode_decode_execute_single() {
        let bytes = desc().encode();
        exec_frame_sink(bytes);
        assert_eq!(SEEN.load(Ordering::SeqCst), 0xA5 ^ 21 ^ 6 ^ 13);
    }

    #[test]
    fn item_and_frame_agree() {
        // The closure form and the decoded-frame form must drive the same
        // trampoline with the same env (the module's core invariant).
        (desc().into_item())();
        let via_item = SEEN.swap(0, Ordering::SeqCst);
        exec_frame_sink(desc().encode());
        assert_eq!(SEEN.load(Ordering::SeqCst), via_item);
    }
}
