//! Remote atomics (§II): asynchronous atomic operations on `u64` words in
//! shared segments.
//!
//! The paper notes that "on network hardware with appropriate capabilities
//! (such as available in Cray Aries) remote atomic updates can also be
//! offloaded, improving latency and scalability". The two conduits reproduce
//! both sides of that remark: on **smp** the operation is a real CPU atomic
//! on the segment word; on **sim** it is modeled as a NIC-offloaded AMO —
//! a small command packet, the read-modify-write at the target NIC with *no
//! target CPU time*, and a hardware-level reply.
//!
//! As in UPC++, atomics are grouped in an [`AtomicDomain`] constructed over
//! the set of operations the program needs; every operation is asynchronous
//! and returns a future.

use crate::ctx::{ctx, DefOp};
use crate::future::{Future, Promise};
use crate::global_ptr::GlobalPtr;
use gasnet::sim::AmoOp;

/// The operations a domain may be constructed with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicOp {
    /// Atomic load.
    Load,
    /// Atomic store.
    Store,
    /// Atomic fetch-and-add.
    FetchAdd,
    /// Atomic compare-and-swap.
    CompareExchange,
}

/// A domain of remote atomic operations over `u64` (paper:
/// `upcxx::atomic_domain<uint64_t>`). Construction declares the op set;
/// using an undeclared op panics (UPC++ makes it undefined behaviour —
/// we make it loud).
pub struct AtomicDomain {
    ops: Vec<AtomicOp>,
}

impl AtomicDomain {
    /// Construct a domain supporting `ops`.
    pub fn new(ops: Vec<AtomicOp>) -> AtomicDomain {
        AtomicDomain { ops }
    }

    /// Domain with every operation enabled.
    pub fn all() -> AtomicDomain {
        AtomicDomain {
            ops: vec![
                AtomicOp::Load,
                AtomicOp::Store,
                AtomicOp::FetchAdd,
                AtomicOp::CompareExchange,
            ],
        }
    }

    fn check(&self, op: AtomicOp) {
        assert!(
            self.ops.contains(&op),
            "atomic domain does not include {op:?}"
        );
    }

    /// Atomically add `val` to the remote word; future carries the prior
    /// value.
    pub fn fetch_add(&self, target: GlobalPtr<u64>, val: u64) -> Future<u64> {
        self.check(AtomicOp::FetchAdd);
        amo(target, AmoOp::FetchAdd, val, 0)
    }

    /// Atomic read of the remote word.
    pub fn load(&self, target: GlobalPtr<u64>) -> Future<u64> {
        self.check(AtomicOp::Load);
        amo(target, AmoOp::Load, 0, 0)
    }

    /// Atomic write; future readies when the store is globally performed.
    pub fn store(&self, target: GlobalPtr<u64>, val: u64) -> Future<()> {
        self.check(AtomicOp::Store);
        amo(target, AmoOp::Store, val, 0).then(|_| ())
    }

    /// Atomic compare-and-swap: writes `new` iff the word equals `expected`;
    /// future carries the prior value (success iff it equals `expected`).
    pub fn compare_exchange(&self, target: GlobalPtr<u64>, expected: u64, new: u64) -> Future<u64> {
        self.check(AtomicOp::CompareExchange);
        amo(target, AmoOp::CompareExchange, new, expected)
    }
}

fn amo(target: GlobalPtr<u64>, op: AmoOp, operand: u64, compare: u64) -> Future<u64> {
    assert!(!target.is_null(), "atomic on null global pointer");
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.stats.rma_ops.set(c.stats.rma_ops.get() + 1);
    let tag = c.op_tag(crate::trace::OpKind::Amo, target.rank() as u32, 8);
    let p = Promise::<u64>::new();
    let p2 = p.clone();
    let done: Box<dyn FnOnce(u64)> = Box::new(move |old| p2.fulfill(old));
    let done = if c.san_on.get() {
        crate::san::check_rma(
            &c,
            target.rank(),
            target.byte_offset(),
            8,
            crate::san::AccessKind::Amo,
            tag.tid,
            "atomic",
        );
        crate::san::wrap_done_val(target.rank(), tag.tid, done)
    } else {
        done
    };
    c.inject(
        DefOp::Amo {
            target: target.rank(),
            off: target.byte_offset(),
            op,
            operand,
            compare,
            done,
        },
        tag,
    );
    p.get_future()
}
