//! Global pointers into the partitioned global address space (§II).
//!
//! A [`GlobalPtr`] names an object in some rank's shared segment. Exactly as
//! the paper specifies, it **cannot be dereferenced** — there is no `Deref`
//! impl, because "this would violate our principle of making all
//! communication syntactically explicit". What it *does* support, mirroring
//! the paper:
//!
//! * pointer arithmetic ([`GlobalPtr::add`], [`GlobalPtr::offset_elems`]) and
//!   pass-by-value (it is `Copy` and [`crate::ser::Ser`], so it travels in
//!   RPC arguments — the DHT motif returns one from `make_lz`);
//! * conversion to/from a local view **on the owning rank only**
//!   ([`GlobalPtr::local_read`] / [`GlobalPtr::local_write`] and, on the smp
//!   conduit, a raw [`GlobalPtr::local_ptr`]);
//! * use as the remote side of `rput` / `rget` and remote atomics.

use crate::ctx::{ctx, Backend};
use crate::ser::{Pod, Reader, Ser};
use gasnet::Rank;
use std::fmt;
use std::marker::PhantomData;

/// A typed pointer to `count * size_of::<T>()` bytes in `rank`'s shared
/// segment. Not dereferenceable; see module docs.
///
/// `repr(C)`: the pointer crosses ranks in RPC arguments, so its layout
/// must not depend on the compilation's field ordering.
#[repr(C)]
pub struct GlobalPtr<T: Pod> {
    rank: u64,
    /// Byte offset within the owning rank's segment; `u64::MAX` means null.
    off: u64,
    _pd: PhantomData<*const T>,
}

// Manual impls: `derive` would bound them on `T`.
impl<T: Pod> Clone for GlobalPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: Pod> Copy for GlobalPtr<T> {}
impl<T: Pod> PartialEq for GlobalPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.off == other.off
    }
}
impl<T: Pod> Eq for GlobalPtr<T> {}
impl<T: Pod> std::hash::Hash for GlobalPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank.hash(state);
        self.off.hash(state);
    }
}

impl<T: Pod> fmt::Debug for GlobalPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "gptr<{}>(null)", std::any::type_name::<T>())
        } else {
            write!(
                f,
                "gptr<{}>(rank {}, off {})",
                std::any::type_name::<T>(),
                self.rank,
                self.off
            )
        }
    }
}

const NULL_OFF: u64 = u64::MAX;

impl<T: Pod> GlobalPtr<T> {
    /// The null global pointer.
    pub fn null() -> GlobalPtr<T> {
        GlobalPtr {
            rank: 0,
            off: NULL_OFF,
            _pd: PhantomData,
        }
    }

    /// Construct from raw parts (crate-internal; applications obtain global
    /// pointers from [`crate::allocate`] and RPC results).
    pub(crate) fn from_parts(rank: Rank, off: usize) -> GlobalPtr<T> {
        GlobalPtr {
            rank: rank as u64,
            off: off as u64,
            _pd: PhantomData,
        }
    }

    /// Whether this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.off == NULL_OFF
    }

    /// The owning rank.
    pub fn rank(&self) -> Rank {
        assert!(!self.is_null(), "rank() on null global pointer");
        self.rank as Rank
    }

    /// Byte offset within the owning rank's segment.
    pub fn byte_offset(&self) -> usize {
        assert!(!self.is_null(), "offset of null global pointer");
        self.off as usize
    }

    /// Whether the calling rank owns the referent (paper: local()-nullable).
    pub fn is_local(&self) -> bool {
        !self.is_null() && self.rank as usize == ctx().me
    }

    /// Pointer arithmetic in elements (paper: global pointers "support
    /// arithmetic"). Panics on overflow instead of silently wrapping into a
    /// bogus offset.
    pub fn add(&self, elems: usize) -> GlobalPtr<T> {
        assert!(!self.is_null(), "arithmetic on null global pointer");
        let off = (elems as u128)
            .checked_mul(std::mem::size_of::<T>() as u128)
            .and_then(|d| (self.off as u128).checked_add(d))
            .filter(|&o| o < NULL_OFF as u128)
            .unwrap_or_else(|| {
                panic!(
                    "global-pointer arithmetic overflow: {self:?} + {elems} elements of {} bytes",
                    std::mem::size_of::<T>()
                )
            });
        GlobalPtr {
            rank: self.rank,
            off: off as u64,
            _pd: PhantomData,
        }
    }

    /// Signed element offset. Panics when the result leaves `[0, u64::MAX)`
    /// — a negative result would otherwise wrap into a huge offset.
    pub fn offset_elems(&self, elems: isize) -> GlobalPtr<T> {
        assert!(!self.is_null(), "arithmetic on null global pointer");
        let delta = (elems as i128) * std::mem::size_of::<T>() as i128;
        let off = self.off as i128 + delta;
        assert!(
            (0..NULL_OFF as i128).contains(&off),
            "global-pointer arithmetic overflow: {self:?} offset by {elems} elements of {} bytes \
             lands at byte offset {off}",
            std::mem::size_of::<T>()
        );
        GlobalPtr {
            rank: self.rank,
            off: off as u64,
            _pd: PhantomData,
        }
    }

    /// Reinterpret as a pointer to a different `Pod` element type at the
    /// same byte address (UPC++'s `reinterpret_pointer_cast` for shared
    /// memory; the DHT motif casts byte landing zones to element views).
    pub fn cast<U: Pod>(self) -> GlobalPtr<U> {
        GlobalPtr {
            rank: self.rank,
            off: self.off,
            _pd: PhantomData,
        }
    }

    /// Element distance `self - origin` (must share rank; panics otherwise).
    pub fn elems_from(&self, origin: &GlobalPtr<T>) -> isize {
        assert_eq!(self.rank, origin.rank, "pointers from different ranks");
        ((self.off as i128 - origin.off as i128) / std::mem::size_of::<T>() as i128) as isize
    }

    /// Read `dst.len()` elements from the referent, **owning rank only** —
    /// the paper's downcast of a global pointer to a local pointer. Remote
    /// data must travel via `rget`.
    pub fn local_read(&self, dst: &mut [T]) {
        assert!(self.is_local(), "local_read on a non-local global pointer");
        let c = ctx();
        let _g = crate::persona::lock(&c);
        let bytes_len = std::mem::size_of_val(dst);
        if c.san_on.get() {
            crate::san::check_local(
                &c,
                self.off as usize,
                bytes_len,
                crate::san::AccessKind::Read,
                "local_read",
            );
        }
        match &c.backend {
            Backend::Cond(h) => {
                let mut buf = vec![0u8; bytes_len];
                h.get_bytes(c.me, self.off as usize, &mut buf);
                dst.copy_from_slice(&crate::ser::pod_from_bytes(&buf));
            }
            Backend::Sim(w) => {
                let mut buf = vec![0u8; bytes_len];
                w.seg_read(c.me, self.off as usize, &mut buf);
                dst.copy_from_slice(&crate::ser::pod_from_bytes(&buf));
            }
        }
    }

    /// Write elements to the referent, **owning rank only**.
    pub fn local_write(&self, src: &[T]) {
        assert!(self.is_local(), "local_write on a non-local global pointer");
        let c = ctx();
        let _g = crate::persona::lock(&c);
        let bytes = crate::ser::pod_to_bytes(src);
        if c.san_on.get() {
            crate::san::check_local(
                &c,
                self.off as usize,
                bytes.len(),
                crate::san::AccessKind::Write,
                "local_write",
            );
        }
        match &c.backend {
            Backend::Cond(h) => h.put_bytes(c.me, self.off as usize, &bytes),
            Backend::Sim(w) => w.seg_write(c.me, self.off as usize, &bytes),
        }
    }

    /// Raw local pointer to the referent — **real-transport conduits and
    /// owning rank only** (simulated segments have no stable raw address).
    /// The PGAS synchronization contract applies to all access through it.
    pub fn local_ptr(&self) -> *mut T {
        assert!(self.is_local(), "local_ptr on a non-local global pointer");
        let c = ctx();
        let _g = crate::persona::lock(&c);
        if c.san_on.get() {
            // Raw-pointer accesses have unknown extent in time, so only the
            // referent's bounds/liveness are validated — no race record.
            crate::san::check_bounds_only(
                &c,
                self.off as usize,
                std::mem::size_of::<T>(),
                "local_ptr",
            );
        }
        match &c.backend {
            Backend::Cond(h) => unsafe { h.seg_base(c.me).add(self.off as usize) as *mut T },
            Backend::Sim(_) => {
                panic!("local_ptr is unavailable under the sim conduit; use local_read/local_write")
            }
        }
    }
}

impl<T: Pod> Ser for GlobalPtr<T> {
    fn ser(&self, out: &mut Vec<u8>) {
        self.rank.ser(out);
        self.off.ser(out);
    }
    fn deser(r: &mut Reader) -> Self {
        let rank = u64::deser(r);
        let off = u64::deser(r);
        GlobalPtr {
            rank,
            off,
            _pd: PhantomData,
        }
    }
    fn ser_size(&self) -> usize {
        16
    }
}

/// Allocate `count` elements of `T` in the **calling rank's** shared segment
/// (paper: `upcxx::allocate`; non-collective). Panics when the segment is
/// exhausted — sized segments are a deliberate PGAS design point.
pub fn allocate<T: Pod>(count: usize) -> GlobalPtr<T> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let len = count * std::mem::size_of::<T>();
    let off = c
        .alloc
        .borrow_mut()
        .alloc(len)
        .unwrap_or_else(|| panic!("shared segment exhausted allocating {len} bytes"));
    // Mirror into the sanitizer's live-extent map (unconditional, so the
    // mirror is complete if the sanitizer is enabled later).
    crate::san::note_alloc(&c, off, len);
    GlobalPtr::from_parts(c.me, off)
}

/// Release memory obtained from [`allocate`] (owning rank only). A pointer
/// that was never returned by [`allocate`] — interior (produced by
/// `add`/`cast`), stale, or plain wrong — is diagnosed here with the
/// pointer's debug rendering rather than deep inside the allocator.
pub fn deallocate<T: Pod>(p: GlobalPtr<T>) {
    assert!(p.is_local(), "deallocate must run on the owning rank");
    let c = ctx();
    let _g = crate::persona::lock(&c);
    crate::alloc::segment_free(&c, p.byte_offset(), &format!("{p:?}"));
}
