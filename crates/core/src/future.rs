//! Futures and promises — the asynchrony backbone of UPC++ (§II).
//!
//! Faithful to the paper's semantics:
//!
//! * A [`Future`] is the **consumer** side of a non-blocking operation: query
//!   readiness, retrieve results, chain callbacks with [`Future::then`], and
//!   conjoin with [`when_all`]. Futures are *rank-local* — "used to manage
//!   asynchronous dependencies within a thread and not for direct
//!   communication between threads or processes" — which is why they are
//!   cheap `Rc`-based handles and deliberately `!Send`.
//! * A [`Promise`] is the **producer** side. It carries a dependency counter
//!   (starting at one); [`Promise::require_anonymous`] registers extra
//!   dependencies, [`Promise::fulfill_anonymous`] retires them, and
//!   [`Promise::finalize`] retires the initial one and hands back the future.
//!   This is exactly the counter idiom of the paper's flood benchmark and the
//!   `e_add_prom` counter in its Fig. 7.
//! * Multiple futures may view one promise; a callback chained on a ready
//!   future runs immediately (the paper's `.then` may run "when the values
//!   are available", and attach-time is such a moment).
//!
//! `then` callbacks receive the value **by clone** when the future can be
//! observed again later (UPC++ hands callbacks copies of the encapsulated
//! values; `T: Clone` is the Rust spelling of that contract).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A callback awaiting a future's value.
type Callback<T> = Box<dyn FnOnce(&T)>;

enum State<T> {
    /// Not ready; holds callbacks awaiting the value.
    Pending(Vec<Callback<T>>),
    /// Value available but temporarily moved out while callbacks execute;
    /// callbacks attached meanwhile queue here and run in the same drain.
    /// Only observable from *inside* a callback on the same future
    /// (single-threaded runtime).
    Running(Vec<Callback<T>>),
    /// Value available.
    Ready(T),
}

struct Core<T> {
    state: RefCell<State<T>>,
}

impl<T: 'static> Core<T> {
    fn new_pending() -> Rc<Self> {
        Rc::new(Core {
            state: RefCell::new(State::Pending(Vec::new())),
        })
    }

    fn new_ready(v: T) -> Rc<Self> {
        Rc::new(Core {
            state: RefCell::new(State::Ready(v)),
        })
    }

    /// Fulfill with trampolining: callback cascades (a `then` chain of depth
    /// N fulfilling N downstream cores) run iteratively through a
    /// thread-local pending queue instead of N nested stack frames.
    fn fulfill(self: &Rc<Self>, v: T) {
        let this = self.clone();
        trampoline(move || this.fulfill_now(v));
    }

    fn fulfill_now(self: &Rc<Self>, v: T) {
        let cbs = {
            let mut st = self.state.borrow_mut();
            match &mut *st {
                State::Ready(_) | State::Running(_) => panic!("future fulfilled twice"),
                State::Pending(cbs) => {
                    let cbs = std::mem::take(cbs);
                    *st = State::Running(Vec::new());
                    cbs
                }
            }
        };
        self.drain(v, cbs);
    }

    /// Run callbacks with no borrow held (they may attach more callbacks to
    /// this same future — those land in the Running queue and drain here),
    /// then park the value as Ready.
    fn drain(self: &Rc<Self>, v: T, mut cbs: Vec<Callback<T>>) {
        loop {
            for cb in cbs.drain(..) {
                cb(&v);
            }
            let mut st = self.state.borrow_mut();
            match &mut *st {
                State::Running(q) if q.is_empty() => {
                    *st = State::Ready(v);
                    return;
                }
                State::Running(q) => {
                    cbs = std::mem::take(q);
                }
                _ => unreachable!("state changed under a running drain"),
            }
        }
    }

    fn add_callback(self: &Rc<Self>, cb: Box<dyn FnOnce(&T)>) {
        let mut cb = Some(cb);
        let ready = {
            let mut st = self.state.borrow_mut();
            match &mut *st {
                State::Pending(cbs) | State::Running(cbs) => {
                    cbs.push(cb.take().expect("callback consumed twice"));
                    None
                }
                State::Ready(_) => {
                    // Move the value out so the callback runs borrow-free
                    // (it may re-attach to this very future).
                    let State::Ready(v) = std::mem::replace(&mut *st, State::Running(Vec::new()))
                    else {
                        unreachable!()
                    };
                    Some(v)
                }
            }
        };
        if let Some(v) = ready {
            let this = self.clone();
            let cb = cb.take().expect("callback consumed twice");
            trampoline(move || this.drain(v, vec![cb]));
        }
    }
}

thread_local! {
    static DRAIN_DEPTH: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
    static PENDING: RefCell<Vec<Box<dyn FnOnce()>>> = const { RefCell::new(Vec::new()) };
}

/// Run `job` now if no callback drain is active on this thread; otherwise
/// queue it for the active outermost drain. The outermost call also drains
/// everything queued by nested fulfillments, so arbitrarily deep `then`
/// chains complete in constant stack depth.
fn trampoline(job: impl FnOnce() + 'static) {
    if DRAIN_DEPTH.with(|d| d.get()) > 0 {
        PENDING.with(|p| p.borrow_mut().push(Box::new(job)));
        return;
    }
    struct Guard;
    impl Drop for Guard {
        fn drop(&mut self) {
            DRAIN_DEPTH.with(|d| d.set(d.get() - 1));
        }
    }
    DRAIN_DEPTH.with(|d| d.set(d.get() + 1));
    let _g = Guard;
    job();
    loop {
        let next = PENDING.with(|p| p.borrow_mut().pop());
        match next {
            Some(j) => j(),
            None => break,
        }
    }
}

/// The consumer interface to a non-blocking operation (see module docs).
///
/// Cloning a `Future` produces another view of the same eventual value.
pub struct Future<T: 'static> {
    core: Rc<Core<T>>,
}

impl<T: 'static> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            core: self.core.clone(),
        }
    }
}

impl<T: 'static> fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Future<{}>({})",
            std::any::type_name::<T>(),
            if self.is_ready() { "ready" } else { "pending" }
        )
    }
}

/// Construct an already-ready future (UPC++ `make_future`).
pub fn make_future<T: 'static>(v: T) -> Future<T> {
    Future {
        core: Core::new_ready(v),
    }
}

impl<T: 'static> Future<T> {
    /// Whether the value is available. `true` also while this future's own
    /// completion callbacks are executing (the value exists; it is briefly
    /// checked out to the callback drain).
    pub fn is_ready(&self) -> bool {
        matches!(
            &*self.core.state.borrow(),
            State::Ready(_) | State::Running(_)
        )
    }

    /// Retrieve the value if ready (clones it; the future stays observable).
    pub fn try_get(&self) -> Option<T>
    where
        T: Clone,
    {
        match &*self.core.state.borrow() {
            State::Ready(v) => Some(v.clone()),
            // Pending, or checked out to a callback drain (see is_ready).
            _ => None,
        }
    }

    /// Peek at the value by reference.
    pub fn with_value<R>(&self, f: impl FnOnce(&T) -> R) -> Option<R> {
        match &*self.core.state.borrow() {
            State::Ready(v) => Some(f(v)),
            _ => None,
        }
    }

    /// Chain a callback: `f` runs with the value once available (immediately
    /// if already ready), producing a new future of its result. This is the
    /// paper's completion-handler mechanism.
    pub fn then<U: 'static>(&self, f: impl FnOnce(T) -> U + 'static) -> Future<U>
    where
        T: Clone,
    {
        let out = Future {
            core: Core::<U>::new_pending(),
        };
        let out2 = out.clone();
        self.core.add_callback(Box::new(move |v: &T| {
            out2.core.fulfill(f(v.clone()));
        }));
        out
    }

    /// Like [`then`](Self::then) but for callbacks that launch further
    /// asynchronous work: the returned future readies when the *inner* future
    /// does (UPC++ `.then` auto-unwraps futures; Rust needs a second method).
    pub fn then_fut<U: Clone + 'static>(
        &self,
        f: impl FnOnce(T) -> Future<U> + 'static,
    ) -> Future<U>
    where
        T: Clone,
    {
        let out = Future {
            core: Core::<U>::new_pending(),
        };
        let out2 = out.clone();
        self.core.add_callback(Box::new(move |v: &T| {
            let inner = f(v.clone());
            let out3 = out2.clone();
            inner.core.add_callback(Box::new(move |u: &U| {
                out3.core.fulfill(u.clone());
            }));
        }));
        out
    }

    /// Block until ready and return the value. **smp conduit only**: spins on
    /// the progress engine (the paper's `wait` "is simply a spin loop around
    /// progress"). Under the sim conduit rank programs are continuation-style
    /// and this panics with guidance instead of deadlocking silently.
    pub fn wait(&self) -> T
    where
        T: Clone,
    {
        crate::ctx::wait_until(|| self.is_ready());
        self.try_get()
            .expect("wait_until returned before readiness")
    }

    /// Discard the value, yielding a `Future<()>` useful for conjoining
    /// heterogeneous completions.
    pub fn ignore(&self) -> Future<()>
    where
        T: Clone,
    {
        self.then(|_| ())
    }
}

/// The producer side of an operation, with UPC++'s anonymous-dependency
/// counter (see module docs).
pub struct Promise<T: 'static> {
    inner: Rc<PromiseInner<T>>,
}

struct PromiseInner<T: 'static> {
    deps: std::cell::Cell<usize>,
    value: RefCell<Option<T>>,
    core: Rc<Core<T>>,
    finalized: std::cell::Cell<bool>,
}

impl<T: 'static> Clone for Promise<T> {
    fn clone(&self) -> Self {
        Promise {
            inner: self.inner.clone(),
        }
    }
}

impl<T: 'static> Default for Promise<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: 'static> Promise<T> {
    /// Fresh promise with dependency count 1 (the implicit dependency retired
    /// by [`finalize`](Self::finalize)).
    pub fn new() -> Promise<T> {
        Promise {
            inner: Rc::new(PromiseInner {
                deps: std::cell::Cell::new(1),
                value: RefCell::new(None),
                core: Core::new_pending(),
                finalized: std::cell::Cell::new(false),
            }),
        }
    }

    /// The future associated with this promise (callable any number of times;
    /// all returned futures alias the same state).
    pub fn get_future(&self) -> Future<T> {
        Future {
            core: self.inner.core.clone(),
        }
    }

    /// Register `n` additional anonymous dependencies. Must precede their
    /// fulfillment; panics after the counter has reached zero.
    pub fn require_anonymous(&self, n: usize) {
        let d = self.inner.deps.get();
        assert!(d > 0, "promise already satisfied");
        self.inner.deps.set(d + n);
    }

    /// Retire `n` anonymous dependencies; readies the future when the counter
    /// reaches zero (the value must have been supplied by then, or `T = ()`
    /// via the `Promise<()>` impl below).
    pub fn fulfill_anonymous(&self, n: usize) {
        let d = self.inner.deps.get();
        assert!(d >= n, "fulfilled more dependencies than required");
        self.inner.deps.set(d - n);
        if d == n {
            self.complete();
        }
    }

    /// Supply the result value and retire one dependency (UPC++
    /// `fulfill_result`).
    pub fn fulfill(&self, v: T) {
        {
            let mut slot = self.inner.value.borrow_mut();
            assert!(slot.is_none(), "promise value supplied twice");
            *slot = Some(v);
        }
        self.fulfill_anonymous(1);
    }

    /// Retire the implicit initial dependency and return the future. Call
    /// once, after registering all other dependencies (paper Fig. 7 line 14).
    pub fn finalize(&self) -> Future<T> {
        assert!(!self.inner.finalized.get(), "promise finalized twice");
        self.inner.finalized.set(true);
        self.fulfill_anonymous(1);
        self.get_future()
    }

    /// Remaining dependency count (diagnostics).
    pub fn pending_deps(&self) -> usize {
        self.inner.deps.get()
    }

    fn complete(&self) {
        let v = self
            .inner
            .value
            .borrow_mut()
            .take()
            .or_else(unit_default::<T>)
            .expect("promise dependencies satisfied but no value supplied (non-unit promises need fulfill)");
        self.inner.core.fulfill(v);
    }
}

/// `Promise<()>` (UPC++ `promise<>`) is a pure dependency counter: when its
/// count reaches zero no explicit value is needed. For every other `T`,
/// retiring all dependencies without supplying a value is a bug. This helper
/// produces `Some(())` exactly when `T` is the unit type.
fn unit_default<T: 'static>() -> Option<T> {
    let boxed: Box<dyn std::any::Any> = Box::new(());
    boxed.downcast::<T>().ok().map(|b| *b)
}

/// Conjoin two futures into one carrying both values (UPC++ `when_all`).
pub fn when_all<A: Clone + 'static, B: Clone + 'static>(
    a: &Future<A>,
    b: &Future<B>,
) -> Future<(A, B)> {
    let out = Future {
        core: Core::<(A, B)>::new_pending(),
    };
    let out2 = out.clone();
    let b = b.clone();
    a.core.add_callback(Box::new(move |av: &A| {
        let av = av.clone();
        let out3 = out2.clone();
        b.core.add_callback(Box::new(move |bv: &B| {
            out3.core.fulfill((av, bv.clone()));
        }));
    }));
    out
}

/// Conjoin a homogeneous collection, readying with all values in input order.
pub fn when_all_vec<T: Clone + 'static>(futs: Vec<Future<T>>) -> Future<Vec<T>> {
    let n = futs.len();
    let out = Future {
        core: Core::<Vec<T>>::new_pending(),
    };
    if n == 0 {
        out.core.fulfill(Vec::new());
        return out;
    }
    let slots: Rc<RefCell<Vec<Option<T>>>> = Rc::new(RefCell::new((0..n).map(|_| None).collect()));
    let remaining = Rc::new(std::cell::Cell::new(n));
    for (i, f) in futs.into_iter().enumerate() {
        let slots = slots.clone();
        let remaining = remaining.clone();
        let out2 = out.clone();
        f.core.add_callback(Box::new(move |v: &T| {
            slots.borrow_mut()[i] = Some(v.clone());
            remaining.set(remaining.get() - 1);
            if remaining.get() == 0 {
                let vals = slots
                    .borrow_mut()
                    .iter_mut()
                    .map(|s| s.take().expect("slot unfilled"))
                    .collect();
                out2.core.fulfill(vals);
            }
        }));
    }
    out
}

/// Conjoin unit futures — the paper's `f_conj = when_all(f_conj, fut)` idiom
/// (Fig. 7 line 29).
pub fn conjoin(a: &Future<()>, b: &Future<()>) -> Future<()> {
    when_all(a, b).then(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_future_reports_and_yields_value() {
        let f = make_future(42u32);
        assert!(f.is_ready());
        assert_eq!(f.try_get(), Some(42));
        assert_eq!(f.with_value(|v| *v + 1), Some(43));
    }

    #[test]
    fn then_on_ready_future_runs_immediately() {
        let f = make_future(10u32).then(|v| v * 3);
        assert_eq!(f.try_get(), Some(30));
    }

    #[test]
    fn then_on_pending_future_defers() {
        let p = Promise::<u32>::new();
        let seen = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let s = seen.clone();
        let f = p.get_future().then(move |v| {
            s.set(v);
            v + 1
        });
        assert!(!f.is_ready());
        assert_eq!(seen.get(), 0);
        p.fulfill(7);
        assert_eq!(seen.get(), 7);
        assert_eq!(f.try_get(), Some(8));
    }

    #[test]
    fn then_fut_flattens() {
        let outer = Promise::<u32>::new();
        let inner = Promise::<String>::new();
        let inner_fut = inner.get_future();
        let f = outer.get_future().then_fut(move |v| {
            assert_eq!(v, 1);
            inner_fut.clone()
        });
        outer.fulfill(1);
        assert!(!f.is_ready());
        inner.fulfill("done".to_string());
        assert_eq!(f.try_get(), Some("done".to_string()));
    }

    #[test]
    fn multiple_callbacks_all_run() {
        let p = Promise::<u32>::new();
        let count = std::rc::Rc::new(std::cell::Cell::new(0u32));
        for _ in 0..5 {
            let c = count.clone();
            p.get_future().then(move |v| c.set(c.get() + v));
        }
        p.fulfill(2);
        assert_eq!(count.get(), 10);
    }

    #[test]
    fn promise_anonymous_counting() {
        let p = Promise::<()>::new();
        p.require_anonymous(3);
        let f = p.get_future();
        p.fulfill_anonymous(1);
        p.fulfill_anonymous(2);
        assert!(!f.is_ready()); // initial dependency still held
        let f2 = p.finalize();
        assert!(f.is_ready());
        assert!(f2.is_ready());
    }

    #[test]
    fn promise_counting_order_is_flexible() {
        // finalize before the anonymous deps retire (flood idiom).
        let p = Promise::<()>::new();
        p.require_anonymous(2);
        let f = p.finalize();
        assert!(!f.is_ready());
        p.fulfill_anonymous(1);
        assert!(!f.is_ready());
        p.fulfill_anonymous(1);
        assert!(f.is_ready());
    }

    #[test]
    #[should_panic(expected = "finalized twice")]
    fn double_finalize_panics() {
        let p = Promise::<()>::new();
        p.require_anonymous(1);
        let _ = p.finalize();
        let _ = p.finalize();
    }

    #[test]
    #[should_panic(expected = "more dependencies than required")]
    fn over_fulfillment_panics() {
        let p = Promise::<()>::new();
        p.fulfill_anonymous(2);
    }

    #[test]
    #[should_panic(expected = "no value supplied")]
    fn non_unit_promise_requires_value() {
        let p = Promise::<u32>::new();
        let _ = p.finalize(); // counter hits zero without fulfill
    }

    #[test]
    #[should_panic(expected = "supplied twice")]
    fn double_fulfill_panics() {
        let p = Promise::<u32>::new();
        p.require_anonymous(1);
        p.fulfill(1);
        p.fulfill(2);
    }

    #[test]
    fn when_all_pairs_values() {
        let pa = Promise::<u32>::new();
        let pb = Promise::<String>::new();
        let f = when_all(&pa.get_future(), &pb.get_future());
        pb.fulfill("x".into());
        assert!(!f.is_ready());
        pa.fulfill(4);
        assert_eq!(f.try_get(), Some((4, "x".to_string())));
    }

    #[test]
    fn when_all_vec_preserves_order() {
        let ps: Vec<Promise<u32>> = (0..4).map(|_| Promise::new()).collect();
        let f = when_all_vec(ps.iter().map(|p| p.get_future()).collect());
        // Fulfill out of order.
        for i in [2usize, 0, 3, 1] {
            assert!(!f.is_ready());
            ps[i].fulfill(i as u32 * 10);
        }
        assert_eq!(f.try_get(), Some(vec![0, 10, 20, 30]));
    }

    #[test]
    fn when_all_vec_empty_is_ready() {
        let f = when_all_vec(Vec::<Future<u32>>::new());
        assert_eq!(f.try_get(), Some(vec![]));
    }

    #[test]
    fn conjoin_chain() {
        let mut f = make_future(());
        let ps: Vec<Promise<()>> = (0..3).map(|_| Promise::new()).collect();
        for p in &ps {
            p.require_anonymous(1);
            let pf = p.finalize();
            f = conjoin(&f, &pf);
        }
        for (i, p) in ps.iter().enumerate() {
            assert!(!f.is_ready(), "ready after only {i} fulfillments");
            p.fulfill_anonymous(1);
        }
        assert!(f.is_ready());
    }

    #[test]
    fn callbacks_can_chain_more_callbacks() {
        let p = Promise::<u32>::new();
        let total = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let t = total.clone();
        let f = p.get_future();
        let f2 = f.clone();
        f.then(move |v| {
            let t2 = t.clone();
            // Attaching to an already-ready future from inside a callback.
            f2.then(move |w| t2.set(t2.get() + v + w));
        });
        p.fulfill(5);
        assert_eq!(total.get(), 10);
    }

    #[test]
    fn ignore_discards_value() {
        let f = make_future(99u64).ignore();
        assert_eq!(f.try_get(), Some(()));
    }

    #[test]
    fn wait_returns_immediately_when_ready() {
        // wait() without a runtime context is fine for ready futures.
        assert_eq!(make_future(5u8).wait(), 5);
    }

    #[test]
    fn debug_formatting() {
        let p = Promise::<u32>::new();
        assert!(format!("{:?}", p.get_future()).contains("pending"));
        assert!(format!("{:?}", make_future(1u32)).contains("ready"));
    }

    #[test]
    fn pending_deps_reports_counter() {
        let p = Promise::<()>::new();
        assert_eq!(p.pending_deps(), 1);
        p.require_anonymous(4);
        assert_eq!(p.pending_deps(), 5);
        p.fulfill_anonymous(2);
        assert_eq!(p.pending_deps(), 3);
    }
}
