//! Modeled wire-format constants shared by every AM-bearing path.
//!
//! The runtime does not put real headers on the wire (both conduits move
//! closures, not frames), but the network model charges per byte, so every
//! injection site must agree on how much framing a message carries. Before
//! this module the `24`-byte header constant was repeated at each call site
//! (`rpc`, `rpc_ff`, the reply path and `sys_am`); it now lives here, and the
//! aggregation layer's batch accounting shares it.

/// Header bytes modeled per AM wire message: GASNet-EX AM header (handler
/// index, flags) plus our op id and framing. Every non-batched RPC, reply and
/// system AM is charged `payload + RPC_HDR`; a *batch* is charged one
/// `RPC_HDR` no matter how many records it carries — that amortization is the
/// point of the aggregation layer.
pub const RPC_HDR: usize = 24;

/// Per-record framing inside an aggregated batch: a length/handler word per
/// packed payload. Much smaller than [`RPC_HDR`]; the per-message saving of
/// aggregation is `RPC_HDR - AGG_REC_HDR` wire bytes plus the per-message
/// injection gap and dispatch overhead.
pub const AGG_REC_HDR: usize = 8;

/// Wire size of a single (non-aggregated) AM carrying `payload` bytes.
#[inline]
pub fn am_wire_size(payload: usize) -> usize {
    payload + RPC_HDR
}

/// Wire contribution of one record inside an aggregated batch.
#[inline]
pub fn batch_rec_size(payload: usize) -> usize {
    payload + AGG_REC_HDR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_framing_beats_per_message_framing() {
        // The whole premise of aggregation: k small messages cost less wire
        // in one batch than as k singletons, for every k >= 2.
        for k in 2..100usize {
            for payload in [0usize, 8, 64] {
                let singles = k * am_wire_size(payload);
                let batch = RPC_HDR + k * batch_rec_size(payload);
                assert!(batch < singles, "k={k} payload={payload}");
            }
        }
    }
}
