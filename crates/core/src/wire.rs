//! Modeled wire-format constants shared by every AM-bearing path.
//!
//! The runtime does not put real headers on the wire (both conduits move
//! closures, not frames), but the network model charges per byte, so every
//! injection site must agree on how much framing a message carries. Before
//! this module the `24`-byte header constant was repeated at each call site
//! (`rpc`, `rpc_ff`, the reply path and `sys_am`); it now lives here, and the
//! aggregation layer's batch accounting shares it.

/// Header bytes modeled per AM wire message. Layout (all little-endian):
///
/// | bytes  | field                                                        |
/// |--------|--------------------------------------------------------------|
/// | 0..4   | GASNet-EX AM handler index                                   |
/// | 4..8   | flags + payload length                                       |
/// | 8..20  | **causal span id**: origin rank (`u32`) + per-origin span    |
/// |        | sequence (`u64`) — see [`SPAN_BYTES`]                        |
/// | 20..24 | framing / alignment pad                                      |
///
/// The span id is what lets a remote Deliver event name its originating
/// Inject (`crate::trace` causal spans). No *parent* span travels in the
/// header: for an RPC **reply** the parent is the reply-matching key — the
/// span sequence of the RPC being answered, which already occupies the
/// header's span field of the original request and is echoed back as the
/// reply's routing key — and for any other op injected inside a handler the
/// parent link is recorded locally by the injecting rank (it knows its own
/// current span; the link never needs to cross the wire).
///
/// Every non-batched RPC, reply and system AM is charged
/// `payload + RPC_HDR`; a *batch* is charged one `RPC_HDR` no matter how
/// many records it carries — that amortization is the point of the
/// aggregation layer.
pub const RPC_HDR: usize = 24;

/// Bytes of [`RPC_HDR`] occupied by the causal span id carried on every AM:
/// origin rank (`u32`) + per-origin span sequence (`u64`).
pub const SPAN_BYTES: usize = 12;

/// Per-record framing inside an aggregated batch: a length/handler word plus
/// the member's span sequence (the batch header's origin field is shared by
/// all members — an aggregation buffer holds one origin's traffic — so each
/// record needs only the 8-byte sequence-bearing word, not a full
/// [`SPAN_BYTES`] id). Much smaller than [`RPC_HDR`]; the per-message saving
/// of aggregation is `RPC_HDR - AGG_REC_HDR` wire bytes plus the per-message
/// injection gap and dispatch overhead.
pub const AGG_REC_HDR: usize = 8;

/// Wire size of a single (non-aggregated) AM carrying `payload` bytes.
#[inline]
pub fn am_wire_size(payload: usize) -> usize {
    payload + RPC_HDR
}

/// Wire contribution of one record inside an aggregated batch.
#[inline]
pub fn batch_rec_size(payload: usize) -> usize {
    payload + AGG_REC_HDR
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_id_fits_in_header() {
        // The span id is carved out of the modeled header, not added on top
        // (changing RPC_HDR would shift every modeled wire size and every
        // recorded sim figure).
        const { assert!(SPAN_BYTES < RPC_HDR) }
    }

    #[test]
    fn batch_framing_beats_per_message_framing() {
        // The whole premise of aggregation: k small messages cost less wire
        // in one batch than as k singletons, for every k >= 2.
        for k in 2..100usize {
            for payload in [0usize, 8, 64] {
                let singles = k * am_wire_size(payload);
                let batch = RPC_HDR + k * batch_rec_size(payload);
                assert!(batch < singles, "k={k} payload={payload}");
            }
        }
    }
}
