//! The shared-segment allocator behind `upcxx::allocate` / `deallocate`.
//!
//! Each rank's shared segment (the PGAS "global memory" it contributes —
//! Fig. 1 of the paper) is managed by a first-fit free list with coalescing.
//! UPC++'s `allocate` is *non-collective* and rank-local, which is exactly
//! what makes the distributed hash table's `make_lz` landing-zone allocation
//! cheap (one RPC, no global coordination) — so this allocator is purely
//! local state inside [`crate::ctx::RankCtx`].

use std::collections::HashMap;

/// Alignment granted to every allocation: covers all `Pod` element types and
/// the 8-byte remote atomics.
pub const SEG_ALIGN: usize = 16;

/// First-fit free-list allocator over a `[0, size)` byte range.
pub struct SegAlloc {
    size: usize,
    /// Free extents `(offset, len)`, sorted by offset, non-adjacent.
    free: Vec<(usize, usize)>,
    /// Live allocations: offset -> padded length (for dealloc).
    live: HashMap<usize, usize>,
    /// Bytes currently allocated (diagnostics).
    in_use: usize,
    /// High-water mark of allocated bytes.
    peak: usize,
}

impl SegAlloc {
    /// Allocator for a fresh segment of `size` bytes.
    pub fn new(size: usize) -> SegAlloc {
        SegAlloc {
            size,
            free: if size > 0 {
                vec![(0, size)]
            } else {
                Vec::new()
            },
            live: HashMap::new(),
            in_use: 0,
            peak: 0,
        }
    }

    /// Allocate `len` bytes (rounded up to [`SEG_ALIGN`]); returns the offset
    /// or `None` when no extent fits.
    pub fn alloc(&mut self, len: usize) -> Option<usize> {
        let padded = pad(len.max(1));
        let idx = self.free.iter().position(|&(_, flen)| flen >= padded)?;
        let (off, flen) = self.free[idx];
        if flen == padded {
            self.free.remove(idx);
        } else {
            self.free[idx] = (off + padded, flen - padded);
        }
        self.live.insert(off, padded);
        self.in_use += padded;
        self.peak = self.peak.max(self.in_use);
        Some(off)
    }

    /// Return an allocation to the free list (coalescing neighbors).
    /// Panics on double-free or a foreign offset — catching exactly the
    /// misuse UPC++ documents as undefined behaviour — with a diagnostic
    /// naming the nearest live extent (see [`SegAlloc::retire`]).
    pub fn dealloc(&mut self, off: usize) {
        match self.retire(off) {
            Ok(len) => self.release(off, len),
            Err(diag) => panic!("dealloc of unallocated offset {off}: {diag}"),
        }
    }

    /// First half of a free: remove `off` from the live set and return its
    /// padded length, without touching the free list (the sanitizer parks
    /// the extent in quarantine between [`SegAlloc::retire`] and
    /// [`SegAlloc::release`]). `Err` carries a diagnostic: whether the
    /// offset is interior to a live extent (the common bug — deallocating a
    /// pointer produced by `add`/`cast`) and the nearest live extent.
    pub(crate) fn retire(&mut self, off: usize) -> Result<usize, String> {
        if let Some(len) = self.live.remove(&off) {
            self.in_use -= len;
            return Ok(len);
        }
        // Diagnose: interior? nearest?
        let mut nearest: Option<(usize, usize)> = None;
        for (&o, &l) in &self.live {
            if o < off && off < o + l {
                return Err(format!(
                    "offset {off} is interior to the live extent [{o}..{end}) — deallocate the \
                     pointer returned by allocate, not one produced by add/cast",
                    end = o + l
                ));
            }
            let d = off.abs_diff(o);
            if nearest.is_none_or(|(bo, _)| d < off.abs_diff(bo)) {
                nearest = Some((o, l));
            }
        }
        Err(match nearest {
            Some((o, l)) => format!(
                "never allocated (double free or foreign pointer); nearest live extent is \
                 [{o}..{end})",
                end = o + l
            ),
            None => "never allocated (no live allocations in this segment)".to_string(),
        })
    }

    /// Second half of a free: return a retired extent to the free list
    /// (coalescing neighbors).
    pub(crate) fn release(&mut self, off: usize, len: usize) {
        // Insert sorted, then coalesce with neighbors.
        let pos = self.free.partition_point(|&(o, _)| o < off);
        self.free.insert(pos, (off, len));
        // Coalesce right.
        if pos + 1 < self.free.len() {
            let (o, l) = self.free[pos];
            let (ro, rl) = self.free[pos + 1];
            if o + l == ro {
                self.free[pos] = (o, l + rl);
                self.free.remove(pos + 1);
            }
        }
        // Coalesce left.
        if pos > 0 {
            let (lo, ll) = self.free[pos - 1];
            let (o, l) = self.free[pos];
            if lo + ll == o {
                self.free[pos - 1] = (lo, ll + l);
                self.free.remove(pos);
            }
        }
    }

    /// Bytes currently allocated (after padding).
    pub fn in_use(&self) -> usize {
        self.in_use
    }
    /// Allocation high-water mark.
    pub fn peak(&self) -> usize {
        self.peak
    }
    /// Segment capacity.
    pub fn capacity(&self) -> usize {
        self.size
    }
    /// Number of free extents (fragmentation diagnostic).
    pub fn fragments(&self) -> usize {
        self.free.len()
    }
}

fn pad(len: usize) -> usize {
    len.div_ceil(SEG_ALIGN) * SEG_ALIGN
}

/// Free segment memory on behalf of `upcxx::deallocate`, threading the
/// sanitizer's lifecycle through the allocator: retire the extent, let the
/// sanitizer un-mirror/poison/quarantine it ([`crate::san::note_free`]),
/// and release whatever the quarantine returns. `what` names the pointer
/// being freed (its `Debug` rendering) for the bad-free diagnostic.
pub(crate) fn segment_free(c: &crate::ctx::RankCtx, off: usize, what: &str) {
    let retired = c.alloc.borrow_mut().retire(off);
    match retired {
        Ok(padded) => {
            if c.san_on.get() {
                crate::rma::poison_fill(c, c.me, off, padded);
            }
            let release_now = crate::san::note_free(c, off, padded);
            let mut a = c.alloc.borrow_mut();
            for (ro, rl) in release_now {
                a.release(ro, rl);
            }
        }
        // Surfaced at the `upcxx::deallocate` boundary: panic in Panic mode
        // (or with the sanitizer disabled), report-and-skip otherwise.
        Err(diag) => crate::san::bad_free(c, what, &diag),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_aligned_and_distinct() {
        let mut a = SegAlloc::new(1024);
        let x = a.alloc(10).unwrap();
        let y = a.alloc(20).unwrap();
        assert_eq!(x % SEG_ALIGN, 0);
        assert_eq!(y % SEG_ALIGN, 0);
        assert_ne!(x, y);
        assert_eq!(a.in_use(), 16 + 32);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = SegAlloc::new(64);
        assert!(a.alloc(48).is_some());
        assert!(a.alloc(32).is_none());
        assert!(a.alloc(16).is_some());
        assert!(a.alloc(1).is_none());
    }

    #[test]
    fn dealloc_coalesces_and_allows_reuse() {
        let mut a = SegAlloc::new(96);
        let x = a.alloc(32).unwrap();
        let y = a.alloc(32).unwrap();
        let z = a.alloc(32).unwrap();
        a.dealloc(x);
        a.dealloc(z);
        assert_eq!(a.fragments(), 2);
        a.dealloc(y); // middle free merges everything
        assert_eq!(a.fragments(), 1);
        // Whole segment usable again.
        assert!(a.alloc(96).is_some());
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn double_free_panics() {
        let mut a = SegAlloc::new(64);
        let x = a.alloc(8).unwrap();
        a.dealloc(x);
        a.dealloc(x);
    }

    #[test]
    fn zero_len_allocs_are_distinct() {
        let mut a = SegAlloc::new(256);
        let x = a.alloc(0).unwrap();
        let y = a.alloc(0).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn peak_tracks_high_water() {
        let mut a = SegAlloc::new(256);
        let x = a.alloc(64).unwrap();
        let y = a.alloc(64).unwrap();
        a.dealloc(x);
        a.dealloc(y);
        assert_eq!(a.in_use(), 0);
        assert_eq!(a.peak(), 128);
    }
}

#[cfg(test)]
mod randomized {
    use super::*;
    use pgas_des::rng::Rng;

    /// Random alloc/dealloc sequences: no overlap among live allocations,
    /// full reuse after freeing everything. (Deterministic PRNG replacing
    /// the former proptest suite.)
    #[test]
    fn no_overlap_and_full_recovery() {
        for seed in 0..32u64 {
            let mut r = Rng::new(seed);
            let mut a = SegAlloc::new(8192);
            let mut live: Vec<(usize, usize)> = Vec::new(); // (off, padded len)
            for _ in 0..r.gen_between(1, 200) {
                let len = r.gen_between(1, 200);
                if r.gen_bool() && !live.is_empty() {
                    let (off, _) = live.swap_remove(live.len() / 2);
                    a.dealloc(off);
                } else if let Some(off) = a.alloc(len) {
                    let padded = len.div_ceil(SEG_ALIGN) * SEG_ALIGN;
                    // Overlap check against every live extent.
                    for &(o, l) in &live {
                        assert!(
                            off + padded <= o || o + l <= off,
                            "overlap: new ({off},{padded}) vs live ({o},{l})"
                        );
                    }
                    live.push((off, padded));
                }
            }
            for (off, _) in live.drain(..) {
                a.dealloc(off);
            }
            assert_eq!(a.in_use(), 0);
            assert_eq!(a.fragments(), 1);
            assert!(a.alloc(8192).is_some());
        }
    }
}
