//! Teams: ordered subsets of ranks (the paper's `upcxx::team`, "similar in
//! functionality to an MPI communicator").
//!
//! The extend-add motif maps every frontal matrix onto a team
//! (`front_team`, Fig. 7) produced by proportional mapping. Those teams are
//! computed *deterministically from replicated metadata* on every rank, so
//! [`Team::from_world_ranks`] needs no communication — consistent with the
//! paper's scalability principle (no global state proportional to world
//! size is required beyond the member list the application already owns).
//! [`Team::split_by`] provides UPC++'s `split` for color functions every
//! rank can evaluate locally.

use gasnet::Rank;
use std::rc::Rc;

#[derive(Debug)]
enum Members {
    /// The world team: identity mapping, no member storage (scalable).
    World { n: usize },
    /// An explicit subset, ordered; position = team rank.
    Subset { ranks: Vec<Rank> },
}

/// An ordered set of ranks. Cheap to clone (shared).
#[derive(Clone, Debug)]
pub struct Team {
    members: Rc<Members>,
    /// Stable identifier for matching collective operations across ranks.
    id: u64,
}

impl Team {
    /// The world team containing every rank (paper: `upcxx::world()`).
    pub fn world() -> Team {
        Team {
            members: Rc::new(Members::World {
                n: crate::ctx::ctx().n,
            }),
            id: 0,
        }
    }

    /// Build a team from an explicit, ordered world-rank list. Every member
    /// must construct the team with the *same list* (deterministic metadata),
    /// mirroring collective team construction without communication.
    pub fn from_world_ranks(ranks: Vec<Rank>) -> Team {
        assert!(!ranks.is_empty(), "team cannot be empty");
        let id = hash_members(&ranks);
        Team {
            members: Rc::new(Members::Subset { ranks }),
            id,
        }
    }

    /// UPC++ `split` restricted to locally-evaluable color functions: ranks
    /// with the same `color(rank)` form a team, ordered by world rank. Every
    /// caller computes the same result without communication.
    pub fn split_by(&self, color: impl Fn(Rank) -> u64) -> Team {
        let me = crate::ctx::ctx().me;
        let my_color = color(me);
        let ranks: Vec<Rank> = (0..self.rank_n())
            .map(|i| self.world_rank(i))
            .filter(|&r| color(r) == my_color)
            .collect();
        Team::from_world_ranks(ranks)
    }

    /// Number of ranks in the team (paper: `rank_n()`).
    pub fn rank_n(&self) -> usize {
        match &*self.members {
            Members::World { n } => *n,
            Members::Subset { ranks } => ranks.len(),
        }
    }

    /// The calling rank's position within the team (paper: `rank_me()`).
    /// Panics if the caller is not a member.
    pub fn rank_me(&self) -> usize {
        self.try_rank_me()
            .expect("calling rank is not a member of this team")
    }

    /// Team rank of the caller, or `None` when not a member.
    pub fn try_rank_me(&self) -> Option<usize> {
        let me = crate::ctx::ctx().me;
        match &*self.members {
            Members::World { .. } => Some(me),
            Members::Subset { ranks } => ranks.iter().position(|&r| r == me),
        }
    }

    /// Whether the calling rank belongs to the team.
    pub fn contains_me(&self) -> bool {
        self.try_rank_me().is_some()
    }

    /// Translate a team rank to a world rank (paper: `team[i]`, used at
    /// Fig. 7 line 28: `rpc(front_team[p_dest], …)`).
    pub fn world_rank(&self, team_rank: usize) -> Rank {
        match &*self.members {
            Members::World { n } => {
                assert!(team_rank < *n, "team rank {team_rank} out of {n}");
                team_rank
            }
            Members::Subset { ranks } => ranks[team_rank],
        }
    }

    /// Stable team identifier (collective-operation matching key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Iterate the member world ranks in team order.
    pub fn world_ranks(&self) -> Vec<Rank> {
        (0..self.rank_n()).map(|i| self.world_rank(i)).collect()
    }

    /// RPC addressed by team rank (paper: `rpc(front_team[p], f, args)`).
    pub fn rpc<A, R>(&self, team_rank: usize, f: fn(A) -> R, args: A) -> crate::future::Future<R>
    where
        A: crate::ser::Ser,
        R: crate::ser::Ser + Clone + 'static,
    {
        crate::rpc::rpc(self.world_rank(team_rank), f, args)
    }

    /// The team of ranks sharing this rank's node (paper: `local_team()`),
    /// when the world was built with `ranks_per_node` (sim conduit); on smp
    /// all ranks share one node.
    pub fn local(ranks_per_node: usize) -> Team {
        Team::world().split_by(move |r| (r / ranks_per_node) as u64)
    }
}

/// FNV-1a over the member list: deterministic across ranks, cheap, and
/// collision-safe enough for collective matching in one program.
fn hash_members(ranks: &[Rank]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &r in ranks {
        h ^= r as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Never collide with the world team's reserved id 0.
    h | 1
}
