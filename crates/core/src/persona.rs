//! Personas and the opt-in asynchronous progress engine.
//!
//! UPC++ names the execution contexts of a process *personas*: every rank
//! has a **master persona** (the application thread) and may dedicate a
//! **progress persona** to servicing communication. This module reproduces
//! that split for the smp conduit: `UPCXX_PROGRESS=1` (or
//! [`set_progress_thread`]) starts one progress thread per rank that drains
//! the conduit inbox — executing incoming `rpc`/`rpc_ff`/system-AM handler
//! bodies and pushing buffered replies back out — while the master persona
//! computes, so an *inattentive* target no longer stalls every RPC aimed at
//! it (the asynchronous-progress design of Zhou & Gracia, PAPERS.md #1).
//!
//! ## Ownership rules
//!
//! * Futures and promises created by user code belong to the **master
//!   persona**. They become ready only inside `progress()` / `wait()` on
//!   the application thread — exactly as without the progress thread — so
//!   single-threaded callback semantics are preserved. The progress
//!   persona routes everything that would fulfill a user-visible future
//!   (RPC reply handlers, collective continuations) through the lock-free
//!   [`Handoff`] queue, drained by master-persona user progress.
//! * Handler **bodies** (`rpc` target functions, `rpc_ff`, system AMs) run
//!   on whichever persona drains them from the inbox. State they reach
//!   (e.g. `upcxx::rank_state`) is therefore owned by the progress persona
//!   while the thread runs; the master persona may touch it only across an
//!   ordering point (a completed future, a barrier), which passes through
//!   the engine lock and carries the happens-before edge.
//! * The runtime context itself is serialized by the per-rank
//!   [`EngineLock`]: every public API entry, every user-progress call and
//!   every progress-thread iteration holds it. It is re-entrant (handler
//!   bodies call back into the API) and *gated* — while the progress thread
//!   is off, `lock()` is one predicted branch and no atomic RMW, keeping
//!   the default path at its measured floor.
//!
//! The sim conduit multiplexes every rank on one thread under virtual time;
//! a host progress thread would change modeled figures, so the knob is
//! inert there (same discipline as `UPCXX_EAGER`).

use crate::ctx::{ctx, with_ctx, Backend, RankCtx};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU32, Ordering};
use std::sync::Arc;

/// Persona id of the master (application) thread.
pub(crate) const MASTER: u8 = 0;
/// Persona id of the progress thread.
pub(crate) const PROGRESS: u8 = 1;

thread_local! {
    /// Which persona the current thread is. Rank mains and sim drivers are
    /// master (0); the progress thread marks itself 1 at startup.
    static PERSONA: Cell<u8> = const { Cell::new(MASTER) };
}

/// The calling thread's persona id (0 = master, 1 = progress). Stamped into
/// every trace event so merged timelines show which persona did the work.
#[inline]
pub(crate) fn current_id() -> u8 {
    PERSONA.with(|p| p.get())
}

/// Whether the calling thread is the master persona.
#[inline]
pub(crate) fn is_master() -> bool {
    current_id() == MASTER
}

// ------------------------------------------------------------ engine lock

/// A gated, re-entrant spinlock serializing the two personas over one
/// rank's context.
///
/// `owner` holds the owning persona's token (persona id + 1; 0 = free) and
/// `depth` the owner's re-entry count. Only the owner ever touches `depth`,
/// and only while it holds the lock, so Relaxed ordering suffices there;
/// the Acquire/Release pair on `owner` is what publishes all context state
/// between personas (including the conduit inbox stash and the sanitizer's
/// shadow handles).
pub(crate) struct EngineLock {
    owner: AtomicU32,
    depth: AtomicU32,
}

impl EngineLock {
    pub(crate) fn new() -> EngineLock {
        EngineLock {
            owner: AtomicU32::new(0),
            depth: AtomicU32::new(0),
        }
    }

    #[cold]
    fn acquire(&self) {
        let tok = current_id() as u32 + 1;
        if self.owner.load(Ordering::Relaxed) == tok {
            // Re-entry: we already hold it; no ordering needed.
            self.depth.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut spins: u32 = 0;
        while self
            .owner
            .compare_exchange_weak(0, tok, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            spins = spins.wrapping_add(1);
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // The peer persona is mid-drain; don't burn the (possibly
                // only) core under it.
                std::thread::yield_now();
            }
        }
        self.depth.store(1, Ordering::Relaxed);
    }

    fn release(&self) {
        if self.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.owner.store(0, Ordering::Release);
        }
    }
}

/// RAII guard for [`EngineLock`]; see [`lock`].
pub(crate) struct EngineGuard<'a> {
    lock: &'a EngineLock,
}

impl Drop for EngineGuard<'_> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

/// Serialize the calling persona over `c`'s context for the guard's
/// lifetime. Returns `None` — after **one predicted branch and nothing
/// else** — while the progress thread is off, which is the default path
/// every existing benchmark floor is measured on.
#[inline]
pub(crate) fn lock(c: &RankCtx) -> Option<EngineGuard<'_>> {
    if !c.progress_on.load(Ordering::Relaxed) {
        return None;
    }
    c.engine.acquire();
    Some(EngineGuard { lock: &c.engine })
}

// ---------------------------------------------------------- handoff queue

/// A boxed master-persona continuation.
type HThunk = Box<dyn FnOnce()>;

struct HNode {
    thunk: HThunk,
    next: *mut HNode,
}

/// Lock-free Treiber-stack handoff queue: the progress persona pushes
/// thunks that must run on the master persona (reply handlers, collective
/// continuations — anything fulfilling a user-visible future); master-side
/// user progress drains them in arrival order.
///
/// # Safety
/// The thunks capture non-`Send` state (`Rc` promise clones, boxed reply
/// handlers). Laundering them across the thread boundary is sound because
/// (1) a thunk is *created* on the progress persona while it holds the
/// engine lock, moved here without running any `Rc` bookkeeping (the boxes
/// travel whole), and *executed or dropped* only on the master persona;
/// (2) the Release swap in [`Handoff::drain`] pairs with the push CAS, so
/// the master sees fully-written nodes; (3) all `Rc` state the thunks touch
/// when they finally run is master-persona-owned (the ownership rules in
/// the module docs).
pub(crate) struct Handoff {
    head: AtomicPtr<HNode>,
}

unsafe impl Send for Handoff {}
unsafe impl Sync for Handoff {}

impl Handoff {
    pub(crate) fn new() -> Handoff {
        Handoff {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Whether anything is parked (one relaxed load; exact, because pushes
    /// only happen under the engine lock the probing drain also holds).
    #[inline]
    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }

    fn push(&self, thunk: HThunk) {
        let node = Box::into_raw(Box::new(HNode {
            thunk,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // SAFETY: `node` is exclusively ours until the CAS publishes it.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => head = cur,
            }
        }
    }

    /// Take everything pushed so far, oldest first.
    fn take_all(&self) -> Vec<HThunk> {
        let mut node = self.head.swap(std::ptr::null_mut(), Ordering::Acquire);
        let mut thunks = Vec::new();
        while !node.is_null() {
            // SAFETY: nodes reached from the swapped-out head are
            // exclusively ours; each was boxed exactly once in `push`.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            thunks.push(boxed.thunk);
        }
        // The Treiber list is newest-first.
        thunks.reverse();
        thunks
    }
}

impl Drop for Handoff {
    fn drop(&mut self) {
        // A world can tear down with thunks still parked (futures the
        // program never waited on); free the nodes without running them.
        for t in self.take_all() {
            drop(t);
        }
    }
}

/// Run `f` on the master persona: inline when the caller already is the
/// master (or the progress thread is off — the default), otherwise parked
/// in the handoff queue until the next master-persona user progress.
/// Callers on the progress persona hold the engine lock (the progress loop
/// does), which orders the push against the master's drain.
pub(crate) fn master_exec(c: &RankCtx, f: impl FnOnce() + 'static) {
    if is_master() || !c.progress_on.load(Ordering::Relaxed) {
        f();
    } else {
        c.handoff.push(Box::new(f));
    }
}

/// Master-persona side: run every parked thunk. Called from user progress
/// (under the engine lock) and once more after the progress thread joins,
/// so late replies are never dropped.
pub(crate) fn drain_handoff(c: &RankCtx) {
    if c.handoff.is_empty() {
        return;
    }
    for t in c.handoff.take_all() {
        t();
    }
}

// ------------------------------------------------------- progress thread

/// Handle to a rank's running progress thread.
pub(crate) struct ProgressThread {
    stop: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

/// Start or stop this rank's progress persona thread (the programmatic
/// form of `UPCXX_PROGRESS=1`; `run_spmd` applies the environment knob
/// automatically). Idempotent. A no-op under the sim conduit, where a host
/// thread would perturb modeled figures — the knob is inert there, like
/// `UPCXX_EAGER`.
///
/// Must be called from the master persona (rank mains are). Stopping joins
/// the thread and then drains any continuations it parked, so no reply is
/// ever lost across the transition.
pub fn set_progress_thread(enable: bool) {
    let c = ctx();
    match &c.backend {
        Backend::Sim(_) => (),
        Backend::Cond(_) => {
            if enable {
                start(&c);
            } else {
                stop(&c);
            }
        }
    }
}

fn start(c: &Arc<RankCtx>) {
    if c.progress_thread.borrow().is_some() {
        return;
    }
    let stop = Arc::new(AtomicBool::new(false));
    // Publish the gate *before* the thread exists: from here on the master
    // persona takes the engine lock at every API entry, so the new thread
    // never races an unlocked master.
    c.progress_on.store(true, Ordering::Release);
    let join = std::thread::Builder::new()
        .name(format!("upcxx-progress-{}", c.me))
        .spawn({
            let c = c.clone();
            let stop = stop.clone();
            move || progress_loop(c, stop)
        })
        .expect("failed to spawn progress thread");
    *c.progress_thread.borrow_mut() = Some(ProgressThread { stop, join });
}

fn stop(c: &Arc<RankCtx>) {
    let Some(pt) = c.progress_thread.borrow_mut().take() else {
        return;
    };
    pt.stop.store(true, Ordering::Release);
    pt.join.join().expect("progress thread panicked");
    c.progress_on.store(false, Ordering::Release);
    // Late arrivals the thread parked between our last progress call and
    // its exit: run them now, on the master persona as always.
    drain_handoff(c);
}

/// The progress persona's main loop: drain the conduit inbox (running
/// incoming RPC/AM handler bodies), push buffered replies and aggregation
/// batches out, and back off while idle. It never drains compQ and never
/// touches the handoff queue's consumer side — futures attached by user
/// code complete only on the master persona.
fn progress_loop(c: Arc<RankCtx>, stop: Arc<AtomicBool>) {
    PERSONA.with(|p| p.set(PROGRESS));
    with_ctx(c.clone(), || {
        let mut idle: u32 = 0;
        while !stop.load(Ordering::Acquire) {
            let mut did_work = false;
            {
                // progress_on is true for the thread's whole lifetime, so
                // lock() always engages here.
                let _g = lock(&c);
                if c.trace_on.get() {
                    c.note_progress_gap_prog();
                }
                if let Backend::Cond(h) = &c.backend {
                    did_work = h.poll(64, &mut crate::frame::exec_frame_sink) > 0;
                }
                crate::metrics::on_persona_poll(&c, did_work);
                if did_work {
                    // Handlers may have buffered replies/forwards; ship
                    // them so an inattentive master still answers RPCs
                    // within one poll iteration.
                    crate::agg::flush_all_ctx(&c, crate::trace::FlushReason::Progress);
                    c.progress_internal();
                }
            }
            if did_work {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                if idle < 16 {
                    std::thread::yield_now();
                } else {
                    // Exponential backoff capped at ~200 µs: negligible
                    // added latency for a stalled target, near-zero CPU
                    // when the world is quiet (this container has 1 vCPU).
                    let us = (1u64 << (idle - 16).min(8)).min(200);
                    std::thread::sleep(std::time::Duration::from_micros(us));
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handoff_preserves_order_and_drops_unrun() {
        let h = Handoff::new();
        let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        for i in 0..5 {
            let log = log.clone();
            h.push(Box::new(move || log.borrow_mut().push(i)));
        }
        for t in h.take_all() {
            t();
        }
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
        // Unrun thunks are freed by Drop, not executed.
        let log2 = log.clone();
        h.push(Box::new(move || log2.borrow_mut().push(99)));
        drop(h);
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn engine_lock_is_reentrant() {
        let l = EngineLock::new();
        l.acquire();
        l.acquire();
        l.release();
        assert_ne!(l.owner.load(Ordering::Relaxed), 0, "still held once");
        l.release();
        assert_eq!(l.owner.load(Ordering::Relaxed), 0, "fully released");
    }

    #[test]
    fn progress_env_defaults_off() {
        // The env var is absent in the test environment; the default must
        // be off (a hidden thread is opt-in). Parsed by the consolidated
        // `crate::config::Config` these days.
        if std::env::var("UPCXX_PROGRESS").is_err() {
            assert!(!crate::config::Config::from_env().progress);
        }
    }
}
