//! Generalized Remote Procedure Call (§II–III, Fig. 2).
//!
//! `rpc(target, f, args)` ships `f` plus serialized `args` to `target`,
//! executes it there during the target's user-level progress, and returns a
//! future carrying the (serialized, shipped-back) result — the progression of
//! Fig. 2: initiator defQ → actQ → AM → target compQ → execute → reply AM →
//! initiator compQ.
//!
//! Rust spelling of the C++ restriction: UPC++ lambdas sent by RPC must be
//! trivially serializable (no captured heap state); here `f` is a plain
//! `fn` item — stateless closures coerce — and all data travels through the
//! explicit `args`, which implement [`crate::ser::Ser`]. Arguments really
//! are serialized to bytes and deserialized at the target (so the sim
//! conduit charges true wire sizes and `View` arguments are zero-copy on
//! arrival, as in the paper's extend-add).
//!
//! `rpc_ff` is the paper's fire-and-forget variant (footnote 5): no
//! acknowledgment, "its progress is more like rget/rput".
//!
//! Every outgoing AM is built as a [`crate::frame::AmDesc`]: a monomorphized
//! target-side trampoline (`deliver_rpc`, `deliver_ff`, `deliver_reply`,
//! `deliver_sys`) plus its environment. In-process conduits ship the desc as
//! a closure; the proc conduit serializes it to a frame — either way the
//! identical trampoline runs at the target (see `crate::frame`).
//!
//! Trace anatomy (see [`crate::trace`]): an `rpc` op emits Inject/Conduit at
//! the initiator, Deliver at the target when the handler starts, and
//! Complete back at the initiator when the reply fulfills the promise; the
//! reply itself travels as a separate [`OpKind::Reply`] op. `rpc_ff` and
//! system AMs complete at the target when their handler returns.
//!
//! Causal spans: every message carries its span id `(origin, op)` on the
//! wire (modeled inside [`wire::RPC_HDR`]); the RPC's span id doubles as its
//! reply-table key, so the reply wire already names its causal parent. While
//! a handler executes, a [`crate::trace::SpanGuard`] marks its span as the
//! rank's current span — anything the handler injects (the reply itself, an
//! rput, a follow-up RPC from a `.then` chain) records that span as its
//! `(parent_origin, parent_op)`, which is how `upcxx::prof` stitches
//! cross-rank causal chains.

use crate::ctx::{ctx, DefOp};
use crate::frame::{AmDesc, FrameEnv};
use crate::future::{Future, Promise};
use crate::san;
use crate::ser::{from_bytes, to_bytes, Reader, Ser};
use crate::trace::{FlushReason, OpKind, Phase};
use crate::wire;
use gasnet::Rank;

/// Target-side body of [`rpc`]: deserialize, execute, ship the reply.
/// `env.user` is the shipped `fn(A) -> R`; `env.origin` the initiator.
fn deliver_rpc<A, R>(env: FrameEnv)
where
    A: Ser,
    R: Ser + Clone + 'static,
{
    // SAFETY: `env.user` round-trips the `fn(A) -> R` passed to `rpc` in
    // this same binary (anchor-offset encoding on the proc conduit, the
    // original address in-process); `A`/`R` are pinned by the trampoline's
    // own monomorphization, which traveled alongside it.
    let f = unsafe { std::mem::transmute::<usize, fn(A) -> R>(env.user) };
    let tc = ctx();
    san::msg_join(&tc, &env.snap);
    let _restricted = san::RestrictedGuard::new(&tc);
    let _span = crate::trace::SpanGuard::enter(&tc, env.origin, env.tag.tid);
    tc.emit_from(Phase::Deliver, env.tag, env.origin, FlushReason::None);
    crate::metrics::on_deliver(&tc, env.tag, env.origin);
    tc.stats
        .bytes_in
        .set(tc.stats.bytes_in.get() + env.body.len() as u64);
    tc.charge_ser(env.body.len());
    let a: A = from_bytes(env.body);
    let ret = f(a);
    let ret_bytes = to_bytes(&ret);
    tc.charge_ser(ret_bytes.len());
    // Ship the result back (under the span guard, so the Reply op records
    // this RPC as its causal parent); at the initiator the reply
    // continuation fulfills the promise from its compQ.
    send_reply(env.origin as Rank, env.tag.tid, ret_bytes);
}

/// Execute `f(args)` on `target`; the future readies with the result after
/// the round trip (paper: `upcxx::rpc`). `target` is a world rank; see
/// [`crate::team::Team::rpc`] for team-relative addressing.
#[must_use = "the reply only exists in the returned future; use rpc_ff if no reply is needed"]
pub fn rpc<A, R>(target: Rank, f: fn(A) -> R, args: A) -> Future<R>
where
    A: Ser,
    R: Ser + Clone + 'static,
{
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.stats.rpcs.set(c.stats.rpcs.get() + 1);

    let arg_bytes = to_bytes(&args);
    c.charge_ser(arg_bytes.len());
    c.stats
        .bytes_out
        .set(c.stats.bytes_out.get() + arg_bytes.len() as u64);
    let payload = arg_bytes.len();
    let tag = c.op_tag(OpKind::Rpc, target as u32, payload as u32);

    // Register the reply continuation (holds the promise; rank-local), keyed
    // by the op's span id — one sequence serves both reply matching and
    // tracing, so the reply wire names its causal parent for free. The
    // continuation runs at the initiator and closes the op's event quartet.
    let p = Promise::<R>::new();
    {
        let p2 = p.clone();
        c.reply_tbl.borrow_mut().insert(
            tag.tid,
            Box::new(move |mut r: Reader| {
                p2.fulfill(R::deser(&mut r));
                let ic = ctx();
                ic.emit(Phase::Complete, tag);
            }),
        );
    }

    // Sanitizer: the message carries the sender's vector clock, making the
    // handler (and everything sequenced after it, e.g. a then()-chained
    // rput) ordered after everything the sender completed — the DHT motif's
    // happens-before edge.
    let desc = AmDesc {
        tramp: deliver_rpc::<A, R>,
        user: f as usize,
        aux: 0,
        tag,
        origin: c.me as u32,
        snap: san::msg_snapshot(&c),
        body: arg_bytes,
    };
    crate::agg::submit(&c, target, payload, desc.into_am(c.frames), tag);
    p.get_future()
}

/// Target-side body of [`rpc_ff`]: deserialize, execute, complete in place.
fn deliver_ff<A: Ser>(env: FrameEnv) {
    // SAFETY: as in `deliver_rpc` — same binary, signature pinned by the
    // monomorphized trampoline.
    let f = unsafe { std::mem::transmute::<usize, fn(A)>(env.user) };
    let tc = ctx();
    san::msg_join(&tc, &env.snap);
    let _restricted = san::RestrictedGuard::new(&tc);
    let _span = crate::trace::SpanGuard::enter(&tc, env.origin, env.tag.tid);
    tc.emit_from(Phase::Deliver, env.tag, env.origin, FlushReason::None);
    crate::metrics::on_deliver(&tc, env.tag, env.origin);
    tc.stats
        .bytes_in
        .set(tc.stats.bytes_in.get() + env.body.len() as u64);
    tc.charge_ser(env.body.len());
    f(from_bytes(env.body));
    tc.emit_from(Phase::Complete, env.tag, env.origin, FlushReason::None);
}

/// Fire-and-forget RPC (paper: `upcxx::rpc_ff`): executes `f(args)` at the
/// target, returns nothing, sends no acknowledgment.
pub fn rpc_ff<A>(target: Rank, f: fn(A), args: A)
where
    A: Ser,
{
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.stats.rpcs.set(c.stats.rpcs.get() + 1);
    let arg_bytes = to_bytes(&args);
    c.charge_ser(arg_bytes.len());
    c.stats
        .bytes_out
        .set(c.stats.bytes_out.get() + arg_bytes.len() as u64);
    let payload = arg_bytes.len();
    let tag = c.op_tag(OpKind::RpcFf, target as u32, payload as u32);
    let desc = AmDesc {
        tramp: deliver_ff::<A>,
        user: f as usize,
        aux: 0,
        tag,
        origin: c.me as u32,
        snap: san::msg_snapshot(&c),
        body: arg_bytes,
    };
    crate::agg::submit(&c, target, payload, desc.into_am(c.frames), tag);
}

/// Initiator-side body of an RPC reply: look up the parked continuation for
/// op `env.aux` and run it on the master persona. `env.origin` is the
/// replying rank.
fn deliver_reply(env: FrameEnv) {
    let op_id = env.aux;
    let replier = env.origin;
    let tag = env.tag;
    let bytes = env.body;
    let ic = ctx();
    san::msg_join(&ic, &env.snap);
    let _restricted = san::RestrictedGuard::new(&ic);
    let _span = crate::trace::SpanGuard::enter(&ic, replier, tag.tid);
    ic.emit_from(Phase::Deliver, tag, replier, FlushReason::None);
    crate::metrics::on_deliver(&ic, tag, replier);
    ic.stats
        .bytes_in
        .set(ic.stats.bytes_in.get() + bytes.len() as u64);
    let handler = ic.reply_tbl.borrow_mut().remove(&op_id);
    match handler {
        // The continuation fulfills a user-visible promise, which belongs to
        // the master persona. `master_exec` runs it inline on the default
        // path (identical order to before personas existed); when a progress
        // persona delivered this reply, it parks the continuation in the
        // handoff queue for the initiator's next user-progress call —
        // today's single-threaded callback semantics, regardless of which
        // persona serviced the wire.
        Some(handler) => crate::persona::master_exec(&ic, move || {
            let mc = ctx();
            let _restricted = san::RestrictedGuard::new(&mc);
            let _span = crate::trace::SpanGuard::enter(&mc, replier, tag.tid);
            handler(Reader::new(bytes));
        }),
        None => {
            // A reply with no parked continuation means the op-id
            // bookkeeping broke (double reply, or delivery to the wrong
            // rank) — a runtime bug, never an application one. Abort loudly
            // in debug builds; in release, drop the reply and diagnose on
            // stderr rather than tearing down the world.
            let here = ic.me;
            debug_assert!(
                false,
                "RPC reply for op {op_id} (from rank {replier}) arrived at \
                 rank {here} with no registered continuation"
            );
            eprintln!(
                "upcxx: dropping RPC reply for op {op_id} (from rank {replier}) \
                 at rank {here}: no registered continuation"
            );
        }
    }
    ic.emit_from(Phase::Complete, tag, replier, FlushReason::None);
}

/// Internal: deliver `bytes` to `initiator`'s reply continuation `op_id`
/// (the parent RPC's span id — reply matching and span identity share one
/// key space). Replies ride the aggregation layer too (they are exactly the
/// kind of tiny message batching exists for); the end-of-batch and
/// end-of-item flush hooks guarantee they leave the replying rank promptly.
fn send_reply(initiator: Rank, op_id: u64, bytes: Vec<u8>) {
    let c = ctx();
    let payload = bytes.len();
    // Called under the RPC handler's span guard, so this tag's parent is the
    // RPC being answered.
    let tag = c.op_tag(OpKind::Reply, initiator as u32, payload as u32);
    let desc = AmDesc {
        tramp: deliver_reply,
        user: 0,
        aux: op_id,
        tag,
        origin: c.me as u32,
        snap: san::msg_snapshot(&c),
        body: bytes,
    };
    crate::agg::submit(&c, initiator, payload, desc.into_am(c.frames), tag);
}

/// Target-side body of a system AM: deserialize and run, outside the RPC
/// accounting.
fn deliver_sys<A: Ser>(env: FrameEnv) {
    // SAFETY: as in `deliver_rpc`.
    let f = unsafe { std::mem::transmute::<usize, fn(A)>(env.user) };
    let tc = ctx();
    san::msg_join(&tc, &env.snap);
    let _restricted = san::RestrictedGuard::new(&tc);
    let _span = crate::trace::SpanGuard::enter(&tc, env.origin, env.tag.tid);
    tc.emit_from(Phase::Deliver, env.tag, env.origin, FlushReason::None);
    crate::metrics::on_deliver(&tc, env.tag, env.origin);
    f(from_bytes(env.body));
    tc.emit_from(Phase::Complete, env.tag, env.origin, FlushReason::None);
}

/// Crate-internal "system AM": run a `fn(A)` on `target` outside the RPC
/// accounting (collectives' flags and payloads ride on this). System AMs are
/// latency-critical control traffic and never aggregate; they do flush the
/// target's coalescing buffer first so per-target injection order holds.
pub(crate) fn sys_am<A: Ser>(target: Rank, f: fn(A), args: A) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    crate::agg::flush_target(&c, target, FlushReason::Ordering);
    let bytes = to_bytes(&args);
    let wire = wire::am_wire_size(bytes.len());
    let tag = c.op_tag(OpKind::SysAm, target as u32, bytes.len() as u32);
    // System AMs carry clocks too: barrier flags ride here, which is what
    // gives the sanitizer its "epochs advance on barrier" rule for free —
    // the dissemination rounds propagate every rank's clock transitively.
    let desc = AmDesc {
        tramp: deliver_sys::<A>,
        user: f as usize,
        aux: 0,
        tag,
        origin: c.me as u32,
        snap: san::msg_snapshot(&c),
        body: bytes,
    };
    c.inject(
        DefOp::Am {
            target,
            wire_bytes: wire,
            am: desc.into_am(c.frames),
        },
        tag,
    );
}
