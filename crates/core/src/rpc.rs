//! Generalized Remote Procedure Call (§II–III, Fig. 2).
//!
//! `rpc(target, f, args)` ships `f` plus serialized `args` to `target`,
//! executes it there during the target's user-level progress, and returns a
//! future carrying the (serialized, shipped-back) result — the progression of
//! Fig. 2: initiator defQ → actQ → AM → target compQ → execute → reply AM →
//! initiator compQ.
//!
//! Rust spelling of the C++ restriction: UPC++ lambdas sent by RPC must be
//! trivially serializable (no captured heap state); here `f` is a plain
//! `fn` item — stateless closures coerce — and all data travels through the
//! explicit `args`, which implement [`crate::ser::Ser`]. Arguments really
//! are serialized to bytes and deserialized at the target (so the sim
//! conduit charges true wire sizes and `View` arguments are zero-copy on
//! arrival, as in the paper's extend-add).
//!
//! `rpc_ff` is the paper's fire-and-forget variant (footnote 5): no
//! acknowledgment, "its progress is more like rget/rput".

use crate::ctx::{ctx, DefOp};
use crate::future::{Future, Promise};
use crate::ser::{from_bytes, to_bytes, Reader, Ser};
use gasnet::Rank;

/// Header bytes we model per RPC message (handler id + op id + framing).
const RPC_HDR: usize = 24;

/// Execute `f(args)` on `target`; the future readies with the result after
/// the round trip (paper: `upcxx::rpc`). `target` is a world rank; see
/// [`crate::team::Team::rpc`] for team-relative addressing.
pub fn rpc<A, R>(target: Rank, f: fn(A) -> R, args: A) -> Future<R>
where
    A: Ser,
    R: Ser + Clone + 'static,
{
    let c = ctx();
    c.stats.rpcs.set(c.stats.rpcs.get() + 1);
    let initiator = c.me;
    let op_id = c.new_op_id();

    // Register the reply continuation (holds the promise; rank-local).
    let p = Promise::<R>::new();
    {
        let p2 = p.clone();
        c.reply_tbl.borrow_mut().insert(
            op_id,
            Box::new(move |mut r: Reader| {
                p2.fulfill(R::deser(&mut r));
            }),
        );
    }

    let arg_bytes = to_bytes(&args);
    c.charge_ser(arg_bytes.len());
    c.stats
        .bytes_out
        .set(c.stats.bytes_out.get() + arg_bytes.len() as u64);
    let wire = arg_bytes.len() + RPC_HDR;

    let item: gasnet::Item = Box::new(move || {
        // Runs on the target rank with its context installed.
        let tc = ctx();
        tc.charge_ser(arg_bytes.len());
        let a: A = from_bytes(arg_bytes);
        let ret = f(a);
        let ret_bytes = to_bytes(&ret);
        tc.charge_ser(ret_bytes.len());
        // Ship the result back; at the initiator the reply continuation
        // fulfills the promise from its compQ.
        send_reply(initiator, op_id, ret_bytes);
    });

    c.inject(DefOp::Am {
        target,
        wire_bytes: wire,
        item,
    });
    p.get_future()
}

/// Fire-and-forget RPC (paper: `upcxx::rpc_ff`): executes `f(args)` at the
/// target, returns nothing, sends no acknowledgment.
pub fn rpc_ff<A>(target: Rank, f: fn(A), args: A)
where
    A: Ser,
{
    let c = ctx();
    c.stats.rpcs.set(c.stats.rpcs.get() + 1);
    let arg_bytes = to_bytes(&args);
    c.charge_ser(arg_bytes.len());
    c.stats
        .bytes_out
        .set(c.stats.bytes_out.get() + arg_bytes.len() as u64);
    let wire = arg_bytes.len() + RPC_HDR;
    let item: gasnet::Item = Box::new(move || {
        let tc = ctx();
        tc.charge_ser(arg_bytes.len());
        f(from_bytes(arg_bytes));
    });
    c.inject(DefOp::Am {
        target,
        wire_bytes: wire,
        item,
    });
}

/// Internal: deliver `bytes` to `initiator`'s reply continuation `op_id`.
fn send_reply(initiator: Rank, op_id: u64, bytes: Vec<u8>) {
    let c = ctx();
    let wire = bytes.len() + RPC_HDR;
    let item: gasnet::Item = Box::new(move || {
        let ic = ctx();
        let handler = ic
            .reply_tbl
            .borrow_mut()
            .remove(&op_id)
            .expect("RPC reply without a registered continuation");
        handler(Reader::new(bytes));
    });
    c.inject(DefOp::Am {
        target: initiator,
        wire_bytes: wire,
        item,
    });
}

/// Crate-internal "system AM": run a `fn(A)` on `target` outside the RPC
/// accounting (collectives' flags and payloads ride on this).
pub(crate) fn sys_am<A: Ser>(target: Rank, f: fn(A), args: A) {
    let c = ctx();
    let bytes = to_bytes(&args);
    let wire = bytes.len() + RPC_HDR;
    let item: gasnet::Item = Box::new(move || {
        f(from_bytes(bytes));
    });
    c.inject(DefOp::Am {
        target,
        wire_bytes: wire,
        item,
    });
}
