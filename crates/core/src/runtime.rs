//! World construction: SPMD launch over the real-transport conduits and the
//! driver-based builder for the sim conduit.
//!
//! * [`run_spmd`] / [`run_spmd_with`] reproduce the classic UPC++ lifecycle:
//!   `upcxx::init()` … SPMD main … `upcxx::finalize()` — one rank per OS
//!   thread (smp conduit) or per OS *process* (proc conduit, selected by
//!   [`crate::Config::conduit`] / `UPCXX_CONDUIT=proc`), with a barrier on
//!   the way out so no rank exits while traffic is in flight.
//! * [`SimRuntime`] hosts thousands of ranks on the discrete-event conduit.
//!   Rank programs are *drivers*: closures scheduled onto ranks that express
//!   their control flow with futures/`then` chains (exactly the style of the
//!   paper's own benchmark listings). `run()` executes the virtual timeline
//!   to quiescence and reports the final virtual time.

use crate::config::{ConduitKind, Config};
use crate::ctx::{ctx, with_ctx, RankCtx};
use gasnet::proc::{self, ProcConfig};
use gasnet::sim::SimWorld;
use gasnet::smp::{self, SmpConfig};
use gasnet::Conduit;
use netsim::MachineConfig;
use pgas_des::Time;
use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

/// Options for a `run_spmd` world (legacy surface predating
/// [`crate::Config`]; kept as the compat path — it maps onto the typed
/// config plus the environment knobs).
#[derive(Clone, Debug)]
pub struct SpmdConfig {
    /// Shared-segment bytes per rank.
    pub seg_size: usize,
}

impl Default for SpmdConfig {
    fn default() -> Self {
        SpmdConfig { seg_size: 8 << 20 }
    }
}

/// The shared rank-main wrapper of every real-transport world: build the
/// context, apply launch-time config (trace, progress persona), run `f`,
/// then finalize — no rank leaves while others may still address it.
fn rank_main(h: Arc<dyn Conduit>, san_shared: crate::san::SanShared, cfg: &Config, f: &dyn Fn()) {
    let c = RankCtx::new_cond(h, san_shared, cfg);
    with_ctx(c.clone(), || {
        if cfg.trace.enabled {
            crate::trace::set_config(cfg.trace);
        }
        // Always-on observability: arm the periodic metrics dump (when
        // configured) and chain the flight-recorder panic hook so a dying
        // rank leaves its last events behind for the launcher's postmortem.
        crate::metrics::install(&c, cfg);
        // Opt-in async progress engine (UPCXX_PROGRESS=1 /
        // `Config::progress`): start the rank's progress persona before the
        // rank main runs.
        if cfg.progress {
            crate::persona::set_progress_thread(true);
        }
        f();
        // Finalize: no rank leaves while others may still address it.
        crate::coll::barrier();
        // Stop the progress persona (if any) after the barrier — no
        // peer will send new traffic at us — and run its leftover
        // handoffs on the master persona.
        crate::persona::set_progress_thread(false);
        // Drain one more round of progress so late completion items
        // (e.g. barrier acks to peers) are serviced before teardown.
        crate::ctx::progress();
        // Interval-dumping worlds get one closing dump covering the full run.
        crate::metrics::final_dump(&c);
    });
}

/// Run `f` as the rank main of an `n`-rank SPMD world with an explicit
/// [`Config`] — the programmatic form of the `UPCXX_*` environment. The
/// conduit choice selects real threads (`Smp`) or real processes (`Proc`);
/// either way every rank runs `f` and the call returns when the world has
/// torn down. Panics propagate (on proc, a crashed rank fails the launcher
/// with that rank's exit status).
pub fn run_spmd_with<F>(n: usize, cfg: Config, f: F)
where
    F: Fn() + Send + Sync,
{
    match cfg.conduit {
        ConduitKind::Smp => {
            let san = Arc::new(std::sync::Mutex::new(crate::san::SanWorld::new(n)));
            smp::launch(
                n,
                SmpConfig {
                    seg_size: cfg.seg_size,
                },
                move |h| {
                    rank_main(
                        Arc::new(h),
                        crate::san::SanShared::Smp(san.clone()),
                        &cfg,
                        &f,
                    );
                },
            );
        }
        ConduitKind::Proc => {
            proc::launch(
                n,
                ProcConfig {
                    seg_size: cfg.seg_size,
                    rv_size: cfg.proc_rv_size,
                    eager_max: cfg.proc_eager_max,
                    // Crashed ranks leave flight-recorder dumps in the
                    // bootstrap dir (UPCXX_PROC_DIR); the launcher calls this
                    // to merge them into a last-events timeline.
                    postmortem: Some(crate::metrics::proc_postmortem),
                },
                move |h| {
                    // Each rank is its own process: the sanitizer's shadow
                    // world is process-local (covers this rank's segment;
                    // remote-target checks are disabled via `san_remote`).
                    let san = Arc::new(std::sync::Mutex::new(crate::san::SanWorld::new(n)));
                    rank_main(h, crate::san::SanShared::Smp(san), &cfg, &f);
                },
            );
        }
    }
}

/// Run `f` as the rank main of an `n`-rank SPMD world. The transport and
/// all other knobs come from the environment ([`Config::from_env`];
/// `UPCXX_CONDUIT=proc` selects process-per-rank) with `cfg`'s segment size
/// applied on top. Returns when every rank main has finished and a closing
/// barrier has drained in-flight communication. Panics propagate.
pub fn run_spmd<F>(n: usize, cfg: SpmdConfig, f: F)
where
    F: Fn() + Send + Sync,
{
    run_spmd_with(n, Config::from_env().with_seg_size(cfg.seg_size), f)
}

/// Convenience wrapper with default configuration.
pub fn run_spmd_default<F>(n: usize, f: F)
where
    F: Fn() + Send + Sync,
{
    run_spmd(n, SpmdConfig::default(), f)
}

/// A simulated UPC++ world (see module docs).
pub struct SimRuntime {
    world: SimWorld,
    ctxs: Rc<RefCell<Vec<std::sync::Arc<RankCtx>>>>,
}

impl SimRuntime {
    /// Build a world of `n` ranks on `machine` with `seg_size`-byte segments.
    pub fn new(machine: MachineConfig, n: usize, seg_size: usize) -> SimRuntime {
        let world = SimWorld::new(machine, n, seg_size);
        let san = Rc::new(RefCell::new(crate::san::SanWorld::new(n)));
        let ctxs: Rc<RefCell<Vec<std::sync::Arc<RankCtx>>>> = Rc::new(RefCell::new(
            (0..n)
                .map(|r| {
                    RankCtx::new_sim(world.clone(), r, crate::san::SanShared::Sim(san.clone()))
                })
                .collect(),
        ));
        let cx2 = ctxs.clone();
        world.set_exec_wrapper(Rc::new(move |rank, item| {
            let c = cx2.borrow()[rank].clone();
            with_ctx(c.clone(), item);
            // Ship anything the item buffered in the aggregation layer (e.g.
            // an RPC reply): under sim a passive rank gets no further
            // progress calls, so without this the virtual timeline could
            // quiesce with traffic stranded in a coalescing buffer.
            with_ctx(c.clone(), || {
                crate::agg::flush_all_ctx(&c, crate::trace::FlushReason::ItemTail)
            });
        }));
        SimRuntime { world, ctxs }
    }

    /// Number of ranks.
    pub fn rank_n(&self) -> usize {
        self.world.rank_n()
    }

    /// The underlying simulated world (virtual clock, traffic counters).
    pub fn world(&self) -> &SimWorld {
        &self.world
    }

    /// Schedule `f` to run as (part of) `rank`'s program at virtual time
    /// `at`. Inside `f`, the full `upcxx` API is available.
    pub fn spawn_at(&self, rank: usize, at: Time, f: impl FnOnce() + 'static) {
        self.world.spawn_at(rank, at, Box::new(f));
    }

    /// Schedule `f` on `rank` at time zero.
    pub fn spawn(&self, rank: usize, f: impl FnOnce() + 'static) {
        self.spawn_at(rank, Time::ZERO, f);
    }

    /// Schedule a driver on every rank at time zero (`make(rank)` builds each
    /// rank's program — the SPMD pattern under simulation).
    pub fn spawn_all(&self, make: impl Fn(usize) -> Box<dyn FnOnce()>) {
        for r in 0..self.rank_n() {
            self.world.spawn_at(r, Time::ZERO, make(r));
        }
    }

    /// Run the virtual timeline to quiescence; returns the final time.
    pub fn run(&self) -> Time {
        let t = self.world.run();
        // Quiescence is a global synchronization point: nothing is in
        // flight, so the sanitizer orders later driver code and harness
        // inspections (`with_rank`) after everything that completed.
        self.with_rank(0, || crate::san::quiesce(&crate::ctx::ctx()));
        t
    }

    /// Model `cost` of application compute on `rank` (drivers use this to
    /// represent work between communication calls).
    pub fn compute(&self, rank: usize, cost: Time) {
        self.world.compute(rank, cost);
    }

    /// Access a rank's context outside driver execution (test assertions).
    pub fn with_rank<R>(&self, rank: usize, f: impl FnOnce() -> R) -> R {
        let c = self.ctxs.borrow()[rank].clone();
        let mut out = None;
        with_ctx(c, || out = Some(f()));
        out.unwrap()
    }

    /// Drain every rank's trace ring (rank order; each rank's slice stays
    /// chronological). The whole-world event stream of a traced run.
    pub fn take_trace(&self) -> Vec<crate::trace::TraceEvent> {
        let mut all = Vec::new();
        for r in 0..self.rank_n() {
            all.extend(self.with_rank(r, crate::trace::take_local));
        }
        all
    }

    /// Drain every rank's trace ring and write it as Chrome-trace JSON to
    /// `path` (loadable in Perfetto / `chrome://tracing`).
    pub fn export_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        let events = self.take_trace();
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        crate::trace::export_chrome(&events, &mut f)
    }

    /// Sim-conduit counterpart of [`crate::prof::collect`]: gather every
    /// rank's trace ring into rank 0 **on the virtual timeline** (the
    /// collection rides the runtime's own RPC layer and is itself simulated)
    /// and build the merged [`crate::prof::Profile`]. Call after [`run`]
    /// (drivers cannot block under sim, so the harness drives collection);
    /// tracing is disabled on every rank as a side effect. Deterministic:
    /// identical runs produce byte-identical profiles.
    ///
    /// [`run`]: SimRuntime::run
    pub fn collect_prof(&self) -> crate::prof::Profile {
        let now = self.world.now();
        for r in 0..self.rank_n() {
            self.spawn_at(r, now, crate::prof::send_to_root);
        }
        self.run();
        self.with_rank(0, crate::prof::take_collected)
    }
}

/// Model application compute on the current rank (no-op on smp where real
/// compute is real). Drivers use this to represent work between
/// communication calls — it also models *inattentiveness*: incoming RPCs
/// wait out the window, as §III requires.
pub fn compute(cost: Time) {
    if let crate::ctx::Backend::Sim(w) = &ctx().backend {
        w.charge(ctx().me, cost);
    }
}

/// A future that readies after `delay` of virtual time (sim conduit); on
/// smp it readies immediately (real pipelined library latencies are real
/// there). Used by layered libraries to model internal latency that is
/// pipelined rather than CPU-occupying.
pub fn after(delay: Time) -> crate::future::Future<()> {
    let c = ctx();
    match &c.backend {
        crate::ctx::Backend::Cond(_) => crate::future::make_future(()),
        crate::ctx::Backend::Sim(w) => {
            let p = crate::future::Promise::<()>::new();
            let p2 = p.clone();
            w.after(c.me, delay, Box::new(move || p2.fulfill(())));
            p.get_future()
        }
    }
}

/// The sim conduit's software-cost table, or `None` on smp. Layers built
/// *above* UPC++ (e.g. the mini-MPI baseline) use this to charge their own
/// additional per-operation software costs against the rank's virtual CPU.
pub fn sim_sw_costs() -> Option<netsim::config::SwCosts> {
    ctx().sw()
}

/// The current virtual time under sim, or `None` on smp (use `Instant`).
pub fn sim_now() -> Option<Time> {
    match &ctx().backend {
        crate::ctx::Backend::Sim(w) => Some(w.now()),
        crate::ctx::Backend::Cond(_) => None,
    }
}

/// The current rank's virtual "local clock" under sim (includes charged CPU
/// work not yet reflected in global event time).
pub fn sim_rank_now() -> Option<Time> {
    match &ctx().backend {
        crate::ctx::Backend::Sim(w) => Some(w.rank_now(ctx().me)),
        crate::ctx::Backend::Cond(_) => None,
    }
}
