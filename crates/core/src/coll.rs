//! Non-blocking collectives: dissemination barrier, binomial-tree broadcast
//! and reductions.
//!
//! The paper lists "adding a rich set of non-blocking collective operations"
//! as current work (§VI) and uses barriers throughout its benchmarks; these
//! implementations follow the scalability principle of §I — every algorithm
//! is O(log P) rounds with O(1) state per in-flight operation and **no**
//! per-rank arrays proportional to world size.
//!
//! All collectives are *asynchronous* (return futures) and must be issued in
//! the same order by every member of the team (the standard SPMD matching
//! discipline; sequence numbers assigned at issue time do the matching).

use crate::ctx::{ctx, ReduceSlot};
use crate::future::{Future, Promise};
use crate::rpc::sys_am;
use crate::ser::{from_bytes, to_bytes, Ser};
use crate::team::Team;
use std::rc::Rc;

// ---------------------------------------------------------------- barrier

/// Asynchronous barrier over `team` (dissemination algorithm, ⌈log2 n⌉
/// rounds). The returned future readies once every member has entered the
/// barrier.
pub fn barrier_async_team(team: &Team) -> Future<()> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    // Entering a barrier is a quiescence point for this rank's outgoing
    // traffic: ship every aggregation buffer before the first flag leaves,
    // so buffered payloads are ordered ahead of the barrier on every target.
    crate::agg::flush_all_ctx(&c, crate::trace::FlushReason::Barrier);
    let n = team.rank_n();
    let p = Promise::<()>::new();
    if n == 1 {
        p.fulfill(());
        return p.get_future();
    }
    let epoch = {
        let mut coll = c.coll.borrow_mut();
        let e = coll.barrier_epoch.entry(team.id()).or_insert(0);
        *e += 1;
        *e
    };
    barrier_round(team.clone(), epoch, 0, p.clone());
    p.get_future()
}

/// Asynchronous world barrier (paper: `upcxx::barrier_async()`).
pub fn barrier_async() -> Future<()> {
    barrier_async_team(&Team::world())
}

/// Blocking world barrier (paper: `upcxx::barrier()`; smp conduit only —
/// sim drivers chain on [`barrier_async`]).
pub fn barrier() {
    barrier_async().wait();
}

/// One dissemination round: signal `me + 2^round`, continue when the flag
/// from `me - 2^round` (same epoch/round) has arrived.
fn barrier_round(team: Team, epoch: u64, round: u32, p: Promise<()>) {
    let n = team.rank_n();
    let me_t = team.rank_me();
    let dist = 1usize << round;
    if dist >= n {
        p.fulfill(());
        return;
    }
    let peer = team.world_rank((me_t + dist) % n);
    sys_am(peer, barrier_flag_handler, (team.id(), epoch, round));

    let c = ctx();
    let key = (team.id(), epoch, round);
    let arrived = c.coll.borrow_mut().barrier_flags.remove(&key).is_some();
    if arrived {
        barrier_round(team, epoch, round + 1, p);
    } else {
        c.coll.borrow_mut().barrier_waiters.insert(
            key,
            Box::new(move || barrier_round(team, epoch, round + 1, p)),
        );
    }
}

/// Target-side flag arrival: wake the parked round continuation or store the
/// flag for a round this rank has not reached yet.
fn barrier_flag_handler(args: (u64, u64, u32)) {
    let (team_id, epoch, round) = args;
    let c = ctx();
    let key = (team_id, epoch, round);
    let waiter = c.coll.borrow_mut().barrier_waiters.remove(&key);
    match waiter {
        // The parked continuation advances rounds and ultimately fulfills a
        // master-persona promise — route it there (inline on the default
        // path; via the handoff queue when a progress persona delivered the
        // flag, where the master picks it up inside its blocking wait).
        Some(k) => crate::persona::master_exec(&c, k),
        None => {
            c.coll.borrow_mut().barrier_flags.insert(key, ());
        }
    }
}

// -------------------------------------------------------------- broadcast

/// Binomial-tree broadcast over `team` from team rank `root`. The root
/// passes `Some(value)`; every other member passes `None`; all futures ready
/// with the root's value. (UPC++ `broadcast`, generalized to any `Ser`.)
pub fn broadcast_team<T: Ser + Clone>(team: &Team, root: usize, value: Option<T>) -> Future<T> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let seq = next_seq(team);
    broadcast_with_seq(team, root, value, seq)
}

/// World broadcast from world rank `root`.
pub fn broadcast<T: Ser + Clone>(root: usize, value: Option<T>) -> Future<T> {
    broadcast_team(&Team::world(), root, value)
}

/// Allocate the next collective sequence number for `team` (issue order must
/// match across members — module docs).
fn next_seq(team: &Team) -> u64 {
    let c = ctx();
    let mut coll = c.coll.borrow_mut();
    let s = coll.coll_seq.entry(team.id()).or_insert(0);
    *s += 1;
    *s
}

pub(crate) fn broadcast_with_seq<T: Ser + Clone>(
    team: &Team,
    root: usize,
    value: Option<T>,
    seq: u64,
) -> Future<T> {
    let c = ctx();
    let n = team.rank_n();
    let me_t = team.rank_me();
    let rel = (me_t + n - root) % n;
    assert_eq!(
        rel == 0,
        value.is_some(),
        "exactly the root must supply the value"
    );
    let p = Promise::<T>::new();
    let key = (team.id(), seq);

    if let Some(v) = value {
        // Root: forward immediately and complete.
        forward_bcast(team, root, seq, &to_bytes(&v));
        p.fulfill(v);
        c.coll.borrow_mut().bcast.remove(&key);
        return p.get_future();
    }

    // Non-root: the payload may already have arrived (slot created by the
    // handler) or is yet to come.
    let early = {
        let mut coll = c.coll.borrow_mut();
        let slot = coll.bcast.entry(key).or_default();
        slot.value.take()
    };
    match early {
        Some(bytes) => {
            forward_bcast(team, root, seq, &bytes);
            p.fulfill(from_bytes(bytes));
            c.coll.borrow_mut().bcast.remove(&key);
        }
        None => {
            let team2 = team.clone();
            let p2 = p.clone();
            let waiter = Box::new(move |bytes: Vec<u8>| {
                forward_bcast(&team2, root, seq, &bytes);
                p2.fulfill(from_bytes(bytes));
                ctx().coll.borrow_mut().bcast.remove(&(team2.id(), seq));
            });
            c.coll
                .borrow_mut()
                .bcast
                .get_mut(&key)
                .expect("slot just created")
                .waiter = Some(waiter);
        }
    }
    p.get_future()
}

/// Send the payload to this rank's binomial-tree children.
fn forward_bcast(team: &Team, root: usize, seq: u64, bytes: &[u8]) {
    let n = team.rank_n();
    let me_t = team.rank_me();
    let rel = (me_t + n - root) % n;
    // Children of `rel`: rel + 2^j for every j strictly above rel's MSB
    // (all j when rel == 0), while in range.
    let start_j = if rel == 0 {
        0
    } else {
        usize::BITS - rel.leading_zeros()
    };
    for j in start_j.. {
        let child = rel + (1usize << j);
        if child >= n {
            break;
        }
        let child_world = team.world_rank((child + root) % n);
        sys_am(
            child_world,
            bcast_arrival_handler,
            (team.id(), seq, bytes.to_vec()),
        );
    }
}

/// Target side: stash the payload or wake the parked local call.
fn bcast_arrival_handler(args: (u64, u64, Vec<u8>)) {
    let (team_id, seq, bytes) = args;
    let c = ctx();
    let key = (team_id, seq);
    let waiter = {
        let mut coll = c.coll.borrow_mut();
        let slot = coll.bcast.entry(key).or_default();
        match slot.waiter.take() {
            Some(w) => Some(w),
            None => {
                slot.value = Some(bytes.clone());
                None
            }
        }
    };
    // The waiter fulfills a master-persona promise (and forwards down the
    // tree); same routing rule as the barrier continuation above.
    if let Some(w) = waiter {
        crate::persona::master_exec(&c, move || w(bytes));
    }
}

// -------------------------------------------------------------- reductions

/// Binomial fan-in reduction over `team` to team rank `root` (UPC++
/// `reduce_one`). The future at the **root** carries the full reduction;
/// at other ranks it carries that rank's subtree partial (matching UPC++,
/// where non-root values are unspecified — do not rely on them).
pub fn reduce_one_team<T>(team: &Team, root: usize, value: T, op: fn(T, T) -> T) -> Future<T>
where
    T: Ser + Clone + 'static,
{
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let seq = next_seq(team);
    reduce_with_seq(team, root, value, op, seq)
}

/// World reduction to `root`.
pub fn reduce_one<T>(root: usize, value: T, op: fn(T, T) -> T) -> Future<T>
where
    T: Ser + Clone + 'static,
{
    reduce_one_team(&Team::world(), root, value, op)
}

/// Reduction delivering the result to **every** member (UPC++ `reduce_all`):
/// fan-in to team rank 0, then broadcast. Both sequence numbers are claimed
/// at issue time, so concurrent `reduce_all`s match correctly even when
/// their completions interleave differently across ranks.
pub fn reduce_all_team<T>(team: &Team, value: T, op: fn(T, T) -> T) -> Future<T>
where
    T: Ser + Clone + 'static,
{
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let red_seq = next_seq(team);
    let bc_seq = next_seq(team);
    let team2 = team.clone();
    let me0 = team.rank_me() == 0;
    reduce_with_seq(team, 0, value, op, red_seq)
        .then_fut(move |v| broadcast_with_seq(&team2, 0, if me0 { Some(v) } else { None }, bc_seq))
}

/// World all-reduction.
pub fn reduce_all<T>(value: T, op: fn(T, T) -> T) -> Future<T>
where
    T: Ser + Clone + 'static,
{
    reduce_all_team(&Team::world(), value, op)
}

fn reduce_with_seq<T>(team: &Team, root: usize, value: T, op: fn(T, T) -> T, seq: u64) -> Future<T>
where
    T: Ser + Clone + 'static,
{
    let c = ctx();
    let n = team.rank_n();
    let me_t = team.rank_me();
    let rel = (me_t + n - root) % n;
    let p = Promise::<T>::new();
    let key = (team.id(), seq);

    // Children of `rel` in the same binomial tree as broadcast.
    let start_j = if rel == 0 {
        0
    } else {
        usize::BITS - rel.leading_zeros()
    };
    let mut n_children = 0usize;
    for j in start_j.. {
        if rel + (1usize << j) >= n {
            break;
        }
        n_children += 1;
    }

    // Install the typed combine continuation in the slot.
    let early = {
        let mut coll = c.coll.borrow_mut();
        let slot = coll.reduce.entry(key).or_insert_with(|| ReduceSlot {
            partial: None,
            pending_children: 0,
            early: Vec::new(),
            on_child: None,
        });
        slot.partial = Some(Box::new(value));
        slot.pending_children = n_children;
        std::mem::take(&mut slot.early)
    };

    let team2 = team.clone();
    let p2 = p.clone();
    let on_child: Rc<dyn Fn(Vec<u8>)> = Rc::new(move |bytes: Vec<u8>| {
        let c = ctx();
        let done = {
            let mut coll = c.coll.borrow_mut();
            let slot = coll.reduce.get_mut(&key).expect("reduce slot vanished");
            let cur = *slot
                .partial
                .take()
                .expect("reduce partial missing")
                .downcast::<T>()
                .expect("reduce type confusion");
            let incoming: T = from_bytes(bytes);
            slot.partial = Some(Box::new(op(cur, incoming)));
            slot.pending_children -= 1;
            slot.pending_children == 0
        };
        if done {
            finish_reduce::<T>(&team2, root, seq, &p2);
        }
    });

    c.coll
        .borrow_mut()
        .reduce
        .get_mut(&key)
        .expect("slot just created")
        .on_child = Some(on_child.clone());

    // Contributions that raced ahead of the local call.
    for bytes in early {
        on_child(bytes);
    }
    // Leaves (and ranks whose children all arrived early) finish now.
    let ready = c
        .coll
        .borrow()
        .reduce
        .get(&key)
        .map(|s| s.pending_children == 0)
        .unwrap_or(false);
    if ready {
        finish_reduce::<T>(team, root, seq, &p);
    }
    p.get_future()
}

/// All children combined: send up the tree or complete at the root.
fn finish_reduce<T>(team: &Team, root: usize, seq: u64, p: &Promise<T>)
where
    T: Ser + Clone + 'static,
{
    let c = ctx();
    let key = (team.id(), seq);
    let partial = {
        let mut coll = c.coll.borrow_mut();
        let slot = coll.reduce.remove(&key).expect("reduce slot vanished");
        *slot
            .partial
            .expect("reduce finished without a partial")
            .downcast::<T>()
            .expect("reduce type confusion")
    };
    let n = team.rank_n();
    let me_t = team.rank_me();
    let rel = (me_t + n - root) % n;
    if rel == 0 {
        p.fulfill(partial);
    } else {
        // Parent: clear rel's lowest... highest set bit (binomial fan-in).
        let parent_rel = rel - (1usize << (usize::BITS - 1 - rel.leading_zeros()));
        let parent_world = team.world_rank((parent_rel + root) % n);
        sys_am(
            parent_world,
            reduce_arrival_handler,
            (team.id(), seq, to_bytes(&partial)),
        );
        // Non-root futures carry the subtree partial (see docs).
        p.fulfill(partial);
    }
}

/// Target side of a child contribution.
fn reduce_arrival_handler(args: (u64, u64, Vec<u8>)) {
    let (team_id, seq, bytes) = args;
    let c = ctx();
    let key = (team_id, seq);
    let cb = {
        let mut coll = c.coll.borrow_mut();
        let slot = coll.reduce.entry(key).or_insert_with(|| ReduceSlot {
            partial: None,
            pending_children: 0,
            early: Vec::new(),
            on_child: None,
        });
        match &slot.on_child {
            Some(cb) => Some(cb.clone()),
            None => {
                slot.early.push(bytes.clone());
                None
            }
        }
    };
    // The combine continuation mutates the typed reduce slot and may fulfill
    // the master-persona promise; the `Rc` clone above happened under the
    // engine lock and is consumed (or dropped) only on the master persona.
    if let Some(cb) = cb {
        crate::persona::master_exec(&c, move || cb(bytes));
    }
}

// --------------------------------------------------------------- helpers

/// Common reduction operators, usable as `fn` pointers.
pub mod ops {
    /// Sum of two u64.
    pub fn add_u64(a: u64, b: u64) -> u64 {
        a + b
    }
    /// Sum of two f64.
    pub fn add_f64(a: f64, b: f64) -> f64 {
        a + b
    }
    /// Minimum of two u64.
    pub fn min_u64(a: u64, b: u64) -> u64 {
        a.min(b)
    }
    /// Maximum of two u64.
    pub fn max_u64(a: u64, b: u64) -> u64 {
        a.max(b)
    }
    /// Maximum of two f64.
    pub fn max_f64(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    /// Concatenation of two vectors (allgather building block).
    pub fn concat_u64(mut a: Vec<u64>, mut b: Vec<u64>) -> Vec<u64> {
        a.append(&mut b);
        a
    }
}
