//! `upcxx::prof` — the distributed profiler built on top of the causal
//! trace stream ([`crate::trace`]).
//!
//! The trace subsystem records per-rank rings of queue-transition events;
//! this module turns that firehose into **answers**. [`collect`] gathers
//! every rank's ring into rank 0 *through the runtime's own RPC layer* (the
//! profiler is an application of the communication substrate it profiles)
//! and computes a [`Profile`]:
//!
//! * a per-peer **communication matrix** — operations and payload bytes,
//!   source → target, from every span's Inject event;
//! * **end-to-end latency percentiles** (p50/p90/p99/max) per op kind,
//!   decomposed into the engine's stages: inject → conduit (defQ
//!   residency), conduit → deliver (wire + target attentiveness), deliver →
//!   complete (compQ residency);
//! * **queue-occupancy timelines** — defQ and compQ depth over time per
//!   rank, with high-water marks and time-weighted averages;
//! * the run's **critical path** — the longest chain of causally linked
//!   spans (wire links from span ids crossing ranks, parent links from
//!   handlers injecting follow-up work, reply links closing RPC round
//!   trips), printed hop by hop with per-stage costs.
//!
//! Timestamps merge meaningfully because both conduits provide aligned
//! clocks: the sim conduit is virtual time (globally consistent by
//! construction), and the smp conduit stamps all ranks against one
//! per-world epoch captured before any rank thread starts. Under sim the
//! merge additionally *asserts* causal order (a span's origin-side hand-off
//! never times after its remote delivery).
//!
//! [`report`] renders a profile as human-readable text; [`Profile::to_json`]
//! as JSON; [`Profile::export_chrome`] as a merged Perfetto timeline (one
//! track per rank, cross-rank flow arrows). Under the sim conduit the whole
//! pipeline — collection, analysis, both renderings — is byte-for-byte
//! deterministic across runs.
//!
//! Conduit-specific entry points: on smp, [`collect`] is a blocking
//! collective every rank calls; under sim, drivers cannot block, so the
//! harness calls [`crate::SimRuntime::collect_prof`] after `run()` — it
//! schedules the same collection drivers on the virtual timeline and runs
//! them to quiescence.

use crate::ctx::{ctx, rank_state, Backend};
use crate::ser::{from_bytes, to_bytes, Reader, Ser};
use crate::trace::{FlushReason, OpKind, Phase, TraceConfig, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;

// --------------------------------------------------------------- enum codes

/// All op kinds, in wire-code order (index = code).
const ALL_KINDS: [OpKind; 8] = [
    OpKind::Put,
    OpKind::Get,
    OpKind::Amo,
    OpKind::Rpc,
    OpKind::RpcFf,
    OpKind::Reply,
    OpKind::SysAm,
    OpKind::Batch,
];

pub(crate) fn kind_code(k: OpKind) -> u8 {
    ALL_KINDS.iter().position(|&x| x == k).unwrap() as u8
}

pub(crate) fn kind_from(c: u8) -> OpKind {
    ALL_KINDS[c as usize]
}

const ALL_PHASES: [Phase; 4] = [
    Phase::Inject,
    Phase::Conduit,
    Phase::Deliver,
    Phase::Complete,
];

pub(crate) fn phase_idx(p: Phase) -> usize {
    ALL_PHASES.iter().position(|&x| x == p).unwrap()
}

pub(crate) fn phase_from(c: u8) -> Phase {
    ALL_PHASES[c as usize]
}

const ALL_REASONS: [FlushReason; 8] = [
    FlushReason::None,
    FlushReason::Threshold,
    FlushReason::Ordering,
    FlushReason::Progress,
    FlushReason::Barrier,
    FlushReason::Explicit,
    FlushReason::ItemTail,
    FlushReason::Reconfig,
];

pub(crate) fn reason_code(r: FlushReason) -> u8 {
    ALL_REASONS.iter().position(|&x| x == r).unwrap() as u8
}

pub(crate) fn reason_from(c: u8) -> FlushReason {
    ALL_REASONS[c as usize]
}

// Events ship over the runtime's own RPC layer during collection, so they
// serialize with the same codec as every other RPC argument.
impl Ser for TraceEvent {
    fn ser(&self, out: &mut Vec<u8>) {
        self.rank.ser(out);
        self.origin.ser(out);
        self.op.ser(out);
        kind_code(self.kind).ser(out);
        (phase_idx(self.phase) as u8).ser(out);
        self.peer.ser(out);
        self.bytes.ser(out);
        reason_code(self.reason).ser(out);
        self.ts_ps.ser(out);
        self.parent_origin.ser(out);
        self.parent_op.ser(out);
        self.persona.ser(out);
    }
    fn deser(r: &mut Reader) -> Self {
        TraceEvent {
            rank: u32::deser(r),
            origin: u32::deser(r),
            op: u64::deser(r),
            kind: kind_from(u8::deser(r)),
            phase: phase_from(u8::deser(r)),
            peer: u32::deser(r),
            bytes: u32::deser(r),
            reason: reason_from(u8::deser(r)),
            ts_ps: u64::deser(r),
            parent_origin: u32::deser(r),
            parent_op: u64::deser(r),
            persona: u8::deser(r),
        }
    }
    fn ser_size(&self) -> usize {
        4 + 4 + 8 + 1 + 1 + 4 + 4 + 1 + 8 + 4 + 8 + 1
    }
}

// ---------------------------------------------------------------- profile

/// Per-rank ring accounting shipped alongside the events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankMeta {
    /// The contributing rank.
    pub rank: u32,
    /// Events emitted on that rank since tracing was configured.
    pub emitted: u64,
    /// Events lost to ring overwrite — a nonzero value means the profile is
    /// incomplete and [`report`] prints a warning.
    pub dropped: u64,
}

/// Exact percentiles over one duration population (picoseconds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pcts {
    /// Number of samples.
    pub count: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl Pcts {
    fn of(mut v: Vec<u64>) -> Pcts {
        if v.is_empty() {
            return Pcts::default();
        }
        v.sort_unstable();
        let at = |p: usize| v[(v.len() - 1) * p / 100];
        Pcts {
            count: v.len() as u64,
            p50: at(50),
            p90: at(90),
            p99: at(99),
            max: *v.last().unwrap(),
        }
    }
}

/// Latency decomposition for one op kind.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KindStats {
    /// The op kind.
    pub kind: OpKind,
    /// End-to-end Inject → Complete.
    pub total: Pcts,
    /// defQ residency: Inject → Conduit.
    pub inject_conduit: Pcts,
    /// Wire + target attentiveness: Conduit → Deliver.
    pub conduit_deliver: Pcts,
    /// compQ residency / handler execution: Deliver → Complete.
    pub deliver_complete: Pcts,
}

/// Queue-occupancy summary and timeline for one rank. Depths are
/// reconstructed from matched same-rank event pairs (Inject/Conduit for
/// defQ, Deliver/Complete for compQ), so spans whose phases were split
/// across ranks or lost to ring overwrite never skew a depth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueueStats {
    /// The rank described.
    pub rank: u32,
    /// defQ depth high-water mark.
    pub def_hwm: u32,
    /// Time-weighted average defQ depth, in thousandths.
    pub def_avg_milli: u64,
    /// compQ depth high-water mark.
    pub comp_hwm: u32,
    /// Time-weighted average compQ depth, in thousandths.
    pub comp_avg_milli: u64,
    /// Depth change points `(ts_ps, def_depth, comp_depth)`, decimated to at
    /// most 256 samples.
    pub timeline: Vec<(u64, u32, u32)>,
}

/// One hop of the critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CritHop {
    /// Rank that recorded the hop's event.
    pub rank: u32,
    /// Span identity: originating rank…
    pub origin: u32,
    /// …and per-origin sequence number.
    pub op: u64,
    /// Span kind.
    pub kind: OpKind,
    /// Queue transition at this hop.
    pub phase: Phase,
    /// Timestamp (ps).
    pub ts_ps: u64,
    /// Cost of reaching this hop from the previous one (ps).
    pub dt_ps: u64,
}

/// A merged, analyzed whole-world profile (built on rank 0 by [`collect`] /
/// [`crate::SimRuntime::collect_prof`]).
#[derive(Clone, Debug)]
pub struct Profile {
    /// World size.
    pub ranks: usize,
    /// Whether timestamps are virtual (sim conduit) or wall-clock ps against
    /// the world epoch (smp).
    pub virtual_time: bool,
    /// Per-rank ring accounting, indexed by rank.
    pub meta: Vec<RankMeta>,
    /// The merged event stream, sorted by `(ts, rank, origin, op, phase)` —
    /// feed to [`Profile::export_chrome`] for a merged Perfetto timeline.
    pub events: Vec<TraceEvent>,
    /// `comm_ops[src][dst]`: operations injected from `src` targeting `dst`
    /// (batches excluded — their members are counted individually).
    pub comm_ops: Vec<Vec<u64>>,
    /// `comm_bytes[src][dst]`: payload bytes, same orientation.
    pub comm_bytes: Vec<Vec<u64>>,
    /// Latency decomposition per op kind (kinds with at least one complete
    /// end-to-end measurement, in stable kind order).
    pub kinds: Vec<KindStats>,
    /// Queue-occupancy summaries, indexed by rank.
    pub queues: Vec<QueueStats>,
    /// The longest causal chain (see module docs), in execution order.
    pub critical_path: Vec<CritHop>,
}

// ------------------------------------------------------------- collection

/// Encoded-contribution chunk size: small enough that a contribution never
/// dwarfs the segment or a single inbox push, big enough that collection is
/// a handful of messages per rank.
const CHUNK: usize = 48 << 10;

/// Rank 0's collection inbox, keyed by contributing rank (BTreeMap: rank
/// order is the merge order, keeping sim collection deterministic).
#[derive(Default)]
struct ProfInbox {
    chunks: RefCell<BTreeMap<u32, Vec<Option<Vec<u8>>>>>,
}

fn deposit(src: u32, idx: u32, total: u32, bytes: Vec<u8>) {
    let inbox = rank_state(ProfInbox::default);
    let mut m = inbox.chunks.borrow_mut();
    let slots = m.entry(src).or_insert_with(|| vec![None; total as usize]);
    assert_eq!(slots.len(), total as usize, "prof: chunk-count mismatch");
    slots[idx as usize] = Some(bytes);
}

fn prof_recv_chunk(args: (u32, u32, u32, Vec<u8>)) {
    deposit(args.0, args.1, args.2, args.3);
}

fn inbox_complete(n: usize) -> bool {
    let inbox = rank_state(ProfInbox::default);
    let m = inbox.chunks.borrow();
    m.len() == n && m.values().all(|v| v.iter().all(Option::is_some))
}

/// Drain the calling rank's ring, disable tracing (collection traffic must
/// not record into the stream being shipped), and send the contribution to
/// rank 0 in chunks over the runtime's own `rpc_ff` path. Rank 0 deposits
/// directly.
pub(crate) fn send_to_root() {
    let c = ctx();
    let me = c.me as u32;
    let (emitted, dropped) = {
        let tr = c.trace.borrow();
        (tr.emitted(), tr.dropped())
    };
    let events = crate::trace::take_local();
    crate::trace::set_config(TraceConfig {
        enabled: false,
        ..TraceConfig::default()
    });
    let payload = to_bytes(&(me, emitted, dropped, events));
    let total = payload.len().div_ceil(CHUNK).max(1) as u32;
    for (i, chunk) in payload.chunks(CHUNK.max(1)).enumerate() {
        if me == 0 {
            deposit(0, i as u32, total, chunk.to_vec());
        } else {
            crate::rpc::rpc_ff(0, prof_recv_chunk, (me, i as u32, total, chunk.to_vec()));
        }
    }
    if payload.is_empty() {
        // A rank that never traced still contributes its (empty) meta.
        if me == 0 {
            deposit(0, 0, 1, Vec::new());
        } else {
            crate::rpc::rpc_ff(0, prof_recv_chunk, (me, 0, 1, Vec::new()));
        }
    }
}

/// Rank 0: reassemble every rank's contribution and build the [`Profile`].
/// Panics if any rank's contribution is missing or incomplete.
pub(crate) fn take_collected() -> Profile {
    let c = ctx();
    let n = c.n;
    let virtual_time = matches!(c.backend, Backend::Sim(_));
    let inbox = rank_state(ProfInbox::default);
    let mut m = inbox.chunks.borrow_mut();
    let mut contribs = Vec::with_capacity(n);
    for r in 0..n as u32 {
        let slots = m
            .remove(&r)
            .unwrap_or_else(|| panic!("prof: no contribution from rank {r}"));
        let mut buf = Vec::new();
        for s in slots {
            buf.extend_from_slice(
                &s.unwrap_or_else(|| panic!("prof: missing chunk from rank {r}")),
            );
        }
        let (rank, emitted, dropped, events): (u32, u64, u64, Vec<TraceEvent>) = from_bytes(buf);
        assert_eq!(rank, r, "prof: contribution mislabeled");
        contribs.push((
            RankMeta {
                rank,
                emitted,
                dropped,
            },
            events,
        ));
    }
    Profile::build(n, contribs, virtual_time)
}

/// Gather every rank's trace ring into rank 0 and build the merged
/// [`Profile`]. **Collective over the smp conduit**: every rank must call
/// it; it disables tracing on the calling rank, ships the ring to rank 0
/// through the runtime's own RPC layer, and returns `Some(profile)` on rank
/// 0, `None` elsewhere. A closing barrier makes it safe to resume tracing
/// or communicate immediately after.
///
/// Under the sim conduit drivers cannot block — call
/// [`crate::SimRuntime::collect_prof`] from the harness instead.
pub fn collect() -> Option<Profile> {
    let c = ctx();
    assert!(
        !matches!(c.backend, Backend::Sim(_)),
        "prof::collect() is a blocking collective; under the sim conduit call \
         SimRuntime::collect_prof() after run()"
    );
    let n = c.n;
    let me = c.me;
    drop(c);
    send_to_root();
    let out = if me == 0 {
        crate::ctx::wait_until(|| inbox_complete(n));
        Some(take_collected())
    } else {
        None
    };
    crate::coll::barrier();
    out
}

// --------------------------------------------------------------- analysis

type SpanKey = (u32, u64);

impl Profile {
    pub(crate) fn build(
        n: usize,
        contribs: Vec<(RankMeta, Vec<TraceEvent>)>,
        virtual_time: bool,
    ) -> Profile {
        let mut meta = Vec::with_capacity(n);
        let mut events: Vec<TraceEvent> = Vec::new();
        for (m, evs) in contribs {
            meta.push(m);
            events.extend(evs);
        }
        // Deterministic merge: primary key is time; the remaining fields
        // break ties identically on every run.
        events.sort_by_key(|e| {
            (
                e.ts_ps,
                e.rank,
                e.origin,
                e.op,
                phase_idx(e.phase),
                kind_code(e.kind),
            )
        });

        // Index each span's four phase events (first occurrence wins; a ring
        // that wrapped may have lost some).
        let mut span_ev: BTreeMap<SpanKey, [Option<usize>; 4]> = BTreeMap::new();
        for (i, e) in events.iter().enumerate() {
            if e.op == 0 {
                continue;
            }
            let slots = span_ev.entry((e.origin, e.op)).or_insert([None; 4]);
            let slot = &mut slots[phase_idx(e.phase)];
            if slot.is_none() {
                *slot = Some(i);
            }
        }

        // Clock sanity: under sim (virtual, globally consistent time) a
        // span's origin-side hand-off can never time after its delivery.
        if virtual_time {
            for (key, phs) in &span_ev {
                if let (Some(c), Some(d)) = (phs[1], phs[2]) {
                    assert!(
                        events[c].ts_ps <= events[d].ts_ps,
                        "span {key:?}: Conduit ts {} > Deliver ts {} (causal order violated)",
                        events[c].ts_ps,
                        events[d].ts_ps
                    );
                }
            }
        }

        // Communication matrix from Inject events (batches excluded: their
        // member payloads are already counted individually).
        let mut comm_ops = vec![vec![0u64; n]; n];
        let mut comm_bytes = vec![vec![0u64; n]; n];
        for e in &events {
            if e.phase == Phase::Inject && e.kind != OpKind::Batch {
                let (src, dst) = (e.origin as usize, e.peer as usize);
                if src < n && dst < n {
                    comm_ops[src][dst] += 1;
                    comm_bytes[src][dst] += e.bytes as u64;
                }
            }
        }

        // Stage latency populations per kind.
        let mut pops: BTreeMap<u8, [Vec<u64>; 4]> = BTreeMap::new();
        for phs in span_ev.values() {
            let first = phs.iter().flatten().next().copied();
            let Some(first) = first else { continue };
            let kind = events[first].kind;
            let t = |i: usize| phs[i].map(|j| events[j].ts_ps);
            let p = pops.entry(kind_code(kind)).or_default();
            if let (Some(a), Some(b)) = (t(0), t(3)) {
                p[0].push(b.saturating_sub(a));
            }
            for (s, (x, y)) in [(0, 1), (1, 2), (2, 3)].into_iter().enumerate() {
                if let (Some(a), Some(b)) = (t(x), t(y)) {
                    p[s + 1].push(b.saturating_sub(a));
                }
            }
        }
        let kinds: Vec<KindStats> = pops
            .into_iter()
            .map(|(code, [total, s1, s2, s3])| KindStats {
                kind: kind_from(code),
                total: Pcts::of(total),
                inject_conduit: Pcts::of(s1),
                conduit_deliver: Pcts::of(s2),
                deliver_complete: Pcts::of(s3),
            })
            .collect();

        let queues = queue_stats(n, &events, &span_ev);
        let critical_path = critical_path(&events, &span_ev);

        Profile {
            ranks: n,
            virtual_time,
            meta,
            events,
            comm_ops,
            comm_bytes,
            kinds,
            queues,
            critical_path,
        }
    }

    /// Write the merged event stream as Chrome-trace/Perfetto JSON: one
    /// track per rank, cross-rank flow arrows from the causal span links
    /// (see [`crate::trace::export_chrome`]).
    pub fn export_chrome<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        crate::trace::export_chrome(&self.events, w)
    }
}

/// Reconstruct per-rank defQ/compQ depth over time from matched same-rank
/// event pairs.
fn queue_stats(
    n: usize,
    events: &[TraceEvent],
    span_ev: &BTreeMap<SpanKey, [Option<usize>; 4]>,
) -> Vec<QueueStats> {
    // (ts, def_delta, comp_delta); decrements sort before increments at
    // equal timestamps so instantaneous transits never inflate the depth.
    let mut deltas: Vec<Vec<(u64, i8, i8)>> = vec![Vec::new(); n];
    for phs in span_ev.values() {
        for (a, b, which) in [(0usize, 1usize, 0u8), (2, 3, 1)] {
            if let (Some(i), Some(j)) = (phs[a], phs[b]) {
                if events[i].rank == events[j].rank && (events[i].rank as usize) < n {
                    let r = events[i].rank as usize;
                    let (d, c) = if which == 0 { (1i8, 0i8) } else { (0, 1) };
                    deltas[r].push((events[i].ts_ps, d, c));
                    deltas[r].push((events[j].ts_ps, -d, -c));
                }
            }
        }
    }
    let mut out = Vec::with_capacity(n);
    for (r, mut ds) in deltas.into_iter().enumerate() {
        ds.sort_unstable_by_key(|&(ts, d, c)| (ts, d, c));
        let (mut def, mut comp) = (0i64, 0i64);
        let (mut def_hwm, mut comp_hwm) = (0i64, 0i64);
        let (mut def_area, mut comp_area) = (0u128, 0u128);
        let mut last_ts = ds.first().map(|&(ts, ..)| ts).unwrap_or(0);
        let first_ts = last_ts;
        let mut timeline: Vec<(u64, u32, u32)> = Vec::new();
        for (ts, d, c) in ds {
            let dt = ts.saturating_sub(last_ts) as u128;
            def_area += def.max(0) as u128 * dt;
            comp_area += comp.max(0) as u128 * dt;
            last_ts = ts;
            def += d as i64;
            comp += c as i64;
            def_hwm = def_hwm.max(def);
            comp_hwm = comp_hwm.max(comp);
            match timeline.last_mut() {
                Some(t) if t.0 == ts => {
                    t.1 = def.max(0) as u32;
                    t.2 = comp.max(0) as u32;
                }
                _ => timeline.push((ts, def.max(0) as u32, comp.max(0) as u32)),
            }
        }
        let span = last_ts.saturating_sub(first_ts) as u128;
        let avg = |area: u128| (area * 1000).checked_div(span).unwrap_or(0) as u64;
        if timeline.len() > 256 {
            let step = timeline.len().div_ceil(256);
            timeline = timeline.into_iter().step_by(step).collect();
        }
        out.push(QueueStats {
            rank: r as u32,
            def_hwm: def_hwm.max(0) as u32,
            def_avg_milli: avg(def_area),
            comp_hwm: comp_hwm.max(0) as u32,
            comp_avg_milli: avg(comp_area),
            timeline,
        });
    }
    out
}

/// Longest causal chain over the merged events. Edges, all strictly
/// backwards in causal order:
///
/// * **intra-span**: an event's nearest recorded earlier phase of the same
///   span (the Deliver → its origin-side Conduit edge is the cross-rank wire
///   hop);
/// * **parent link**: a span's Inject was executed inside its parent's
///   handler, so its predecessor is the parent span's Deliver;
/// * **reply link**: an RPC's initiator-side Complete runs inside the reply
///   handler, so its predecessor is the Reply span's Deliver.
///
/// Distances telescope (each edge costs `ts(e) − ts(pred)`), so the longest
/// path is the chain spanning the most time; equal-span chains (telescoping
/// makes e.g. an RPC's Deliver → Complete shortcut tie with the full
/// reply-chain route) break toward **more hops** — the finer-grained causal
/// story — then toward the earliest event in merge order, deterministically.
fn critical_path(
    events: &[TraceEvent],
    span_ev: &BTreeMap<SpanKey, [Option<usize>; 4]>,
) -> Vec<CritHop> {
    if events.is_empty() {
        return Vec::new();
    }
    // Reply spans' Deliver events, indexed by the RPC (parent) they answer.
    let mut reply_deliver: BTreeMap<SpanKey, Vec<usize>> = BTreeMap::new();
    for (i, e) in events.iter().enumerate() {
        if e.kind == OpKind::Reply && e.phase == Phase::Deliver && e.parent_op != 0 {
            reply_deliver
                .entry((e.parent_origin, e.parent_op))
                .or_default()
                .push(i);
        }
    }
    let preds = |i: usize| -> Vec<usize> {
        let e = &events[i];
        let mut ps = Vec::new();
        if e.op == 0 {
            return ps;
        }
        if let Some(phs) = span_ev.get(&(e.origin, e.op)) {
            for q in (0..phase_idx(e.phase)).rev() {
                if let Some(j) = phs[q] {
                    ps.push(j);
                    break;
                }
            }
        }
        if e.phase == Phase::Inject && e.parent_op != 0 {
            if let Some(pphs) = span_ev.get(&(e.parent_origin, e.parent_op)) {
                if let Some(j) = pphs[2] {
                    ps.push(j);
                }
            }
        }
        if e.phase == Phase::Complete && e.kind == OpKind::Rpc {
            if let Some(rs) = reply_deliver.get(&(e.origin, e.op)) {
                ps.extend(rs.iter().copied());
            }
        }
        ps
    };
    // Longest-distance DP over the (acyclic) pred graph, iterative so deep
    // reply chains cannot overflow the stack.
    const UNSET: u64 = u64::MAX;
    let mut dist = vec![UNSET; events.len()];
    let mut hops_of = vec![0u32; events.len()];
    let mut back = vec![usize::MAX; events.len()];
    let mut stack: Vec<usize> = Vec::new();
    for s in 0..events.len() {
        if dist[s] != UNSET {
            continue;
        }
        stack.push(s);
        while let Some(&i) = stack.last() {
            if dist[i] != UNSET {
                stack.pop();
                continue;
            }
            let ps = preds(i);
            let pending: Vec<usize> = ps.iter().copied().filter(|&p| dist[p] == UNSET).collect();
            if !pending.is_empty() {
                stack.extend(pending);
                continue;
            }
            let (mut best, mut best_h, mut bp) = (0u64, 0u32, usize::MAX);
            for &p in &ps {
                let d = dist[p] + events[i].ts_ps.saturating_sub(events[p].ts_ps);
                let h = hops_of[p] + 1;
                if bp == usize::MAX || d > best || (d == best && h > best_h) {
                    best = d;
                    best_h = h;
                    bp = p;
                }
            }
            dist[i] = best;
            hops_of[i] = best_h;
            back[i] = bp;
            stack.pop();
        }
    }
    let mut end = 0usize;
    for i in 1..events.len() {
        if dist[i] > dist[end] || (dist[i] == dist[end] && hops_of[i] > hops_of[end]) {
            end = i;
        }
    }
    let mut chain = Vec::new();
    let mut i = end;
    while i != usize::MAX {
        chain.push(i);
        i = back[i];
    }
    chain.reverse();
    let mut hops = Vec::with_capacity(chain.len());
    let mut prev_ts: Option<u64> = None;
    for i in chain {
        let e = &events[i];
        hops.push(CritHop {
            rank: e.rank,
            origin: e.origin,
            op: e.op,
            kind: e.kind,
            phase: e.phase,
            ts_ps: e.ts_ps,
            dt_ps: prev_ts.map_or(0, |p| e.ts_ps.saturating_sub(p)),
        });
        prev_ts = Some(e.ts_ps);
    }
    hops
}

// --------------------------------------------------------------- rendering

fn fmt_pcts(out: &mut String, label: &str, p: &Pcts) {
    let _ = writeln!(
        out,
        "    {label:<18} n={:<6} p50={:<12} p90={:<12} p99={:<12} max={}",
        p.count, p.p50, p.p90, p.p99, p.max
    );
}

/// Render a profile as human-readable text. Under the sim conduit the
/// output is byte-for-byte deterministic for identical runs.
pub fn report(p: &Profile) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== upcxx::prof report ==");
    let _ = writeln!(
        out,
        "ranks: {}   events: {}   clock: {}-ps",
        p.ranks,
        p.events.len(),
        if p.virtual_time { "virtual" } else { "wall" }
    );
    for m in &p.meta {
        if m.dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: rank {} dropped {} trace events (ring capacity exceeded); \
                 profile is incomplete",
                m.rank, m.dropped
            );
        }
    }
    let _ = writeln!(out, "-- communication matrix (src -> dst) --");
    let any_traffic = p.comm_ops.iter().flatten().any(|&v| v > 0);
    if !any_traffic {
        let _ = writeln!(out, "  (no traffic)");
    } else if p.ranks <= 16 {
        let mut hdr = String::from("  ops      ");
        for d in 0..p.ranks {
            let _ = write!(hdr, "{d:>8}");
        }
        let _ = writeln!(out, "{hdr}");
        for (s, row) in p.comm_ops.iter().enumerate() {
            let _ = write!(out, "  s{s:<8}");
            for &v in row {
                if v == 0 {
                    let _ = write!(out, "{:>8}", ".");
                } else {
                    let _ = write!(out, "{v:>8}");
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "  bytes    ");
        for (s, row) in p.comm_bytes.iter().enumerate() {
            let _ = write!(out, "  s{s:<8}");
            for &v in row {
                if v == 0 {
                    let _ = write!(out, "{:>8}", ".");
                } else {
                    let _ = write!(out, "{v:>8}");
                }
            }
            let _ = writeln!(out);
        }
    } else {
        // Large worlds: the heaviest pairs only.
        let mut pairs: Vec<(u64, u64, usize, usize)> = Vec::new();
        for s in 0..p.ranks {
            for d in 0..p.ranks {
                if p.comm_ops[s][d] > 0 {
                    pairs.push((p.comm_bytes[s][d], p.comm_ops[s][d], s, d));
                }
            }
        }
        pairs.sort_by_key(|&(b, o, s, d)| (std::cmp::Reverse(b), std::cmp::Reverse(o), s, d));
        let shown = pairs.len().min(16);
        let _ = writeln!(
            out,
            "  top {shown} of {} active pairs (by bytes):",
            pairs.len()
        );
        for &(b, o, s, d) in pairs.iter().take(shown) {
            let _ = writeln!(out, "  {s:>5} -> {d:<5} ops={o:<8} bytes={b}");
        }
    }
    let _ = writeln!(out, "-- latency decomposition (ps) --");
    if p.kinds.is_empty() {
        let _ = writeln!(out, "  (no complete spans)");
    }
    for k in &p.kinds {
        let _ = writeln!(out, "  {}", k.kind.as_str());
        fmt_pcts(&mut out, "inject->complete", &k.total);
        fmt_pcts(&mut out, "inject->conduit", &k.inject_conduit);
        fmt_pcts(&mut out, "conduit->deliver", &k.conduit_deliver);
        fmt_pcts(&mut out, "deliver->complete", &k.deliver_complete);
    }
    let _ = writeln!(out, "-- queue occupancy --");
    for q in &p.queues {
        let _ = writeln!(
            out,
            "  rank {:<4} defQ hwm={:<4} avg={}.{:03}   compQ hwm={:<4} avg={}.{:03}",
            q.rank,
            q.def_hwm,
            q.def_avg_milli / 1000,
            q.def_avg_milli % 1000,
            q.comp_hwm,
            q.comp_avg_milli / 1000,
            q.comp_avg_milli % 1000,
        );
    }
    let _ = writeln!(out, "-- critical path --");
    if p.critical_path.is_empty() {
        let _ = writeln!(out, "  (no events)");
    } else {
        let total: u64 = p
            .critical_path
            .last()
            .map(|h| h.ts_ps)
            .unwrap_or(0)
            .saturating_sub(p.critical_path[0].ts_ps);
        let ranks: std::collections::BTreeSet<u32> =
            p.critical_path.iter().map(|h| h.rank).collect();
        let rank_list: Vec<String> = ranks.iter().map(|r| r.to_string()).collect();
        let _ = writeln!(
            out,
            "  {} hops, {} ps end to end, spans ranks {{{}}}",
            p.critical_path.len(),
            total,
            rank_list.join(",")
        );
        let hops = &p.critical_path;
        let show = |out: &mut String, idx: usize, h: &CritHop| {
            let _ = writeln!(
                out,
                "  #{idx:<4} [rank {:>3}] {}({}:{}) {:<8} ts={:<14} +{}",
                h.rank,
                h.kind.as_str(),
                h.origin,
                h.op,
                h.phase.as_str(),
                h.ts_ps,
                h.dt_ps
            );
        };
        if hops.len() <= 32 {
            for (i, h) in hops.iter().enumerate() {
                show(&mut out, i, h);
            }
        } else {
            for (i, h) in hops.iter().enumerate().take(16) {
                show(&mut out, i, h);
            }
            let _ = writeln!(out, "  ... ({} hops elided) ...", hops.len() - 31);
            for (i, h) in hops.iter().enumerate().skip(hops.len() - 15) {
                show(&mut out, i, h);
            }
        }
    }
    out
}

fn json_pcts(p: &Pcts) -> String {
    format!(
        "{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        p.count, p.p50, p.p90, p.p99, p.max
    )
}

fn json_matrix(m: &[Vec<u64>]) -> String {
    let rows: Vec<String> = m
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            format!("[{}]", cells.join(","))
        })
        .collect();
    format!("[{}]", rows.join(","))
}

impl Profile {
    /// Render the profile as JSON (hand-rolled — the workspace is
    /// dependency-free). Deterministic under the sim conduit.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"ranks\":{},\"clock\":\"{}\",\"events\":{}",
            self.ranks,
            if self.virtual_time { "virtual" } else { "wall" },
            self.events.len()
        );
        let metas: Vec<String> = self
            .meta
            .iter()
            .map(|m| {
                format!(
                    "{{\"rank\":{},\"emitted\":{},\"dropped\":{}}}",
                    m.rank, m.emitted, m.dropped
                )
            })
            .collect();
        let _ = write!(out, ",\"meta\":[{}]", metas.join(","));
        let _ = write!(out, ",\"comm_ops\":{}", json_matrix(&self.comm_ops));
        let _ = write!(out, ",\"comm_bytes\":{}", json_matrix(&self.comm_bytes));
        let kinds: Vec<String> = self
            .kinds
            .iter()
            .map(|k| {
                format!(
                    "{{\"kind\":\"{}\",\"total\":{},\"inject_conduit\":{},\
                     \"conduit_deliver\":{},\"deliver_complete\":{}}}",
                    k.kind.as_str(),
                    json_pcts(&k.total),
                    json_pcts(&k.inject_conduit),
                    json_pcts(&k.conduit_deliver),
                    json_pcts(&k.deliver_complete)
                )
            })
            .collect();
        let _ = write!(out, ",\"kinds\":[{}]", kinds.join(","));
        let queues: Vec<String> = self
            .queues
            .iter()
            .map(|q| {
                let tl: Vec<String> = q
                    .timeline
                    .iter()
                    .map(|&(ts, d, c)| format!("[{ts},{d},{c}]"))
                    .collect();
                format!(
                    "{{\"rank\":{},\"def_hwm\":{},\"def_avg_milli\":{},\
                     \"comp_hwm\":{},\"comp_avg_milli\":{},\"timeline\":[{}]}}",
                    q.rank,
                    q.def_hwm,
                    q.def_avg_milli,
                    q.comp_hwm,
                    q.comp_avg_milli,
                    tl.join(",")
                )
            })
            .collect();
        let _ = write!(out, ",\"queues\":[{}]", queues.join(","));
        let hops: Vec<String> = self
            .critical_path
            .iter()
            .map(|h| {
                format!(
                    "{{\"rank\":{},\"origin\":{},\"op\":{},\"kind\":\"{}\",\
                     \"phase\":\"{}\",\"ts_ps\":{},\"dt_ps\":{}}}",
                    h.rank,
                    h.origin,
                    h.op,
                    h.kind.as_str(),
                    h.phase.as_str(),
                    h.ts_ps,
                    h.dt_ps
                )
            })
            .collect();
        let _ = write!(out, ",\"critical_path\":[{}]", hops.join(","));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        rank: u32,
        origin: u32,
        op: u64,
        kind: OpKind,
        phase: Phase,
        ts: u64,
        parent: (u32, u64),
    ) -> TraceEvent {
        TraceEvent {
            rank,
            origin,
            op,
            kind,
            phase,
            peer: 1 - rank.min(1),
            bytes: 8,
            reason: FlushReason::None,
            ts_ps: ts,
            parent_origin: parent.0,
            parent_op: parent.1,
            persona: 0,
        }
    }

    #[test]
    fn trace_event_ser_roundtrip() {
        let e = ev(3, 1, 42, OpKind::Reply, Phase::Deliver, 123_456, (0, 17));
        let bytes = to_bytes(&e);
        assert_eq!(bytes.len(), e.ser_size());
        let back: TraceEvent = from_bytes(bytes);
        assert_eq!(back, e);
    }

    #[test]
    fn critical_path_follows_rpc_reply_chain() {
        // rank 0 rpc (span 0:1) -> rank 1 handler -> reply (span 1:1) ->
        // rank 0 Complete. The longest chain must cross both ranks.
        let events = [
            ev(0, 0, 1, OpKind::Rpc, Phase::Inject, 100, (0, 0)),
            ev(0, 0, 1, OpKind::Rpc, Phase::Conduit, 200, (0, 0)),
            ev(1, 0, 1, OpKind::Rpc, Phase::Deliver, 500, (0, 0)),
            ev(1, 1, 1, OpKind::Reply, Phase::Inject, 600, (0, 1)),
            ev(1, 1, 1, OpKind::Reply, Phase::Conduit, 700, (0, 1)),
            ev(0, 1, 1, OpKind::Reply, Phase::Deliver, 900, (0, 1)),
            ev(0, 0, 1, OpKind::Rpc, Phase::Complete, 950, (0, 0)),
        ];
        let meta = [
            RankMeta {
                rank: 0,
                emitted: 5,
                dropped: 0,
            },
            RankMeta {
                rank: 1,
                emitted: 2,
                dropped: 0,
            },
        ];
        let contribs = vec![
            (
                meta[0],
                events.iter().filter(|e| e.rank == 0).copied().collect(),
            ),
            (
                meta[1],
                events.iter().filter(|e| e.rank == 1).copied().collect(),
            ),
        ];
        let p = Profile::build(2, contribs, true);
        assert_eq!(p.critical_path.len(), 7);
        assert_eq!(p.critical_path[0].ts_ps, 100);
        assert_eq!(p.critical_path.last().unwrap().ts_ps, 950);
        let ranks: std::collections::BTreeSet<u32> =
            p.critical_path.iter().map(|h| h.rank).collect();
        assert_eq!(ranks.len(), 2);
        // End-to-end Rpc latency = 850 ps.
        let rpc = p.kinds.iter().find(|k| k.kind == OpKind::Rpc).unwrap();
        assert_eq!(rpc.total.p50, 850);
        // Report + JSON render without panicking and mention the ranks.
        let txt = report(&p);
        assert!(txt.contains("spans ranks {0,1}"));
        assert!(p.to_json().contains("\"critical_path\""));
    }

    #[test]
    fn dropped_events_warn_in_report() {
        let contribs = vec![(
            RankMeta {
                rank: 0,
                emitted: 10,
                dropped: 3,
            },
            vec![ev(0, 0, 1, OpKind::Put, Phase::Inject, 10, (0, 0))],
        )];
        let p = Profile::build(1, contribs, true);
        assert!(report(&p).contains("WARNING: rank 0 dropped 3 trace events"));
    }

    #[test]
    fn pcts_exact_on_small_population() {
        let p = Pcts::of(vec![10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(p.count, 10);
        assert_eq!(p.p50, 50);
        assert_eq!(p.p90, 90);
        assert_eq!(p.max, 100);
    }
}
