//! Distributed objects (§II).
//!
//! UPC++ rejects symmetric heaps and shared arrays as non-scalable; in their
//! place it offers the *distributed object*: one local representative per
//! rank, named by a universal identifier that RPC arguments translate to the
//! target's representative automatically. "Obtaining a global pointer from a
//! remote instance of a distributed object requires explicit communication"
//! — exactly what [`DistObject::fetch`] does.
//!
//! Construction is collective in the SPMD sense: every rank constructs its
//! distributed objects **in the same order**, so the per-rank counter yields
//! matching ids with no communication or non-scalable tracking state (the
//! paper's design goal). An RPC that arrives before the target has
//! constructed its representative parks until construction, matching UPC++'s
//! documented behaviour.

use crate::ctx::ctx;
use crate::future::Future;
use crate::ser::{Reader, Ser};
use std::rc::Rc;

/// Universal identifier of a distributed object (serializable; travels in
/// RPC arguments).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct DistId(pub u64);

impl Ser for DistId {
    fn ser(&self, out: &mut Vec<u8>) {
        self.0.ser(out);
    }
    fn deser(r: &mut Reader) -> Self {
        DistId(u64::deser(r))
    }
    fn ser_size(&self) -> usize {
        8
    }
}

/// A handle to this rank's representative of a distributed object
/// (paper: `upcxx::dist_object<T>`).
pub struct DistObject<T: 'static> {
    id: DistId,
    value: Rc<T>,
}

impl<T: 'static> DistObject<T> {
    /// Collectively construct (same order on every rank — module docs) a
    /// distributed object whose local representative is `value`.
    pub fn new(value: T) -> DistObject<T> {
        let c = ctx();
        let _g = crate::persona::lock(&c);
        let id = DistId(c.dist_next.get());
        c.dist_next.set(id.0 + 1);
        let value = Rc::new(value);
        c.dist_tbl.borrow_mut().insert(id.0, value.clone());
        // Wake any RPCs that arrived before construction.
        let parked = c.dist_waiters.borrow_mut().remove(&id.0);
        if let Some(parked) = parked {
            for k in parked {
                k();
            }
        }
        DistObject { id, value }
    }

    /// The universal identifier (pass it in RPC arguments).
    pub fn id(&self) -> DistId {
        self.id
    }

    /// This rank's representative.
    pub fn local(&self) -> &T {
        &self.value
    }

    /// Shared handle to this rank's representative.
    pub fn local_rc(&self) -> Rc<T> {
        self.value.clone()
    }

    /// Fetch a value derived from `target`'s representative — the explicit
    /// communication the paper requires for reaching remote instances.
    /// (`fetch` in UPC++ retrieves the remote value itself; deriving lets
    /// non-`Ser` representatives export, e.g., a `GlobalPtr` to their data.)
    pub fn fetch_map<R>(&self, target: usize, f: fn(Rc<T>) -> R) -> Future<R>
    where
        R: Ser + Clone + 'static,
    {
        // fn-pointer composition keeps the shipped callable stateless, per
        // the RPC contract; the id and the deriving fn travel as data.
        crate::rpc::rpc(target, run_fetch::<T, R>, (self.id, FnToken::new(f)))
    }
}

/// Resolve a distributed object's local representative on the current rank
/// (used inside RPC handler bodies; paper: the automatic argument
/// translation of `dist_object&` RPC parameters).
pub fn lookup<T: 'static>(id: DistId) -> Rc<T> {
    try_lookup(id).unwrap_or_else(|| {
        panic!(
            "distributed object {id:?} not yet constructed on rank {}",
            ctx().me
        )
    })
}

/// Non-panicking lookup.
pub fn try_lookup<T: 'static>(id: DistId) -> Option<Rc<T>> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let tbl = c.dist_tbl.borrow();
    tbl.get(&id.0).map(|any| {
        any.clone()
            .downcast::<T>()
            .expect("distributed-object type confusion")
    })
}

/// Run `f` once the distributed object `id` exists on this rank (immediately
/// if it already does). RPC handler bodies use this to tolerate arrival
/// before construction.
pub fn when_constructed(id: DistId, f: impl FnOnce() + 'static) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    if c.dist_tbl.borrow().contains_key(&id.0) {
        f();
    } else {
        c.dist_waiters
            .borrow_mut()
            .entry(id.0)
            .or_default()
            .push(Box::new(f));
    }
}

/// A serializable `fn`-pointer token. Sound only within one *binary* —
/// true for every conduit of this reproduction (all ranks execute the same
/// executable, as they would on an SPMD supercomputer job). The token
/// travels as an anchor-relative offset, not a raw address, so it stays
/// valid across the proc conduit's separately-ASLR'd processes (see
/// `crate::frame` for the encoding).
#[repr(transparent)]
struct FnToken<T, R> {
    f: fn(Rc<T>) -> R,
}

impl<T, R> FnToken<T, R> {
    fn new(f: fn(Rc<T>) -> R) -> Self {
        FnToken { f }
    }
}

impl<T: 'static, R: 'static> Ser for FnToken<T, R> {
    fn ser(&self, out: &mut Vec<u8>) {
        crate::frame::encode_fn(self.f as usize).ser(out);
    }
    fn deser(r: &mut Reader) -> Self {
        let addr = crate::frame::decode_fn(u64::deser(r));
        // SAFETY: the offset was produced by `encode_fn` from a valid
        // `fn(Rc<T>) -> R` in this same binary (single-executable SPMD);
        // `decode_fn` restores the address under this process's image base,
        // and the `Ser` type parameters pin the signature.
        let f = unsafe { std::mem::transmute::<usize, fn(Rc<T>) -> R>(addr) };
        FnToken { f }
    }
    fn ser_size(&self) -> usize {
        8
    }
}

fn run_fetch<T: 'static, R: Ser + Clone + 'static>(args: (DistId, FnToken<T, R>)) -> R {
    let (id, tok) = args;
    (tok.f)(lookup::<T>(id))
}
