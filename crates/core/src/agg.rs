//! Per-target RPC aggregation: coalescing many small AM payloads into one
//! wire message.
//!
//! The paper's fine-grained benchmarks (Fig. 4's 8–64 B RPC throughput, the
//! DHT's one-element inserts) are dominated by per-message costs: on the
//! modeled machine every AM pays an injection gap, a [`crate::wire::RPC_HDR`]
//! framing charge and a dispatch overhead at the target, regardless of how
//! few payload bytes it carries. This module buffers outgoing RPC payloads
//! per destination rank and ships each buffer as a **single batch**: one
//! conduit injection (one inbox push on smp, one modeled transfer — hence one
//! NIC gap — on sim), one header, one dispatch, `n` payloads.
//!
//! ## What is batched
//!
//! `rpc`, `rpc_ff` and RPC replies go through [`submit`]. Internal system AMs
//! (barrier flags, collective payloads) never aggregate — they are latency-
//! critical control traffic — but they flush the destination's buffer first
//! so per-target injection order is preserved. A payload at or above the
//! flush threshold also bypasses the buffer (again flushing first).
//!
//! ## When a buffer flushes
//!
//! Every flush records *why* (the [`FlushReason`] rides on the trace events
//! of the flushed members and of the batch itself):
//!
//! * its accounted wire size reaches [`AggConfig::max_bytes`]
//!   (`Threshold`);
//! * an oversize payload or a system AM needs the buffer drained first to
//!   preserve per-target order (`Ordering`);
//! * the application calls [`flush_all`] (`Explicit`) or
//!   [`set_agg_config`] (`Reconfig`);
//! * the rank enters a barrier (`Barrier`,
//!   [`crate::coll::barrier_async_team`]);
//! * user-level progress runs (`Progress`; [`crate::progress`], blocking
//!   waits);
//! * a batch finishes executing at its target (`ItemTail`: the tail of
//!   every batch flushes whatever the handlers buffered — typically replies
//!   — so a passive rank cannot strand them; on the sim conduit every
//!   delivered item additionally flushes on exit for the same reason).
//!
//! Aggregation is **opt-in** ([`AggConfig::enabled`] defaults to `false`):
//! it trades latency for throughput, exactly the trade the paper leaves to
//! the application.

use crate::ctx::{ctx, try_ctx, DefOp, RankCtx};
use crate::trace::{FlushReason, OpKind, Phase, TraceTag};
use crate::wire;
use gasnet::{Am, Batch, Item, Rank};
use std::collections::HashMap;

/// Configuration of the per-target aggregation layer (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggConfig {
    /// Whether outgoing RPC traffic is coalesced at all. Off by default:
    /// unaggregated behavior is bit-identical to a runtime without this
    /// module.
    pub enabled: bool,
    /// Flush threshold on the accounted wire size (header + packed records)
    /// of one target's buffer. Payloads whose lone batch would already
    /// exceed this bypass the aggregator.
    pub max_bytes: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            enabled: false,
            max_bytes: 4096,
        }
    }
}

/// One destination's coalescing buffer.
#[derive(Default)]
struct TargetBuf {
    /// Buffered payloads in injection order, in the conduit's AM
    /// representation (closures in-process, encoded frames on proc).
    items: Vec<Am>,
    /// The trace identity of each buffered payload (parallel to `items`);
    /// members emit their `Conduit` event when the buffer flushes.
    tags: Vec<TraceTag>,
    /// Accounted record bytes: Σ [`wire::batch_rec_size`] over `items`.
    rec_bytes: usize,
}

/// Per-rank aggregation state (lives in [`RankCtx`]).
pub(crate) struct AggState {
    cfg: AggConfig,
    bufs: HashMap<Rank, TargetBuf>,
    /// Targets with non-empty buffers, in first-touch order. Flushing in
    /// this deterministic order (never HashMap iteration order) keeps sim
    /// runs reproducible.
    order: Vec<Rank>,
}

impl AggState {
    pub(crate) fn new() -> AggState {
        AggState {
            cfg: AggConfig::default(),
            bufs: HashMap::new(),
            order: Vec::new(),
        }
    }
}

/// Payloads currently parked in this rank's aggregation buffers — the
/// metrics layer's `agg_pending` gauge, probed at snapshot time.
pub(crate) fn pending_items(c: &RankCtx) -> usize {
    c.agg.borrow().bufs.values().map(|b| b.items.len()).sum()
}

/// Route one outgoing AM payload: buffer it when aggregation is on and the
/// payload is small, otherwise inject it directly (flushing the target's
/// buffer first so per-target order is preserved). `tag` is the payload's
/// trace identity — its `Inject` event was emitted by the API entry point;
/// its `Conduit` event fires when the payload actually leaves.
pub(crate) fn submit(c: &RankCtx, target: Rank, payload: usize, am: Am, tag: TraceTag) {
    let cfg = c.agg.borrow().cfg;
    if !cfg.enabled {
        inject_single(c, target, payload, am, tag);
        return;
    }
    let rec = wire::batch_rec_size(payload);
    if wire::RPC_HDR + rec >= cfg.max_bytes {
        // Oversize: would fill (or overflow) a batch on its own. Keep order
        // by draining what is already queued for this target, then go direct.
        flush_target(c, target, FlushReason::Ordering);
        inject_single(c, target, payload, am, tag);
        return;
    }
    // Would this record push the queued batch over the threshold? Ship what
    // is queued first, so no batch ever exceeds `max_bytes`.
    let would_overflow =
        c.agg.borrow().bufs.get(&target).is_some_and(|b| {
            !b.items.is_empty() && wire::RPC_HDR + b.rec_bytes + rec > cfg.max_bytes
        });
    if would_overflow {
        flush_target(c, target, FlushReason::Threshold);
    }
    let full = {
        let mut st = c.agg.borrow_mut();
        // Invariant: `order` lists exactly the targets with non-empty bufs.
        if st.bufs.get(&target).is_none_or(|b| b.items.is_empty()) {
            st.order.push(target);
        }
        let buf = st.bufs.entry(target).or_default();
        buf.items.push(am);
        buf.tags.push(tag);
        buf.rec_bytes += rec;
        wire::RPC_HDR + buf.rec_bytes >= cfg.max_bytes
    };
    c.stats.agg_msgs.set(c.stats.agg_msgs.get() + 1);
    if full {
        flush_target(c, target, FlushReason::Threshold);
    }
}

/// Inject a plain single-payload AM (the unaggregated path). The `Conduit`
/// event fires in the progress engine when the op leaves defQ.
fn inject_single(c: &RankCtx, target: Rank, payload: usize, am: Am, tag: TraceTag) {
    c.inject(
        DefOp::Am {
            target,
            wire_bytes: wire::am_wire_size(payload),
            am,
        },
        tag,
    );
}

/// Ship `target`'s buffer now, if non-empty. A one-item buffer degenerates to
/// a plain AM (charged exactly like the unaggregated path); larger buffers
/// become one [`DefOp::AmBatch`] whose tail flushes the receiver's own
/// aggregator, so buffered replies flow without waiting for the receiver to
/// reach progress. The batch is itself a traced op ([`OpKind::Batch`]):
/// `Inject`/`Conduit` at the source (carrying `reason`), `Deliver`/`Complete`
/// bracketing the member executions at the target.
pub(crate) fn flush_target(c: &RankCtx, target: Rank, reason: FlushReason) {
    let buf = {
        let mut st = c.agg.borrow_mut();
        if st.bufs.get(&target).is_none_or(|b| b.items.is_empty()) {
            return;
        }
        st.order.retain(|&t| t != target);
        st.bufs.remove(&target).unwrap()
    };
    let TargetBuf {
        mut items,
        tags,
        rec_bytes,
    } = buf;
    // A non-empty buffer is actually leaving: count the flush by reason
    // (a one-item buffer still counts — the *flush* happened; it merely
    // degenerates to a plain AM on the wire).
    crate::metrics::count_flush(c, reason);
    if items.len() == 1 {
        let payload = rec_bytes - wire::AGG_REC_HDR;
        inject_single(c, target, payload, items.pop().unwrap(), tags[0]);
        return;
    }
    let wire_bytes = wire::RPC_HDR + rec_bytes;
    // The batch gets an id unconditionally (its target may be tracing even
    // when this rank is not); emission below gates on this rank's config.
    // Built through `trace::new_tag`, so a flush triggered from inside a
    // delivered item (ItemTail) records that item as the batch's parent.
    let batch_tag = crate::trace::new_tag(c, OpKind::Batch, target as u32, wire_bytes as u32);
    if c.trace_on.get() {
        // The members leave the coalescing buffer here: this is their
        // defQ -> conduit hand-off, stamped with why the flush happened.
        for t in &tags {
            c.emit_from(Phase::Conduit, *t, c.me as u32, reason);
        }
        c.emit_from(Phase::Inject, batch_tag, c.me as u32, reason);
    }
    let origin = c.me as u32;
    let batch = if c.frames {
        // Frame-mode conduit: the members are already encoded frames; pack
        // them into one container whose decoder reproduces the same
        // Deliver / members / Complete / ItemTail bracket built below for
        // closure mode (see `crate::frame::exec_frame_sink`).
        let members: Vec<Vec<u8>> = items
            .into_iter()
            .map(|am| match am {
                Am::Frame(f) => f,
                Am::Item(_) => unreachable!("closure AM buffered on a frame-mode conduit"),
            })
            .collect();
        Batch::Frame(crate::frame::encode_batch(&members, batch_tag, origin))
    } else {
        // Bracket the member executions with the batch's target-side events.
        let mut batched: Vec<Item> = Vec::with_capacity(items.len() + 3);
        batched.push(Box::new(move || {
            if let Some(rc) = try_ctx() {
                rc.emit_from(Phase::Deliver, batch_tag, origin, FlushReason::None);
            }
        }));
        for am in items {
            match am {
                Am::Item(item) => batched.push(item),
                Am::Frame(_) => unreachable!("frame AM buffered on a closure-mode conduit"),
            }
        }
        batched.push(Box::new(move || {
            if let Some(rc) = try_ctx() {
                rc.emit_from(Phase::Complete, batch_tag, origin, FlushReason::None);
            }
        }));
        batched.push(Box::new(|| {
            if let Some(rc) = try_ctx() {
                flush_all_ctx(&rc, FlushReason::ItemTail);
            }
        }));
        Batch::Items(batched)
    };
    c.stats.agg_batches.set(c.stats.agg_batches.get() + 1);
    c.inject(
        DefOp::AmBatch {
            target,
            wire_bytes,
            batch,
        },
        batch_tag,
    );
}

/// Flush every non-empty buffer of `c`, in first-touch order.
pub(crate) fn flush_all_ctx(c: &RankCtx, reason: FlushReason) {
    loop {
        let Some(target) = c.agg.borrow_mut().order.first().copied() else {
            break;
        };
        flush_target(c, target, reason);
    }
}

/// Flush all of the **current rank's** aggregation buffers immediately
/// (paper-level analogue: conduit message coalescing always pairs a buffer
/// with an explicit flush). Safe (a no-op) when nothing is buffered or
/// aggregation is disabled.
pub fn flush_all() {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    flush_all_ctx(&c, FlushReason::Explicit);
}

/// The current rank's aggregation configuration.
pub fn agg_config() -> AggConfig {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let cfg = c.agg.borrow().cfg;
    cfg
}

/// Install a new aggregation configuration for the current rank. Any
/// buffered payloads are flushed first, so no traffic is stranded by
/// disabling or shrinking the aggregator.
pub fn set_agg_config(cfg: AggConfig) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    flush_all_ctx(&c, FlushReason::Reconfig);
    assert!(
        !cfg.enabled || cfg.max_bytes > wire::RPC_HDR + wire::AGG_REC_HDR,
        "AggConfig::max_bytes too small to hold any record"
    );
    c.agg.borrow_mut().cfg = cfg;
}
