//! # upcxx — a Rust reproduction of UPC++ v1.0
//!
//! This crate reimplements the programming model of *“UPC++: A
//! High-Performance Communication Framework for Asynchronous Computation”*
//! (Bachan et al., IPDPS 2019): a Partitioned Global Address Space library
//! where
//!
//! * every rank contributes a **shared segment** addressed by non-
//!   dereferenceable [`GlobalPtr`]s ([`allocate`]/[`deallocate`]);
//! * all communication is **asynchronous by default** and explicit —
//!   one-sided RMA ([`rput`], [`rget`], strided/irregular variants),
//!   generalized RPC with return values ([`rpc`], [`rpc_ff`]), remote
//!   atomics ([`AtomicDomain`]) and non-blocking collectives
//!   ([`barrier_async`], [`broadcast`], [`reduce_all`]);
//! * asynchrony is composed through **futures and promises**
//!   ([`Future::then`], [`when_all`], [`Promise`] dependency counters);
//! * progress is **user-driven** by default — the three-queue progress
//!   engine of the paper's §III lives in [`ctx`] and advances only inside
//!   communication calls ([`progress`]) or blocking waits; an opt-in
//!   **progress persona** (`UPCXX_PROGRESS=1` / [`set_progress_thread`])
//!   services incoming traffic from a dedicated thread while user futures
//!   still complete only on the master persona (see [`persona`]);
//! * [`DistObject`] replaces non-scalable symmetric-heap constructs, and
//!   [`View`] provides zero-copy view-based RPC argument serialization.
//!
//! Two interchangeable conduits back the runtime (see the `gasnet` crate):
//! real threads + shared memory ([`run_spmd`]), and a discrete-event
//! simulation of a Cray-Aries-like machine ([`SimRuntime`]) that reproduces
//! the paper's 34816-rank experiments on one laptop core.
//!
//! ## Quick taste (smp conduit)
//!
//! ```
//! upcxx::run_spmd_default(4, || {
//!     let me = upcxx::rank_me();
//!     let n = upcxx::rank_n();
//!     // Every rank allocates one shared slot and publishes a value into
//!     // its right neighbor's slot with a one-sided put.
//!     let slot = upcxx::allocate::<u64>(1);
//!     let slots = upcxx::allgather(slot);
//!     upcxx::rput_val(me as u64 * 10, slots[(me + 1) % n]).wait();
//!     upcxx::barrier();
//!     let got = slot.try_local_value();
//!     assert_eq!(got, Some(((me + n - 1) % n) as u64 * 10));
//!     upcxx::barrier();
//! });
//! ```

#![warn(missing_docs)]

pub mod agg;
pub mod alloc;
pub mod atomic;
pub mod coll;
pub mod config;
pub mod ctx;
pub mod dist;
pub(crate) mod frame;
pub mod future;
pub mod global_ptr;
pub mod metrics;
pub mod persona;
pub mod prof;
pub mod rma;
pub mod rpc;
pub mod runtime;
pub mod san;
pub mod ser;
pub mod team;
pub mod trace;
pub mod wire;

pub use agg::{agg_config, flush_all, set_agg_config, AggConfig};
pub use atomic::{AtomicDomain, AtomicOp};
pub use coll::{
    barrier, barrier_async, barrier_async_team, broadcast, broadcast_team, ops, reduce_all,
    reduce_all_team, reduce_one, reduce_one_team,
};
pub use config::{ConduitKind, Config};
pub use ctx::{make_ready_future, progress, rank_me, rank_n, rank_state, wait_until};
pub use dist::{
    lookup as dist_lookup, try_lookup as dist_try_lookup, when_constructed, DistId, DistObject,
};
pub use future::{conjoin, make_future, when_all, when_all_vec, Future, Promise};
pub use global_ptr::{allocate, deallocate, GlobalPtr};
pub use persona::set_progress_thread;
pub use rma::{
    eager_enabled, rget, rget_into, rget_into_promise, rget_irregular, rget_irregular_into,
    rget_irregular_into_promise, rget_irregular_promise, rget_promise, rget_strided,
    rget_strided_into, rget_strided_into_promise, rget_strided_promise, rget_val, rget_val_promise,
    rput, rput_irregular, rput_irregular_promise, rput_promise, rput_strided, rput_strided_promise,
    rput_val, rput_val_promise, set_eager,
};
pub use rpc::{rpc, rpc_ff};
pub use runtime::{
    after, compute, run_spmd, run_spmd_default, run_spmd_with, sim_now, sim_rank_now, sim_sw_costs,
    SimRuntime, SpmdConfig,
};
pub use san::{san_report, SanConfig, SanCounters, SanMode};
pub use ser::{make_view, Pod, Ser, View};
pub use team::Team;
pub use trace::{runtime_stats, LatencyHist, OpKind, Phase, RuntimeStats, TraceConfig, TraceEvent};

impl<T: ser::Pod> GlobalPtr<T> {
    /// Convenience: read the single local element, if local (tests/examples).
    pub fn try_local_value(&self) -> Option<T> {
        if self.is_local() {
            let mut out = [unsafe { std::mem::zeroed() }; 1];
            self.local_read(&mut out);
            Some(out[0])
        } else {
            None
        }
    }
}

/// Gather one `GlobalPtr` from every rank into a dense vector indexed by
/// rank — the idiomatic bootstrap for neighbor-exchange examples. Internally
/// an allreduce concatenating (rank, ptr) pairs; the pointers round-trip
/// through `GlobalPtr`'s own `Ser` impl, so this stays correct whatever the
/// pointer's wire layout. Collective.
pub fn allgather<T: ser::Pod>(mine: GlobalPtr<T>) -> Vec<GlobalPtr<T>> {
    let me = rank_me();
    let n = rank_n();
    fn merge<T: ser::Pod>(
        mut a: Vec<(usize, GlobalPtr<T>)>,
        mut b: Vec<(usize, GlobalPtr<T>)>,
    ) -> Vec<(usize, GlobalPtr<T>)> {
        a.append(&mut b);
        a
    }
    let all = reduce_all(vec![(me, mine)], merge::<T>).wait();
    let mut out = vec![GlobalPtr::<T>::null(); n];
    for (r, p) in all {
        out[r] = p;
    }
    out
}

/// Renamed to [`allgather`] — UPC++'s and MPI's name for this collective
/// shape (every rank contributes one value, every rank receives all of
/// them); "broadcast_gather" described the old dissemination internals, not
/// the semantics. Collective.
#[deprecated(since = "0.1.0", note = "renamed to `allgather`")]
pub fn broadcast_gather<T: ser::Pod>(mine: GlobalPtr<T>) -> Vec<GlobalPtr<T>> {
    allgather(mine)
}
