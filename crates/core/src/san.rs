//! `upcxx::san` — the PGAS correctness sanitizer.
//!
//! The paper's one-sided model (§II–III) trades receiver-side code for a
//! synchronization contract the runtime cannot see: `rput`/`rget` land in
//! remote segments with no handler, RPC callbacks execute inside the
//! progress engine where blocking deadlocks, and `deallocate` races against
//! in-flight transfers that still name the extent. This module makes the
//! contract checkable. It is **opt-in** ([`SanConfig::enabled`], or the
//! `UPCXX_SAN` environment variable) and follows the same discipline as
//! [`crate::trace`]: while disabled, every hook in the hot path is a single
//! load-and-branch on a per-rank flag.
//!
//! ## Detector 1: RMA race detection (shadow intervals + vector clocks)
//!
//! Each rank's shared segment gets a *shadow*: a list of byte-interval
//! access records `(lo, hi, kind, origin rank, op id, completion epoch)`
//! kept in a world-shared [`SanWorld`]. Every `rput`/`rget`/atomic checks,
//! at injection, the target's shadow for overlapping records and reports a
//! race when the two accesses conflict and neither is ordered before the
//! other. Ordering is happens-before, approximated FastTrack-style:
//!
//! * each rank carries a scalar clock and a vector clock (`vc[r]` = the
//!   latest epoch of rank `r` this rank has observed);
//! * an operation's completion (the moment its future/promise is fulfilled
//!   at the origin — the paper's "epochs advance on future completion")
//!   increments the origin's clock and stamps the record;
//! * every RPC, reply and internal system AM carries the sender's vector
//!   clock, joined into the receiver's on delivery. Barriers are built from
//!   system AMs (`coll.rs`'s dissemination rounds), so barrier ordering —
//!   "epochs advance on barrier" — propagates transitively for free, and so
//!   does the DHT motif's `rpc(make_lz).then(rput)` dependency chain.
//!
//! Access `a` (recorded) happens-before access `b` (checking, by rank `o`)
//! iff `a.origin == o` (same-origin accesses are program-ordered — conduits
//! here deliver same-source-same-target ops in order) or `a` completed at
//! epoch `t` and `o`'s `vc[a.origin] >= t`. Conflicts: write-write and
//! write-read always conflict; read-read never; atomic-atomic never (that
//! is what atomics are for); **atomic vs. plain read does not conflict**
//! (polling a counter word with `local_read`/`rget` while remote atomics
//! update it is a sanctioned idiom — the sim conduit's NIC-offload model
//! has no target-CPU participation to order against); atomic vs. plain
//! write conflicts.
//!
//! Under the sim conduit injection order is deterministic, so races
//! reproduce bit-for-bit — the determinism test in `tests/san.rs` asserts
//! identical reports across runs.
//!
//! ## Detector 2: restricted-context enforcement
//!
//! RPC/reply/system-AM callbacks run inside user-level progress — the
//! paper's *restricted context* — where `wait()`, `barrier()` and
//! re-entrant `progress()` self-deadlock. The runtime wraps every such
//! callback in a depth guard; with the sanitizer enabled, blocking inside
//! one produces an immediate diagnostic instead of a hang.
//!
//! ## Detector 3: segment sanitizer (UAF / OOB / bad free)
//!
//! The world mirrors every rank's live extents (offset → requested length)
//! unconditionally — allocation is a cold path — so enabling the sanitizer
//! mid-run stays sound. With the sanitizer on, `deallocate` poisons the
//! extent (byte [`POISON`]) and parks it in a per-rank quarantine ring
//! (capped at [`QUAR_MAX_EXTENTS`]/[`QUAR_MAX_BYTES`]) instead of releasing
//! it, so a stale `GlobalPtr` keeps naming a *quarantined* extent and every
//! RMA/local access against it reports use-after-free with the freed
//! extent; accesses beyond any live extent report out-of-bounds with the
//! nearest one. `deallocate` of a never-allocated or interior offset is
//! reported at the `upcxx::deallocate` boundary with the pointer's `Debug`
//! rendering ([`crate::alloc::SegAlloc::retire`] supplies the diagnosis).
//!
//! ## Limitations
//!
//! Enable the sanitizer on **every** rank (or none): happens-before edges
//! are only recorded while the rank executing the edge has it enabled, so
//! mixed enablement can miss orderings and report false races. Records are
//! pruned once globally dominated, deduplicated per (origin, range, kind),
//! and hard-capped, so long-running workloads cannot grow the shadow
//! without bound (a dropped record can at worst *miss* a race, never
//! invent one).

use crate::ctx::{ctx, RankCtx};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Byte written over quarantined extents, making use-after-free reads
/// visible even where a check is missed (`0xA5` = "poison" by convention).
pub const POISON: u8 = 0xA5;

/// Maximum extents parked in one rank's quarantine ring.
pub(crate) const QUAR_MAX_EXTENTS: usize = 64;
/// Maximum bytes parked in one rank's quarantine ring.
pub(crate) const QUAR_MAX_BYTES: usize = 1 << 20;

/// Soft bound on one rank's shadow records: exceeding it triggers a prune
/// of globally-dominated records.
const PRUNE_THRESHOLD: usize = 256;
/// Hard cap on one rank's shadow records: exceeding it drops the oldest
/// completed records.
const HARD_CAP: usize = 4096;

/// What the sanitizer does when a detector fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SanMode {
    /// Panic with the report (default; turns a latent bug into a test
    /// failure at the faulting operation).
    Panic,
    /// Print the report to stderr, count it, and continue.
    Log,
    /// Count silently (reports remain retrievable via [`take_reports`]).
    Count,
}

/// Runtime configuration of the sanitizer (per rank; see module docs —
/// enable on every rank or none).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SanConfig {
    /// Master switch. Off by default: every hook reduces to one branch on
    /// a per-rank flag.
    pub enabled: bool,
    /// What a detection does.
    pub mode: SanMode,
}

impl Default for SanConfig {
    fn default() -> Self {
        SanConfig {
            enabled: false,
            mode: SanMode::Panic,
        }
    }
}

/// Per-detector counters: one snapshot of what the sanitizer has seen on
/// the calling rank (also embedded in [`crate::trace::RuntimeStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SanCounters {
    /// Unordered conflicting RMA/atomic/local access pairs.
    pub races: u64,
    /// Blocking calls (`wait`/`barrier`/`progress`) inside RPC callbacks.
    pub restricted: u64,
    /// Accesses touching quarantined (freed) extents.
    pub uaf: u64,
    /// Accesses outside any live extent.
    pub oob: u64,
    /// `deallocate` of never-allocated or interior offsets.
    pub bad_frees: u64,
}

/// Per-rank sanitizer state (config, counters, retained reports). Lives in
/// [`RankCtx`]; single-writer, no locks.
pub(crate) struct SanCtx {
    pub(crate) cfg: SanConfig,
    pub(crate) counters: SanCounters,
    pub(crate) reports: Vec<String>,
}

impl SanCtx {
    pub(crate) fn new() -> SanCtx {
        SanCtx {
            cfg: SanConfig::default(),
            counters: SanCounters::default(),
            reports: Vec::new(),
        }
    }
}

/// The kind of segment access a shadow record describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum AccessKind {
    /// `rget`, `local_read`.
    Read,
    /// `rput`, `local_write`.
    Write,
    /// Remote atomic (any op — loads too: atomics never conflict with each
    /// other, and their conflict rules differ from plain reads).
    Amo,
}

impl AccessKind {
    fn as_str(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Amo => "atomic",
        }
    }
}

/// One shadow interval: a recorded access to `[lo, hi)` of the owning
/// rank's segment.
struct Access {
    lo: usize,
    hi: usize,
    kind: AccessKind,
    /// The rank that issued the access.
    origin: u32,
    /// The origin's per-rank op id (`TraceTag::tid`): `(origin, op)` names
    /// the operation globally, matching the trace stream of PR 2.
    op: u64,
    /// API label for reports (`"rput"`, `"rget"`, …).
    label: &'static str,
    /// The origin's scalar clock at completion; `None` while in flight.
    complete: Option<u64>,
}

/// One rank's shadow state inside [`SanWorld`].
struct RankShadow {
    /// Vector clock; `vc[me]` is this rank's scalar clock.
    vc: Vec<u64>,
    /// Live-extent mirror: offset → **requested** byte length (tight
    /// bounds; the allocator's padding is not addressable memory).
    /// Maintained unconditionally.
    live: BTreeMap<usize, usize>,
    /// Quarantined freed extents `(off, padded len)`, oldest first.
    quarantine: VecDeque<(usize, usize)>,
    quarantine_bytes: usize,
    /// Shadow access records over this rank's segment.
    accesses: Vec<Access>,
}

impl RankShadow {
    fn new(n: usize) -> RankShadow {
        RankShadow {
            vc: vec![0; n],
            live: BTreeMap::new(),
            quarantine: VecDeque::new(),
            quarantine_bytes: 0,
            accesses: Vec::new(),
        }
    }
}

/// The world-shared shadow state: one [`RankShadow`] per rank. Shared by
/// `Arc<Mutex>` across smp rank threads and by `Rc<RefCell>` among sim
/// ranks (which share one thread).
pub(crate) struct SanWorld {
    ranks: Vec<RankShadow>,
}

impl SanWorld {
    pub(crate) fn new(n: usize) -> SanWorld {
        SanWorld {
            ranks: (0..n).map(|_| RankShadow::new(n)).collect(),
        }
    }
}

/// The conduit-appropriate handle to the world's shadow state (held by
/// every [`RankCtx`]).
#[derive(Clone)]
pub(crate) enum SanShared {
    /// smp: rank threads contend on one mutex (sanitizer paths only).
    Smp(Arc<Mutex<SanWorld>>),
    /// sim: all ranks share the driving thread.
    Sim(Rc<RefCell<SanWorld>>),
}

/// Run `f` with the world's shadow state locked. Never call [`report`]
/// (which may panic) while inside — collect findings and report after the
/// lock is dropped, or a panicking rank would poison the smp mutex.
fn with_world<R>(c: &RankCtx, f: impl FnOnce(&mut SanWorld) -> R) -> R {
    match &c.san_shared {
        SanShared::Smp(m) => {
            // A rank that panicked in Panic mode poisons the mutex; the
            // shadow state is still coherent (reports never run under the
            // lock), so recover rather than cascade the panic.
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut g)
        }
        SanShared::Sim(w) => f(&mut w.borrow_mut()),
    }
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Install a sanitizer configuration on the **current rank**. Enable on
/// every rank (or none): see the module-docs limitation on mixed
/// enablement. Counters and retained reports persist across reconfigs.
pub fn set_config(cfg: SanConfig) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.san_on.set(cfg.enabled);
    c.san.borrow_mut().cfg = cfg;
}

/// The current rank's sanitizer configuration.
pub fn config() -> SanConfig {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let cfg = c.san.borrow().cfg;
    cfg
}

/// Snapshot the current rank's sanitizer counters (also available as
/// [`crate::trace::RuntimeStats::san`]).
pub fn san_report() -> SanCounters {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let counters = c.san.borrow().counters;
    counters
}

/// Drain the current rank's retained sanitizer reports (chronological;
/// retained in every mode, including `Count`).
pub fn take_reports() -> Vec<String> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    let reports = std::mem::take(&mut c.san.borrow_mut().reports);
    reports
}

/// Advance the current rank's synchronization epoch explicitly (the
/// "epochs advance on fence" rule): subsequent message receivers observe
/// every access this rank completed before the fence as ordered.
pub fn fence() {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    if !c.san_on.get() {
        return;
    }
    let me = c.me;
    with_world(&c, |w| w.ranks[me].vc[me] += 1);
}

/// Parse the `UPCXX_SAN` environment variable into a configuration:
/// `1`/`panic` → Panic, `log` → Log, `count` → Count, anything else (or
/// unset) → disabled. Read once per rank at world construction.
pub(crate) fn env_config() -> SanConfig {
    let mode = match std::env::var("UPCXX_SAN") {
        Ok(v) => match v.as_str() {
            "1" | "panic" => Some(SanMode::Panic),
            "log" => Some(SanMode::Log),
            "count" => Some(SanMode::Count),
            _ => None,
        },
        Err(_) => None,
    };
    match mode {
        Some(mode) => SanConfig {
            enabled: true,
            mode,
        },
        None => SanConfig::default(),
    }
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// Which counter a finding increments.
#[derive(Clone, Copy)]
enum Detector {
    Race,
    Restricted,
    Uaf,
    Oob,
    BadFree,
}

/// Record one finding on the detecting rank and act per its mode. Must be
/// called **without** the world lock held (Panic mode panics here).
fn report(c: &RankCtx, det: Detector, msg: String) {
    let mode = {
        let mut s = c.san.borrow_mut();
        let ctr = match det {
            Detector::Race => &mut s.counters.races,
            Detector::Restricted => &mut s.counters.restricted,
            Detector::Uaf => &mut s.counters.uaf,
            Detector::Oob => &mut s.counters.oob,
            Detector::BadFree => &mut s.counters.bad_frees,
        };
        *ctr += 1;
        s.reports.push(msg.clone());
        s.cfg.mode
    };
    match mode {
        SanMode::Panic => panic!("{msg}"),
        SanMode::Log => eprintln!("{msg}"),
        SanMode::Count => {}
    }
}

// ---------------------------------------------------------------------------
// Detector 1 + 3: access checking
// ---------------------------------------------------------------------------

fn conflicts(a: AccessKind, b: AccessKind) -> bool {
    use AccessKind::*;
    match (a, b) {
        (Read, Read) | (Amo, Amo) => false,
        // Atomic vs. plain read is the sanctioned polling idiom (module
        // docs); atomic vs. plain write is flagged.
        (Amo, Read) | (Read, Amo) => false,
        _ => true,
    }
}

/// A finding gathered under the world lock, reported after it drops.
enum Finding {
    Race(String),
    Uaf(String),
    Oob(String),
}

/// Shared implementation of every access check. `complete_now` marks the
/// record completed immediately (local accesses, which are synchronous);
/// RMA/atomic records complete later via [`mark_complete`].
#[allow(clippy::too_many_arguments)] // internal fan-in of three thin wrappers
fn check_access(
    c: &RankCtx,
    target: usize,
    off: usize,
    len: usize,
    kind: AccessKind,
    op: u64,
    label: &'static str,
    complete_now: bool,
    record: bool,
) {
    if len == 0 {
        return;
    }
    let me = c.me;
    let (lo, hi) = (off, off.saturating_add(len));
    let findings = with_world(c, |w| {
        let mut findings: Vec<Finding> = Vec::new();
        // --- Detector 3: bounds / liveness --------------------------------
        let extent = w.ranks[target]
            .live
            .range(..=lo)
            .next_back()
            .map(|(&o, &l)| (o, l));
        match extent {
            Some((eo, el)) if lo < eo + el => {
                if hi > eo + el {
                    findings.push(Finding::Oob(format!(
                        "upcxx-san[rank {me}]: out-of-bounds {akind}: {label} (op {me}:{op}) \
                         touches rank {target} segment bytes [{lo}..{hi}) overrunning live \
                         extent [{eo}..{e_end}) by {over} bytes",
                        akind = kind.as_str(),
                        e_end = eo + el,
                        over = hi - (eo + el),
                    )));
                }
            }
            _ => {
                // Not inside any live extent: freed (quarantine hit) or
                // never-allocated / out-of-bounds.
                let q = w.ranks[target]
                    .quarantine
                    .iter()
                    .find(|&&(qo, ql)| lo < qo + ql && qo < hi)
                    .copied();
                if let Some((qo, ql)) = q {
                    findings.push(Finding::Uaf(format!(
                        "upcxx-san[rank {me}]: use-after-free {akind}: {label} (op {me}:{op}) \
                         touches rank {target} segment bytes [{lo}..{hi}) in freed extent \
                         [{qo}..{q_end}) still in quarantine",
                        akind = kind.as_str(),
                        q_end = qo + ql,
                    )));
                } else {
                    let nearest = nearest_live(&w.ranks[target].live, lo);
                    findings.push(Finding::Oob(format!(
                        "upcxx-san[rank {me}]: out-of-bounds {akind}: {label} (op {me}:{op}) \
                         touches rank {target} segment bytes [{lo}..{hi}) outside any live \
                         extent ({nearest})",
                        akind = kind.as_str(),
                    )));
                }
            }
        }
        // --- Detector 1: race check (skipped for bounds-only validation,
        // where no record is kept either) ----------------------------------
        let vc_me: Vec<u64> = if record {
            w.ranks[me].vc.clone()
        } else {
            Vec::new()
        };
        for a in w.ranks[target].accesses.iter().filter(|_| record) {
            if a.hi <= lo || hi <= a.lo || !conflicts(a.kind, kind) {
                continue;
            }
            let ordered = a.origin as usize == me
                || a.complete
                    .is_some_and(|t| vc_me.get(a.origin as usize).copied().unwrap_or(0) >= t);
            if !ordered {
                findings.push(Finding::Race(format!(
                    "upcxx-san[rank {me}]: data race on rank {target} segment bytes \
                     [{nlo}..{nhi}): {label} (op {me}:{op}, {nk}) from rank {me} is \
                     unordered with {plabel} (op {porig}:{pop}, {pk}) from rank {porig} \
                     on [{plo}..{phi})",
                    nlo = lo,
                    nhi = hi,
                    nk = kind.as_str(),
                    plabel = a.label,
                    porig = a.origin,
                    pop = a.op,
                    pk = a.kind.as_str(),
                    plo = a.lo,
                    phi = a.hi,
                )));
            }
        }
        if record {
            // Dedup: a completed record with the same identity-shape is
            // superseded (keeps flood loops from growing the shadow).
            let sh = &mut w.ranks[target];
            sh.accesses.retain(|a| {
                !(a.complete.is_some()
                    && a.origin as usize == me
                    && a.lo == lo
                    && a.hi == hi
                    && a.kind == kind)
            });
            let complete = if complete_now {
                // Local access: synchronous, so it completes at the
                // origin's next epoch immediately.
                let sh_me = &mut w.ranks[me];
                sh_me.vc[me] += 1;
                Some(sh_me.vc[me])
            } else {
                None
            };
            w.ranks[target].accesses.push(Access {
                lo,
                hi,
                kind,
                origin: me as u32,
                op,
                label,
                complete,
            });
            maybe_prune(w, target);
        }
        findings
    });
    for f in findings {
        match f {
            Finding::Race(m) => report(c, Detector::Race, m),
            Finding::Uaf(m) => report(c, Detector::Uaf, m),
            Finding::Oob(m) => report(c, Detector::Oob, m),
        }
    }
}

/// Describe the live extent nearest to `off` (for OOB reports).
fn nearest_live(live: &BTreeMap<usize, usize>, off: usize) -> String {
    let below = live.range(..=off).next_back();
    let above = live.range(off..).next();
    let best = match (below, above) {
        (Some((&bo, &bl)), Some((&ao, &al))) => {
            if off - bo <= ao - off {
                Some((bo, bl))
            } else {
                Some((ao, al))
            }
        }
        (Some((&bo, &bl)), None) => Some((bo, bl)),
        (None, Some((&ao, &al))) => Some((ao, al)),
        (None, None) => None,
    };
    match best {
        Some((o, l)) => format!("nearest live extent [{o}..{end})", end = o + l),
        None => "no live extents".to_string(),
    }
}

/// Prune the shadow of `target`: drop records whose completion every rank
/// has observed (they can never race with anything injected later), then
/// hard-cap by dropping the oldest completed records.
fn maybe_prune(w: &mut SanWorld, target: usize) {
    if w.ranks[target].accesses.len() <= PRUNE_THRESHOLD {
        return;
    }
    let n = w.ranks.len();
    // min over all ranks of vc[origin], per origin.
    let min_vc: Vec<u64> = (0..n)
        .map(|origin| (0..n).map(|r| w.ranks[r].vc[origin]).min().unwrap_or(0))
        .collect();
    let sh = &mut w.ranks[target];
    sh.accesses.retain(|a| match a.complete {
        Some(t) => t > min_vc[a.origin as usize],
        None => true,
    });
    if sh.accesses.len() > HARD_CAP {
        // Oldest completed records go first; in-flight ones must stay.
        let excess = sh.accesses.len() - HARD_CAP;
        let mut dropped = 0;
        sh.accesses.retain(|a| {
            if dropped < excess && a.complete.is_some() {
                dropped += 1;
                false
            } else {
                true
            }
        });
    }
}

/// Check one RMA/atomic access at injection and record it in flight. Call
/// only with the sanitizer enabled on the calling rank.
///
/// On conduits whose shadow state is process-local (`proc`; see
/// [`crate::ctx::RankCtx::san_remote`]) remote-target accesses are skipped:
/// this process never saw the target's allocations, so bounds/liveness/race
/// verdicts about them would be noise. Local-target checks, the restricted-
/// context detector and vector-clock ordering still run in full.
pub(crate) fn check_rma(
    c: &RankCtx,
    target: usize,
    off: usize,
    len: usize,
    kind: AccessKind,
    op: u64,
    label: &'static str,
) {
    if !c.san_remote && target != c.me {
        return;
    }
    check_access(c, target, off, len, kind, op, label, false, true);
}

/// Check a synchronous local access (`local_read` / `local_write`) and
/// record it as already completed.
pub(crate) fn check_local(
    c: &RankCtx,
    off: usize,
    len: usize,
    kind: AccessKind,
    label: &'static str,
) {
    let op = crate::trace::new_span_id(c);
    check_access(c, c.me, off, len, kind, op, label, true, true);
}

/// Bounds/liveness-only validation for `local_ptr` (raw-pointer accesses
/// have unknown extent in time, so no race record is kept).
pub(crate) fn check_bounds_only(c: &RankCtx, off: usize, len: usize, label: &'static str) {
    let op = crate::trace::new_span_id(c);
    check_access(c, c.me, off, len, AccessKind::Read, op, label, false, false);
}

/// Mark operation `(c.me, op)` against `target`'s segment complete: bump
/// the origin's clock and stamp the record, making the access ordered
/// before anything that later observes this epoch. Runs at the origin when
/// the operation's completion drains from compQ.
pub(crate) fn mark_complete(c: &RankCtx, target: usize, op: u64) {
    let me = c.me;
    if !c.san_remote && target != me {
        // The matching `check_rma` was skipped (process-local shadow state;
        // see its docs), so there is no in-flight record to stamp. The
        // origin's epoch still advances so completion ordering via message
        // clocks is preserved.
        with_world(c, |w| {
            w.ranks[me].vc[me] += 1;
        });
        return;
    }
    with_world(c, |w| {
        w.ranks[me].vc[me] += 1;
        let t = w.ranks[me].vc[me];
        if let Some(a) = w.ranks[target]
            .accesses
            .iter_mut()
            .find(|a| a.origin as usize == me && a.op == op)
        {
            a.complete = Some(t);
        }
    });
}

/// Wrap an RMA completion callback with [`mark_complete`] (chosen at
/// injection time while the sanitizer is enabled — the disabled path keeps
/// the bare callback).
pub(crate) fn wrap_done_unit(
    target: usize,
    op: u64,
    inner: Box<dyn FnOnce()>,
) -> Box<dyn FnOnce()> {
    Box::new(move || {
        mark_complete(&ctx(), target, op);
        inner()
    })
}

/// [`wrap_done_unit`] for value-carrying completions (rget data, AMO
/// results).
pub(crate) fn wrap_done_val<T: 'static>(
    target: usize,
    op: u64,
    inner: Box<dyn FnOnce(T)>,
) -> Box<dyn FnOnce(T)> {
    Box::new(move |v| {
        mark_complete(&ctx(), target, op);
        inner(v)
    })
}

// ---------------------------------------------------------------------------
// Message-carried clocks
// ---------------------------------------------------------------------------

/// Snapshot the sender's vector clock for an outgoing RPC-family message
/// (`None` while the sanitizer is disabled — the hook's single branch).
pub(crate) fn msg_snapshot(c: &RankCtx) -> Option<Vec<u64>> {
    if !c.san_on.get() {
        return None;
    }
    let me = c.me;
    Some(with_world(c, |w| w.ranks[me].vc.clone()))
}

/// Join a message-carried clock snapshot into the receiving rank's vector
/// clock (delivery-side half of the happens-before edge).
pub(crate) fn msg_join(c: &RankCtx, snap: &Option<Vec<u64>>) {
    let Some(snap) = snap else { return };
    if !c.san_on.get() {
        return;
    }
    let me = c.me;
    with_world(c, |w| {
        for (mine, theirs) in w.ranks[me].vc.iter_mut().zip(snap.iter()) {
            if *theirs > *mine {
                *mine = *theirs;
            }
        }
    });
}

/// Establish the quiescence happens-before edge: when the sim conduit's
/// virtual timeline runs dry, every injected operation has completed, so
/// anything executed afterwards (driver code of a later `run()`, test
/// harness inspections via `SimRuntime::with_rank`) is ordered after
/// everything. Joins every rank's vector clock to the global elementwise
/// maximum.
pub(crate) fn quiesce(c: &RankCtx) {
    with_world(c, |w| {
        let n = w.ranks.len();
        let max: Vec<u64> = (0..n)
            .map(|o| (0..n).map(|r| w.ranks[r].vc[o]).max().unwrap_or(0))
            .collect();
        for r in 0..n {
            w.ranks[r].vc.copy_from_slice(&max);
        }
    });
}

// ---------------------------------------------------------------------------
// Detector 2: restricted context
// ---------------------------------------------------------------------------

/// Depth guard wrapped (unconditionally — two `Cell` ops) around every
/// RPC/reply/system-AM callback body. Panic-safe: the drop restores depth
/// even when the callback unwinds. The depth cell is persona-safe: it is
/// only touched while the holder is inside the engine lock (callbacks run
/// under progress, which holds it).
pub(crate) struct RestrictedGuard {
    c: Arc<RankCtx>,
}

impl RestrictedGuard {
    pub(crate) fn new(c: &Arc<RankCtx>) -> RestrictedGuard {
        c.san_depth.set(c.san_depth.get() + 1);
        RestrictedGuard { c: c.clone() }
    }
}

impl Drop for RestrictedGuard {
    fn drop(&mut self) {
        self.c.san_depth.set(self.c.san_depth.get() - 1);
    }
}

/// Report a blocking call inside a restricted context. Called by
/// `wait_until` / `progress` when the sanitizer is enabled and the depth
/// flag is set.
#[cold]
#[inline(never)]
pub(crate) fn restricted_violation(c: &RankCtx, what: &str) {
    let me = c.me;
    let depth = c.san_depth.get();
    report(
        c,
        Detector::Restricted,
        format!(
            "upcxx-san[rank {me}]: restricted-context violation: {what} called inside an \
             RPC/reply callback (progress depth {depth}) — blocking here deadlocks the \
             progress engine; restructure with then()-chains"
        ),
    );
}

// ---------------------------------------------------------------------------
// Detector 3: allocation lifecycle
// ---------------------------------------------------------------------------

/// Mirror a fresh allocation (unconditional — allocation is a cold path,
/// and the mirror must be complete if the sanitizer is enabled later).
pub(crate) fn note_alloc(c: &RankCtx, off: usize, req_len: usize) {
    let me = c.me;
    with_world(c, |w| {
        w.ranks[me].live.insert(off, req_len);
    });
}

/// Handle the sanitizer side of freeing `(off, padded)` on the calling
/// rank: un-mirror the extent and either quarantine it (sanitizer on:
/// poison-fill, park, and return any extents evicted from the ring for the
/// allocator to release) or release it directly (sanitizer off: empty
/// quarantine drains too, so disabling mid-run leaks nothing).
pub(crate) fn note_free(c: &RankCtx, off: usize, padded: usize) -> Vec<(usize, usize)> {
    let me = c.me;
    let san_on = c.san_on.get();
    with_world(c, |w| {
        let sh = &mut w.ranks[me];
        sh.live.remove(&off);
        if !san_on {
            let mut out: Vec<(usize, usize)> = sh.quarantine.drain(..).collect();
            sh.quarantine_bytes = 0;
            out.push((off, padded));
            return out;
        }
        sh.quarantine.push_back((off, padded));
        sh.quarantine_bytes += padded;
        let mut evicted = Vec::new();
        while sh.quarantine.len() > QUAR_MAX_EXTENTS || sh.quarantine_bytes > QUAR_MAX_BYTES {
            let Some((eo, el)) = sh.quarantine.pop_front() else {
                break;
            };
            sh.quarantine_bytes -= el;
            // Evicted extents stop being UAF-detectable; drop their stale
            // access records so a reallocation cannot race with history.
            sh.accesses.retain(|a| a.hi <= eo || eo + el <= a.lo);
            evicted.push((eo, el));
        }
        evicted
    })
}

/// Report a bad `deallocate` (never-allocated or interior offset),
/// surfaced at the `upcxx::deallocate` boundary with the pointer's Debug
/// rendering. In Panic mode this panics; otherwise the free is skipped
/// (the extent never existed, so nothing leaks).
pub(crate) fn bad_free(c: &RankCtx, what: &str, diag: &str) {
    let me = c.me;
    report(
        c,
        Detector::BadFree,
        format!("upcxx-san[rank {me}]: invalid deallocate of {what}: {diag}"),
    );
}
