//! `upcxx::metrics` — always-on runtime metrics and the crash-forensics
//! flight recorder.
//!
//! The existing observability layers are *opt-in and post-hoc*: the trace
//! ring ([`crate::trace`], `UPCXX_TRACE`) records every queue transition but
//! must be enabled before the run, and the profiler ([`crate::prof`])
//! collects those rings *after* the run — useless for a long-running service
//! and useless when a rank dies mid-run on the proc conduit. This module is
//! the third layer: **always on**, cheap enough to never turn off, and
//! readable even after failure (GASNet's stats counters and HPCToolkit-style
//! always-on sampling are the models).
//!
//! ## Cost model (why this can stay on)
//!
//! * **Counters** (ops, bytes, flush reasons, progress calls) are per-rank
//!   [`Cell`]s mutated only by that rank's personas under the engine-lock
//!   discipline every other `RankCtx` counter already follows — one
//!   increment, no atomics, no sharing.
//! * **Gauges** (queue depths, inbox/backlog/staging occupancy) cost nothing
//!   until read: [`snapshot`] probes the live queues and the conduit's
//!   [`gasnet::Conduit::depths`] at call time instead of sampling them on the
//!   hot path.
//! * **Histograms** (payload bytes, progress-call spacing) are log2-bucketed
//!   `Cell` arrays — two or three cell bumps per sample, and the spacing
//!   probe reads the clock only every 64th progress call.
//! * The **flight recorder** is the one structure written with relaxed
//!   atomics: a small overwriting ring of recent trace-shaped events that a
//!   panic hook on *any* thread must be able to read mid-flight. Pushes are
//!   single-writer (engine lock), so each recorded event is a plain
//!   load+store head bump plus six relaxed stores — no RMW — and the wall
//!   clock is read only every [`FLIGHT_TS_SAMPLE`]th event, with the ones
//!   between stamped from the cached reading.
//!
//! The 1 KiB eager-rput floor (`scripts/ci.sh`, < 160 ns) is measured with
//! all of this compiled in at defaults — that gate *is* the overhead budget.
//!
//! ## Surfaces
//!
//! * [`snapshot`] — typed, in-process; supersedes the ad-hoc counter fields
//!   of [`crate::RuntimeStats`] and adds the conduit depth probes.
//! * [`prometheus`] / [`to_json`] — text expositions of the same snapshot,
//!   written to per-rank files on demand ([`dump`]) or on a wall-clock
//!   interval (`UPCXX_METRICS_DUMP=<ms>`, [`set_dump_interval`]).
//! * The **flight recorder**: independent of `UPCXX_TRACE`, bounded
//!   ([`FLIGHT_CAP`] events, overwriting), flushed to `flight.<rank>.json`
//!   by a chained panic hook. The proc launcher harvests those files from a
//!   crashed world and prints a merged last-events timeline (reusing the
//!   [`crate::prof`] merge machinery), retrievable afterwards through
//!   [`last_postmortem`].
//!
//! Dump files land in the first of: a directory set via [`set_dump_dir`],
//! `$UPCXX_METRICS_DIR`, `$UPCXX_PROC_DIR` (set by the proc launcher for its
//! children — which is what lets the launcher find crash dumps), or the OS
//! temp dir.

use crate::ctx::{ctx, Backend, RankCtx};
use crate::prof::{kind_code, kind_from, phase_from, phase_idx, reason_code, reason_from};
use crate::trace::{FlushReason, Phase, TraceEvent, TraceTag};
use std::cell::Cell;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, Once};

/// Capacity of the flight-recorder ring (events). Small on purpose: the ring
/// answers "what was this rank doing just before it died", not "what did the
/// whole run do" — that is the trace ring's job.
pub const FLIGHT_CAP: usize = 256;

/// The always-on progress-spacing probe reads the clock once per this many
/// user-progress calls, so attentive spin loops pay amortized sub-ns cost.
/// Each recorded sample is therefore the wall-time *window* covering 64
/// calls: a rank that goes inattentive for milliseconds still shows up at
/// full magnitude, while per-call resolution remains the (opt-in) tracer's
/// job.
const GAP_SAMPLE: u64 = 64;

/// The flight recorder reads the wall clock only every this-many recorded
/// events; the ones between are stamped with the cached reading. A clock
/// read costs tens of ns on a virtualized container — unamortized it would
/// dominate the whole injection hook — while within-rank event order is
/// carried by ring position regardless, so the only thing the cache costs
/// is a few events of cross-rank merge skew in the postmortem timeline.
const FLIGHT_TS_SAMPLE: u64 = 8;

// ------------------------------------------------------------- histograms

/// A log2 histogram of `u64` samples, single-writer (engine-lock
/// discipline), mirroring the bucket math of [`crate::trace::LatencyHist`].
struct CellHist {
    buckets: [Cell<u64>; 64],
    count: Cell<u64>,
    max: Cell<u64>,
}

impl CellHist {
    fn new() -> CellHist {
        CellHist {
            buckets: std::array::from_fn(|_| Cell::new(0)),
            count: Cell::new(0),
            max: Cell::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        let b = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[b].set(self.buckets[b].get() + 1);
        self.count.set(self.count.get() + 1);
        if v > self.max.get() {
            self.max.set(v);
        }
    }

    fn snap(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.get(),
            max: self.max.get(),
            buckets: std::array::from_fn(|i| self.buckets[i].get()),
        }
    }
}

/// Point-in-time copy of one log2 histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` (bucket 0 also holds zero-valued samples).
#[derive(Clone, Copy, Debug)]
pub struct HistSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Log2 bucket counts.
    pub buckets: [u64; 64],
}

impl HistSnapshot {
    /// `(bucket_lower_bound, count)` for every non-empty bucket, ascending.
    pub fn nonzero(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
            .collect()
    }
}

// -------------------------------------------------------- the registry

/// Per-rank metrics state, embedded in [`RankCtx`]. All fields are private:
/// instrumented modules feed it exclusively through the `on_*`/`count_*`
/// free functions below, so every raw cell mutation lives in this file (the
/// `metrics-cell-confinement` analyzer rule is the lexical backstop).
pub(crate) struct Metrics {
    // Single-writer counters (engine-lock discipline, like `CtxStats`).
    rma_eager: Cell<u64>,
    rma_deferred: Cell<u64>,
    flush_reasons: [Cell<u64>; 8],
    progress_calls: Cell<u64>,
    persona_polls: Cell<u64>,
    persona_work: Cell<u64>,
    last_probe_ps: Cell<u64>,
    max_window_ps: Cell<u64>,
    dumps_written: Cell<u64>,
    dump_interval_ps: Cell<u64>,
    next_dump_ps: Cell<u64>,
    op_bytes: CellHist,
    progress_window: CellHist,
    // Cached wall-clock reading for flight-event stamping (see
    // [`FLIGHT_TS_SAMPLE`]); refreshed by every 8th push and by the
    // progress-spacing probe.
    flight_clock_ps: Cell<u64>,
    // The flight recorder: relaxed atomics so a panic hook on any thread can
    // read a coherent-enough ring without taking any lock. `flight_head`
    // counts every event ever pushed; slot `head % FLIGHT_CAP` is
    // overwritten in place (per-word tearing under a concurrent push is
    // acceptable for forensics and is decode-clamped on read).
    flight_head: AtomicU64,
    flight: Box<[[AtomicU64; 6]]>,
}

impl Metrics {
    pub(crate) fn new() -> Metrics {
        Metrics {
            rma_eager: Cell::new(0),
            rma_deferred: Cell::new(0),
            flush_reasons: std::array::from_fn(|_| Cell::new(0)),
            progress_calls: Cell::new(0),
            persona_polls: Cell::new(0),
            persona_work: Cell::new(0),
            last_probe_ps: Cell::new(0),
            max_window_ps: Cell::new(0),
            dumps_written: Cell::new(0),
            dump_interval_ps: Cell::new(0),
            next_dump_ps: Cell::new(0),
            op_bytes: CellHist::new(),
            progress_window: CellHist::new(),
            flight_clock_ps: Cell::new(0),
            flight_head: AtomicU64::new(0),
            flight: (0..FLIGHT_CAP)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
        }
    }

    /// Push one event into the flight ring (relaxed atomics; see struct docs).
    ///
    /// Pushes only ever happen under the rank's engine lock, so the head is
    /// single-writer: a plain load+store pair replaces the locked RMW a
    /// `fetch_add` would cost on the RMA fast path. Concurrent *readers*
    /// (the panic hook) still see a coherent-enough head via the relaxed
    /// atomic load.
    #[inline]
    fn flight_push(&self, e: &TraceEvent) {
        let head = self.flight_head.load(Relaxed);
        self.flight_head.store(head + 1, Relaxed);
        let i = (head % FLIGHT_CAP as u64) as usize;
        let s = &self.flight[i];
        s[0].store(e.ts_ps, Relaxed);
        s[1].store(e.op, Relaxed);
        s[2].store(
            kind_code(e.kind) as u64
                | (phase_idx(e.phase) as u64) << 8
                | (reason_code(e.reason) as u64) << 16
                | (e.persona as u64) << 24
                | (e.peer as u64) << 32,
            Relaxed,
        );
        s[3].store(e.bytes as u64 | (e.origin as u64) << 32, Relaxed);
        s[4].store(e.parent_op, Relaxed);
        s[5].store(e.parent_origin as u64, Relaxed);
    }

    /// Read the ring oldest-first: `(total_recorded, overwritten, events)`.
    /// Codes are clamped on decode so a word torn by a concurrent push can
    /// never panic the (possibly panicking) reader.
    fn flight_read(&self, rank: u32) -> (u64, u64, Vec<TraceEvent>) {
        let head = self.flight_head.load(Relaxed);
        let cap = FLIGHT_CAP as u64;
        let n = head.min(cap);
        let dropped = head - n;
        let mut evs = Vec::with_capacity(n as usize);
        for k in 0..n {
            let s = &self.flight[((head - n + k) % cap) as usize];
            let w2 = s[2].load(Relaxed);
            let w3 = s[3].load(Relaxed);
            evs.push(TraceEvent {
                rank,
                origin: (w3 >> 32) as u32,
                op: s[1].load(Relaxed),
                kind: kind_from(((w2 & 0xff) as u8).min(7)),
                phase: phase_from((((w2 >> 8) & 0xff) as u8).min(3)),
                peer: (w2 >> 32) as u32,
                bytes: (w3 & 0xffff_ffff) as u32,
                reason: reason_from((((w2 >> 16) & 0xff) as u8).min(7)),
                ts_ps: s[0].load(Relaxed),
                parent_origin: s[5].load(Relaxed) as u32,
                parent_op: s[4].load(Relaxed),
                persona: ((w2 >> 24) & 0xff) as u8,
            });
        }
        (head, dropped, evs)
    }
}

// ------------------------------------------------- instrumentation hooks

/// Timestamp for the next flight-ring event: a real clock read every
/// [`FLIGHT_TS_SAMPLE`]th push, the cached reading otherwise. Monotone per
/// rank (the cache only ever holds genuine, monotone clock readings).
#[inline]
fn flight_ts(c: &RankCtx) -> u64 {
    let m = &c.metrics;
    if m.flight_head.load(Relaxed).is_multiple_of(FLIGHT_TS_SAMPLE) {
        let now = c.now_ps();
        m.flight_clock_ps.set(now);
        now
    } else {
        m.flight_clock_ps.get()
    }
}

/// Injection hook: every `op_tag` call lands here — record the payload-size
/// histogram sample and the flight-ring `Inject` event. This is on the RMA
/// fast path; everything it does is a handful of cell/relaxed-atomic writes
/// plus an amortized 1-in-[`FLIGHT_TS_SAMPLE`] clock read.
#[inline]
pub(crate) fn on_inject(c: &RankCtx, tag: TraceTag) {
    let m = &c.metrics;
    m.op_bytes.record(tag.bytes as u64);
    m.flight_push(&TraceEvent {
        rank: c.me as u32,
        origin: c.me as u32,
        op: tag.tid,
        kind: tag.kind,
        phase: Phase::Inject,
        peer: tag.peer,
        bytes: tag.bytes,
        reason: FlushReason::None,
        ts_ps: flight_ts(c),
        parent_origin: tag.parent_origin,
        parent_op: tag.parent_op,
        persona: crate::persona::current_id(),
    });
}

/// Delivery hook (RPC-family handlers): flight-ring `Deliver` event with the
/// injecting rank as origin. Off the RMA fast path.
pub(crate) fn on_deliver(c: &RankCtx, tag: TraceTag, origin: u32) {
    c.metrics.flight_push(&TraceEvent {
        rank: c.me as u32,
        origin,
        op: tag.tid,
        kind: tag.kind,
        phase: Phase::Deliver,
        peer: tag.peer,
        bytes: tag.bytes,
        reason: FlushReason::None,
        ts_ps: flight_ts(c),
        parent_origin: tag.parent_origin,
        parent_op: tag.parent_op,
        persona: crate::persona::current_id(),
    });
}

/// User-progress hook: one counter bump per call; the clock-reading spacing
/// probe and the interval-dump check are amortized/gated off the common path.
#[inline]
pub(crate) fn on_progress(c: &RankCtx) {
    let m = &c.metrics;
    let n = m.progress_calls.get() + 1;
    m.progress_calls.set(n);
    if n.is_multiple_of(GAP_SAMPLE) {
        window_probe(c);
    }
    if m.dump_interval_ps.get() != 0 {
        maybe_dump(c);
    }
}

/// Every 64th progress call: record how much wall time the last 64 calls
/// spanned (the always-on attentiveness signal; see [`GAP_SAMPLE`]).
#[cold]
#[inline(never)]
fn window_probe(c: &RankCtx) {
    let m = &c.metrics;
    let now = c.now_ps();
    let last = m.last_probe_ps.get();
    if last != 0 {
        let w = now.saturating_sub(last);
        m.progress_window.record(w);
        if w > m.max_window_ps.get() {
            m.max_window_ps.set(w);
        }
    }
    m.last_probe_ps.set(now);
    // A fresh reading is in hand — let the flight recorder's stamp cache
    // profit even when no event has triggered a sampled read lately.
    m.flight_clock_ps.set(now);
}

/// Interval-dump arm (only reached while `UPCXX_METRICS_DUMP` is active).
#[cold]
#[inline(never)]
fn maybe_dump(c: &RankCtx) {
    let m = &c.metrics;
    let now = c.now_ps();
    if now < m.next_dump_ps.get() {
        return;
    }
    m.next_dump_ps.set(now + m.dump_interval_ps.get());
    let _ = write_dump(c);
}

/// Progress-persona hook: one iteration of the progress thread's loop
/// (`did_work` = its conduit poll delivered something).
pub(crate) fn on_persona_poll(c: &RankCtx, did_work: bool) {
    let m = &c.metrics;
    m.persona_polls.set(m.persona_polls.get() + 1);
    if did_work {
        m.persona_work.set(m.persona_work.get() + 1);
    }
}

/// Count one contiguous RMA taking the eager fast path.
#[inline]
pub(crate) fn count_eager(c: &RankCtx) {
    let m = &c.metrics;
    m.rma_eager.set(m.rma_eager.get() + 1);
}

/// Count one contiguous RMA taking the deferred three-queue path.
pub(crate) fn count_deferred(c: &RankCtx) {
    let m = &c.metrics;
    m.rma_deferred.set(m.rma_deferred.get() + 1);
}

/// Count one aggregation-buffer flush by reason.
pub(crate) fn count_flush(c: &RankCtx, reason: FlushReason) {
    let cell = &c.metrics.flush_reasons[reason_code(reason) as usize];
    cell.set(cell.get() + 1);
}

// ------------------------------------------------------------- snapshot

/// Point-in-time view of one rank's metrics: monotonic counters, live
/// queue/conduit gauges, and log2 histograms. The counter fields supersede
/// the ad-hoc equivalents of [`crate::RuntimeStats`]; the gauges are probed
/// at call time (no hot-path sampling).
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// This rank's id.
    pub rank: usize,
    /// rput/rget operations injected.
    pub rma_ops: u64,
    /// RPCs injected (including `rpc_ff`).
    pub rpcs: u64,
    /// Bytes serialized into outgoing messages.
    pub bytes_out: u64,
    /// Bytes received (rget data, RPC args, replies).
    pub bytes_in: u64,
    /// Items executed from compQ by user progress.
    pub comp_items: u64,
    /// Messages routed through the aggregation buffers.
    pub agg_msgs: u64,
    /// Aggregated batches shipped.
    pub agg_batches: u64,
    /// Contiguous RMAs that took the eager fast path.
    pub rma_eager: u64,
    /// Contiguous RMAs that took the deferred three-queue path.
    pub rma_deferred: u64,
    /// Aggregation-buffer flushes by [`FlushReason`] wire code
    /// (None, Threshold, Ordering, Progress, Barrier, Explicit, ItemTail,
    /// Reconfig).
    pub flush_reasons: [u64; 8],
    /// User-progress calls on the master persona.
    pub progress_calls: u64,
    /// Progress-persona loop iterations (0 unless `UPCXX_PROGRESS=1`).
    pub persona_polls: u64,
    /// Progress-persona iterations whose conduit poll delivered work.
    pub persona_work: u64,
    /// Largest wall-time window spanned by 64 consecutive progress calls
    /// (ps) — the always-on attentiveness gauge (see module docs).
    pub max_progress_window_ps: u64,
    /// Largest exact gap between progress calls (ps; tracked only while
    /// tracing is enabled, 0 otherwise — the tracer's per-call probe).
    pub max_progress_gap_ps: u64,
    /// Current defQ depth.
    pub def_q_depth: usize,
    /// Current conduit-owned (actQ) operation count.
    pub act_q_depth: usize,
    /// Current compQ depth.
    pub comp_q_depth: usize,
    /// Payloads currently parked in aggregation buffers.
    pub agg_pending: usize,
    /// Conduit inbox depth (items/frames waiting to be polled).
    pub inbox_depth: u64,
    /// Unflushed outbound socket bytes (proc conduit; 0 elsewhere).
    pub backlog_bytes: u64,
    /// Rendezvous-staging bytes in use (proc conduit; 0 elsewhere).
    pub staging_used: u64,
    /// Rendezvous-staging capacity (proc conduit; 0 elsewhere).
    pub staging_cap: u64,
    /// Sends that fell back to eager wire framing because rendezvous staging
    /// was exhausted (proc conduit; 0 elsewhere).
    pub eager_fallbacks: u64,
    /// Trace-ring events recorded since launch (`UPCXX_TRACE` layer).
    pub trace_emitted: u64,
    /// Trace-ring events lost to ring overwrite. Previously only surfaced in
    /// `prof` reports; a first-class counter here.
    pub trace_dropped: u64,
    /// Flight-recorder events recorded since launch.
    pub flight_recorded: u64,
    /// Flight-recorder events lost to ring overwrite (ring wrapped).
    pub flight_dropped: u64,
    /// Sanitizer report counters (all zero unless `UPCXX_SAN` is on).
    pub san: crate::san::SanCounters,
    /// Metrics dump files written so far (on-demand + interval).
    pub dumps_written: u64,
    /// Log2 histogram of injected payload sizes (bytes), all op kinds.
    pub op_bytes: HistSnapshot,
    /// Log2 histogram of the 64-call progress windows (ps).
    pub progress_window: HistSnapshot,
}

/// Take a [`MetricsSnapshot`] of the calling rank. Panics outside a UPC++
/// world (like every other rank-scoped API).
pub fn snapshot() -> MetricsSnapshot {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    snapshot_ctx(&c)
}

pub(crate) fn snapshot_ctx(c: &RankCtx) -> MetricsSnapshot {
    let m = &c.metrics;
    let (trace_emitted, trace_dropped) = {
        let tr = c.trace.borrow();
        (tr.emitted(), tr.dropped())
    };
    let (flight_recorded, flight_dropped) = {
        let head = m.flight_head.load(Relaxed);
        (head, head.saturating_sub(FLIGHT_CAP as u64))
    };
    let depths = match &c.backend {
        Backend::Cond(h) => h.depths(),
        Backend::Sim(w) => w.depths(c.me),
    };
    MetricsSnapshot {
        rank: c.me,
        rma_ops: c.stats.rma_ops.get(),
        rpcs: c.stats.rpcs.get(),
        bytes_out: c.stats.bytes_out.get(),
        bytes_in: c.stats.bytes_in.get(),
        comp_items: c.stats.comp_items.get(),
        agg_msgs: c.stats.agg_msgs.get(),
        agg_batches: c.stats.agg_batches.get(),
        rma_eager: m.rma_eager.get(),
        rma_deferred: m.rma_deferred.get(),
        flush_reasons: std::array::from_fn(|i| m.flush_reasons[i].get()),
        progress_calls: m.progress_calls.get(),
        persona_polls: m.persona_polls.get(),
        persona_work: m.persona_work.get(),
        max_progress_window_ps: m.max_window_ps.get(),
        max_progress_gap_ps: c.stats.max_progress_gap_ps.get(),
        def_q_depth: c.def_q.borrow().len(),
        act_q_depth: c.active_ops.get(),
        comp_q_depth: c.comp_q.borrow().len(),
        agg_pending: crate::agg::pending_items(c),
        inbox_depth: depths.inbox,
        backlog_bytes: depths.backlog_bytes,
        staging_used: depths.staging_used,
        staging_cap: depths.staging_cap,
        eager_fallbacks: depths.eager_fallbacks,
        trace_emitted,
        trace_dropped,
        flight_recorded,
        flight_dropped,
        san: c.san.borrow().counters,
        dumps_written: m.dumps_written.get(),
        op_bytes: m.op_bytes.snap(),
        progress_window: m.progress_window.snap(),
    }
}

// --------------------------------------------------------- expositions

/// Render `s` in Prometheus text-exposition style (`# TYPE` headers,
/// `{rank="r"}` labels, cumulative `_bucket{le=...}` histograms).
pub fn render_prometheus(s: &MetricsSnapshot) -> String {
    let r = s.rank;
    let mut out = String::with_capacity(4096);
    let mut counter = |name: &str, v: u64| {
        let _ = writeln!(
            out,
            "# TYPE upcxx_{name}_total counter\nupcxx_{name}_total{{rank=\"{r}\"}} {v}"
        );
    };
    counter("rma_ops", s.rma_ops);
    counter("rpcs", s.rpcs);
    counter("bytes_out", s.bytes_out);
    counter("bytes_in", s.bytes_in);
    counter("comp_items", s.comp_items);
    counter("agg_msgs", s.agg_msgs);
    counter("agg_batches", s.agg_batches);
    counter("rma_eager", s.rma_eager);
    counter("rma_deferred", s.rma_deferred);
    counter("progress_calls", s.progress_calls);
    counter("persona_polls", s.persona_polls);
    counter("persona_work", s.persona_work);
    counter("trace_emitted", s.trace_emitted);
    counter("trace_dropped", s.trace_dropped);
    counter("flight_recorded", s.flight_recorded);
    counter("flight_dropped", s.flight_dropped);
    counter("eager_fallbacks", s.eager_fallbacks);
    counter("dumps_written", s.dumps_written);
    let san = s.san;
    counter(
        "san_reports",
        san.races + san.restricted + san.uaf + san.oob + san.bad_frees,
    );
    let _ = writeln!(out, "# TYPE upcxx_agg_flush_total counter");
    for (i, &v) in s.flush_reasons.iter().enumerate() {
        let _ = writeln!(
            out,
            "upcxx_agg_flush_total{{rank=\"{r}\",reason=\"{}\"}} {v}",
            reason_from(i as u8).as_str()
        );
    }
    let mut gauge = |name: &str, v: u64| {
        let _ = writeln!(
            out,
            "# TYPE upcxx_{name} gauge\nupcxx_{name}{{rank=\"{r}\"}} {v}"
        );
    };
    gauge("def_q_depth", s.def_q_depth as u64);
    gauge("act_q_depth", s.act_q_depth as u64);
    gauge("comp_q_depth", s.comp_q_depth as u64);
    gauge("agg_pending", s.agg_pending as u64);
    gauge("inbox_depth", s.inbox_depth);
    gauge("backlog_bytes", s.backlog_bytes);
    gauge("staging_used", s.staging_used);
    gauge("staging_cap", s.staging_cap);
    gauge("max_progress_window_ps", s.max_progress_window_ps);
    gauge("max_progress_gap_ps", s.max_progress_gap_ps);
    for (name, h) in [
        ("op_bytes", &s.op_bytes),
        ("progress_window_ps", &s.progress_window),
    ] {
        let _ = writeln!(out, "# TYPE upcxx_{name} histogram");
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cum += c;
            let le = if i == 63 {
                u64::MAX
            } else {
                (1u64 << (i + 1)) - 1
            };
            let _ = writeln!(out, "upcxx_{name}_bucket{{rank=\"{r}\",le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(
            out,
            "upcxx_{name}_bucket{{rank=\"{r}\",le=\"+Inf\"}} {cum}\n\
             upcxx_{name}_count{{rank=\"{r}\"}} {}\n\
             upcxx_{name}_max{{rank=\"{r}\"}} {}",
            h.count, h.max
        );
    }
    out
}

/// Render `s` as a JSON object (`counters` / `gauges` / `hists` sections;
/// parseable by any JSON reader — the test suite uses its own hand-written
/// parser on this output).
pub fn render_json(s: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(2048);
    let _ = write!(out, "{{\"rank\":{},\"counters\":{{", s.rank);
    let san = s.san;
    let counters: [(&str, u64); 20] = [
        ("rma_ops", s.rma_ops),
        ("rpcs", s.rpcs),
        ("bytes_out", s.bytes_out),
        ("bytes_in", s.bytes_in),
        ("comp_items", s.comp_items),
        ("agg_msgs", s.agg_msgs),
        ("agg_batches", s.agg_batches),
        ("rma_eager", s.rma_eager),
        ("rma_deferred", s.rma_deferred),
        ("progress_calls", s.progress_calls),
        ("persona_polls", s.persona_polls),
        ("persona_work", s.persona_work),
        ("trace_emitted", s.trace_emitted),
        ("trace_dropped", s.trace_dropped),
        ("flight_recorded", s.flight_recorded),
        ("flight_dropped", s.flight_dropped),
        ("eager_fallbacks", s.eager_fallbacks),
        ("dumps_written", s.dumps_written),
        (
            "san_reports",
            san.races + san.restricted + san.uaf + san.oob + san.bad_frees,
        ),
        ("progress_window_samples", s.progress_window.count),
    ];
    for (i, (k, v)) in counters.iter().enumerate() {
        let _ = write!(out, "{}\"{k}\":{v}", if i == 0 { "" } else { "," });
    }
    let _ = write!(out, "}},\"flush_reasons\":{{");
    for (i, &v) in s.flush_reasons.iter().enumerate() {
        let _ = write!(
            out,
            "{}\"{}\":{v}",
            if i == 0 { "" } else { "," },
            reason_from(i as u8).as_str()
        );
    }
    let _ = write!(out, "}},\"gauges\":{{");
    let gauges: [(&str, u64); 10] = [
        ("def_q_depth", s.def_q_depth as u64),
        ("act_q_depth", s.act_q_depth as u64),
        ("comp_q_depth", s.comp_q_depth as u64),
        ("agg_pending", s.agg_pending as u64),
        ("inbox_depth", s.inbox_depth),
        ("backlog_bytes", s.backlog_bytes),
        ("staging_used", s.staging_used),
        ("staging_cap", s.staging_cap),
        ("max_progress_window_ps", s.max_progress_window_ps),
        ("max_progress_gap_ps", s.max_progress_gap_ps),
    ];
    for (i, (k, v)) in gauges.iter().enumerate() {
        let _ = write!(out, "{}\"{k}\":{v}", if i == 0 { "" } else { "," });
    }
    let _ = write!(out, "}},\"hists\":{{");
    for (i, (name, h)) in [
        ("op_bytes", &s.op_bytes),
        ("progress_window_ps", &s.progress_window),
    ]
    .iter()
    .enumerate()
    {
        let _ = write!(
            out,
            "{}\"{name}\":{{\"count\":{},\"max\":{},\"buckets\":[",
            if i == 0 { "" } else { "," },
            h.count,
            h.max
        );
        for (j, (lo, c)) in h.nonzero().iter().enumerate() {
            let _ = write!(out, "{}[{lo},{c}]", if j == 0 { "" } else { "," });
        }
        let _ = write!(out, "]}}");
    }
    let _ = write!(out, "}}}}");
    out
}

/// The calling rank's metrics in Prometheus text-exposition style.
pub fn prometheus() -> String {
    render_prometheus(&snapshot())
}

/// The calling rank's metrics as a JSON object.
pub fn to_json() -> String {
    render_json(&snapshot())
}

// ----------------------------------------------------------- dump files

static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Override where dump files are written (`None` restores the environment/
/// temp-dir resolution described in the module docs). Process-wide.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    *DUMP_DIR.lock().unwrap() = dir;
}

/// The directory dump files currently resolve to (see module docs for the
/// precedence order).
pub fn dump_dir() -> PathBuf {
    if let Some(d) = DUMP_DIR.lock().unwrap().clone() {
        return d;
    }
    if let Ok(d) = std::env::var("UPCXX_METRICS_DIR") {
        return PathBuf::from(d);
    }
    if let Ok(d) = std::env::var("UPCXX_PROC_DIR") {
        return PathBuf::from(d);
    }
    std::env::temp_dir()
}

/// Write the calling rank's dump files now (`metrics.<rank>.json`,
/// `metrics.<rank>.prom`, and one appended line of `metrics.<rank>.series.jsonl`).
/// Returns the directory they were written to.
pub fn dump() -> std::io::Result<PathBuf> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    write_dump(&c)
}

fn write_dump(c: &RankCtx) -> std::io::Result<PathBuf> {
    let m = &c.metrics;
    m.dumps_written.set(m.dumps_written.get() + 1);
    let s = snapshot_ctx(c);
    let dir = dump_dir();
    std::fs::create_dir_all(&dir)?;
    std::fs::write(dir.join(format!("metrics.{}.json", c.me)), render_json(&s))?;
    std::fs::write(
        dir.join(format!("metrics.{}.prom", c.me)),
        render_prometheus(&s),
    )?;
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("metrics.{}.series.jsonl", c.me)))?;
    writeln!(
        f,
        "{{\"seq\":{},\"rma_ops\":{},\"rpcs\":{},\"bytes_out\":{},\"bytes_in\":{},\
         \"comp_items\":{},\"progress_calls\":{},\"flight_recorded\":{}}}",
        s.dumps_written,
        s.rma_ops,
        s.rpcs,
        s.bytes_out,
        s.bytes_in,
        s.comp_items,
        s.progress_calls,
        s.flight_recorded
    )?;
    Ok(dir)
}

/// Set (or clear, with 0) the interval dumping period for the calling rank —
/// the programmatic form of `UPCXX_METRICS_DUMP=<ms>`. Dumps are written
/// opportunistically from user progress, so an inattentive rank dumps late
/// rather than from a hidden thread.
pub fn set_dump_interval(ms: u64) {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    install_interval(&c, ms);
}

pub(crate) fn install_interval(c: &RankCtx, ms: u64) {
    let m = &c.metrics;
    let ps = ms.saturating_mul(1_000_000_000); // 1 ms = 1e9 ps
    m.dump_interval_ps.set(ps);
    if ps != 0 {
        m.next_dump_ps.set(c.now_ps().saturating_add(ps));
    }
}

/// Runtime-entry installation (called from every rank main): apply the
/// configured dump interval and chain the flight-recorder panic hook.
pub(crate) fn install(c: &RankCtx, cfg: &crate::config::Config) {
    install_interval(c, cfg.metrics_dump_ms);
    install_panic_hook();
}

/// Rank-main-exit hook: when interval dumping was on, write one final dump
/// so the files always reflect the completed run.
pub(crate) fn final_dump(c: &RankCtx) {
    if c.metrics.dump_interval_ps.get() != 0 {
        let _ = write_dump(c);
    }
}

// ------------------------------------------------------ flight recorder

/// Decode the calling rank's current flight-recorder contents, oldest
/// first. Mostly useful for tests; the production consumer is the panic
/// hook + proc-launcher postmortem.
pub fn flight_events() -> Vec<TraceEvent> {
    let c = ctx();
    let _g = crate::persona::lock(&c);
    c.metrics.flight_read(c.me as u32).2
}

/// Serialize the ring as JSON: events are 11-number arrays
/// `[ts_ps, origin, op, kind, phase, reason, persona, peer, bytes,
/// parent_origin, parent_op]` (codes per the `prof` wire order), so the
/// harvest side needs no string tables.
fn flight_json(rank: u32, n: usize, recorded: u64, dropped: u64, evs: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(64 + evs.len() * 48);
    let _ = write!(
        out,
        "{{\"rank\":{rank},\"n\":{n},\"recorded\":{recorded},\"dropped\":{dropped},\"events\":["
    );
    for (i, e) in evs.iter().enumerate() {
        let _ = write!(
            out,
            "{}[{},{},{},{},{},{},{},{},{},{},{}]",
            if i == 0 { "" } else { "," },
            e.ts_ps,
            e.origin,
            e.op,
            kind_code(e.kind),
            phase_idx(e.phase),
            reason_code(e.reason),
            e.persona,
            e.peer,
            e.bytes,
            e.parent_origin,
            e.parent_op
        );
    }
    out.push_str("]}");
    out
}

/// Write `flight.<rank>.json` for `c` into the dump dir. Called from the
/// panic hook; must not panic itself.
fn write_flight(c: &RankCtx) -> std::io::Result<PathBuf> {
    let (recorded, dropped, evs) = c.metrics.flight_read(c.me as u32);
    let dir = dump_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("flight.{}.json", c.me));
    std::fs::write(
        &path,
        flight_json(c.me as u32, c.n, recorded, dropped, &evs),
    )?;
    Ok(path)
}

static HOOK: Once = Once::new();

/// Chain the flight-recorder dump onto the process panic hook (idempotent).
/// The hook only acts when the panicking thread has a rank context, then
/// always delegates to the previous hook — `should_panic` tests and
/// user-installed hooks are unaffected.
pub(crate) fn install_panic_hook() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(c) = crate::ctx::panic_ctx() {
                let _ = write_flight(&c);
            }
            prev(info);
        }));
    });
}

// ---------------------------------------------------------- postmortem

static LAST_POSTMORTEM: Mutex<Option<String>> = Mutex::new(None);

/// The postmortem report from the most recent crashed proc world harvested
/// in this process (the launcher also prints it to stderr). `None` if no
/// crash has been harvested.
pub fn last_postmortem() -> Option<String> {
    LAST_POSTMORTEM.lock().unwrap().clone()
}

/// Parse the first unsigned integer following `key` in `s`.
fn field_u64(s: &str, key: &str) -> Option<u64> {
    let at = s.find(key)? + key.len();
    let rest = s[at..].trim_start();
    let end = rest
        .find(|ch: char| !ch.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse one `flight.<rank>.json` back into prof-merge inputs. Tolerant:
/// malformed events are skipped, a malformed header yields `None`.
fn parse_flight(s: &str) -> Option<(crate::prof::RankMeta, Vec<TraceEvent>)> {
    let rank = field_u64(s, "\"rank\":")? as u32;
    let recorded = field_u64(s, "\"recorded\":")?;
    let dropped = field_u64(s, "\"dropped\":")?;
    let body = &s[s.find("\"events\":[")? + "\"events\":[".len()..];
    let mut evs = Vec::new();
    let mut rest = body;
    while let Some(open) = rest.find('[') {
        let Some(close) = rest[open..].find(']') else {
            break;
        };
        let nums: Vec<u64> = rest[open + 1..open + close]
            .split(',')
            .filter_map(|t| t.trim().parse().ok())
            .collect();
        if nums.len() == 11 {
            evs.push(TraceEvent {
                rank,
                origin: nums[1] as u32,
                op: nums[2],
                kind: kind_from((nums[3] as u8).min(7)),
                phase: phase_from((nums[4] as u8).min(3)),
                reason: reason_from((nums[5] as u8).min(7)),
                persona: nums[6] as u8,
                peer: nums[7] as u32,
                bytes: nums[8] as u32,
                ts_ps: nums[0],
                parent_origin: nums[9] as u32,
                parent_op: nums[10],
            });
        }
        rest = &rest[open + close + 1..];
    }
    Some((
        crate::prof::RankMeta {
            rank,
            emitted: recorded,
            dropped,
        },
        evs,
    ))
}

/// How many merged tail events the postmortem timeline prints.
const POSTMORTEM_TAIL: usize = 32;

/// Harvest `flight.*.json` dumps from a crashed proc world's working
/// directory and render the merged last-events timeline. This is the
/// function the runtime installs into [`gasnet::proc::ProcConfig`] as the
/// launcher's postmortem hook; `failed` is the first failed rank
/// (`usize::MAX` = the world timed out). Returns `None` when no rank left a
/// dump. The report is also retained for [`last_postmortem`].
pub(crate) fn proc_postmortem(dir: &Path, n: usize, failed: usize) -> Option<String> {
    let mut contribs = Vec::new();
    for r in 0..n {
        if let Ok(s) = std::fs::read_to_string(dir.join(format!("flight.{r}.json"))) {
            if let Some(c) = parse_flight(&s) {
                contribs.push(c);
            }
        }
    }
    if contribs.is_empty() {
        return None;
    }
    let report = render_postmortem(n, failed, contribs);
    *LAST_POSTMORTEM.lock().unwrap() = Some(report.clone());
    Some(report)
}

fn render_postmortem(
    n: usize,
    failed: usize,
    contribs: Vec<(crate::prof::RankMeta, Vec<TraceEvent>)>,
) -> String {
    let dumped: Vec<u32> = contribs.iter().map(|(m, _)| m.rank).collect();
    let p = crate::prof::Profile::build(n, contribs, false);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "=== upcxx postmortem: flight-recorder timeline ({} of {n} rank(s) dumped) ===",
        dumped.len()
    );
    if failed == usize::MAX {
        let _ = writeln!(out, "world timed out; dumps below are from ranks that died");
    } else {
        let _ = writeln!(out, "first failed rank: rank {failed}");
    }
    for m in &p.meta {
        if m.dropped > 0 {
            let _ = writeln!(
                out,
                "WARNING: rank {} flight ring wrapped — {} older events overwritten \
                 (ring keeps the most recent {})",
                m.rank, m.dropped, FLIGHT_CAP
            );
        }
    }
    let tail = POSTMORTEM_TAIL.min(p.events.len());
    let _ = writeln!(
        out,
        "last {tail} merged flight events (of {}), oldest first:",
        p.events.len()
    );
    for e in &p.events[p.events.len() - tail..] {
        let _ = writeln!(
            out,
            "  [{:>12} ns] rank {} {:<6} {:<8} peer={:<3} {:>7} B  op={}:{} persona={}",
            e.ts_ps / 1000,
            e.rank,
            e.kind.as_str(),
            e.phase.as_str(),
            e.peer,
            e.bytes,
            e.origin,
            e.op,
            e.persona
        );
    }
    for (m, last) in dumped
        .iter()
        .filter_map(|&r| p.events.iter().rev().find(|e| e.rank == r).map(|e| (r, e)))
    {
        let _ = writeln!(
            out,
            "rank {m}'s final recorded event: {} {} (peer {}, {} B) at {} ns",
            last.kind.as_str(),
            last.phase.as_str(),
            last.peer,
            last.bytes,
            last.ts_ps / 1000
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::OpKind;

    fn ev(ts: u64, rank: u32, op: u64, kind: OpKind, phase: Phase) -> TraceEvent {
        TraceEvent {
            rank,
            origin: rank,
            op,
            kind,
            phase,
            peer: (rank + 1) % 4,
            bytes: 1024,
            reason: FlushReason::None,
            ts_ps: ts,
            parent_origin: 0,
            parent_op: 0,
            persona: 0,
        }
    }

    #[test]
    fn flight_ring_packs_and_wraps() {
        let m = Metrics::new();
        for i in 0..(FLIGHT_CAP as u64 + 10) {
            m.flight_push(&ev(i * 100, 2, i + 1, OpKind::Put, Phase::Inject));
        }
        let (recorded, dropped, evs) = m.flight_read(2);
        assert_eq!(recorded, FLIGHT_CAP as u64 + 10);
        assert_eq!(dropped, 10);
        assert_eq!(evs.len(), FLIGHT_CAP);
        // Oldest surviving event is #11 (1-based), newest is the last push.
        assert_eq!(evs[0].op, 11);
        assert_eq!(evs.last().unwrap().op, FLIGHT_CAP as u64 + 10);
        assert!(evs.windows(2).all(|w| w[0].ts_ps < w[1].ts_ps));
        let e = &evs[0];
        assert_eq!(
            (e.kind, e.phase, e.bytes, e.peer),
            (OpKind::Put, Phase::Inject, 1024, 3)
        );
    }

    #[test]
    fn flight_json_round_trips_through_parse() {
        let evs: Vec<TraceEvent> = (0..5)
            .map(|i| ev(1000 + i * 10, 1, i + 1, OpKind::Rpc, Phase::Deliver))
            .collect();
        let js = flight_json(1, 4, 300, 44, &evs);
        let (meta, back) = parse_flight(&js).expect("parses");
        assert_eq!((meta.rank, meta.emitted, meta.dropped), (1, 300, 44));
        assert_eq!(back.len(), 5);
        for (a, b) in evs.iter().zip(&back) {
            assert_eq!(
                (a.ts_ps, a.op, a.kind, a.phase, a.peer, a.bytes),
                (b.ts_ps, b.op, b.kind, b.phase, b.peer, b.bytes)
            );
        }
    }

    #[test]
    fn postmortem_report_names_ranks_and_wrap() {
        let contribs = vec![
            (
                crate::prof::RankMeta {
                    rank: 1,
                    emitted: 300,
                    dropped: 44,
                },
                (0..5)
                    .map(|i| ev(1000 + i * 10, 1, i + 1, OpKind::Rpc, Phase::Inject))
                    .collect(),
            ),
            (
                crate::prof::RankMeta {
                    rank: 0,
                    emitted: 3,
                    dropped: 0,
                },
                vec![ev(995, 0, 9, OpKind::Put, Phase::Inject)],
            ),
        ];
        let rep = render_postmortem(4, 1, contribs);
        assert!(rep.contains("postmortem"), "{rep}");
        assert!(rep.contains("first failed rank: rank 1"), "{rep}");
        assert!(rep.contains("flight ring wrapped"), "{rep}");
        assert!(rep.contains("rank 1"), "{rep}");
        // Merged order: rank 0's earlier event precedes rank 1's.
        let p0 = rep.find("rank 0 Put").expect("rank 0 line");
        let p1 = rep.find("rank 1 Rpc").expect("rank 1 line");
        assert!(p0 < p1, "{rep}");
    }

    #[test]
    fn cell_hist_buckets_match_log2() {
        let h = CellHist::new();
        for v in [0, 1, 2, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let s = h.snap();
        assert_eq!(s.count, 6);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[10], 1); // 1024
        assert_eq!(s.buckets[63], 1); // u64::MAX
        assert_eq!(s.nonzero().len(), 4);
    }

    #[test]
    fn renderers_emit_parseable_shapes() {
        // A zeroed snapshot must still render complete documents.
        let m = Metrics::new();
        m.op_bytes.record(512);
        let s = MetricsSnapshot {
            rank: 3,
            rma_ops: 7,
            rpcs: 2,
            bytes_out: 4096,
            bytes_in: 128,
            comp_items: 9,
            agg_msgs: 0,
            agg_batches: 0,
            rma_eager: 6,
            rma_deferred: 1,
            flush_reasons: [0; 8],
            progress_calls: 40,
            persona_polls: 0,
            persona_work: 0,
            max_progress_window_ps: 0,
            max_progress_gap_ps: 0,
            def_q_depth: 0,
            act_q_depth: 0,
            comp_q_depth: 1,
            agg_pending: 0,
            inbox_depth: 0,
            backlog_bytes: 0,
            staging_used: 0,
            staging_cap: 0,
            eager_fallbacks: 0,
            trace_emitted: 0,
            trace_dropped: 0,
            flight_recorded: 7,
            flight_dropped: 0,
            san: crate::san::SanCounters::default(),
            dumps_written: 1,
            op_bytes: m.op_bytes.snap(),
            progress_window: m.progress_window.snap(),
        };
        let prom = render_prometheus(&s);
        assert!(prom.contains("upcxx_rma_ops_total{rank=\"3\"} 7"), "{prom}");
        assert!(prom.contains("upcxx_op_bytes_bucket"), "{prom}");
        assert!(prom.contains("le=\"+Inf\""), "{prom}");
        let js = render_json(&s);
        assert_eq!(field_u64(&js, "\"rma_ops\":"), Some(7));
        assert_eq!(field_u64(&js, "\"flight_recorded\":"), Some(7));
        assert!(
            js.contains("\"op_bytes\":{\"count\":1,\"max\":512,\"buckets\":[[512,1]]}"),
            "{js}"
        );
        assert!(js.ends_with("}}"), "{js}");
    }
}
