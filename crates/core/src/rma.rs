//! One-sided Remote Memory Access: `rput` / `rget` and friends (§II–III).
//!
//! All operations are **asynchronous by default** (the paper's first design
//! principle) and return a [`Future`]; completion can alternatively feed a
//! [`Promise`] dependency counter (the paper's `operation_cx::as_promise`,
//! used by its flood-bandwidth benchmark) via the `*_promise` variants.
//!
//! Injection follows §III exactly: the call creates the operation in the
//! deferred queue, internal progress hands it to the conduit, and the
//! returned future readies when user-level progress drains the completion
//! queue.
//!
//! Beyond contiguous transfers, the non-contiguous family the paper lists
//! (§II: "vector, indexed and strided") is provided as [`rput_irregular`],
//! [`rput_strided`] and their get counterparts, implemented — as in early
//! GASNet conduits — by decomposing into contiguous operations conjoined
//! through one promise.

use crate::ctx::{ctx, DefOp};
use crate::future::{Future, Promise};
use crate::global_ptr::GlobalPtr;
use crate::ser::{pod_from_bytes, pod_to_bytes, Pod};

/// Non-blocking one-sided put of `src` to the remote location `dest`
/// (paper: `upcxx::rput(src, dest, count)`). The returned future readies at
/// *operation completion* — the data is globally visible and the source
/// buffer (copied at injection) is reusable immediately.
pub fn rput<T: Pod>(src: &[T], dest: GlobalPtr<T>) -> Future<()> {
    let p = Promise::<()>::new();
    rput_promise(src, dest, &p);
    p.finalize()
}

/// Single-value put (paper: `upcxx::rput(value, dest)`).
pub fn rput_val<T: Pod>(v: T, dest: GlobalPtr<T>) -> Future<()> {
    rput(std::slice::from_ref(&v), dest)
}

/// Put registering completion on `p` instead of returning a future — the
/// paper's flood benchmark idiom:
/// `rput(src, dest, size, operation_cx::as_promise(p))`.
pub fn rput_promise<T: Pod>(src: &[T], dest: GlobalPtr<T>, p: &Promise<()>) {
    let c = ctx();
    assert!(!dest.is_null(), "rput to null global pointer");
    c.stats.rma_ops.set(c.stats.rma_ops.get() + 1);
    let bytes = pod_to_bytes(src);
    c.stats
        .bytes_out
        .set(c.stats.bytes_out.get() + bytes.len() as u64);
    p.require_anonymous(1);
    let p2 = p.clone();
    c.inject(DefOp::Put {
        target: dest.rank(),
        dst_off: dest.byte_offset(),
        bytes,
        done: Box::new(move || p2.fulfill_anonymous(1)),
    });
}

/// Non-blocking one-sided get of `count` elements from `src`
/// (paper: `upcxx::rget`). The future carries the data.
pub fn rget<T: Pod + Clone>(src: GlobalPtr<T>, count: usize) -> Future<Vec<T>> {
    let c = ctx();
    assert!(!src.is_null(), "rget from null global pointer");
    c.stats.rma_ops.set(c.stats.rma_ops.get() + 1);
    let p = Promise::<Vec<T>>::new();
    let p2 = p.clone();
    c.inject(DefOp::Get {
        target: src.rank(),
        src_off: src.byte_offset(),
        len: count * std::mem::size_of::<T>(),
        done: Box::new(move |bytes| p2.fulfill(pod_from_bytes(&bytes))),
    });
    p.get_future()
}

/// Single-value get.
pub fn rget_val<T: Pod + Clone>(src: GlobalPtr<T>) -> Future<T> {
    rget(src, 1).then(|v| v[0])
}

/// Irregular ("vector") put: a batch of (source chunk, destination) pairs
/// completing as one operation. Paper §II's `rput_irregular`.
pub fn rput_irregular<T: Pod>(pairs: &[(&[T], GlobalPtr<T>)]) -> Future<()> {
    let p = Promise::<()>::new();
    for (src, dest) in pairs {
        rput_promise(src, *dest, &p);
    }
    p.finalize()
}

/// Strided put: `count` chunks of `chunk` elements taken every
/// `src_stride` elements from `src`, landing every `dst_stride` elements
/// from `dest` (paper §II's `rput_strided`; the 2-D block update pattern of
/// multidimensional-array libraries).
pub fn rput_strided<T: Pod>(
    src: &[T],
    src_stride: usize,
    dest: GlobalPtr<T>,
    dst_stride: usize,
    chunk: usize,
    count: usize,
) -> Future<()> {
    assert!(
        chunk <= src_stride || count <= 1,
        "overlapping source chunks"
    );
    let p = Promise::<()>::new();
    for i in 0..count {
        let s = &src[i * src_stride..i * src_stride + chunk];
        rput_promise(s, dest.add(i * dst_stride), &p);
    }
    p.finalize()
}

/// Indexed get: one future carrying the concatenation of `count`-element
/// reads at each pointer (completing when all arrive).
pub fn rget_irregular<T: Pod + Clone>(srcs: &[(GlobalPtr<T>, usize)]) -> Future<Vec<Vec<T>>> {
    crate::future::when_all_vec(srcs.iter().map(|&(p, n)| rget(p, n)).collect())
}

/// Strided get mirroring [`rput_strided`].
pub fn rget_strided<T: Pod + Clone>(
    src: GlobalPtr<T>,
    src_stride: usize,
    chunk: usize,
    count: usize,
) -> Future<Vec<T>> {
    let futs: Vec<Future<Vec<T>>> = (0..count)
        .map(|i| rget(src.add(i * src_stride), chunk))
        .collect();
    crate::future::when_all_vec(futs).then(|chunks| chunks.into_iter().flatten().collect())
}
